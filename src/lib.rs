//! # contention-resolution
//!
//! A faithful, production-quality Rust reproduction of
//! *Unbounded Contention Resolution in Multiple-Access Channels*
//! (Fernández Anta, Mosteiro, Muñoz — PODC 2011 / arXiv:1107.0234):
//! randomized protocols that let an **unknown and unbounded** number of
//! stations share a slotted channel **without collision detection**, each
//! delivering one message, in time linear in the number of contenders.
//!
//! This facade crate re-exports the workspace crates under stable module
//! names and provides a [`prelude`]:
//!
//! * [`prob`] (`mac-prob`) — probability toolkit: slot-outcome sampling,
//!   balls-in-bins, statistics, deterministic RNG streams;
//! * [`adversary`] (`mac-adversary`) — adversarial channel models: jamming
//!   schedules, stochastic noise, budgeted reactive jammers, and degraded
//!   feedback for robustness experiments;
//! * [`channel`] (`mac-channel`) — the slotted multiple-access channel model:
//!   collision semantics, observations, arrival models, traces;
//! * [`protocols`] (`mac-protocols`) — One-fail Adaptive, Exp
//!   Back-on/Back-off, Log-fails Adaptive, Loglog-iterated Back-off,
//!   r-exponential back-off, the known-k oracle, and the analytical bounds of
//!   the paper's theorems;
//! * [`sim`] (`mac-sim`) — exact and fast simulators, the replicated
//!   experiment runner and the report renderers behind Figure 1 / Table 1.
//!
//! # Quickstart
//!
//! ```
//! use contention_resolution::prelude::*;
//!
//! // Solve static k-selection for 1000 stations with One-fail Adaptive.
//! let result = simulate(&ProtocolKind::OneFailAdaptive { delta: 2.72 }, 1_000, 42).unwrap();
//! assert!(result.completed);
//! // Theorem 1: the makespan is ≈ 2(δ+1)·k ≈ 7.44·k slots.
//! assert!((result.ratio() - 7.44).abs() < 2.0);
//! ```
//!
//! See the `examples/` directory for runnable end-to-end scenarios and
//! `crates/bench` for the harness that regenerates the paper's figure and
//! table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mac_adversary as adversary;
pub use mac_channel as channel;
pub use mac_prob as prob;
pub use mac_protocols as protocols;
pub use mac_sim as sim;

/// The most commonly used items, importable with a single `use`.
pub mod prelude {
    pub use crate::adversary::{AdversaryModel, AdversaryScenario, FeedbackFault, JamTrigger};
    pub use crate::channel::{
        ArrivalModel, ArrivalSchedule, Channel, ChannelModel, Observation, ShardStrategy,
    };
    pub use crate::protocols::{
        analysis, ExpBackonBackoff, FairProtocol, KnownKOracle, LogFailsAdaptive, LogFailsConfig,
        LoglogIteratedBackoff, OneFailAdaptive, Protocol, ProtocolKind, RExponentialBackoff,
        RandomizedParityOneFail, WindowSchedule,
    };
    pub use crate::sim::dynamic::{simulate_dynamic, DynamicReport};
    pub use crate::sim::report::{figure1_series, table1_markdown, to_csv};
    pub use crate::sim::{
        simulate, simulate_with_options, Checkpoint, CheckpointStore, CohortRun, CohortSimulator,
        EngineChoice, ExactSimulator, Experiment, FairSimulator, FaultPlan, IntegrityError,
        RunOptions, RunResult, Session, SessionError, SessionStatus, ShardSupervision,
        ShardedSession, StallConfig, StallPolicy, WindowSimulator,
    };
}
