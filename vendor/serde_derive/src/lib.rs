//! No-op `Serialize`/`Deserialize` derive macros for the vendored serde stub.
//!
//! The workspace never serialises through the serde data model (see the stub
//! `serde` crate's documentation), so the derives expand to nothing. The
//! `serde` helper attribute is registered so that field attributes like
//! `#[serde(default)]` would not break compilation if introduced.

use proc_macro::TokenStream;

/// Expands to nothing; accepts `#[serde(...)]` helper attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts `#[serde(...)]` helper attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
