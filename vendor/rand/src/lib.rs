//! Offline, API-compatible subset of the [`rand`](https://crates.io/crates/rand)
//! crate (0.8 line), vendored so the workspace builds without network access.
//!
//! Only the surface actually used by this workspace is provided:
//!
//! * [`RngCore`] / [`SeedableRng`] — implemented by the workspace's own
//!   generators (`mac_prob::rng`);
//! * [`Rng`] — the extension trait providing `gen::<f64>()`, `gen_range`
//!   and `gen_bool`;
//! * [`Error`] — the error type referenced by `RngCore::try_fill_bytes`.
//!
//! The uniform-range sampler uses Lemire's widening-multiply rejection
//! method, and `f64` generation uses the standard 53-bit mantissa-fill, so
//! the statistical behaviour matches the upstream crate. Streams are *not*
//! bit-identical to upstream `rand`; every simulator in this workspace seeds
//! its own generator, so reproducibility is defined entirely by this
//! workspace.

#![forbid(unsafe_code)]

use std::fmt;

/// Error type reported by fallible RNG operations.
///
/// The generators in this workspace are infallible; the type exists so that
/// `RngCore::try_fill_bytes` has the upstream signature.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("random number generator error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: a source of `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fills `dest` with random bytes, reporting failure as an [`Error`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Seed material accepted by [`SeedableRng::from_seed`].
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it through SplitMix64 as
    /// recommended for the xoshiro family.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Distributions for [`Rng::gen`] and uniform-range sampling.
pub mod distributions {
    use super::RngCore;

    /// The "natural" distribution of a type: uniform over its range for
    /// integers, uniform in `[0, 1)` for floats.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    /// Types that can be sampled from a distribution.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    impl Distribution<f64> for Standard {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 random mantissa bits: uniform in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<u64> for Standard {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<u32> for Standard {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<bool> for Standard {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Uniformly samples one integer in `[0, span)` with Lemire's
    /// widening-multiply rejection method (unbiased).
    #[inline]
    pub(crate) fn uniform_u64_below<R: RngCore + ?Sized>(span: u64, rng: &mut R) -> u64 {
        debug_assert!(span > 0);
        let mut m = u128::from(rng.next_u64()) * u128::from(span);
        let mut lo = m as u64;
        if lo < span {
            let threshold = span.wrapping_neg() % span;
            while lo < threshold {
                m = u128::from(rng.next_u64()) * u128::from(span);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Ranges usable with [`super::Rng::gen_range`].
    pub trait SampleRange<T> {
        /// Draws one value uniformly from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! impl_int_sample_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                #[inline]
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + uniform_u64_below(span, rng) as $t
                }
            }

            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                #[inline]
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                    if span == 0 {
                        // Full u64 domain: every word is valid.
                        return rng.next_u64() as $t;
                    }
                    start + uniform_u64_below(span, rng) as $t
                }
            }
        )*};
    }

    impl_int_sample_range!(u64, u32, usize);

    impl SampleRange<f64> for core::ops::Range<f64> {
        #[inline]
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            assert!(self.start < self.end, "cannot sample empty range");
            let u: f64 = Standard.sample(rng);
            self.start + u * (self.end - self.start)
        }
    }

    impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
        #[inline]
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            let (start, end) = (*self.start(), *self.end());
            assert!(start <= end, "cannot sample empty range");
            let u: f64 = Standard.sample(rng);
            start + u * (end - start)
        }
    }
}

/// Extension trait with convenient sampling methods, implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from its [`distributions::Standard`] distribution.
    #[inline]
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples a value uniformly from `range`.
    #[inline]
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: distributions::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::distributions::uniform_u64_below;
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 so range rejection terminates.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u64() as u8;
            }
        }
        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }

    #[test]
    fn gen_f64_is_in_unit_interval() {
        let mut rng = Counter(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Counter(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u64..17);
            assert!((10..17).contains(&x));
            let y = rng.gen_range(0usize..=3);
            assert!(y <= 3);
        }
    }

    #[test]
    fn uniform_below_covers_all_residues() {
        let mut rng = Counter(3);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[uniform_u64_below(7, &mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        struct ArrSeeded([u8; 16]);
        impl RngCore for ArrSeeded {
            fn next_u32(&mut self) -> u32 {
                0
            }
            fn next_u64(&mut self) -> u64 {
                0
            }
            fn fill_bytes(&mut self, _: &mut [u8]) {}
            fn try_fill_bytes(&mut self, _: &mut [u8]) -> Result<(), Error> {
                Ok(())
            }
        }
        impl SeedableRng for ArrSeeded {
            type Seed = [u8; 16];
            fn from_seed(seed: Self::Seed) -> Self {
                Self(seed)
            }
        }
        let a = ArrSeeded::seed_from_u64(42);
        let b = ArrSeeded::seed_from_u64(42);
        let c = ArrSeeded::seed_from_u64(43);
        assert_eq!(a.0, b.0);
        assert_ne!(a.0, c.0);
        assert_ne!(a.0, [0u8; 16]);
    }
}
