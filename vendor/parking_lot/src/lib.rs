//! Offline, API-compatible subset of the
//! [`parking_lot`](https://crates.io/crates/parking_lot) crate, vendored so
//! the workspace builds without network access.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API
//! (`lock()` returns a guard directly instead of a `Result`). A poisoned
//! std lock — only possible if a panicking thread held it — is recovered
//! rather than propagated, matching `parking_lot`'s behaviour of not
//! tracking poisoning at all.

#![forbid(unsafe_code)]

use std::sync::PoisonError;

/// A mutual-exclusion lock with `parking_lot`'s panic-free locking API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free locking API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(0);
        let guard = m.lock();
        assert!(m.try_lock().is_none());
        drop(guard);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 7;
        assert_eq!(l.into_inner(), 7);
    }
}
