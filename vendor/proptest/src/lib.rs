//! Offline, API-compatible subset of the
//! [`proptest`](https://crates.io/crates/proptest) crate, vendored so the
//! workspace builds without network access.
//!
//! The subset supports the surface used by this workspace's property tests:
//! the `proptest!` macro (including `#![proptest_config(...)]`), range and
//! `any::<T>()` strategies, `prop_map`, `prop::collection::vec`, and the
//! `prop_assert*` / `prop_assume!` macros. Cases are generated from a
//! deterministic per-test RNG with light boundary biasing (the range
//! endpoints are drawn with elevated probability). There is **no shrinking**:
//! a failing case panics with the generated arguments, which — together with
//! determinism — is enough to reproduce and debug a failure.

#![forbid(unsafe_code)]

use std::fmt;

/// Deterministic generator driving test-case generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `[0, span)` (Lemire rejection).
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        let mut m = u128::from(self.next_u64()) * u128::from(span);
        let mut lo = m as u64;
        if lo < span {
            let threshold = span.wrapping_neg() % span;
            while lo < threshold {
                m = u128::from(self.next_u64()) * u128::from(span);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }
}

/// Why a generated case did not produce a verdict.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` and should not be counted.
    Reject,
    /// An assertion failed with the given message.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure from a message.
    pub fn fail<S: Into<String>>(message: S) -> Self {
        Self::Fail(message.into())
    }

    /// True iff the case was rejected (not failed).
    pub fn is_rejection(&self) -> bool {
        matches!(self, Self::Reject)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Reject => f.write_str("rejected by prop_assume!"),
            Self::Fail(message) => f.write_str(message),
        }
    }
}

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A source of generated values.
pub trait Strategy {
    /// The type of the generated values.
    type Value: fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `map`.
    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map {
            strategy: self,
            map,
        }
    }
}

/// Strategy adapter created by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strategy: S,
    map: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.strategy.generate(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                // Mild boundary bias: endpoints are worth hitting often.
                match rng.below(8) {
                    0 => self.start,
                    1 => self.end - 1,
                    _ => self.start + rng.below((self.end - self.start) as u64) as $t,
                }
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                match rng.below(8) {
                    0 => start,
                    1 => end,
                    _ => {
                        let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                        if span == 0 {
                            rng.next_u64() as $t
                        } else {
                            start + rng.below(span) as $t
                        }
                    }
                }
            }
        }
    )*};
}

impl_int_range_strategy!(u64, u32, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty strategy range");
        match rng.below(8) {
            0 => start,
            1 => end,
            _ => start + rng.next_f64() * (end - start),
        }
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: fmt::Debug + Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        match rng.below(8) {
            0 => 0,
            1 => u64::MAX,
            _ => rng.next_u64(),
        }
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        u64::arbitrary(rng) as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        u64::arbitrary(rng) as usize
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The "any value of `T`" strategy.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Collection strategies (`prop::collection`).
pub mod prop {
    /// Strategies generating collections.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::fmt;

        /// Strategy generating `Vec`s with lengths drawn from a range.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            min_len: usize,
            max_len_exclusive: usize,
        }

        impl<S: Strategy> Strategy for VecStrategy<S>
        where
            S::Value: fmt::Debug,
        {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.max_len_exclusive - self.min_len) as u64;
                let len = self.min_len
                    + if span == 0 {
                        0
                    } else {
                        rng.below(span) as usize
                    };
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Generates `Vec`s whose length lies in `lengths` (exclusive upper
        /// bound) and whose elements come from `element`.
        pub fn vec<S: Strategy>(element: S, lengths: core::ops::Range<usize>) -> VecStrategy<S> {
            assert!(lengths.start < lengths.end, "empty length range");
            VecStrategy {
                element,
                min_len: lengths.start,
                max_len_exclusive: lengths.end,
            }
        }
    }
}

/// Everything a property test needs, importable with one `use`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[doc(hidden)]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Asserts a condition inside a `proptest!` body (fails the case, with the
/// generated arguments reported, instead of panicking directly).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}` (both: {:?})",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Rejects the current case (it is regenerated, not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests. Each function's arguments are generated from the
/// given strategies; the body runs once per generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strategy:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let seed = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)).as_bytes());
            let mut rng = $crate::TestRng::new(seed);
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(16).max(16);
            while accepted < config.cases && attempts < max_attempts {
                attempts += 1;
                $( let $arg = $crate::Strategy::generate(&($strategy), &mut rng); )+
                // Describe the case up front: the body may consume the values.
                let case_description =
                    [$(format!("    {} = {:?}\n", stringify!($arg), $arg)),+].concat();
                let outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err(error) if error.is_rejection() => {}
                    ::core::result::Result::Err(error) => {
                        panic!(
                            "proptest case failed: {}\n  case #{} of {}:\n{}",
                            error,
                            accepted + 1,
                            stringify!($name),
                            case_description
                        );
                    }
                }
            }
            assert!(
                accepted >= config.cases,
                "proptest {}: too many rejected cases ({} accepted of {} wanted)",
                stringify!($name),
                accepted,
                config.cases
            );
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in 0.5f64..=1.5, n in 1usize..4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.5..=1.5).contains(&y));
            prop_assert!((1..4).contains(&n));
        }

        #[test]
        fn vec_lengths_respect_range(xs in prop::collection::vec(any::<bool>(), 2..5)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 5);
        }

        #[test]
        fn prop_map_applies(tag in (0usize..3).prop_map(|i| ["a", "b", "c"][i])) {
            prop_assert!(["a", "b", "c"].contains(&tag));
        }

        #[test]
        fn assume_rejects_without_failing(k in 0u64..=10, n in 0u64..=10) {
            prop_assume!(k <= n);
            prop_assert!(n >= k);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_is_honoured(x in any::<u64>()) {
            let _ = x;
            prop_assert!(true);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failures_panic_with_arguments() {
        proptest! {
            #[allow(unused)]
            fn inner(x in 0u64..5) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
