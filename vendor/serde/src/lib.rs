//! Offline, API-compatible subset of the [`serde`](https://serde.rs) crate,
//! vendored so the workspace builds without network access.
//!
//! The workspace uses serde only to mark configuration and result types as
//! serialisable (`#[derive(Serialize, Deserialize)]`); nothing serialises
//! through the serde data model yet (JSON artefacts are written by hand in
//! `mac-bench`). The derive macros here therefore expand to nothing, and the
//! traits carry no methods. When a real serialisation backend is needed,
//! replace this stub with the upstream crate — every annotated type already
//! compiles against the upstream derive.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in this stub).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in this stub).
pub trait Deserialize<'de>: Sized {}
