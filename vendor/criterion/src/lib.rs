//! Offline, API-compatible subset of the
//! [`criterion`](https://crates.io/crates/criterion) benchmarking crate,
//! vendored so the workspace builds without network access.
//!
//! The subset implements the same bench-registration API (`criterion_group!`,
//! `criterion_main!`, [`Criterion::benchmark_group`], [`Bencher::iter`]) with
//! a much simpler measurement core: a calibrated warm-up followed by batched
//! wall-clock timing. It reports mean time per iteration and the configured
//! [`Throughput`], without statistical outlier analysis or HTML reports.
//! Numbers from this harness are comparable run-to-run on the same machine,
//! which is all the workspace's perf-tracking workflow needs.

// Wall-clock timing is this crate's entire purpose; the workspace-wide
// clippy.toml ban on clock reads (backing mac-lint's determinism rules)
// does not apply to the bench harness.
#![allow(clippy::disallowed_methods)]
#![forbid(unsafe_code)]

use std::fmt;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group: a function name plus an
/// optional parameter (e.g. the instance size).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new<S: Into<String>, P: fmt::Display>(function: S, parameter: P) -> Self {
        Self {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Creates an id from a function name only.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        Self {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.parameter {
            Some(p) if self.function.is_empty() => write!(f, "{p}"),
            Some(p) => write!(f, "{}/{p}", self.function),
            None => write!(f, "{}", self.function),
        }
    }
}

/// Units processed per iteration, used to derive a throughput figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements (e.g. balls, slots) processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Drives the timed routine of one benchmark.
#[derive(Debug)]
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine`, storing the mean wall-clock nanoseconds per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibration: run for the warm-up period to estimate per-call cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        let estimate_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(0.5);
        // Batch so that the timer is consulted roughly every 5 ms, keeping
        // `Instant::now` overhead negligible even for nanosecond routines.
        let batch = ((5_000_000.0 / estimate_ns).ceil() as u64).max(1);

        let start = Instant::now();
        let mut iters: u64 = 0;
        loop {
            for _ in 0..batch {
                black_box(routine());
            }
            iters += batch;
            if start.elapsed() >= self.measurement {
                break;
            }
        }
        self.ns_per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

/// A group of related benchmarks sharing measurement settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples (accepted for API compatibility; the stub
    /// measures one averaged sample).
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Sets the warm-up (calibration) duration.
    pub fn warm_up_time(&mut self, duration: Duration) -> &mut Self {
        self.warm_up = duration;
        self
    }

    /// Sets the measurement duration.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.measurement = duration;
        self
    }

    /// Sets the per-iteration throughput used for reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            ns_per_iter: f64::NAN,
        };
        f(&mut bencher, input);
        self.report(&id.to_string(), bencher.ns_per_iter);
        self
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            ns_per_iter: f64::NAN,
        };
        f(&mut bencher);
        self.report(id, bencher.ns_per_iter);
        self
    }

    fn report(&mut self, id: &str, ns_per_iter: f64) {
        let mut line = format!("{}/{}: {} per iter", self.name, id, format_ns(ns_per_iter));
        if let Some(throughput) = self.throughput {
            let (units, suffix) = match throughput {
                Throughput::Elements(n) => (n, "elem/s"),
                Throughput::Bytes(n) => (n, "B/s"),
            };
            let rate = units as f64 / (ns_per_iter * 1e-9);
            line.push_str(&format!(", {} {suffix}", format_rate(rate)));
        }
        println!("{line}");
        self.criterion.measurements.push(Measurement {
            group: self.name.clone(),
            id: id.to_string(),
            ns_per_iter,
        });
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(&mut self) {}
}

/// One recorded measurement, exposed so callers can post-process results.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Group name.
    pub group: String,
    /// Benchmark id within the group.
    pub id: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    measurements: Vec<Measurement>,
}

impl Criterion {
    /// Accepted for API compatibility; the stub has no CLI options.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(2),
            throughput: None,
            criterion: self,
        }
    }

    /// All measurements recorded so far.
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn format_rate(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2} G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} K", rate / 1e3)
    } else {
        format!("{rate:.1} ")
    }
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_a_cheap_routine() {
        let mut criterion = Criterion::default();
        {
            let mut group = criterion.benchmark_group("test");
            group.warm_up_time(Duration::from_millis(5));
            group.measurement_time(Duration::from_millis(20));
            group.throughput(Throughput::Elements(1));
            group.bench_with_input(BenchmarkId::new("add", 1), &1u64, |b, &x| {
                b.iter(|| x.wrapping_add(1));
            });
            group.finish();
        }
        let ms = criterion.measurements();
        assert_eq!(ms.len(), 1);
        assert!(ms[0].ns_per_iter.is_finite() && ms[0].ns_per_iter > 0.0);
    }

    #[test]
    fn formatting_picks_sensible_units() {
        assert!(format_ns(12.3).contains("ns"));
        assert!(format_ns(12_300.0).contains("µs"));
        assert!(format_ns(12_300_000.0).contains("ms"));
        assert!(format_rate(2.5e6).starts_with("2.50 M"));
    }
}
