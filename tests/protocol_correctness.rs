//! Cross-crate integration tests: every protocol solves static k-selection,
//! and the measured behaviour respects the paper's analytical bounds.

use contention_resolution::prelude::*;
use contention_resolution::prob::stats::StreamingStats;

fn mean_ratio(kind: &ProtocolKind, k: u64, reps: u64, seed0: u64) -> f64 {
    let mut stats = StreamingStats::new();
    for rep in 0..reps {
        let r = simulate(kind, k, seed0 + rep).expect("valid parameters");
        assert!(r.completed, "{} must finish at k={k}", kind.label());
        assert_eq!(r.delivered, k);
        stats.push(r.ratio());
    }
    stats.mean()
}

#[test]
fn every_paper_protocol_solves_a_range_of_instance_sizes() {
    for kind in ProtocolKind::paper_lineup() {
        for &k in &[1u64, 2, 3, 10, 100, 1_000] {
            let r = simulate(&kind, k, 42 + k).expect("valid parameters");
            assert!(r.completed, "{} k={k}", kind.label());
            assert_eq!(r.delivered, k, "{} k={k}", kind.label());
            assert!(
                r.makespan >= k,
                "{} k={k}: a slot delivers at most one message",
                kind.label()
            );
        }
    }
}

#[test]
fn one_fail_adaptive_respects_theorem_1_bound() {
    // Theorem 1: 2(δ+1)k + O(log² k) slots w.h.p. (probability ≥ 1 − 2/(1+k)).
    // At k = 4000 the failure probability of the bound is < 0.05%, so with 5
    // replications a violation of the (slack-added) bound indicates a bug.
    let delta = 2.72;
    let k = 4_000;
    let bound = analysis::ofa_makespan_bound(delta, k).expect("valid delta");
    for seed in 0..5 {
        let r = simulate(&ProtocolKind::OneFailAdaptive { delta }, k, seed).unwrap();
        assert!(r.completed);
        assert!(
            (r.makespan as f64) < bound * 1.10,
            "makespan {} exceeds Theorem 1 bound {:.0} (+10% slack)",
            r.makespan,
            bound
        );
    }
}

#[test]
fn exp_backon_backoff_respects_theorem_2_bound() {
    // Theorem 2: 4(1+1/δ)k slots w.h.p. for big enough k.
    let delta = 0.366;
    let k = 4_000;
    let bound = analysis::ebb_makespan_bound(delta, k).expect("valid delta");
    for seed in 0..5 {
        let r = simulate(&ProtocolKind::ExpBackonBackoff { delta }, k, seed).unwrap();
        assert!(r.completed);
        assert!(
            (r.makespan as f64) < bound,
            "makespan {} exceeds Theorem 2 bound {:.0}",
            r.makespan,
            bound
        );
    }
}

#[test]
fn measured_ratios_match_table_1_at_moderate_k() {
    // Table 1, k = 10⁴ column: OFA ≈ 7.4, EBB between 4 and 8, LLIB ≈ 9–11.
    let k = 10_000;
    let ofa = mean_ratio(&ProtocolKind::OneFailAdaptive { delta: 2.72 }, k, 5, 1);
    assert!(
        (ofa - 7.4).abs() < 0.7,
        "One-fail Adaptive ratio {ofa:.2}, paper reports ≈ 7.4"
    );

    let ebb = mean_ratio(&ProtocolKind::ExpBackonBackoff { delta: 0.366 }, k, 5, 2);
    assert!(
        (3.5..9.0).contains(&ebb),
        "Exp Back-on/Back-off ratio {ebb:.2}, paper reports values between 4 and 8"
    );

    let llib = mean_ratio(&ProtocolKind::LoglogIteratedBackoff { r: 2.0 }, k, 5, 3);
    assert!(
        llib > 6.0 && llib < 16.0,
        "Loglog-iterated Back-off ratio {llib:.2}, paper reports ≈ 9–10.5"
    );

    // Paper finding: the monotone Loglog-iterated Back-off is slower than the
    // paper's two protocols. The gap widens with k, so compare at k = 10⁵
    // where it is unambiguous.
    let big = 100_000;
    let llib_big = mean_ratio(&ProtocolKind::LoglogIteratedBackoff { r: 2.0 }, big, 3, 4);
    let ebb_big = mean_ratio(&ProtocolKind::ExpBackonBackoff { delta: 0.366 }, big, 3, 5);
    let ofa_big = mean_ratio(&ProtocolKind::OneFailAdaptive { delta: 2.72 }, big, 3, 6);
    assert!(
        llib_big > ebb_big && llib_big > ofa_big,
        "paper finding: LLIB ({llib_big:.2}) is slower than EBB ({ebb_big:.2}) and OFA ({ofa_big:.2}) at large k"
    );
}

#[test]
fn theorem_scaling_holds_across_instance_sizes() {
    // Scaling smoke test: sampler rewrites must not silently bend the
    // paper's curves. Across k ∈ {10², 10³, 10⁴} (seeded, 6 replications):
    //
    // * One-fail Adaptive's **mean** makespan stays within its linear term
    //   plus a c·log²k additive — Theorem 1 gives 2(δ+1)k + O(log²k)
    //   w.h.p., so the mean obeys the same shape; c = 40 is calibrated
    //   ~2× above the seeded measurements so only a genuine change of
    //   shape (or a broken sampler) can cross it.
    // * r-exponential back-off (the related-work baseline with makespan
    //   Θ(k·log_{log r} log k)) stays *superlinear*: its mean ratio grows
    //   from k = 10² to 10⁴, and stays inside a generous doubly-log
    //   envelope c_e·log₂log₂k with c_e = 8.
    let delta = 2.72;
    let reps = 6u64;
    let mut exp_ratios = Vec::new();
    for &k in &[100u64, 1_000, 10_000] {
        let mut ofa = StreamingStats::new();
        for seed in 0..reps {
            let r = simulate(&ProtocolKind::OneFailAdaptive { delta }, k, 900 + seed).unwrap();
            assert!(r.completed);
            ofa.push(r.makespan as f64);
        }
        let log2k = (k as f64).log2();
        let envelope = 2.0 * (delta + 1.0) * k as f64 + 40.0 * log2k * log2k;
        assert!(
            ofa.mean() < envelope,
            "OFA mean makespan {:.0} at k={k} exceeds 2(δ+1)k + 40·log²k = {envelope:.0}",
            ofa.mean()
        );

        let mut exp = StreamingStats::new();
        for seed in 0..reps {
            let r = simulate(&ProtocolKind::RExponentialBackoff { r: 2.0 }, k, 950 + seed).unwrap();
            assert!(r.completed);
            exp.push(r.ratio());
        }
        let loglog = (k as f64).log2().log2();
        assert!(
            exp.mean() < 8.0 * loglog,
            "r-exponential ratio {:.2} at k={k} exceeds its 8·log₂log₂k envelope {:.2}",
            exp.mean(),
            8.0 * loglog
        );
        exp_ratios.push(exp.mean());
    }
    assert!(
        exp_ratios[2] > exp_ratios[0],
        "r-exponential back-off must stay superlinear: ratio at 10⁴ ({:.2}) vs 10² ({:.2})",
        exp_ratios[2],
        exp_ratios[0]
    );
}

#[test]
fn no_protocol_beats_the_fair_optimum() {
    // e ≈ 2.718 slots/message is the fair-protocol optimum; even the window
    // protocols cannot beat it on average (they are "fair" per window).
    let k = 5_000;
    for kind in ProtocolKind::paper_lineup() {
        let ratio = mean_ratio(&kind, k, 3, 11);
        assert!(
            ratio > analysis::fair_protocol_optimal_ratio() * 0.95,
            "{} achieved ratio {ratio:.2}, below the fair optimum e",
            kind.label()
        );
    }
}

#[test]
fn known_k_oracle_attains_the_fair_optimum() {
    let ratio = mean_ratio(&ProtocolKind::KnownKOracle, 5_000, 5, 21);
    assert!(
        (ratio - std::f64::consts::E).abs() < 0.25,
        "oracle ratio {ratio:.3} should be ≈ e"
    );
}

#[test]
fn log_fails_with_small_xi_t_is_fastest_at_large_k() {
    // Paper finding (Table 1, large k): Log-fails Adaptive with ξt = 1/10 has
    // the smallest ratio of the evaluated protocols (analysis constant ≈ 4.4,
    // below OFA's 7.4).
    let k = 50_000;
    let lfa10 = mean_ratio(
        &ProtocolKind::LogFailsAdaptive {
            xi_delta: 0.1,
            xi_beta: 0.1,
            xi_t: 0.1,
        },
        k,
        3,
        31,
    );
    let ofa = mean_ratio(&ProtocolKind::OneFailAdaptive { delta: 2.72 }, k, 3, 32);
    assert!(
        lfa10 < ofa,
        "LFA(1/10) ratio {lfa10:.2} should be below OFA ratio {ofa:.2} at large k"
    );
}

#[test]
fn exponential_backoff_is_superlinear_relative_to_ebb() {
    // Related-work baseline: plain r-exponential back-off has makespan
    // Θ(k·log_{log r} log k); its ratio at k = 10⁴ is clearly above EBB's.
    let k = 10_000;
    let exp = mean_ratio(&ProtocolKind::RExponentialBackoff { r: 2.0 }, k, 3, 41);
    let ebb = mean_ratio(&ProtocolKind::ExpBackonBackoff { delta: 0.366 }, k, 3, 42);
    assert!(
        exp > ebb,
        "exponential back-off ({exp:.2}) should be slower than Exp Back-on/Back-off ({ebb:.2})"
    );
}

#[test]
fn ratios_are_stable_across_instance_sizes_for_the_new_protocols() {
    // §5: "for all values of k simulated, One-fail Adaptive and Exp
    // Back-on/Back-off have a very stable and efficient behaviour".
    for kind in [
        ProtocolKind::OneFailAdaptive { delta: 2.72 },
        ProtocolKind::ExpBackonBackoff { delta: 0.366 },
    ] {
        let r_small = mean_ratio(&kind, 1_000, 3, 51);
        let r_large = mean_ratio(&kind, 30_000, 3, 52);
        assert!(
            (r_small - r_large).abs() < 3.0,
            "{}: ratio at k=10³ ({r_small:.2}) and k=3·10⁴ ({r_large:.2}) should be similar",
            kind.label()
        );
    }
}
