//! Integration tests validating the fast simulators against the exact
//! per-station simulator and checking determinism / reproducibility of the
//! experiment runner across crates.

use contention_resolution::prelude::*;
use contention_resolution::prob::stats::StreamingStats;

/// Mean and standard error of the makespan over `reps` replications.
fn makespan_stats<F: Fn(u64) -> u64>(reps: u64, run: F) -> StreamingStats {
    let mut stats = StreamingStats::new();
    for seed in 0..reps {
        stats.push(run(seed) as f64);
    }
    stats
}

fn assert_means_agree(a: &StreamingStats, b: &StreamingStats, label: &str) {
    // 4-sigma agreement of the means, with an absolute floor for tiny values.
    let tolerance = (4.0 * (a.std_error() + b.std_error())).max(8.0);
    assert!(
        (a.mean() - b.mean()).abs() < tolerance,
        "{label}: exact mean {:.1} vs fast mean {:.1} (tolerance {:.1})",
        a.mean(),
        b.mean(),
        tolerance
    );
}

#[test]
fn fair_fast_path_matches_exact_simulation_for_one_fail_adaptive() {
    let kind = ProtocolKind::OneFailAdaptive { delta: 2.72 };
    let k = 32;
    let reps = 60;
    let exact = makespan_stats(reps, |seed| {
        ExactSimulator::new(kind.clone(), RunOptions::default())
            .run(k, seed)
            .unwrap()
            .makespan
    });
    let fast = makespan_stats(reps, |seed| {
        simulate(&kind, k, 7_000 + seed).unwrap().makespan
    });
    assert_means_agree(&exact, &fast, "One-fail Adaptive, k=32");
}

#[test]
fn fair_fast_path_matches_exact_simulation_for_log_fails_adaptive() {
    let kind = ProtocolKind::LogFailsAdaptive {
        xi_delta: 0.1,
        xi_beta: 0.1,
        xi_t: 0.5,
    };
    let k = 32;
    let reps = 60;
    let exact = makespan_stats(reps, |seed| {
        ExactSimulator::new(kind.clone(), RunOptions::default())
            .run(k, seed)
            .unwrap()
            .makespan
    });
    let fast = makespan_stats(reps, |seed| {
        simulate(&kind, k, 9_000 + seed).unwrap().makespan
    });
    assert_means_agree(&exact, &fast, "Log-fails Adaptive, k=32");
}

#[test]
fn window_fast_path_matches_exact_simulation_for_ebb_and_llib() {
    for kind in [
        ProtocolKind::ExpBackonBackoff { delta: 0.366 },
        ProtocolKind::LoglogIteratedBackoff { r: 2.0 },
    ] {
        let k = 32;
        let reps = 60;
        let exact = makespan_stats(reps, |seed| {
            ExactSimulator::new(kind.clone(), RunOptions::default())
                .run(k, seed)
                .unwrap()
                .makespan
        });
        let fast = makespan_stats(reps, |seed| {
            simulate(&kind, k, 11_000 + seed).unwrap().makespan
        });
        assert_means_agree(&exact, &fast, &kind.label());
    }
}

#[test]
fn window_fast_path_matches_exact_across_dispatch_bands() {
    // The walk's dispatch table (certain-all-collision shortcut, block
    // decomposition, per-slot mode loops, sparse per-ball tail) is selected
    // per window from (m, w) alone. Protocol runs at these sizes sweep every
    // band a batched run can reach:
    //
    // * k = 24  — tiny windows, certain-collision for w ≤ 4 (λ ≥ 6 with
    //   m = 24... the union bound fires for w = 2), single-block windows,
    //   and the sparse tail once most messages drain;
    // * k = 600 — early windows w ∈ {2, 4, 8} are certain-all-collision
    //   (λ ≥ 75), mid windows land in the tail loop's sampled high-λ band
    //   (w < 4096, λ ∈ (8, ~110)), late windows are blocks and sparse.
    //
    // (The per-slot fused loop's entry band — λ ≥ 48 with w ≥ 4096 —
    // needs m ≥ 200k stations, beyond what a per-station reference can
    // check affordably; its collision-count law is pinned directly against
    // the per-ball reference across every band in
    // `crates/prob/tests/properties.rs`, where λ and w are set explicitly.)
    for kind in [
        ProtocolKind::ExpBackonBackoff { delta: 0.366 },
        ProtocolKind::LoglogIteratedBackoff { r: 2.0 },
        ProtocolKind::RExponentialBackoff { r: 2.0 },
    ] {
        for &k in &[24u64, 600] {
            let reps = if k >= 600 { 15 } else { 40 };
            let exact = makespan_stats(reps, |seed| {
                ExactSimulator::new(kind.clone(), RunOptions::default())
                    .run(k, 100 + seed)
                    .unwrap()
                    .makespan
            });
            let fast = makespan_stats(reps, |seed| {
                simulate(&kind, k, 13_000 + seed).unwrap().makespan
            });
            assert_means_agree(&exact, &fast, &format!("{} k={k}", kind.label()));
        }
    }
}

#[test]
fn certain_all_collision_windows_deliver_nothing_and_advance_the_clock() {
    // The certain-all-collision shortcut edge: a batched EBB run at k large
    // enough that the whole first phase is hopeless must report every one
    // of those slots as a collision (no deliveries, no silent slots) — and
    // the shortcut must agree with the per-station reference on when the
    // first delivery can possibly happen. Checked structurally: makespan ≥
    // k (one delivery per slot) and collisions + silent + delivered ==
    // makespan hold on both engines, and the fast engine's totals stay
    // within the statistical envelope of the exact one's.
    let kind = ProtocolKind::ExpBackonBackoff { delta: 0.366 };
    let k = 2_000u64;
    let mut exact_collisions = StreamingStats::new();
    let mut fast_collisions = StreamingStats::new();
    for seed in 0..10u64 {
        let exact = ExactSimulator::new(kind.clone(), RunOptions::default())
            .run(k, seed)
            .unwrap();
        let fast = simulate(&kind, k, 40_000 + seed).unwrap();
        for run in [&exact, &fast] {
            assert!(run.completed);
            assert_eq!(
                run.makespan,
                run.delivered + run.collisions + run.silent_slots
            );
        }
        exact_collisions.push(exact.collisions as f64);
        fast_collisions.push(fast.collisions as f64);
    }
    assert_means_agree(
        &exact_collisions,
        &fast_collisions,
        "EBB k=2000 collision totals",
    );
}

#[test]
fn experiment_runner_is_reproducible_and_thread_count_independent() {
    let base = Experiment {
        protocols: vec![
            ProtocolKind::OneFailAdaptive { delta: 2.72 },
            ProtocolKind::ExpBackonBackoff { delta: 0.366 },
            ProtocolKind::LoglogIteratedBackoff { r: 2.0 },
        ],
        ks: vec![50, 500],
        replications: 3,
        master_seed: 777,
        options: RunOptions::default(),
        engine: EngineChoice::Fast,
        threads: 1,
    };
    let single = base.run().unwrap();
    let mut parallel = base.clone();
    parallel.threads = 4;
    assert_eq!(single, parallel.run().unwrap());
}

#[test]
fn exact_engine_and_fast_engine_agree_in_the_runner() {
    let mut experiment = Experiment {
        protocols: vec![ProtocolKind::ExpBackonBackoff { delta: 0.366 }],
        ks: vec![24],
        replications: 30,
        master_seed: 31,
        options: RunOptions::default(),
        engine: EngineChoice::Fast,
        threads: 0,
    };
    let fast = experiment.run().unwrap();
    experiment.engine = EngineChoice::Exact;
    experiment.master_seed = 32;
    let exact = experiment.run().unwrap();
    let f = &fast.cells[0];
    let e = &exact.cells[0];
    let tolerance =
        (4.0 * (f.makespan.std_dev + e.makespan.std_dev) / (f.replications as f64).sqrt()).max(8.0);
    assert!(
        (f.makespan.mean - e.makespan.mean).abs() < tolerance,
        "fast {} vs exact {} (tolerance {tolerance:.1})",
        f.makespan.mean,
        e.makespan.mean
    );
}

#[test]
fn reports_render_consistently_from_a_real_sweep() {
    let results = Experiment {
        protocols: ProtocolKind::paper_lineup(),
        ks: vec![10, 100],
        replications: 2,
        master_seed: 5,
        options: RunOptions::default(),
        engine: EngineChoice::Fast,
        threads: 0,
    }
    .run()
    .unwrap();

    let csv = to_csv(&results);
    assert_eq!(csv.trim().lines().count(), 1 + 5 * 2);

    let table = table1_markdown(&results);
    for label in [
        "One-fail Adaptive",
        "Exp Back-on/Back-off",
        "Loglog-iterated Back-off",
    ] {
        assert!(table.contains(label), "table must contain {label}");
    }
    assert!(
        table.contains("7.4")
            && table.contains("14.9")
            && table.contains("7.8")
            && table.contains("4.4")
    );

    let series = figure1_series(&results);
    assert_eq!(series.matches("# k  mean_steps").count(), 5);
}
