//! Integration tests validating the fast simulators against the exact
//! per-station simulator and checking determinism / reproducibility of the
//! experiment runner across crates.

use contention_resolution::prelude::*;
use contention_resolution::prob::stats::StreamingStats;

/// Mean and standard error of the makespan over `reps` replications.
fn makespan_stats<F: Fn(u64) -> u64>(reps: u64, run: F) -> StreamingStats {
    let mut stats = StreamingStats::new();
    for seed in 0..reps {
        stats.push(run(seed) as f64);
    }
    stats
}

fn assert_means_agree(a: &StreamingStats, b: &StreamingStats, label: &str) {
    // 4-sigma agreement of the means, with an absolute floor for tiny values.
    let tolerance = (4.0 * (a.std_error() + b.std_error())).max(8.0);
    assert!(
        (a.mean() - b.mean()).abs() < tolerance,
        "{label}: exact mean {:.1} vs fast mean {:.1} (tolerance {:.1})",
        a.mean(),
        b.mean(),
        tolerance
    );
}

#[test]
fn fair_fast_path_matches_exact_simulation_for_one_fail_adaptive() {
    let kind = ProtocolKind::OneFailAdaptive { delta: 2.72 };
    let k = 32;
    let reps = 60;
    let exact = makespan_stats(reps, |seed| {
        ExactSimulator::new(kind.clone(), RunOptions::default())
            .run(k, seed)
            .unwrap()
            .makespan
    });
    let fast = makespan_stats(reps, |seed| {
        simulate(&kind, k, 7_000 + seed).unwrap().makespan
    });
    assert_means_agree(&exact, &fast, "One-fail Adaptive, k=32");
}

#[test]
fn fair_fast_path_matches_exact_simulation_for_log_fails_adaptive() {
    let kind = ProtocolKind::LogFailsAdaptive {
        xi_delta: 0.1,
        xi_beta: 0.1,
        xi_t: 0.5,
    };
    let k = 32;
    let reps = 60;
    let exact = makespan_stats(reps, |seed| {
        ExactSimulator::new(kind.clone(), RunOptions::default())
            .run(k, seed)
            .unwrap()
            .makespan
    });
    let fast = makespan_stats(reps, |seed| {
        simulate(&kind, k, 9_000 + seed).unwrap().makespan
    });
    assert_means_agree(&exact, &fast, "Log-fails Adaptive, k=32");
}

#[test]
fn window_fast_path_matches_exact_simulation_for_ebb_and_llib() {
    for kind in [
        ProtocolKind::ExpBackonBackoff { delta: 0.366 },
        ProtocolKind::LoglogIteratedBackoff { r: 2.0 },
    ] {
        let k = 32;
        let reps = 60;
        let exact = makespan_stats(reps, |seed| {
            ExactSimulator::new(kind.clone(), RunOptions::default())
                .run(k, seed)
                .unwrap()
                .makespan
        });
        let fast = makespan_stats(reps, |seed| {
            simulate(&kind, k, 11_000 + seed).unwrap().makespan
        });
        assert_means_agree(&exact, &fast, &kind.label());
    }
}

#[test]
fn experiment_runner_is_reproducible_and_thread_count_independent() {
    let base = Experiment {
        protocols: vec![
            ProtocolKind::OneFailAdaptive { delta: 2.72 },
            ProtocolKind::ExpBackonBackoff { delta: 0.366 },
            ProtocolKind::LoglogIteratedBackoff { r: 2.0 },
        ],
        ks: vec![50, 500],
        replications: 3,
        master_seed: 777,
        options: RunOptions::default(),
        engine: EngineChoice::Fast,
        threads: 1,
    };
    let single = base.run().unwrap();
    let mut parallel = base.clone();
    parallel.threads = 4;
    assert_eq!(single, parallel.run().unwrap());
}

#[test]
fn exact_engine_and_fast_engine_agree_in_the_runner() {
    let mut experiment = Experiment {
        protocols: vec![ProtocolKind::ExpBackonBackoff { delta: 0.366 }],
        ks: vec![24],
        replications: 30,
        master_seed: 31,
        options: RunOptions::default(),
        engine: EngineChoice::Fast,
        threads: 0,
    };
    let fast = experiment.run().unwrap();
    experiment.engine = EngineChoice::Exact;
    experiment.master_seed = 32;
    let exact = experiment.run().unwrap();
    let f = &fast.cells[0];
    let e = &exact.cells[0];
    let tolerance =
        (4.0 * (f.makespan.std_dev + e.makespan.std_dev) / (f.replications as f64).sqrt()).max(8.0);
    assert!(
        (f.makespan.mean - e.makespan.mean).abs() < tolerance,
        "fast {} vs exact {} (tolerance {tolerance:.1})",
        f.makespan.mean,
        e.makespan.mean
    );
}

#[test]
fn reports_render_consistently_from_a_real_sweep() {
    let results = Experiment {
        protocols: ProtocolKind::paper_lineup(),
        ks: vec![10, 100],
        replications: 2,
        master_seed: 5,
        options: RunOptions::default(),
        engine: EngineChoice::Fast,
        threads: 0,
    }
    .run()
    .unwrap();

    let csv = to_csv(&results);
    assert_eq!(csv.trim().lines().count(), 1 + 5 * 2);

    let table = table1_markdown(&results);
    for label in [
        "One-fail Adaptive",
        "Exp Back-on/Back-off",
        "Loglog-iterated Back-off",
    ] {
        assert!(table.contains(label), "table must contain {label}");
    }
    assert!(
        table.contains("7.4")
            && table.contains("14.9")
            && table.contains("7.8")
            && table.contains("4.4")
    );

    let series = figure1_series(&results);
    assert_eq!(series.matches("# k  mean_steps").count(), 5);
}
