//! Stability-boundary smoke tests: the behaviour the saturation map
//! (`mac_bench::saturation`) charts must hold at its two ends.
//!
//! * **Below the boundary** (Poisson λ well under each protocol's
//!   slots-per-message capacity) a dynamic session completes, never trips
//!   the livelock watchdog, and finishes inside the theorem envelope —
//!   arrival horizon plus the protocol's linear makespan bound.
//! * **Above the boundary** (sustained λ = 2, two arrivals per slot) the
//!   backlog grows without bound, deliveries stop, and the PR 8 watchdog
//!   must flag the stall within **two windows** of the last progress slot
//!   — the detection guarantee documented on [`StallConfig`]. One-fail
//!   Adaptive and Log-fails Adaptive both saturate this way; the known-k
//!   oracle is the control that keeps delivering at λ = 2.

use contention_resolution::prelude::*;

/// A theorem envelope: total message count `k` ↦ makespan bound in slots.
type Envelope = Box<dyn Fn(u64) -> f64>;

/// Below-boundary line-up with per-kind theorem envelopes for the total
/// message count `k`: Theorem 1's `2(1+1/δ)(1+δ)k` for One-fail Adaptive
/// and the Table 1 linear factor `(e+1+ξδ+ξβ)/(1−ξt)·k` (plus an additive
/// polylog allowance for the low-ε regime) for Log-fails Adaptive.
fn below_boundary_lineup() -> Vec<(ProtocolKind, Envelope)> {
    vec![
        (
            ProtocolKind::OneFailAdaptive { delta: 2.72 },
            Box::new(|k| analysis::ofa_makespan_bound(2.72, k).unwrap()),
        ),
        (
            ProtocolKind::LogFailsAdaptive {
                xi_delta: 0.1,
                xi_beta: 0.1,
                xi_t: 0.5,
            },
            Box::new(|k| analysis::lfa_analysis_factor(0.1, 0.1, 0.5) * k as f64 + 1_024.0),
        ),
    ]
}

#[test]
fn below_boundary_rates_complete_within_the_theorem_envelope() {
    let horizon = 2_000u64;
    let model = ArrivalModel::Poisson {
        rate: 0.04,
        horizon,
    };
    for (kind, envelope) in below_boundary_lineup() {
        for seed in 0..5u64 {
            let mut session = Session::dynamic(&kind, &model, seed, &RunOptions::default())
                .expect("dynamic session");
            session.set_watchdog(Some(StallConfig::new(2_000, StallPolicy::Report)));
            let result = session.run_to_completion().expect("run to completion");
            assert!(
                result.completed,
                "{} seed {seed} did not complete",
                kind.label()
            );
            assert!(
                session.stall().is_none(),
                "{} seed {seed} tripped the watchdog below the boundary",
                kind.label()
            );
            // Arrivals stop by `horizon`; what remains is at most a batch
            // of `k`, bounded by the protocol's linear makespan theorem.
            let bound = horizon as f64 + envelope(result.delivered);
            assert!(
                (result.makespan as f64) <= bound,
                "{} seed {seed}: makespan {} exceeds envelope {:.0}",
                kind.label(),
                result.makespan,
                bound
            );
        }
    }
}

#[test]
fn above_boundary_rates_trip_the_watchdog_within_two_windows() {
    let window = 400u64;
    let model = ArrivalModel::Poisson {
        rate: 2.0,
        horizon: 4_000,
    };
    // Bounded-class mode keeps the saturated runs cheap: thousands of
    // arrival bursts collapse into at most 64 live classes.
    let options = RunOptions {
        max_live_cohorts: 64,
        ..RunOptions::default()
    };
    for kind in [
        ProtocolKind::OneFailAdaptive { delta: 2.72 },
        ProtocolKind::LogFailsAdaptive {
            xi_delta: 0.1,
            xi_beta: 0.1,
            xi_t: 0.5,
        },
    ] {
        let mut session = Session::dynamic(&kind, &model, 11, &options).expect("dynamic session");
        session.set_watchdog(Some(StallConfig::new(window, StallPolicy::Report)));
        // Advance in bounded steps until the watchdog reports; the Report
        // policy keeps the session running, so cap the probe well past the
        // detection guarantee.
        let mut budget = 40u32;
        while session.stall().is_none() && budget > 0 {
            session.advance(500).expect("advance");
            budget -= 1;
        }
        let stall = session
            .stall()
            .unwrap_or_else(|| panic!("{} never stalled at rate 2", kind.label()))
            .clone();
        assert!(
            stall.detected_at_slot - stall.last_progress_slot <= 2 * window,
            "{}: stall detected at {} but last progress was {} (window {window})",
            kind.label(),
            stall.detected_at_slot,
            stall.last_progress_slot
        );
        assert!(
            stall.backlog > 0,
            "{}: stall with empty backlog",
            kind.label()
        );
    }

    // Control: the known-k oracle keeps delivering at the same rate and
    // completes the whole workload without a stall. Its watchdog window is
    // wider — a lone straggler near the end of a ~27k-slot run can
    // legitimately wait a few hundred slots between deliveries, which is
    // tail latency, not saturation.
    let mut oracle = Session::dynamic(&ProtocolKind::KnownKOracle, &model, 11, &options)
        .expect("dynamic session");
    oracle.set_watchdog(Some(StallConfig::new(2_000, StallPolicy::Report)));
    let result = oracle.run_to_completion().expect("oracle completes");
    assert!(result.completed && oracle.stall().is_none());
}
