//! Integration tests for the channel model options and the dynamic-arrival
//! extension, exercised through the public API of the facade crate.

use contention_resolution::channel::{AckMode, ArrivalModel, ChannelModel};
use contention_resolution::prelude::*;

#[test]
fn paper_channel_model_is_the_default() {
    let model = ChannelModel::default();
    assert!(!model.collision_detection);
    assert_eq!(model.ack_mode, AckMode::Immediate);
}

#[test]
fn collision_detection_does_not_change_protocol_correctness() {
    // The paper's protocols never use the extra feedback, so enabling
    // collision detection must not change whether they terminate.
    for kind in [
        ProtocolKind::OneFailAdaptive { delta: 2.72 },
        ProtocolKind::ExpBackonBackoff { delta: 0.366 },
    ] {
        let plain = ExactSimulator::new(kind.clone(), RunOptions::default())
            .run(64, 3)
            .unwrap();
        let with_cd = ExactSimulator::new(kind.clone(), RunOptions::default())
            .with_model(ChannelModel::with_collision_detection())
            .run(64, 3)
            .unwrap();
        assert!(plain.completed && with_cd.completed);
        assert_eq!(
            plain.makespan,
            with_cd.makespan,
            "{}: identical seeds and identical protocol behaviour must give identical runs",
            kind.label()
        );
    }
}

#[test]
fn dynamic_poisson_load_is_eventually_drained() {
    let report = simulate_dynamic(
        &ProtocolKind::OneFailAdaptive { delta: 2.72 },
        &ArrivalModel::Poisson {
            rate: 0.10,
            horizon: 2_000,
        },
        7,
        &RunOptions::default(),
    )
    .unwrap();
    assert_eq!(report.delivered, report.messages, "all messages drained");
    assert!(report.throughput > 0.0);
    assert!(report.mean_latency <= report.max_latency as f64);
}

#[test]
fn bursty_arrivals_behave_like_repeated_batches_when_spaced_out() {
    // Two bursts of 100 messages, 10,000 slots apart: each burst is an
    // independent static instance, so the worst latency should be in the same
    // ballpark as a single k=100 batch makespan (far below the 10,000-slot
    // spacing).
    let report = simulate_dynamic(
        &ProtocolKind::ExpBackonBackoff { delta: 0.366 },
        &ArrivalModel::Bursts {
            bursts: vec![(0, 100), (10_000, 100)],
        },
        13,
        &RunOptions::default(),
    )
    .unwrap();
    assert_eq!(report.delivered, 200);
    assert!(
        report.max_latency < 5_000,
        "each burst must drain well before the next one (max latency {})",
        report.max_latency
    );
    assert!(
        report.makespan > 10_000,
        "second burst starts at slot 10,000"
    );
}

#[test]
fn batched_arrival_model_equals_direct_batched_simulation() {
    // Running through the dynamic front-end with a batched model must measure
    // the same process as the static entry point.
    let kind = ProtocolKind::OneFailAdaptive { delta: 2.72 };
    let report = simulate_dynamic(
        &kind,
        &ArrivalModel::batched(128),
        21,
        &RunOptions::default(),
    )
    .unwrap();
    assert_eq!(report.messages, 128);
    assert_eq!(report.delivered, 128);
    assert_eq!(report.max_latency + 1, report.makespan);
    // Ratio in the same range as the static simulation at this size.
    let ratio = report.makespan as f64 / 128.0;
    assert!(ratio > 2.0 && ratio < 20.0, "ratio {ratio}");
}

#[test]
fn arrival_models_report_expected_message_counts() {
    assert_eq!(ArrivalModel::batched(42).expected_messages(), 42.0);
    assert_eq!(
        ArrivalModel::Poisson {
            rate: 0.5,
            horizon: 100
        }
        .expected_messages(),
        50.0
    );
    assert_eq!(
        ArrivalModel::Bursts {
            bursts: vec![(0, 10), (5, 20)]
        }
        .expected_messages(),
        30.0
    );
}

#[test]
fn channel_trace_shows_contention_then_resolution() {
    use contention_resolution::channel::{Channel, NodeId};

    // Drive the channel manually to confirm the public trace API works end to
    // end (the examples print these timelines).
    let mut channel = Channel::new(ChannelModel::default()).with_trace(16);
    channel.resolve_slot(&[NodeId(0), NodeId(1)]);
    channel.resolve_slot(&[]);
    channel.resolve_slot(&[NodeId(1)]);
    let trace = channel.trace().unwrap();
    assert_eq!(trace.ascii_timeline(), "x.*");
    assert_eq!(trace.delivery_slots(), vec![2]);
}
