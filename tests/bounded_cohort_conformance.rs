//! Bounded-class cohort conformance: the live-class cap (`max_live_cohorts`)
//! forces merges through the measured-divergence schedule in
//! `enforce_class_cap`, and a non-zero merge tolerance adopts the
//! majority-weight survivor state. Both are *approximations* of the exact
//! per-station law, so both must pass the same paired-seed law-agreement
//! gates as the unbounded engine (DESIGN.md §5, §12): makespan
//! mean/median/KS against `ExactSimulator` plus pooled-latency KS, on
//! workloads feasible for the exact engine that genuinely exceed the cap.
//!
//! The suite also pins the documented drift ledger of DESIGN.md §12: each
//! documented merge tolerance carries a stated KS budget on the reference
//! workload, and the ledger test fails if a tolerance ever drifts past its
//! budget.

use contention_resolution::prelude::*;
use contention_resolution::prob::rng::Xoshiro256pp;
use contention_resolution::prob::stats::conformance::{assert_law_agreement, Conformance};
use contention_resolution::prob::stats::{two_sample_ks_test, StreamingStats};
use rand::SeedableRng;

const REPS: u64 = 60;

/// Cap used by the bounded-mode conformance runs: far below the unbounded
/// peak of the workloads (6 concurrent classes for the clumped bursts), so
/// `enforce_class_cap` fires on every rep that exceeds it.
const CAP: u64 = 3;

/// Bounded-mode line-ups. The clumped bursts land six cohorts on even
/// offsets (all on One-fail Adaptive's AT parity, so the protocol drains
/// them); Randomised-parity One-fail spreads cohorts over a 64-slot parity
/// word, so only the Poisson workload — where same-phase classes recur —
/// is cap-enforceable *and* completable for it.
fn lineups() -> Vec<(&'static str, ArrivalModel, Vec<ProtocolKind>)> {
    vec![
        (
            "clumped-bursts",
            ArrivalModel::Bursts {
                bursts: vec![(0, 12), (2, 12), (4, 12), (6, 12), (8, 12), (10, 12)],
            },
            vec![
                ProtocolKind::OneFailAdaptive { delta: 2.72 },
                ProtocolKind::LogFailsAdaptive {
                    xi_delta: 0.1,
                    xi_beta: 0.1,
                    xi_t: 0.5,
                },
                ProtocolKind::KnownKOracle,
            ],
        ),
        (
            "poisson",
            ArrivalModel::Poisson {
                rate: 0.04,
                horizon: 1_500,
            },
            vec![
                ProtocolKind::OneFailAdaptive { delta: 2.72 },
                ProtocolKind::KnownKOracle,
                ProtocolKind::RandomizedParityOneFail { delta: 2.72 },
            ],
        ),
    ]
}

/// Paired exact-vs-bounded-cohort runs on one sampled schedule per rep
/// (same arrival-seed idiom as `aggregate_equivalence.rs`): returns both
/// makespan sample sets, both pooled latency sets, and the peak live-class
/// count observed across all bounded runs.
#[allow(clippy::type_complexity)]
fn paired_bounded_runs(
    kind: &ProtocolKind,
    model: &ArrivalModel,
) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>, usize) {
    let exact_options = RunOptions::default();
    let bounded_options = RunOptions {
        max_live_cohorts: CAP,
        ..RunOptions::default()
    };
    let mut exact_mk = Vec::new();
    let mut bounded_mk = Vec::new();
    let mut exact_lat = Vec::new();
    let mut bounded_lat = Vec::new();
    let mut peak = 0usize;
    for rep in 0..REPS {
        let mut arrival_rng = Xoshiro256pp::seed_from_u64(7_000 + rep);
        let schedule = model.sample(&mut arrival_rng);
        let exact = ExactSimulator::new(kind.clone(), exact_options.clone())
            .run_schedule(&schedule, rep)
            .unwrap();
        let bounded = CohortSimulator::new(kind.clone(), bounded_options.clone())
            .run_schedule(&schedule, 90_000 + rep)
            .unwrap();
        peak = peak.max(bounded.peak_cohorts);
        exact_mk.push(exact.result.makespan as f64);
        bounded_mk.push(bounded.result.makespan as f64);
        exact_lat.extend(exact.latencies().iter().map(|&l| l as f64));
        bounded_lat.extend(bounded.latencies.iter().map(|&l| l as f64));
    }
    (exact_mk, bounded_mk, exact_lat, bounded_lat, peak)
}

/// Same latency gate as the unbounded equivalence suite: scale-aware mean
/// tolerance plus a conservative two-sample KS level.
fn assert_latency_agreement(exact: &[f64], bounded: &[f64], label: &str) {
    let exact_stats: StreamingStats = exact.iter().copied().collect();
    let bounded_stats: StreamingStats = bounded.iter().copied().collect();
    let tolerance = (4.0 * (exact_stats.std_error() + bounded_stats.std_error())).max(8.0);
    assert!(
        (exact_stats.mean() - bounded_stats.mean()).abs() < tolerance,
        "{label}: exact latency mean {:.1} vs bounded {:.1} (tolerance {:.1})",
        exact_stats.mean(),
        bounded_stats.mean(),
        tolerance
    );
    let ks = two_sample_ks_test(exact, bounded);
    assert!(
        ks.is_consistent_at(1e-4),
        "{label}: latency KS statistic {:.3}, p = {:.2e}",
        ks.statistic,
        ks.p_value
    );
}

#[test]
fn bounded_mode_matches_exact_law_at_feasible_rates() {
    for (model_name, model, kinds) in lineups() {
        for kind in kinds {
            let label = format!("{} / {model_name} / cap {CAP}", kind.label());
            let (exact_mk, bounded_mk, exact_lat, bounded_lat, peak) =
                paired_bounded_runs(&kind, &model);
            // The cap must genuinely bind on these pinned seeds (every
            // line-up exceeds it unbounded) and must hold afterwards.
            assert!(
                peak <= CAP as usize,
                "{label}: bounded peak {peak} exceeded the cap"
            );
            assert_law_agreement(
                &Conformance::new(1e-3),
                &exact_mk,
                &bounded_mk,
                4.0,
                10.0,
                &label,
            );
            assert_latency_agreement(&exact_lat, &bounded_lat, &label);
        }
    }
}

/// The documented drift ledger of DESIGN.md §12: merge tolerance → KS
/// budget on the reference workload (known-k oracle, Poisson rate 2.0 over
/// a 120-slot horizon — sustained overload, so merge scans genuinely fire).
/// Each entry must keep its tolerance-τ makespan law consistent with the
/// exact per-station law at the stated KS level. **Editing a tolerance in
/// DESIGN.md §12 without re-validating its budget makes this test fail.**
const DRIFT_LEDGER: &[(f64, f64)] = &[(0.0, 1e-3), (1e-9, 1e-3), (0.02, 1e-4), (0.05, 1e-4)];

#[test]
fn documented_tolerances_stay_within_their_ks_budgets() {
    let kind = ProtocolKind::KnownKOracle;
    let model = ArrivalModel::Poisson {
        rate: 2.0,
        horizon: 120,
    };
    let reps = 40u64;
    // One exact reference sample set, shared across ledger entries (the
    // exact law does not depend on the cohort merge tolerance).
    let mut exact_mk = Vec::new();
    for rep in 0..reps {
        let mut arrival_rng = Xoshiro256pp::seed_from_u64(7_000 + rep);
        let schedule = model.sample(&mut arrival_rng);
        let exact = ExactSimulator::new(kind.clone(), RunOptions::default())
            .run_schedule(&schedule, rep)
            .unwrap();
        exact_mk.push(exact.result.makespan as f64);
    }
    for &(tolerance, budget) in DRIFT_LEDGER {
        let simulator = CohortSimulator::new(kind.clone(), RunOptions::default())
            .with_merge_tolerance(tolerance)
            .unwrap();
        let mut cohort_mk = Vec::new();
        for rep in 0..reps {
            let mut arrival_rng = Xoshiro256pp::seed_from_u64(7_000 + rep);
            let schedule = model.sample(&mut arrival_rng);
            let run = simulator.run_schedule(&schedule, 90_000 + rep).unwrap();
            cohort_mk.push(run.result.makespan as f64);
        }
        let ks = two_sample_ks_test(&exact_mk, &cohort_mk);
        assert!(
            ks.is_consistent_at(budget),
            "tolerance {tolerance:e} exceeded its documented KS budget {budget:e}: \
             statistic {:.3}, p = {:.2e}",
            ks.statistic,
            ks.p_value
        );
    }
}
