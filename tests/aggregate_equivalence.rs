//! Aggregate-vs-per-station equivalence: the fast simulators resolve each
//! homogeneous slot from a single binomial classification draw (and batch
//! whole windows); the exact simulator materialises every station. The two
//! must sample the same distribution — this suite checks it with paired
//! seed sets across every homogeneous protocol, on clean and jammed
//! channels, using the mean/percentile tolerances and the two-sample
//! Kolmogorov–Smirnov test from `mac_prob::stats`.
//!
//! The fast paths are *distribution*-identical, not stream-identical: see
//! `crates/sim/DESIGN.md` §5 for the contract this suite enforces.

use contention_resolution::prelude::*;
use contention_resolution::prob::stats::{percentile, two_sample_ks_test, StreamingStats};

const K: u64 = 32;
const REPS: u64 = 60;

/// The homogeneous (fair-family) protocol kinds, which the aggregate fair
/// engine serves.
fn fair_kinds() -> Vec<ProtocolKind> {
    vec![
        ProtocolKind::OneFailAdaptive { delta: 2.72 },
        ProtocolKind::LogFailsAdaptive {
            xi_delta: 0.1,
            xi_beta: 0.1,
            xi_t: 0.5,
        },
        ProtocolKind::LogFailsAdaptive {
            xi_delta: 0.1,
            xi_beta: 0.1,
            xi_t: 0.1,
        },
        ProtocolKind::KnownKOracle,
    ]
}

/// The window-family kinds, which the aggregate window walk serves.
fn window_kinds() -> Vec<ProtocolKind> {
    vec![
        ProtocolKind::ExpBackonBackoff { delta: 0.366 },
        ProtocolKind::LoglogIteratedBackoff { r: 2.0 },
    ]
}

/// Channel scenarios the equivalence must hold under: the ideal channel and
/// two jamming adversaries (the aggregate paths feed the adversary only the
/// slot class, which is exactly what busy-slot jamming needs).
fn scenarios() -> Vec<(&'static str, AdversaryScenario)> {
    vec![
        ("clean", AdversaryScenario::clean()),
        (
            "periodic-jam",
            AdversaryScenario::jamming(AdversaryModel::PeriodicJam {
                period: 5,
                burst: 1,
                phase: 0,
            }),
        ),
        (
            "stochastic-noise",
            AdversaryScenario::jamming(AdversaryModel::StochasticNoise { p: 0.1 }),
        ),
    ]
}

fn exact_makespans(kind: &ProtocolKind, options: &RunOptions, seed_base: u64) -> Vec<f64> {
    (0..REPS)
        .map(|seed| {
            let run = ExactSimulator::new(kind.clone(), options.clone())
                .run(K, seed_base + seed)
                .unwrap();
            assert!(run.completed, "{} did not complete", kind.label());
            run.makespan as f64
        })
        .collect()
}

fn fast_makespans(kind: &ProtocolKind, options: &RunOptions, seed_base: u64) -> Vec<f64> {
    (0..REPS)
        .map(|seed| {
            let run = simulate_with_options(kind, K, seed_base + seed, options).unwrap();
            assert!(run.completed, "{} did not complete", kind.label());
            run.makespan as f64
        })
        .collect()
}

fn assert_distributions_agree(exact: &[f64], fast: &[f64], label: &str) {
    let exact_stats: StreamingStats = exact.iter().copied().collect();
    let fast_stats: StreamingStats = fast.iter().copied().collect();
    // Mean agreement at ~4 sigma with an absolute floor for tiny makespans.
    let tolerance = (4.0 * (exact_stats.std_error() + fast_stats.std_error())).max(10.0);
    assert!(
        (exact_stats.mean() - fast_stats.mean()).abs() < tolerance,
        "{label}: exact mean {:.1} vs aggregate mean {:.1} (tolerance {:.1})",
        exact_stats.mean(),
        fast_stats.mean(),
        tolerance
    );
    // Median within the same scale (nearest-rank percentiles are coarse at
    // 60 samples, so the tolerance is the mean's).
    let p50_exact = percentile(exact, 50.0).unwrap();
    let p50_fast = percentile(fast, 50.0).unwrap();
    assert!(
        (p50_exact - p50_fast).abs() < tolerance.max(0.25 * p50_exact),
        "{label}: exact p50 {p50_exact} vs aggregate p50 {p50_fast}"
    );
    // Full-shape check: two-sample KS at a conservative level (the suite
    // runs dozens of comparisons; 1e-3 keeps the false-positive rate low
    // while still catching any real distributional drift).
    let ks = two_sample_ks_test(exact, fast);
    assert!(
        ks.is_consistent_at(1e-3),
        "{label}: KS statistic {:.3}, p = {:.2e}",
        ks.statistic,
        ks.p_value
    );
}

#[test]
fn fair_aggregate_matches_exact_across_protocols_and_channels() {
    for kind in fair_kinds() {
        for (scenario_name, scenario) in scenarios() {
            let options = RunOptions::adversarial(scenario);
            let exact = exact_makespans(&kind, &options, 0);
            let fast = fast_makespans(&kind, &options, 50_000);
            assert_distributions_agree(
                &exact,
                &fast,
                &format!("{} / {scenario_name}", kind.label()),
            );
        }
    }
}

#[test]
fn window_aggregate_matches_exact_across_protocols_and_channels() {
    for kind in window_kinds() {
        for (scenario_name, scenario) in scenarios() {
            let options = RunOptions::adversarial(scenario);
            let exact = exact_makespans(&kind, &options, 0);
            let fast = fast_makespans(&kind, &options, 50_000);
            assert_distributions_agree(
                &exact,
                &fast,
                &format!("{} / {scenario_name}", kind.label()),
            );
        }
    }
}

#[test]
fn aggregate_slot_class_totals_match_exact() {
    // Beyond the makespan, the slot-class composition (delivered /
    // collision / silent) of whole runs must agree: compare the aggregate
    // engine's totals with the per-station reference across paired seed
    // sets, as proportions of all simulated slots.
    let kind = ProtocolKind::OneFailAdaptive { delta: 2.72 };
    let options = RunOptions::default();
    let mut totals = [[0u64; 3]; 2];
    for seed in 0..REPS {
        let exact = ExactSimulator::new(kind.clone(), options.clone())
            .run(K, seed)
            .unwrap();
        let fast = simulate_with_options(&kind, K, 50_000 + seed, &options).unwrap();
        for (row, run) in [(0, exact), (1, fast)] {
            totals[row][0] += run.delivered;
            totals[row][1] += run.collisions;
            totals[row][2] += run.silent_slots;
        }
    }
    for (class, pair) in totals[0].iter().zip(&totals[1]).enumerate() {
        let a = *pair.0 as f64;
        let b = *pair.1 as f64;
        let scale = (a + b).max(1.0);
        // Slot-class totals over 60 runs concentrate well within ±10%.
        assert!(
            (a - b).abs() / scale < 0.10,
            "class {class}: exact {a} vs aggregate {b}"
        );
    }
}

#[test]
fn aggregate_engine_is_deterministic_and_complete_at_scale() {
    // A larger smoke run through every aggregate path (dead-slot elision,
    // kernel drift, window walk shortcut): deterministic per seed, all
    // messages delivered, slot accounting balanced.
    for kind in [
        ProtocolKind::OneFailAdaptive { delta: 2.72 },
        ProtocolKind::ExpBackonBackoff { delta: 0.366 },
    ] {
        let a = simulate(&kind, 50_000, 7).unwrap();
        let b = simulate(&kind, 50_000, 7).unwrap();
        assert_eq!(a, b);
        assert!(a.completed);
        assert_eq!(a.delivered, 50_000);
        assert_eq!(a.makespan, a.delivered + a.collisions + a.silent_slots);
    }
}
