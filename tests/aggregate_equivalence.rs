//! Aggregate-vs-per-station equivalence: the fast simulators resolve each
//! homogeneous slot from a single binomial classification draw (and batch
//! whole windows); the exact simulator materialises every station. The two
//! must sample the same distribution — this suite checks it with paired
//! seed sets across every homogeneous protocol, on clean and jammed
//! channels, using the mean/percentile tolerances and the two-sample
//! Kolmogorov–Smirnov test from `mac_prob::stats`.
//!
//! The fast paths are *distribution*-identical, not stream-identical: see
//! `crates/sim/DESIGN.md` §5 for the contract this suite enforces.

use contention_resolution::prelude::*;
use contention_resolution::prob::stats::conformance::{assert_law_agreement, Conformance};
use contention_resolution::prob::stats::{two_sample_ks_test, StreamingStats};

const K: u64 = 32;
const REPS: u64 = 60;

/// The homogeneous (fair-family) protocol kinds, which the aggregate fair
/// engine serves.
fn fair_kinds() -> Vec<ProtocolKind> {
    vec![
        ProtocolKind::OneFailAdaptive { delta: 2.72 },
        ProtocolKind::LogFailsAdaptive {
            xi_delta: 0.1,
            xi_beta: 0.1,
            xi_t: 0.5,
        },
        ProtocolKind::LogFailsAdaptive {
            xi_delta: 0.1,
            xi_beta: 0.1,
            xi_t: 0.1,
        },
        ProtocolKind::KnownKOracle,
    ]
}

/// The window-family kinds, which the aggregate window walk serves.
fn window_kinds() -> Vec<ProtocolKind> {
    vec![
        ProtocolKind::ExpBackonBackoff { delta: 0.366 },
        ProtocolKind::LoglogIteratedBackoff { r: 2.0 },
    ]
}

/// Channel scenarios the equivalence must hold under: the ideal channel and
/// two jamming adversaries (the aggregate paths feed the adversary only the
/// slot class, which is exactly what busy-slot jamming needs).
fn scenarios() -> Vec<(&'static str, AdversaryScenario)> {
    vec![
        ("clean", AdversaryScenario::clean()),
        (
            "periodic-jam",
            AdversaryScenario::jamming(AdversaryModel::PeriodicJam {
                period: 5,
                burst: 1,
                phase: 0,
            }),
        ),
        (
            "stochastic-noise",
            AdversaryScenario::jamming(AdversaryModel::StochasticNoise { p: 0.1 }),
        ),
    ]
}

fn exact_makespans(kind: &ProtocolKind, options: &RunOptions, seed_base: u64) -> Vec<f64> {
    (0..REPS)
        .map(|seed| {
            let run = ExactSimulator::new(kind.clone(), options.clone())
                .run(K, seed_base + seed)
                .unwrap();
            assert!(run.completed, "{} did not complete", kind.label());
            run.makespan as f64
        })
        .collect()
}

fn fast_makespans(kind: &ProtocolKind, options: &RunOptions, seed_base: u64) -> Vec<f64> {
    (0..REPS)
        .map(|seed| {
            let run = simulate_with_options(kind, K, seed_base + seed, options).unwrap();
            assert!(run.completed, "{} did not complete", kind.label());
            run.makespan as f64
        })
        .collect()
}

/// Mean (4σ with an absolute floor for tiny makespans), median, and
/// two-sample KS agreement through the shared conformance harness. The KS
/// level is conservative (the suite runs dozens of comparisons; 1e-3 keeps
/// the family-wise false-positive rate low while still catching any real
/// distributional drift).
fn assert_distributions_agree(exact: &[f64], fast: &[f64], label: &str) {
    assert_law_agreement(&Conformance::new(1e-3), exact, fast, 4.0, 10.0, label);
}

#[test]
fn fair_aggregate_matches_exact_across_protocols_and_channels() {
    for kind in fair_kinds() {
        for (scenario_name, scenario) in scenarios() {
            let options = RunOptions::adversarial(scenario);
            let exact = exact_makespans(&kind, &options, 0);
            let fast = fast_makespans(&kind, &options, 50_000);
            assert_distributions_agree(
                &exact,
                &fast,
                &format!("{} / {scenario_name}", kind.label()),
            );
        }
    }
}

#[test]
fn window_aggregate_matches_exact_across_protocols_and_channels() {
    for kind in window_kinds() {
        for (scenario_name, scenario) in scenarios() {
            let options = RunOptions::adversarial(scenario);
            let exact = exact_makespans(&kind, &options, 0);
            let fast = fast_makespans(&kind, &options, 50_000);
            assert_distributions_agree(
                &exact,
                &fast,
                &format!("{} / {scenario_name}", kind.label()),
            );
        }
    }
}

/// Dynamic-arrival workloads for the cohort-vs-exact equivalence: Poisson
/// and adversarial bursts, sized so every protocol of the fair line-up
/// completes on clean and jammed channels. Burst offsets are even on
/// purpose: odd offsets put One-fail Adaptive cohorts on opposite AT/BT
/// parities and the protocol genuinely deadlocks (DESIGN.md §6) — which
/// both engines reproduce, but which makes a completion-asserting test
/// meaningless.
fn dynamic_models() -> Vec<(&'static str, ArrivalModel)> {
    vec![
        (
            "poisson",
            ArrivalModel::Poisson {
                rate: 0.04,
                horizon: 1_500,
            },
        ),
        (
            "bursts",
            ArrivalModel::Bursts {
                bursts: vec![(0, 24), (300, 16), (302, 8), (1_200, 16)],
            },
        ),
    ]
}

/// Paired cohort-vs-exact runs on one schedule: returns per-run makespans
/// of both engines plus their pooled latency samples.
#[allow(clippy::type_complexity)]
fn paired_dynamic_runs(
    kind: &ProtocolKind,
    model: &ArrivalModel,
    options: &RunOptions,
) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
    use contention_resolution::prob::rng::Xoshiro256pp;
    use rand::SeedableRng;

    let mut exact_makespans = Vec::new();
    let mut cohort_makespans = Vec::new();
    let mut exact_latencies = Vec::new();
    let mut cohort_latencies = Vec::new();
    for rep in 0..REPS {
        // Both engines consume the *same* sampled schedule per repetition,
        // with independent protocol seeds.
        let mut arrival_rng = Xoshiro256pp::seed_from_u64(7_000 + rep);
        let schedule = model.sample(&mut arrival_rng);
        let exact = ExactSimulator::new(kind.clone(), options.clone())
            .run_schedule(&schedule, rep)
            .unwrap();
        let cohort = CohortSimulator::new(kind.clone(), options.clone())
            .run_schedule(&schedule, 90_000 + rep)
            .unwrap();
        // Capped runs are legitimate samples of the capped process (a
        // jam-resonance trap can stall One-fail Adaptive on rare schedules
        // — both engines reproduce it) and enter the makespan comparison
        // at the cap; latencies are pooled over delivered messages only.
        exact_makespans.push(exact.result.makespan as f64);
        cohort_makespans.push(cohort.result.makespan as f64);
        exact_latencies.extend(exact.latencies().iter().map(|&l| l as f64));
        cohort_latencies.extend(cohort.latencies.iter().map(|&l| l as f64));
    }
    (
        exact_makespans,
        cohort_makespans,
        exact_latencies,
        cohort_latencies,
    )
}

/// Mean + KS agreement for pooled latency samples. The pooled samples are
/// weakly dependent within a run, so the KS level is conservative; the mean
/// is additionally checked per-sample with a scale-aware tolerance.
fn assert_latency_distributions_agree(exact: &[f64], cohort: &[f64], label: &str) {
    let exact_stats: StreamingStats = exact.iter().copied().collect();
    let cohort_stats: StreamingStats = cohort.iter().copied().collect();
    let tolerance = (4.0 * (exact_stats.std_error() + cohort_stats.std_error())).max(8.0);
    assert!(
        (exact_stats.mean() - cohort_stats.mean()).abs() < tolerance,
        "{label}: exact latency mean {:.1} vs cohort {:.1} (tolerance {:.1})",
        exact_stats.mean(),
        cohort_stats.mean(),
        tolerance
    );
    let ks = two_sample_ks_test(exact, cohort);
    assert!(
        ks.is_consistent_at(1e-4),
        "{label}: latency KS statistic {:.3}, p = {:.2e}",
        ks.statistic,
        ks.p_value
    );
}

#[test]
fn cohort_engine_matches_exact_on_dynamic_arrivals() {
    // The cohort aggregate engine must sample the same law as the exact
    // per-station simulator on dynamic schedules: makespan mean/median/KS
    // plus latency-distribution agreement, across arrival models and
    // channels, for the whole fair line-up.
    for kind in fair_kinds() {
        for (model_name, model) in dynamic_models() {
            for (scenario_name, scenario) in scenarios() {
                let options = RunOptions::adversarial(scenario);
                let label = format!("{} / {model_name} / {scenario_name}", kind.label());
                let (exact_mk, cohort_mk, exact_lat, cohort_lat) =
                    paired_dynamic_runs(&kind, &model, &options);
                assert_distributions_agree(&exact_mk, &cohort_mk, &label);
                assert_latency_distributions_agree(&exact_lat, &cohort_lat, &label);
            }
        }
    }
}

#[test]
fn aggregate_slot_class_totals_match_exact() {
    // Beyond the makespan, the slot-class composition (delivered /
    // collision / silent) of whole runs must agree: compare the aggregate
    // engine's totals with the per-station reference across paired seed
    // sets, as proportions of all simulated slots.
    let kind = ProtocolKind::OneFailAdaptive { delta: 2.72 };
    let options = RunOptions::default();
    let mut totals = [[0u64; 3]; 2];
    for seed in 0..REPS {
        let exact = ExactSimulator::new(kind.clone(), options.clone())
            .run(K, seed)
            .unwrap();
        let fast = simulate_with_options(&kind, K, 50_000 + seed, &options).unwrap();
        for (row, run) in [(0, exact), (1, fast)] {
            totals[row][0] += run.delivered;
            totals[row][1] += run.collisions;
            totals[row][2] += run.silent_slots;
        }
    }
    for (class, pair) in totals[0].iter().zip(&totals[1]).enumerate() {
        let a = *pair.0 as f64;
        let b = *pair.1 as f64;
        let scale = (a + b).max(1.0);
        // Slot-class totals over 60 runs concentrate well within ±10%.
        assert!(
            (a - b).abs() / scale < 0.10,
            "class {class}: exact {a} vs aggregate {b}"
        );
    }
}

#[test]
fn window_walk_slot_class_totals_and_makespans_match_exact() {
    // The rewired window walk (mode-anchored collision sampling, block
    // decomposition, measured dispatch) must stay law-identical to the
    // per-station reference on makespan *and* on the slot-class
    // composition, for both window protocols under every channel scenario:
    // paired seed sets, per-class totals within ±10%, and makespan KS
    // through the shared conformance gate.
    for kind in window_kinds() {
        for (scenario_name, scenario) in scenarios() {
            let options = RunOptions::adversarial(scenario);
            let label = format!("{} / {scenario_name} (slot classes)", kind.label());
            let mut exact_mk = Vec::new();
            let mut fast_mk = Vec::new();
            let mut totals = [[0u64; 3]; 2];
            for seed in 0..REPS {
                let exact = ExactSimulator::new(kind.clone(), options.clone())
                    .run(K, seed)
                    .unwrap();
                let fast = simulate_with_options(&kind, K, 70_000 + seed, &options).unwrap();
                exact_mk.push(exact.makespan as f64);
                fast_mk.push(fast.makespan as f64);
                for (row, run) in [(0, exact), (1, fast)] {
                    totals[row][0] += run.delivered;
                    totals[row][1] += run.collisions;
                    totals[row][2] += run.silent_slots;
                }
            }
            assert_distributions_agree(&exact_mk, &fast_mk, &label);
            for (class, pair) in totals[0].iter().zip(&totals[1]).enumerate() {
                let a = *pair.0 as f64;
                let b = *pair.1 as f64;
                let scale = (a + b).max(1.0);
                assert!(
                    (a - b).abs() / scale < 0.10,
                    "{label}: class {class} exact {a} vs walk {b}"
                );
            }
        }
    }
}

#[test]
fn aggregate_engine_is_deterministic_and_complete_at_scale() {
    // A larger smoke run through every aggregate path (dead-slot elision,
    // kernel drift, window walk shortcut): deterministic per seed, all
    // messages delivered, slot accounting balanced.
    for kind in [
        ProtocolKind::OneFailAdaptive { delta: 2.72 },
        ProtocolKind::ExpBackonBackoff { delta: 0.366 },
    ] {
        let a = simulate(&kind, 50_000, 7).unwrap();
        let b = simulate(&kind, 50_000, 7).unwrap();
        assert_eq!(a, b);
        assert!(a.completed);
        assert_eq!(a.delivered, 50_000);
        assert_eq!(a.makespan, a.delivered + a.collisions + a.silent_slots);
    }
}
