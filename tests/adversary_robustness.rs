//! Integration tests for the adversarial-channel subsystem: qualitative
//! robustness orderings that the `robustness_sweep` benchmark renders as a
//! table.
//!
//! The comparisons are *paired*: every adversary faces the same seeds, so
//! the clean-channel runs are the exact baseline trajectories the jammed
//! runs diverge from, and the mean-makespan orderings asserted here are
//! deterministic properties of the fixed seed set, not statistical hopes.

use contention_resolution::adversary::{AdversaryState, SlotClass};
use contention_resolution::prelude::*;
use contention_resolution::prob::stats::two_sample_ks_test;

const SEEDS: [u64; 6] = [11, 22, 33, 44, 55, 66];
const K: u64 = 600;

fn mean_makespan(kind: &ProtocolKind, scenario: AdversaryScenario) -> f64 {
    let options = RunOptions::adversarial(scenario);
    SEEDS
        .iter()
        .map(|&seed| {
            simulate_with_options(kind, K, seed, &options)
                .expect("valid configuration")
                .makespan as f64
        })
        .sum::<f64>()
        / SEEDS.len() as f64
}

#[test]
fn jamming_never_decreases_mean_makespan() {
    let adversaries = [
        AdversaryModel::StochasticNoise { p: 0.1 },
        AdversaryModel::PeriodicJam {
            period: 4,
            burst: 1,
            phase: 0,
        },
        // A mid-run blackout (early slots are all collisions anyway, so a
        // prefix blackout would be free for the adaptive protocols).
        AdversaryModel::ScheduledJam {
            bursts: vec![(K / 2, K / 2), (2 * K, K / 2)],
        },
        AdversaryModel::BudgetedReactiveJam {
            budget: K / 4,
            trigger: JamTrigger::NearSuccess,
        },
        AdversaryModel::BudgetedReactiveJam {
            budget: K / 4,
            trigger: JamTrigger::Contended,
        },
    ];
    for kind in ProtocolKind::robust_lineup() {
        let clean = mean_makespan(&kind, AdversaryScenario::clean());
        for adversary in &adversaries {
            let jammed = mean_makespan(&kind, AdversaryScenario::jamming(adversary.clone()));
            assert!(
                jammed >= clean,
                "{} under `{}`: jammed mean {jammed} < clean mean {clean}",
                kind.label(),
                adversary.label()
            );
        }
    }
}

#[test]
fn near_success_jamming_hurts_more_than_contended_jamming() {
    // Same budget, different target: destroying would-be deliveries must
    // cost real slots, while jamming already-contended slots changes
    // nothing about the trajectory (it only drains the jammer's budget) —
    // the contended-trigger runs are bit-identical to clean ones.
    for kind in ProtocolKind::robust_lineup() {
        let near = mean_makespan(
            &kind,
            AdversaryScenario::jamming(AdversaryModel::BudgetedReactiveJam {
                budget: K / 4,
                trigger: JamTrigger::NearSuccess,
            }),
        );
        let contended = mean_makespan(
            &kind,
            AdversaryScenario::jamming(AdversaryModel::BudgetedReactiveJam {
                budget: K / 4,
                trigger: JamTrigger::Contended,
            }),
        );
        let clean = mean_makespan(&kind, AdversaryScenario::clean());
        assert_eq!(
            contended,
            clean,
            "{}: a contended-trigger jammer cannot change the trajectory",
            kind.label()
        );
        assert!(
            near > contended,
            "{}: near-success jamming ({near}) must beat contended jamming ({contended})",
            kind.label()
        );
    }
}

#[test]
fn jammed_deliveries_are_reported_and_bounded_by_budget() {
    let kind = ProtocolKind::OneFailAdaptive { delta: 2.72 };
    let budget = 40;
    let options = RunOptions::adversarial(AdversaryScenario::jamming(
        AdversaryModel::BudgetedReactiveJam {
            budget,
            trigger: JamTrigger::NearSuccess,
        },
    ));
    let result = simulate_with_options(&kind, 300, 5, &options).unwrap();
    assert!(result.completed);
    assert_eq!(
        result.jammed_deliveries, budget,
        "a near-success jammer at this scale spends its whole budget on deliveries"
    );
    assert!(result.collisions >= budget);
}

#[test]
fn feedback_faults_degrade_gracefully_for_the_papers_protocols() {
    // The paper's protocols only react to the delivered/not-delivered bit,
    // so collision/empty confusion alone is a strict no-op, and missed
    // deliveries merely slow the adaptive protocols down without stalling
    // them.
    let kind = ProtocolKind::OneFailAdaptive { delta: 2.72 };
    let confusion_only = AdversaryScenario::faulty_feedback(FeedbackFault {
        confuse_collision_empty: 0.5,
        miss_delivery: 0.0,
    });
    for &seed in &SEEDS {
        let clean = simulate_with_options(&kind, K, seed, &RunOptions::default()).unwrap();
        let confused = simulate_with_options(
            &kind,
            K,
            seed,
            &RunOptions::adversarial(confusion_only.clone()),
        )
        .unwrap();
        assert_eq!(
            clean.makespan, confused.makespan,
            "collision/empty confusion is invisible to a fair protocol"
        );
    }
    let missing = AdversaryScenario::faulty_feedback(FeedbackFault {
        confuse_collision_empty: 0.0,
        miss_delivery: 0.3,
    });
    let degraded = mean_makespan(&kind, missing);
    let clean = mean_makespan(&kind, AdversaryScenario::clean());
    assert!(
        degraded >= clean,
        "missed delivery feedback cannot speed One-fail Adaptive up ({degraded} < {clean})"
    );
    // Every run still completes.
    for &seed in &SEEDS {
        let result = simulate_with_options(
            &kind,
            K,
            seed,
            &RunOptions::adversarial(AdversaryScenario::faulty_feedback(FeedbackFault {
                confuse_collision_empty: 0.0,
                miss_delivery: 0.3,
            })),
        )
        .unwrap();
        assert!(result.completed);
    }
}

#[test]
fn ks_test_separates_jammed_from_clean_makespan_distributions() {
    // The two-sample KS helper (mac_prob::stats) must both *detect* a real
    // distributional shift — strong stochastic jamming stretches every
    // makespan — and report identity for identical runs. This is the same
    // instrument the aggregate-equivalence suite uses, exercised here on
    // the adversarial axis.
    let kind = ProtocolKind::OneFailAdaptive { delta: 2.72 };
    let makespans = |scenario: AdversaryScenario| -> Vec<f64> {
        let options = RunOptions::adversarial(scenario);
        (0..40u64)
            .map(|seed| {
                simulate_with_options(&kind, K, seed, &options)
                    .unwrap()
                    .makespan as f64
            })
            .collect()
    };
    let clean = makespans(AdversaryScenario::clean());
    let jammed = makespans(AdversaryScenario::jamming(
        AdversaryModel::StochasticNoise { p: 0.4 },
    ));
    let shifted = two_sample_ks_test(&clean, &jammed);
    assert!(
        shifted.p_value < 1e-3,
        "jamming 40% of busy slots must shift the makespan law (p = {:.2e})",
        shifted.p_value
    );
    let identical = two_sample_ks_test(&clean, &clean);
    assert_eq!(identical.statistic, 0.0);
}

#[test]
fn adversary_state_is_reusable_across_layers() {
    // The channel-level wiring (used by the exact simulator) and the
    // fast-simulator wiring agree on who the adversary is: an exhausted
    // reactive jammer behaves like a clean channel from then on.
    let scenario = AdversaryScenario::jamming(AdversaryModel::BudgetedReactiveJam {
        budget: 3,
        trigger: JamTrigger::NearSuccess,
    });
    let mut state = AdversaryState::new(scenario, 9);
    assert!(state.is_active());
    let mut jams = 0;
    for slot in 0..100 {
        if state.jams_slot(slot, SlotClass::Single) {
            jams += 1;
        }
    }
    assert_eq!(jams, 3);
    assert_eq!(state.budget_left(), 0);
}
