//! Replay guarantees of the worst-case jamming certificates.
//!
//! The adversary strategy search (tier (a): exhaustive game tree over the
//! exact engine; tier (b): budgeted beam search over the fast engines) emits
//! its incumbents as explicit `ScheduledJam` certificates. This suite pins
//! the three properties that make those certificates *evidence* rather than
//! claims:
//!
//! 1. every cell of the committed `CERTIFICATES.md` table (regenerated here
//!    via `mac_bench::certify` at the default master seed) replays on its
//!    engine to exactly the certified makespan, with exactly the certified
//!    jams landing;
//! 2. record → replay is bit-identical on all three engines: arming any
//!    deterministic jam model, logging the effective jam slots, and
//!    re-running with those slots as a `ScheduledJam` reproduces the full
//!    `RunResult`, field for field;
//! 3. the tier-(a) search *rediscovers* One-fail Adaptive's period-2
//!    resonance mechanically: at budget 4 the certified optimum is a
//!    stride-2, single-parity comb, although no periodic structure is
//!    seeded into the game tree (it branches one Single slot at a time).

use contention_resolution::sim::adversary::CertificateTier;
use contention_resolution::sim::{
    AdversaryModel, AdversaryScenario, ExactSimulator, FairSimulator, RunOptions, WindowSimulator,
};
use mac_bench::certify;
use mac_protocols::{ProtocolFamily, ProtocolKind};

/// Overlays a jam model on otherwise-default options.
fn armed(options: &RunOptions, model: AdversaryModel) -> RunOptions {
    RunOptions {
        adversary: AdversaryScenario::jamming(model),
        ..options.clone()
    }
}

/// The replayable schedule of a list of effective jam slots.
fn schedule_of(slots: &[u64]) -> AdversaryModel {
    AdversaryModel::ScheduledJam {
        bursts: slots.iter().map(|&slot| (slot, 1)).collect(),
    }
    .normalised()
}

#[test]
fn every_tier_a_certificate_replays_exactly_on_the_exact_engine() {
    let options = certify::tier_a_options();
    let tier_a = certify::tier_a_certificates(certify::DEFAULT_SEED);
    assert_eq!(tier_a.len(), ProtocolKind::robust_lineup().len() * 2);
    for (pi, kind) in ProtocolKind::robust_lineup().iter().enumerate() {
        for budget in certify::TIER_A_BUDGETS {
            let (certificate, _) = tier_a
                .iter()
                .find(|(c, _)| c.protocol == kind.label() && c.budget == budget)
                .unwrap_or_else(|| panic!("missing cell {} B={budget}", kind.label()));
            assert_eq!(certificate.tier, CertificateTier::Exhaustive);
            assert_eq!(
                certificate.seed,
                certify::cell_seed(certify::DEFAULT_SEED, 0, pi, budget)
            );
            assert!(certificate.jam_slots.len() as u64 <= budget);
            assert!(certificate.makespan >= certificate.clean_makespan);

            let replay = ExactSimulator::new(
                kind.clone(),
                armed(&options, schedule_of(&certificate.jam_slots)),
            )
            .run(certificate.k, certificate.seed)
            .expect("certificate replays are valid runs");
            assert_eq!(replay.makespan, certificate.makespan, "{}", kind.label());
            assert_eq!(replay.completed, certificate.completed, "{}", kind.label());
            assert_eq!(
                replay.jammed_deliveries,
                certificate.jam_slots.len() as u64,
                "every certified jam slot must land on a would-be delivery ({})",
                kind.label()
            );
        }
    }
}

#[test]
fn tier_b_certificates_replay_exactly_on_their_search_engine() {
    let options = certify::tier_b_options();
    for (certificate, _) in certify::tier_b_certificates(certify::DEFAULT_SEED) {
        assert_eq!(certificate.tier, CertificateTier::BestFound);
        let kind = ProtocolKind::robust_lineup()
            .into_iter()
            .find(|k| k.label() == certificate.protocol)
            .expect("certificates name line-up protocols");
        let armed_options = armed(&options, schedule_of(&certificate.jam_slots));
        let replay = match kind.family() {
            ProtocolFamily::Fair => {
                FairSimulator::new(kind.clone(), armed_options).run(certificate.k, certificate.seed)
            }
            ProtocolFamily::Window => WindowSimulator::new(kind.clone(), armed_options)
                .run(certificate.k, certificate.seed),
        }
        .expect("certificate replays are valid runs");
        assert_eq!(replay.makespan, certificate.makespan, "{}", kind.label());
        assert_eq!(
            replay.jammed_deliveries,
            certificate.jam_slots.len() as u64,
            "{}",
            kind.label()
        );
        assert!(certificate.makespan >= certificate.clean_makespan);
    }
}

/// Satellite 2: record → replay is bit-identical per engine. Arm a
/// deterministic jam model, log which jams landed, re-run with the logged
/// slots as an explicit schedule: the *entire* `RunResult` must match —
/// deterministic jammers draw no randomness, and the jams that were dropped
/// (empty or contended slots) were observably inert.
#[test]
fn recorded_jams_replay_bit_identically_on_all_three_engines() {
    let k = 500;
    let seed = 17;
    let model = AdversaryModel::PeriodicJam {
        period: 3,
        burst: 1,
        phase: 1,
    };
    let fair_kind = ProtocolKind::OneFailAdaptive { delta: 2.72 };
    let window_kind = ProtocolKind::ExpBackonBackoff { delta: 0.366 };
    let base = RunOptions::default();
    let recording = armed(&base, model);

    // Fair aggregate engine.
    let (recorded, jams) = FairSimulator::new(fair_kind.clone(), recording.clone())
        .run_logging_jams(k, seed)
        .expect("valid run");
    assert!(!jams.is_empty(), "the periodic jammer must land some jams");
    let replayed = FairSimulator::new(fair_kind.clone(), armed(&base, schedule_of(&jams)))
        .run(k, seed)
        .expect("valid run");
    assert_eq!(replayed, recorded, "fair engine");

    // Window aggregate engine.
    let (recorded, jams) = WindowSimulator::new(window_kind.clone(), recording.clone())
        .run_logging_jams(k, seed)
        .expect("valid run");
    assert!(!jams.is_empty());
    let replayed = WindowSimulator::new(window_kind.clone(), armed(&base, schedule_of(&jams)))
        .run(k, seed)
        .expect("valid run");
    assert_eq!(replayed, recorded, "window engine");

    // Exact per-station engine, both families.
    for kind in [fair_kind, window_kind] {
        let (recorded, jams) = ExactSimulator::new(kind.clone(), recording.clone())
            .run_logging_jams(k, seed)
            .expect("valid run");
        assert!(!jams.is_empty());
        let replayed = ExactSimulator::new(kind.clone(), armed(&base, schedule_of(&jams)))
            .run(k, seed)
            .expect("valid run");
        assert_eq!(replayed, recorded, "exact engine, {}", kind.label());
    }
}

/// The headline tentpole property: the exhaustive tier *rediscovers* the
/// One-fail Adaptive period-2 resonance. The game tree knows nothing about
/// periodicity — it branches slot by slot on Single outcomes — yet at
/// budget 4 the certified worst case is a stride-2 comb on a single parity,
/// exactly the AT/BT alternation the hand-written `PeriodicJam { period: 2 }`
/// script exploits. (At larger budgets the optimum starts spending jams on
/// end-game singles of either parity, so the pure comb is asserted at the
/// budget where it is the proven optimum.)
#[test]
fn exhaustive_search_rediscovers_the_one_fail_period_2_resonance() {
    let options = certify::tier_a_options();
    let kind = ProtocolKind::OneFailAdaptive { delta: 2.72 };
    let budget = 4;
    for master_seed in [certify::DEFAULT_SEED, 1, 7, 42] {
        let seed = certify::cell_seed(master_seed, 0, 0, budget);
        let (certificate, _) = contention_resolution::sim::worst_case_exhaustive(
            &kind,
            certify::TIER_A_K,
            budget,
            seed,
            &options,
        )
        .expect("valid configuration");
        assert_eq!(certificate.jam_slots.len() as u64, budget);
        assert_eq!(
            certificate.stride(),
            Some(2),
            "master seed {master_seed}: expected a stride-2 comb, got {:?}",
            certificate.jam_slots
        );
        let parity = certificate.jam_slots[0] % 2;
        assert!(
            certificate.jam_slots.iter().all(|slot| slot % 2 == parity),
            "master seed {master_seed}: expected a single-parity comb, got {:?}",
            certificate.jam_slots
        );
        assert!(certificate.makespan > certificate.clean_makespan);
    }
}
