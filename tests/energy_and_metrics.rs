//! Integration tests for the per-station energy (transmission-count) metrics
//! and the latency histogram tooling — the measurements the sensor-network
//! motivation of the paper cares about beyond raw makespan.

use contention_resolution::channel::ArrivalSchedule;
use contention_resolution::prelude::*;
use contention_resolution::prob::histogram::Histogram;

fn detailed_run(
    kind: ProtocolKind,
    k: usize,
    seed: u64,
) -> contention_resolution::sim::exact::DetailedRun {
    ExactSimulator::new(kind, RunOptions::default())
        .run_schedule(&ArrivalSchedule::new(vec![0; k]), seed)
        .expect("valid parameters")
}

#[test]
fn every_delivered_station_transmits_at_least_once() {
    for kind in ProtocolKind::paper_lineup() {
        let run = detailed_run(kind.clone(), 48, 7);
        assert!(run.result.completed, "{}", kind.label());
        for message in &run.messages {
            assert!(message.delivered_slot.is_some());
            assert!(
                message.transmissions >= 1,
                "{}: a delivery requires a transmission",
                kind.label()
            );
        }
        assert!(run.total_transmissions() >= 48);
        assert_eq!(
            run.max_transmissions(),
            run.messages.iter().map(|m| m.transmissions).max().unwrap()
        );
    }
}

#[test]
fn window_protocols_spend_less_energy_than_persistent_fair_probing() {
    // A window protocol transmits once per window (a handful of times in
    // total), whereas One-fail Adaptive probes with probability up to 1 in
    // early BT-steps; both must stay within a small factor of the optimum
    // (one transmission per message), which is the energy argument for this
    // protocol family in sensor networks.
    let ebb = detailed_run(ProtocolKind::ExpBackonBackoff { delta: 0.366 }, 64, 3);
    let ofa = detailed_run(ProtocolKind::OneFailAdaptive { delta: 2.72 }, 64, 3);
    let ebb_mean = ebb.mean_transmissions().unwrap();
    let ofa_mean = ofa.mean_transmissions().unwrap();
    assert!(
        (1.0..30.0).contains(&ebb_mean),
        "EBB mean energy {ebb_mean}"
    );
    // One-fail Adaptive probes aggressively in its early BT-steps (probability
    // 1 while σ = 0), so its per-station energy is markedly higher — but still
    // bounded well below one transmission per slot.
    assert!(
        (1.0..200.0).contains(&ofa_mean),
        "OFA mean energy {ofa_mean}"
    );
    assert!(
        ebb_mean < ofa_mean,
        "the window protocol should be the energy-frugal one ({ebb_mean:.1} vs {ofa_mean:.1})"
    );
    // The window protocol transmits only once per window, so its energy per
    // message is bounded by the number of windows elapsed — far fewer than
    // the number of slots.
    assert!(
        ebb.max_transmissions() < ebb.result.makespan,
        "energy is measured in windows, not slots"
    );
}

#[test]
fn latency_histogram_summarises_a_batched_run() {
    let run = detailed_run(ProtocolKind::ExpBackonBackoff { delta: 0.366 }, 128, 11);
    let histogram: Histogram = run.latencies().into_iter().collect();
    assert_eq!(histogram.count(), 128);
    assert_eq!(histogram.max().unwrap() + 1, run.result.makespan);
    // The histogram's quantile upper bound must dominate the exact p95.
    let mut latencies: Vec<f64> = run.latencies().iter().map(|&l| l as f64).collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let exact_p95 = latencies[(0.95 * latencies.len() as f64) as usize];
    let bound = histogram.quantile_upper_bound(0.95).unwrap() as f64;
    assert!(
        bound >= exact_p95,
        "histogram bound {bound} must dominate the exact p95 {exact_p95}"
    );
    // The ASCII rendering has one bar per non-empty bucket and mentions the
    // largest bucket's count.
    let art = histogram.ascii(30);
    assert_eq!(art.lines().count(), histogram.buckets().len());
}

#[test]
fn energy_grows_slowly_with_instance_size_for_window_protocols() {
    // The number of windows a station lives through grows only
    // logarithmically with k, so the per-station energy should grow far more
    // slowly than k.
    let small = detailed_run(ProtocolKind::ExpBackonBackoff { delta: 0.366 }, 16, 5);
    let large = detailed_run(ProtocolKind::ExpBackonBackoff { delta: 0.366 }, 256, 5);
    let small_mean = small.mean_transmissions().unwrap();
    let large_mean = large.mean_transmissions().unwrap();
    assert!(
        large_mean < small_mean * 8.0,
        "energy must not scale linearly with k: {small_mean} -> {large_mean}"
    );
}
