//! Property-based tests for the probability toolkit.

use mac_prob::balls::{
    expected_singleton_fraction, occupancy_counts, throw_balls, throw_balls_into, walk_window,
    BinsOccupancy, OccupancyScratch, WalkScratch,
};
use mac_prob::binomial::{sample_binomial_fast, ModeKernel, SlotKernel, SlotThresholds};
use mac_prob::outcome::{sample_slot_outcome, slot_outcome_probabilities, SlotOutcome};
use mac_prob::rng::{derive_seed, Xoshiro256pp};
use mac_prob::sampling::{sample_binomial, sample_geometric, sample_poisson};
use mac_prob::sketch::{QuantileSketch, StreamingLatencyStats};
use mac_prob::special::{binomial_pmf, ln_binomial, ln_factorial};
use mac_prob::stats::{
    chi_square_test, conformance, percentile, two_sample_ks_test, StreamingStats,
};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

/// Chi-square goodness of fit of a sampler against the exact binomial pmf:
/// draws `reps` samples of `Binomial(n, p)`, bins them through the shared
/// conformance harness (tails pooled at the ≥ 5 expected-count rule), and
/// requires the fit not to be rejected at the 0.1% level.
fn assert_binomial_gof<F: FnMut(&mut Xoshiro256pp) -> u64>(
    n: u64,
    p: f64,
    seed: u64,
    reps: u64,
    mut draw: F,
) {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let pmf: Vec<f64> = (0..=n.min(4096)).map(|t| binomial_pmf(n, t, p)).collect();
    let result = conformance::sample_vs_pmf_chi_square(&pmf, reps, || draw(&mut rng));
    conformance::Conformance::new(0.001).assert_consistent(&result, &format!("n={n} p={p}"));
}

#[test]
fn fast_binomial_sampler_passes_chi_square_gof() {
    // Covers CDF inversion (small mean), BTPE (large mean) and the
    // complement path, against the exact log-space pmf.
    for &(n, p, seed) in &[
        (12u64, 0.3f64, 1u64),
        (40, 0.1, 2),
        (300, 0.02, 3),  // inversion, mean 6
        (200, 0.25, 4),  // BTPE, mean 50
        (2000, 0.03, 5), // BTPE, mean 60
        (50, 0.85, 6),   // complement + BTPE
        (1000, 0.5, 7),  // symmetric BTPE
    ] {
        assert_binomial_gof(n, p, seed, 40_000, |rng| sample_binomial_fast(n, p, rng));
    }
}

#[test]
fn reference_and_fast_binomial_samplers_agree() {
    // The independent geometric-skip sampler must pass the same gate on a
    // shared case, tying the two implementations to one distribution.
    let (n, p) = (120u64, 0.05f64);
    assert_binomial_gof(n, p, 11, 40_000, |rng| sample_binomial_fast(n, p, rng));
    assert_binomial_gof(n, p, 12, 40_000, |rng| sample_binomial(n, p, rng));
}

#[test]
fn slot_kernel_classification_passes_chi_square_gof() {
    // One uniform against the kernel's (incrementally maintained)
    // thresholds must reproduce the exact slot trichotomy. Drive the kernel
    // through a drift to the target (m, p) first so the tested thresholds
    // come from the Taylor path, not a fresh anchor.
    let m = 5_000u64;
    let p = 1.0 / 7_000.0;
    let mut kernel = SlotKernel::new(m, 1.0 / 6_500.0);
    let mut kappa = 6_500.0;
    while kappa < 7_000.0 {
        kappa += 1.0;
        kernel.update(m as f64, 1.0 / kappa);
    }
    let exact = SlotThresholds::exact(m, p);
    assert!((kernel.thresholds().t0 - exact.t0).abs() < 1e-11);
    let mut rng = Xoshiro256pp::seed_from_u64(21);
    let reps = 120_000u64;
    let mut observed = [0u64; 3];
    for _ in 0..reps {
        match kernel.classify(rng.gen::<f64>()) {
            SlotOutcome::Silence => observed[0] += 1,
            SlotOutcome::Delivery => observed[1] += 1,
            SlotOutcome::Collision => observed[2] += 1,
        }
    }
    let pr = slot_outcome_probabilities(m, p);
    let result = chi_square_test(&observed, &[pr.silence, pr.delivery, pr.collision]);
    assert!(
        result.is_consistent_at(0.001),
        "chi2 = {:.1}, p = {:.2e}",
        result.statistic,
        result.p_value
    );
}

#[test]
fn walk_window_singleton_distribution_passes_chi_square_against_per_ball() {
    // The aggregate window walk and the per-ball reference must produce the
    // same singleton-count distribution; compare both against the empirical
    // law of the other via pooled chi-square categories.
    let (m, w) = (48u64, 16u64);
    let reps = 30_000u64;
    let mut rng = Xoshiro256pp::seed_from_u64(31);
    let mut scratch = WalkScratch::new();
    let mut walk_counts = vec![0u64; (w + 2) as usize];
    for _ in 0..reps {
        let occ = walk_window(m, w, &mut rng, &mut scratch);
        walk_counts[occ.singletons as usize] += 1;
    }
    let mut ball_counts = vec![0u64; (w + 2) as usize];
    for _ in 0..reps {
        let occ = throw_balls(m, w, &mut rng);
        ball_counts[occ.singletons() as usize] += 1;
    }
    // The "expected" side is itself an empirical sample of the same size,
    // which doubles the variance of the statistic; 0.0001 still catches any
    // real divergence while tolerating that.
    let result = conformance::pooled_empirical_chi_square(&walk_counts, &ball_counts, 20.0);
    assert!(
        result.p_value > 1e-4 || result.statistic < 2.0 * result.parameter + 20.0,
        "walk vs per-ball singleton law: chi2 = {:.1} (dof {}), p = {:.2e}",
        result.statistic,
        result.parameter,
        result.p_value
    );
}

/// Exact conditional pmf of `T | T ≥ 2` for `T ~ Binomial(n, p)`, indexed by
/// value and truncated to `support` cells (the conformance histogram pools
/// the truncated upper tail).
fn conditional_ge2_pmf(n: u64, p: f64, support: u64) -> (Vec<f64>, f64) {
    let t1 = binomial_pmf(n, 0, p) + binomial_pmf(n, 1, p);
    let mass = 1.0 - t1;
    let pmf: Vec<f64> = (0..=support.min(n))
        .map(|t| {
            if t < 2 {
                0.0
            } else {
                binomial_pmf(n, t, p) / mass
            }
        })
        .collect();
    (pmf, mass)
}

#[test]
fn mode_sampler_passes_chi_square_across_lambda_bands() {
    // The mode-anchored conditional sampler against the exact conditional
    // pmf across the λ bands the window walk spans: below the conditioning
    // cut (0.5), the CDF-continuation band (2), the sampling crossover (8),
    // the mid band (50) and beyond the dead-slot boundary (200). One
    // Bonferroni-corrected suite-wide gate at α = 0.001.
    let cases: &[(u64, f64)] = &[
        (2_000, 2.5e-4),     // λ = 0.5
        (8_000, 2.5e-4),     // λ = 2
        (32_000, 2.5e-4),    // λ = 8
        (200_000, 2.5e-4),   // λ = 50
        (2_000_000, 1.0e-4), // λ = 200
    ];
    let gate = conformance::Conformance::with_comparisons(0.001, cases.len() as u32);
    for (case, &(n, p)) in cases.iter().enumerate() {
        let kernel = ModeKernel::new(n, p);
        let (pmf, mass) = conditional_ge2_pmf(n, p, 1024);
        let mut rng = Xoshiro256pp::seed_from_u64(700 + case as u64);
        let reps = 40_000;
        let result = conformance::sample_vs_pmf_chi_square(&pmf, reps, || {
            kernel.sample_cond_ge2(mass * rng.gen::<f64>())
        });
        gate.assert_consistent(&result, &format!("mode sampler n={n} p={p}"));
    }
}

#[test]
fn mode_sampler_passes_chi_square_across_drift_and_reanchor_boundaries() {
    // Drive the kernel along a window-walk-shaped drift (n dropping by ~λ
    // per slot, w shrinking by one) and goodness-of-fit the *drifted* pmf —
    // including checkpoints far past the quartic re-anchor budget, so both
    // the incremental path and the exact re-anchors are exercised.
    let lambda = 24.0f64;
    let mut w = 120_000u64;
    let mut n = (lambda * w as f64) as u64;
    let mut kernel = ModeKernel::new(n, 1.0 / w as f64);
    let mut rng = Xoshiro256pp::seed_from_u64(41);
    let checkpoints = [1u64, 137, 1_000, 5_000, 20_000, 60_000];
    let gate = conformance::Conformance::with_comparisons(0.001, checkpoints.len() as u32);
    let mut step = 0u64;
    for &checkpoint in &checkpoints {
        while step < checkpoint {
            let t = sample_binomial_fast(n, 1.0 / w as f64, &mut rng).max(2);
            n -= t.min(n);
            w -= 1;
            kernel.update(n as f64, 1.0 / w as f64);
            step += 1;
        }
        let (pmf, mass) = conditional_ge2_pmf(n, 1.0 / w as f64, 512);
        let result = conformance::sample_vs_pmf_chi_square(&pmf, 30_000, || {
            kernel.sample_cond_ge2(mass * rng.gen::<f64>())
        });
        gate.assert_consistent(&result, &format!("drift step {checkpoint} (n={n} w={w})"));
    }
}

#[test]
fn walk_window_slot_classes_match_per_ball_across_dispatch_bands() {
    // The walk's internal dispatch (block decomposition, per-slot loops,
    // sparse tail) must leave the per-window slot-class law untouched:
    // compare singleton/empty/colliding totals against the per-ball
    // reference across one (m, w) point per band.
    let cases: &[(u64, u64, &str)] = &[
        (1_024, 16_384, "sparse-ish blocks"),
        (8_192, 8_192, "single-block window"),
        (40_960, 8_192, "multi-block lambda=5"),
        (16_384, 512, "tail loop lambda=32"),
        (131_072, 2_048, "tail loop dead band"),
        (300_000, 5_000, "per-slot walk lambda=60"),
    ];
    for &(m, w, label) in cases {
        let reps = 300;
        let mut rng = Xoshiro256pp::seed_from_u64(m ^ w);
        let mut scratch = WalkScratch::new();
        let mut walk_totals = [0u64; 3];
        for _ in 0..reps {
            let occ = walk_window(m, w, &mut rng, &mut scratch);
            walk_totals[0] += occ.singletons;
            walk_totals[1] += occ.empty_bins;
            walk_totals[2] += occ.colliding_bins;
        }
        let mut ball_totals = [0u64; 3];
        for _ in 0..reps {
            let occ = throw_balls(m, w, &mut rng);
            ball_totals[0] += occ.singletons();
            ball_totals[1] += occ.empty_bins;
            ball_totals[2] += occ.colliding_bins;
        }
        for (class, (&a, &b)) in walk_totals.iter().zip(&ball_totals).enumerate() {
            // Per-class totals over `reps` windows concentrate tightly;
            // 6σ of a binomial-scale spread plus a small absolute floor.
            let scale = (a + b) as f64 / 2.0;
            let tol = 6.0 * (scale.max(1.0)).sqrt() + 0.01 * scale + 25.0;
            assert!(
                (a as f64 - b as f64).abs() < tol,
                "{label}: class {class} walk {a} vs per-ball {b} (tol {tol:.0})"
            );
        }
    }
}

/// Exact rank of `v` in a sorted stream: `|{x : x ≤ v}|`.
fn true_rank(sorted: &[u64], v: u64) -> u64 {
    sorted.partition_point(|&x| x <= v) as u64
}

/// Asserts the sketch's proven ledger against the exact sorted stream: for
/// each probed quantile, the returned value's *true* rank must be within
/// `rank_error_bound()` of the target rank (the defining guarantee), and
/// the estimated rank of arbitrary thresholds must match the exact rank
/// within the same ledger.
fn assert_sketch_within_ledger(sketch: &QuantileSketch, mut sorted: Vec<u64>, label: &str) {
    sorted.sort_unstable();
    let n = sorted.len() as u64;
    assert_eq!(sketch.count(), n, "{label}: count");
    assert_eq!(sketch.min(), sorted.first().copied(), "{label}: min");
    assert_eq!(sketch.max(), sorted.last().copied(), "{label}: max");
    let bound = sketch.rank_error_bound();
    for &q in &[0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99] {
        let target = ((q * n as f64).ceil() as u64).clamp(1, n);
        let v = sketch.quantile(q).unwrap();
        // A tied value occupies a rank *interval*; the certificate says the
        // target rank is within the ledger of some rank of `v`.
        let lo = sorted.partition_point(|&x| x < v) as u64;
        let hi = true_rank(&sorted, v);
        assert!(
            lo <= target + bound && hi + bound + 1 >= target,
            "{label}: q={q} returned ranks [{lo}, {hi}], target {target}, ledger {bound}"
        );
    }
    // Rank estimates at data-driven thresholds obey the same certificate.
    for &v in sorted.iter().step_by((sorted.len() / 64).max(1)) {
        let est = sketch.estimated_rank(v);
        assert!(
            est.abs_diff(true_rank(&sorted, v)) <= bound,
            "{label}: rank estimate at {v} off by more than the ledger {bound}"
        );
    }
}

#[test]
fn quantile_sketch_ledger_holds_at_scale() {
    // 10⁴ … 10⁶ i.i.d. samples: the deterministic worst-case certificate
    // must hold, and must stay useful (ledger ≤ 2% of the stream at 10⁶
    // with the default capacity).
    for &(n, seed) in &[(10_000u64, 1u64), (100_000, 2), (1_000_000, 3)] {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut sketch = QuantileSketch::new(seed ^ 0x5CE7);
        let mut data = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let v = rng.gen_range(0..1_000_000u64);
            sketch.push(v);
            data.push(v);
        }
        assert!(
            sketch.rank_error_bound() * 50 <= n,
            "ledger {} exceeds 2% of n={n}",
            sketch.rank_error_bound()
        );
        assert!(
            sketch.retained_items() < 64 * 1024,
            "sketch memory must stay bounded"
        );
        assert_sketch_within_ledger(&sketch, data, &format!("iid n={n}"));
    }
}

#[test]
fn quantile_sketch_survives_adversarial_orderings() {
    // Compaction must not exploit input order: sorted, reversed,
    // organ-pipe, alternating-extremes and heavily duplicated streams all
    // carry the same certificate.
    let n = 100_000u64;
    let ascending: Vec<u64> = (0..n).collect();
    let descending: Vec<u64> = (0..n).rev().collect();
    let organ_pipe: Vec<u64> = (0..n / 2).chain((0..n / 2).rev()).collect();
    let alternating: Vec<u64> = (0..n).map(|i| if i % 2 == 0 { i } else { n - i }).collect();
    let duplicated: Vec<u64> = (0..n).map(|i| i % 17).collect();
    for (label, data) in [
        ("ascending", ascending),
        ("descending", descending),
        ("organ-pipe", organ_pipe),
        ("alternating", alternating),
        ("duplicated", duplicated),
    ] {
        let mut sketch = QuantileSketch::new(0xADAD);
        for &v in &data {
            sketch.push(v);
        }
        assert_sketch_within_ledger(&sketch, data, label);
    }
}

#[test]
fn sharded_sketch_merge_agrees_with_single_stream() {
    // Round-robin the stream over 8 shard sketches (the sharded driver's
    // shape), merge, and hold the merged ledger against the exact stream.
    // Mean and max stay exact through the merge.
    let n = 200_000u64;
    let shards = 8usize;
    let mut rng = Xoshiro256pp::seed_from_u64(77);
    let mut single = StreamingLatencyStats::new(7);
    let mut parts: Vec<StreamingLatencyStats> = (0..shards)
        .map(|i| StreamingLatencyStats::new(1_000 + i as u64))
        .collect();
    let mut data = Vec::with_capacity(n as usize);
    for i in 0..n {
        let v = rng.gen_range(0..1_000_000u64);
        single.push(v);
        parts[(i as usize) % shards].push(v);
        data.push(v);
    }
    let mut merged = StreamingLatencyStats::new(0);
    for part in &parts {
        merged.merge(part);
    }
    assert_eq!(merged.count(), single.count());
    assert_eq!(merged.max(), single.max());
    assert!(
        (merged.mean() - single.mean()).abs() < 1e-9,
        "mean is exact"
    );
    data.sort_unstable();
    let exact_mean = data.iter().sum::<u64>() as f64 / n as f64;
    assert!((merged.mean() - exact_mean).abs() < 1e-6);
    // Both sketches' quantiles sit within their own ledgers of the exact
    // ranks, so they agree with each other within the summed ledgers.
    let merged_bound = merged.rank_error_bound();
    let single_bound = single.rank_error_bound();
    for &q in &[0.50, 0.95, 0.99] {
        let target = ((q * n as f64).ceil() as u64).clamp(1, n);
        for (label, v, bound) in [
            ("merged", merged.quantile(q), merged_bound),
            ("single", single.quantile(q), single_bound),
        ] {
            let lo = data.partition_point(|&x| x < v) as u64;
            let hi = true_rank(&data, v);
            assert!(
                lo <= target + bound && hi + bound + 1 >= target,
                "{label}: q={q} ranks [{lo}, {hi}] vs target {target} (ledger {bound})"
            );
        }
    }
}

#[test]
fn sketch_reconstruction_passes_ks_conformance() {
    // Distribution-level check through the shared conformance gate: a
    // sample reconstructed from the sketch's quantile function must be
    // KS-indistinguishable from the original stream.
    let n = 50_000u64;
    let mut rng = Xoshiro256pp::seed_from_u64(99);
    let mut sketch = QuantileSketch::new(9);
    let mut data = Vec::with_capacity(n as usize);
    for _ in 0..n {
        // Geometric-flavoured latencies: heavy tail like a backoff run.
        let v = sample_geometric(0.001, &mut rng).min(100_000);
        sketch.push(v);
        data.push(v as f64);
    }
    let m = 2_000usize;
    let reconstructed: Vec<f64> = (0..m)
        .map(|i| sketch.quantile((i as f64 + 0.5) / m as f64).unwrap() as f64)
        .collect();
    let result = two_sample_ks_test(&data, &reconstructed);
    conformance::Conformance::new(0.001).assert_consistent(&result, "sketch reconstruction KS");
}

proptest! {
    #[test]
    fn outcome_probabilities_form_a_distribution(m in 0u64..=10_000_000, p in 0.0f64..=1.0) {
        let pr = slot_outcome_probabilities(m, p);
        prop_assert!(pr.silence >= 0.0 && pr.silence <= 1.0);
        prop_assert!(pr.delivery >= 0.0 && pr.delivery <= 1.0);
        prop_assert!(pr.collision >= 0.0 && pr.collision <= 1.0);
        prop_assert!((pr.silence + pr.delivery + pr.collision - 1.0).abs() < 1e-9);
    }

    #[test]
    fn outcome_sample_is_in_support(m in 0u64..=1000, p in 0.0f64..=1.0, seed in any::<u64>()) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let outcome = sample_slot_outcome(m, p, &mut rng);
        if m == 0 {
            prop_assert_eq!(outcome, SlotOutcome::Silence);
        }
        if m == 1 {
            prop_assert_ne!(outcome, SlotOutcome::Collision);
        }
    }

    #[test]
    fn binomial_sample_is_bounded(n in 0u64..=500, p in 0.0f64..=1.0, seed in any::<u64>()) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let x = sample_binomial(n, p, &mut rng);
        prop_assert!(x <= n);
        if p == 0.0 { prop_assert_eq!(x, 0); }
        if p == 1.0 { prop_assert_eq!(x, n); }
    }

    #[test]
    fn geometric_is_finite(p in 0.001f64..=1.0, seed in any::<u64>()) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let _ = sample_geometric(p, &mut rng);
    }

    #[test]
    fn poisson_is_reasonable(lambda in 0.0f64..=200.0, seed in any::<u64>()) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let x = sample_poisson(lambda, &mut rng);
        // 200 + 20 sigma is astronomically unlikely to be exceeded.
        prop_assert!((x as f64) < lambda + 20.0 * lambda.sqrt() + 50.0);
    }

    #[test]
    fn balls_in_bins_categories_partition(m in 0u64..=400, w in 1u64..=4000, seed in any::<u64>()) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let occ = throw_balls(m, w, &mut rng);
        prop_assert_eq!(occ.balls(), m);
        prop_assert_eq!(occ.singletons() + occ.empty_bins + occ.colliding_bins, w);
        prop_assert_eq!(occ.singleton_balls().len() as u64, occ.singletons());
        // Every ball in a singleton bin must map back to a singleton bin.
        for ball in occ.singleton_balls() {
            prop_assert!(occ.singleton_bins.contains(&occ.assignments[ball]));
        }
        if m > 0 {
            prop_assert!(occ.max_load >= 1);
            prop_assert!(occ.max_load <= m);
        }
    }

    #[test]
    fn occupancy_from_assignments_is_deterministic(assignments in prop::collection::vec(0u64..50, 0..200)) {
        let a = BinsOccupancy::from_assignments(50, assignments.clone());
        let b = BinsOccupancy::from_assignments(50, assignments);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn counts_only_path_agrees_with_full_occupancy(
        m in 0u64..=2_000,
        // Spans both density regimes around the dense limit max(8m, 1024),
        // including w ≫ m (the sparse sorted scan) and w = 1.
        w in 1u64..=200_000,
        seed in any::<u64>(),
    ) {
        let mut rng_full = Xoshiro256pp::seed_from_u64(seed);
        let mut rng_fast = Xoshiro256pp::seed_from_u64(seed);
        let mut scratch = OccupancyScratch::new();
        let full = throw_balls(m, w, &mut rng_full);
        let fast = occupancy_counts(m, w, &mut rng_fast, &mut scratch);
        // Same RNG stream → identical tallies in every category.
        prop_assert_eq!(fast.balls, full.balls());
        prop_assert_eq!(fast.bins, full.bins);
        prop_assert_eq!(fast.singletons, full.singletons());
        prop_assert_eq!(fast.empty_bins, full.empty_bins);
        prop_assert_eq!(fast.colliding_bins, full.colliding_bins);
        prop_assert_eq!(fast.max_load, full.max_load);
        prop_assert_eq!(fast.max_occupied_bin, full.assignments.iter().copied().max());
        // Both paths must consume the generator identically, or simulators
        // switching between them would diverge per seed.
        prop_assert_eq!(rng_full, rng_fast);
    }

    #[test]
    fn detailed_scratch_path_agrees_with_full_occupancy(
        m in 0u64..=500,
        w in 1u64..=100_000,
        seed in any::<u64>(),
    ) {
        let mut rng_full = Xoshiro256pp::seed_from_u64(seed);
        let mut rng_fast = Xoshiro256pp::seed_from_u64(seed);
        let mut scratch = OccupancyScratch::new();
        let full = throw_balls(m, w, &mut rng_full);
        let fast = throw_balls_into(m, w, &mut rng_fast, &mut scratch);
        prop_assert_eq!(fast.singletons, full.singletons());
        prop_assert_eq!(scratch.singleton_bins(), &full.singleton_bins[..]);
        prop_assert_eq!(rng_full, rng_fast);
    }

    #[test]
    fn scratch_reuse_does_not_leak_state_between_throws(
        throws in prop::collection::vec(0u64..=300, 1..8),
        w in 1u64..=50_000,
        seed in any::<u64>(),
    ) {
        // Reusing one scratch across a sequence of throws must give exactly
        // the same tallies as using a fresh scratch for each throw: the dense
        // counter window has to come back all-zero every time.
        let mut reused = OccupancyScratch::new();
        let mut rng_reused = Xoshiro256pp::seed_from_u64(seed);
        let mut rng_fresh = Xoshiro256pp::seed_from_u64(seed);
        for &m in &throws {
            let with_reuse = occupancy_counts(m, w, &mut rng_reused, &mut reused);
            let with_fresh = occupancy_counts(m, w, &mut rng_fresh, &mut OccupancyScratch::new());
            prop_assert_eq!(with_reuse, with_fresh);
        }
    }

    #[test]
    fn expected_singleton_fraction_is_probability(m in 1u64..=1_000_000, w in 1u64..=1_000_000) {
        let f = expected_singleton_fraction(m, w);
        prop_assert!((0.0..=1.0).contains(&f));
    }

    #[test]
    fn derive_seed_is_pure(master in any::<u64>(), path in prop::collection::vec(any::<u64>(), 0..5)) {
        prop_assert_eq!(derive_seed(master, &path), derive_seed(master, &path));
    }

    #[test]
    fn streaming_stats_mean_is_bounded_by_min_max(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let s: StreamingStats = xs.iter().copied().collect();
        prop_assert!(s.mean() >= s.min() - 1e-9);
        prop_assert!(s.mean() <= s.max() + 1e-9);
        prop_assert!(s.variance() >= 0.0);
        prop_assert!(s.ci95().contains(s.mean()));
    }

    #[test]
    fn streaming_stats_merge_matches_sequential(
        xs in prop::collection::vec(-1e3f64..1e3, 0..100),
        ys in prop::collection::vec(-1e3f64..1e3, 0..100),
    ) {
        let mut merged: StreamingStats = xs.iter().copied().collect();
        let right: StreamingStats = ys.iter().copied().collect();
        merged.merge(&right);
        let all: StreamingStats = xs.iter().chain(ys.iter()).copied().collect();
        prop_assert_eq!(merged.count(), all.count());
        prop_assert!((merged.mean() - all.mean()).abs() < 1e-6);
        prop_assert!((merged.variance() - all.variance()).abs() < 1e-4);
    }

    #[test]
    fn percentile_interpolates_within_the_sample_range(xs in prop::collection::vec(-1e3f64..1e3, 1..100), q in 0.0f64..=100.0) {
        // The interpolated percentile is monotone in q and bracketed by the
        // sample extremes (it is an element only at integral ranks).
        let p = percentile(&xs, q).unwrap();
        let lo = xs.iter().copied().reduce(f64::min).unwrap();
        let hi = xs.iter().copied().reduce(f64::max).unwrap();
        prop_assert!(lo <= p && p <= hi);
        prop_assert_eq!(percentile(&xs, 0.0).unwrap(), lo);
        prop_assert_eq!(percentile(&xs, 100.0).unwrap(), hi);
        prop_assert!(percentile(&xs, (q / 2.0).max(0.0)).unwrap() <= p);
    }

    #[test]
    fn ln_binomial_pascal_identity(n in 1u64..60, k in 0u64..60) {
        prop_assume!(k <= n);
        // C(n+1, k+1) = C(n, k) + C(n, k+1), checked in linear space.
        let lhs = ln_binomial(n + 1, k + 1).exp();
        let rhs = ln_binomial(n, k).exp() + ln_binomial(n, k + 1).exp();
        prop_assert!((lhs - rhs).abs() <= 1e-6 * lhs.max(1.0));
    }

    #[test]
    fn ln_factorial_is_monotone(n in 1u64..10_000) {
        prop_assert!(ln_factorial(n) >= ln_factorial(n - 1));
    }

    #[test]
    fn sketch_quantiles_stay_within_the_ledger(
        xs in prop::collection::vec(0u64..1_000_000, 1..3_000),
        seed in any::<u64>(),
        q in 0.0f64..=1.0,
    ) {
        let mut sketch = QuantileSketch::with_capacity(64, seed);
        for &v in &xs {
            sketch.push(v);
        }
        let mut xs = xs;
        xs.sort_unstable();
        let n = xs.len() as u64;
        let bound = sketch.rank_error_bound();
        let target = ((q * n as f64).ceil() as u64).clamp(1, n);
        let v = sketch.quantile(q).unwrap();
        // Tie-aware: the target rank must fall within the ledger of the
        // returned value's rank interval.
        let lo = xs.partition_point(|&x| x < v) as u64;
        let hi = xs.partition_point(|&x| x <= v) as u64;
        prop_assert!(lo <= target + bound && hi + bound + 1 >= target);
        prop_assert_eq!(sketch.min(), xs.first().copied());
        prop_assert_eq!(sketch.max(), xs.last().copied());
    }

    #[test]
    fn sketch_merge_conserves_weight_and_sums_ledgers(
        xs in prop::collection::vec(0u64..1_000, 0..500),
        ys in prop::collection::vec(0u64..1_000, 0..500),
    ) {
        let mut left = QuantileSketch::with_capacity(64, 1);
        for &v in &xs { left.push(v); }
        let mut right = QuantileSketch::with_capacity(64, 2);
        for &v in &ys { right.push(v); }
        let ledgers_before = left.rank_error_bound() + right.rank_error_bound();
        left.merge(&right);
        prop_assert_eq!(left.count(), (xs.len() + ys.len()) as u64);
        // Merging concatenates levels without loss: the ledger only grows
        // by compactions the merge itself triggers.
        prop_assert!(left.rank_error_bound() >= ledgers_before);
        if !xs.is_empty() || !ys.is_empty() {
            let exact_max = xs.iter().chain(ys.iter()).copied().max();
            prop_assert_eq!(left.max(), exact_max);
        }
    }

    #[test]
    fn binomial_pmf_in_unit_interval(n in 0u64..=2000, k in 0u64..=2000, p in 0.0f64..=1.0) {
        let x = binomial_pmf(n, k, p);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&x));
    }
}
