//! Sum-of-binomials slot classification over station *cohorts*.
//!
//! Dynamic arrivals break the homogeneity the aggregate fair engine relies
//! on — but only at arrival boundaries: stations that arrive together start
//! in identical protocol state, observe identical channel feedback, and
//! therefore stay in lockstep forever. The active population is a small set
//! of *cohorts*, each internally homogeneous: cohort `i` holds `m_i`
//! stations transmitting with common probability `p_i`, so its transmitter
//! count is `T_i ~ Binomial(m_i, p_i)` independently across cohorts.
//!
//! The channel only reveals whether the total `T = Σ T_i` is 0, 1 or ≥ 2:
//!
//! * **silence**: `S = Π_i P(T_i = 0)`;
//! * **delivery**: `D = Σ_i P(T_i = 1) · Π_{j≠i} P(T_j = 0)`, the sum of the
//!   sole-transmitter terms `w_i`;
//! * **collision** otherwise,
//!
//! and, conditioned on a delivery, the delivering cohort is `i` with
//! probability `w_i / D` (the delivering *station* being uniform over that
//! cohort's members, by exchangeability).
//!
//! [`CohortKernel`] maintains this classification along drifting
//! `(m_i, p_i)` schedules: each cohort owns a [`SlotKernelCache`] (two
//! incrementally-maintained threshold lines, the same machinery the
//! homogeneous aggregate engine uses), and the products are assembled per
//! slot with a prefix/suffix pass — O(C) arithmetic for C cohorts, no
//! divisions, no transcendentals on the hot path, and exactly one uniform
//! draw per live slot for the caller. A single *dead* cohort
//! (`P(T_i ≤ 1) = 0` at `f64` resolution) makes the whole slot a certain
//! collision, extending the aggregate engine's dead-slot elision across the
//! cohort decomposition.

use crate::binomial::{SlotKernelCache, SlotThresholds};
use crate::wire::{Decoder, Encoder, WireError};

/// Relative gap `|a − b| / max(a, b)` between two non-negative probabilities
/// (0 when both are 0). This is the metric of the cohort engine's merge
/// tolerance: two tracks are within tolerance `tol` exactly when their
/// relative gap is ≤ `tol`, so a gap doubles as the *smallest* tolerance
/// that would merge the pair — the quantity the bounded-class mode
/// thresholds when it must force the live class count down to its cap.
pub fn relative_gap(a: f64, b: f64) -> f64 {
    let scale = a.max(b);
    if scale <= 0.0 {
        0.0
    } else {
        (a - b).abs() / scale
    }
}

/// Incrementally maintained slot classification for a set of cohorts.
///
/// The caller keeps cohorts in any order and mirrors structural changes with
/// [`CohortKernel::push`] / [`CohortKernel::swap_remove`]; each slot it
/// passes the current per-cohort `(m_i, p_i)` to [`CohortKernel::classify`]
/// and receives the aggregate [`SlotThresholds`] (`t0 = S`, `t1 = S + D`),
/// against which one uniform draw resolves the trichotomy. On a delivery,
/// [`CohortKernel::delivering_cohort`] maps the draw's position inside the
/// delivery band back to the responsible cohort.
///
/// # Example
/// ```
/// use mac_prob::cohort::CohortKernel;
/// use mac_prob::outcome::slot_outcome_probabilities;
///
/// // Two cohorts: 3 stations at p = 0.1 and 2 stations at p = 0.25.
/// let mut kernel = CohortKernel::new();
/// kernel.push(3, 0.1);
/// kernel.push(2, 0.25);
/// let t = kernel.classify(&[3.0, 2.0], &[0.1, 0.25]);
/// let (a, b) = (slot_outcome_probabilities(3, 0.1), slot_outcome_probabilities(2, 0.25));
/// let silence = a.silence * b.silence;
/// let delivery = a.delivery * b.silence + b.delivery * a.silence;
/// assert!((t.t0 - silence).abs() < 1e-12);
/// assert!((t.t1 - (silence + delivery)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CohortKernel {
    caches: Vec<SlotKernelCache>,
    /// Per-cohort `P(T_i = 0)`, refreshed by [`CohortKernel::classify`].
    t0: Vec<f64>,
    /// Per-cohort `P(T_i = 1)`, refreshed by [`CohortKernel::classify`].
    d1: Vec<f64>,
    /// Per-cohort sole-transmitter weights `w_i = P(T_i=1)·Π_{j≠i} P(T_j=0)`.
    weights: Vec<f64>,
    /// `Σ_i w_i`, the delivery band width of the last classified slot.
    delivery: f64,
}

impl CohortKernel {
    /// Creates an empty kernel.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty kernel with room for `capacity` cohorts.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            caches: Vec::with_capacity(capacity),
            t0: Vec::with_capacity(capacity),
            d1: Vec::with_capacity(capacity),
            weights: Vec::with_capacity(capacity),
            delivery: 0.0,
        }
    }

    /// Number of cohorts currently tracked.
    pub fn len(&self) -> usize {
        self.caches.len()
    }

    /// True when no cohort is tracked.
    pub fn is_empty(&self) -> bool {
        self.caches.is_empty()
    }

    /// Registers a new cohort of `m` stations at probability `p`, appended
    /// at index [`CohortKernel::len`]` - 1`.
    pub fn push(&mut self, m: u64, p: f64) {
        self.caches.push(SlotKernelCache::new(m, p));
    }

    /// Removes cohort `i`, moving the last cohort into its slot (the same
    /// index discipline as `Vec::swap_remove`, so the caller's cohort list
    /// and this kernel stay aligned).
    pub fn swap_remove(&mut self, i: usize) {
        self.caches.swap_remove(i);
    }

    /// The two cached probability tracks of cohort `i`, sorted ascending
    /// (see [`SlotKernelCache::track_probabilities`]). The cohort engine
    /// merges two cohorts only when *both* tracks agree within its merge
    /// tolerance — agreement on the tracks actually driven by the protocol
    /// pins the underlying states together for the paper's fair protocols.
    pub fn track_probabilities(&self, i: usize) -> (f64, f64) {
        self.caches[i].track_probabilities()
    }

    /// The merge distance between cohorts `i` and `j`: the larger of the
    /// [`relative_gap`]s of their corresponding cached probability tracks.
    /// Equivalently, the smallest merge tolerance under which the two
    /// cohorts would be considered converged (given equal schedule phase).
    pub fn track_divergence(&self, i: usize, j: usize) -> f64 {
        let (ai, bi) = self.track_probabilities(i);
        let (aj, bj) = self.track_probabilities(j);
        relative_gap(ai, aj).max(relative_gap(bi, bj))
    }

    /// Classifies the current slot: updates every cohort's kernel to its
    /// `(m_i, p_i)` and returns the aggregate thresholds `t0 = P(T = 0)`,
    /// `t1 = P(T ≤ 1)`. One uniform draw `u` against the result resolves the
    /// slot (`u < t0` silence, `u < t1` delivery, else collision); a dead
    /// result ([`SlotThresholds::is_dead`]) is a certain collision for which
    /// no draw need be consumed.
    ///
    /// # Panics
    /// Panics if the slice lengths differ from [`CohortKernel::len`].
    pub fn classify(&mut self, ms: &[f64], ps: &[f64]) -> SlotThresholds {
        let n = self.caches.len();
        assert_eq!(ms.len(), n, "one m per cohort");
        assert_eq!(ps.len(), n, "one p per cohort");
        self.t0.resize(n, 0.0);
        self.d1.resize(n, 0.0);
        self.weights.resize(n, 0.0);

        // Pass 1: move every kernel to its (m, p) — the per-cohort state
        // must track the schedule even when the slot turns out dead — and
        // record the first two binomial CDF values.
        let mut any_dead = false;
        for i in 0..n {
            let line = self.caches[i].select(ms[i], ps[i]);
            let thresholds = line.thresholds();
            self.t0[i] = thresholds.t0;
            self.d1[i] = thresholds.t1 - thresholds.t0;
            any_dead |= line.is_dead();
        }
        if any_dead {
            // Some cohort alone produces ≥ 2 transmitters with probability
            // 1 at f64 resolution: certain collision, whatever the others do.
            self.delivery = 0.0;
            return SlotThresholds { t0: 0.0, t1: 0.0 };
        }

        // Pass 2 (forward): prefix products Π_{j<i} t0_j, parked in the
        // weight buffer. All factors are in [0, 1], so nothing can overflow;
        // a genuine underflow to 0.0 is the correct f64 answer.
        let mut prefix = 1.0;
        for i in 0..n {
            self.weights[i] = prefix;
            prefix *= self.t0[i];
        }
        let silence = prefix;

        // Pass 3 (backward): suffix products complete the sole-transmitter
        // weights w_i = d1_i · Π_{j≠i} t0_j without ever dividing — which
        // keeps the weights exact even when individual t0_j underflow (a
        // one-station cohort at p = 1 has t0 = 0, d1 = 1 and must shut out
        // every other cohort's delivery term).
        let mut suffix = 1.0;
        let mut delivery = 0.0;
        for i in (0..n).rev() {
            self.weights[i] *= self.d1[i] * suffix;
            delivery += self.weights[i];
            suffix *= self.t0[i];
        }
        self.delivery = delivery;
        SlotThresholds {
            t0: silence,
            t1: silence + delivery,
        }
    }

    /// Maps a draw's offset `x ∈ [0, D)` inside the delivery band of the
    /// last classified slot to `(cohort index, leftover fraction)`: the
    /// cohort is chosen with probability `w_i / D`, and the leftover
    /// fraction is uniform in `[0, 1)` given the choice — callers use it to
    /// pick the delivering station within the cohort without consuming a
    /// second draw.
    ///
    /// # Panics
    /// Panics if the last classification had an empty delivery band.
    pub fn delivering_cohort(&self, x: f64) -> (usize, f64) {
        assert!(
            self.delivery > 0.0,
            "delivering_cohort requires a slot with a non-empty delivery band"
        );
        let mut cumulative = 0.0;
        let mut fallback = 0usize;
        for (i, &w) in self.weights.iter().enumerate() {
            if w <= 0.0 {
                continue;
            }
            if x < cumulative + w {
                return (i, ((x - cumulative) / w).clamp(0.0, 1.0 - f64::EPSILON));
            }
            cumulative += w;
            fallback = i;
        }
        // f64 rounding pushed x past the accumulated sum: attribute the
        // delivery to the last cohort with positive weight.
        (fallback, 0.0)
    }

    /// Serialises the per-cohort kernel caches.
    ///
    /// Only the caches carry state that must survive a checkpoint — the
    /// `t0`/`d1`/`weights`/`delivery` buffers are scratch refreshed from
    /// scratch by every [`CohortKernel::classify`] call.
    pub fn encode(&self, enc: &mut Encoder) {
        enc.put_usize(self.caches.len());
        for cache in &self.caches {
            cache.encode(enc);
        }
    }

    /// Restores a kernel serialised by [`CohortKernel::encode`].
    ///
    /// # Errors
    /// [`WireError`] on a truncated or malformed stream.
    pub fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        let n = dec.take_usize()?;
        let mut caches = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            caches.push(SlotKernelCache::decode(dec)?);
        }
        Ok(Self {
            caches,
            t0: Vec::new(),
            d1: Vec::new(),
            weights: Vec::new(),
            delivery: 0.0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::{sample_heterogeneous_slot, slot_outcome_probabilities, SlotOutcome};
    use crate::rng::Xoshiro256pp;
    use rand::{Rng, SeedableRng};

    /// Brute-force reference: silence and delivery of a sum of independent
    /// binomials via per-cohort outcome probabilities.
    fn exact_reference(cohorts: &[(u64, f64)]) -> (f64, f64, Vec<f64>) {
        let pr: Vec<_> = cohorts
            .iter()
            .map(|&(m, p)| slot_outcome_probabilities(m, p))
            .collect();
        let silence = pr.iter().map(|o| o.silence).product::<f64>();
        let weights: Vec<f64> = (0..pr.len())
            .map(|i| {
                pr[i].delivery
                    * pr.iter()
                        .enumerate()
                        .filter(|&(j, _)| j != i)
                        .map(|(_, o)| o.silence)
                        .product::<f64>()
            })
            .collect();
        (silence, weights.iter().sum(), weights)
    }

    fn assert_rel_close(a: f64, b: f64, tol: f64, label: &str) {
        let scale = a.abs().max(b.abs()).max(1e-300);
        assert!(
            (a - b).abs() / scale < tol || (a - b).abs() < 1e-300,
            "{label}: {a} vs {b}"
        );
    }

    fn classify_fresh(cohorts: &[(u64, f64)]) -> (CohortKernel, SlotThresholds) {
        let mut kernel = CohortKernel::with_capacity(cohorts.len());
        for &(m, p) in cohorts {
            kernel.push(m, p);
        }
        let ms: Vec<f64> = cohorts.iter().map(|&(m, _)| m as f64).collect();
        let ps: Vec<f64> = cohorts.iter().map(|&(_, p)| p).collect();
        let t = kernel.classify(&ms, &ps);
        (kernel, t)
    }

    #[test]
    fn classification_matches_the_product_form() {
        for cohorts in [
            vec![(1u64, 0.3f64)],
            vec![(3, 0.1), (2, 0.25)],
            vec![(10, 0.05), (1, 1.0), (4, 0.2)],
            vec![(1000, 1e-3), (50, 0.01), (2, 0.5), (7, 1.0 / 7.0)],
            vec![(5, 0.0), (3, 0.4)],
        ] {
            let (_, t) = classify_fresh(&cohorts);
            let (silence, delivery, _) = exact_reference(&cohorts);
            assert_rel_close(t.t0, silence, 1e-12, "t0");
            assert_rel_close(t.t1, silence + delivery, 1e-12, "t1");
        }
    }

    #[test]
    fn empty_kernel_classifies_as_certain_silence() {
        let mut kernel = CohortKernel::new();
        let t = kernel.classify(&[], &[]);
        assert_eq!(t.t0, 1.0);
        assert_eq!(t.t1, 1.0);
        assert!(kernel.is_empty());
    }

    #[test]
    fn single_cohort_reduces_to_the_homogeneous_thresholds() {
        let (_, t) = classify_fresh(&[(1_000, 2.3e-4)]);
        let exact = SlotThresholds::exact(1_000, 2.3e-4);
        assert_rel_close(t.t0, exact.t0, 1e-12, "t0");
        assert_rel_close(t.t1, exact.t1, 1e-12, "t1");
    }

    #[test]
    fn a_dead_cohort_makes_the_slot_a_certain_collision() {
        // 10^6 stations at p = 1/21 are dead on their own; the tiny second
        // cohort cannot rescue the slot.
        let (_, t) = classify_fresh(&[(1_000_000, 1.0 / 21.0), (1, 0.01)]);
        assert!(t.is_dead());
    }

    #[test]
    fn certain_transmitters_shut_out_other_cohorts_deliveries() {
        // One station at p = 1 transmits surely: silence is impossible and
        // only that cohort can be the sole transmitter.
        let (kernel, t) = classify_fresh(&[(1, 1.0), (4, 0.2)]);
        assert_eq!(t.t0, 0.0);
        let expected = 0.8f64.powi(4);
        assert_rel_close(t.t1, expected, 1e-12, "sole delivery of the p=1 cohort");
        let (cohort, _) = kernel.delivering_cohort(0.5 * expected);
        assert_eq!(cohort, 0);
        // Two certain transmitters: certain collision.
        let (_, t) = classify_fresh(&[(1, 1.0), (1, 1.0), (4, 0.2)]);
        assert_eq!(t.t1, 0.0);
    }

    #[test]
    fn delivering_cohort_splits_the_band_by_the_sole_transmitter_weights() {
        let cohorts = vec![(3u64, 0.1f64), (2, 0.25), (8, 0.05)];
        let (kernel, t) = classify_fresh(&cohorts);
        let (silence, delivery, weights) = exact_reference(&cohorts);
        assert_rel_close(t.t1 - t.t0, delivery, 1e-12, "band width");
        // Walk the band on a fine grid: the measure of each cohort's segment
        // must match its weight, and the leftover fraction must sweep [0,1).
        let n = 200_000;
        let mut counts = vec![0u64; cohorts.len()];
        let mut fraction_sum = vec![0.0f64; cohorts.len()];
        for j in 0..n {
            let x = (j as f64 + 0.5) / n as f64 * delivery;
            let (i, frac) = kernel.delivering_cohort(x);
            counts[i] += 1;
            fraction_sum[i] += frac;
            assert!((0.0..1.0).contains(&frac));
        }
        for i in 0..cohorts.len() {
            let measured = counts[i] as f64 / n as f64;
            assert_rel_close(measured, weights[i] / delivery, 1e-3, "segment measure");
            // The leftover fraction is uniform on each segment: mean ≈ 1/2.
            let mean_fraction = fraction_sum[i] / counts[i] as f64;
            assert!(
                (mean_fraction - 0.5).abs() < 1e-2,
                "fraction mean {mean_fraction}"
            );
        }
        let _ = silence;
    }

    #[test]
    fn classification_agrees_with_per_station_sampling_statistically() {
        // Expand the cohorts into per-station probabilities and compare the
        // trichotomy frequencies of the per-station reference sampler with
        // the kernel's thresholds.
        let cohorts = [(6u64, 0.08f64), (3, 0.2), (10, 0.03)];
        let (_, t) = classify_fresh(&cohorts);
        let ps: Vec<f64> = cohorts
            .iter()
            .flat_map(|&(m, p)| std::iter::repeat_n(p, m as usize))
            .collect();
        let mut rng = Xoshiro256pp::seed_from_u64(2026);
        let n = 200_000;
        let mut counts = [0u64; 3];
        for _ in 0..n {
            match sample_heterogeneous_slot(&ps, &mut rng).0 {
                SlotOutcome::Silence => counts[0] += 1,
                SlotOutcome::Delivery => counts[1] += 1,
                SlotOutcome::Collision => counts[2] += 1,
            }
        }
        let tol = 4.0 * (0.25f64 / n as f64).sqrt();
        assert!((counts[0] as f64 / n as f64 - t.t0).abs() < tol);
        assert!((counts[1] as f64 / n as f64 - (t.t1 - t.t0)).abs() < tol);
    }

    #[test]
    fn kernel_tracks_drifting_cohort_schedules() {
        // Three cohorts on OFA-shaped drifting schedules, checked against a
        // fresh exact evaluation every slot.
        let mut kernel = CohortKernel::new();
        let mut cohorts: Vec<(u64, f64)> = vec![(500, 1.0 / 600.0), (200, 1.0 / 230.0), (40, 0.5)];
        for &(m, p) in &cohorts {
            kernel.push(m, p);
        }
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        for step in 0..20_000u64 {
            for (i, (m, p)) in cohorts.iter_mut().enumerate() {
                // Small relative drift plus occasional deliveries.
                *p *= 1.0 - 1e-4;
                if step % 97 == 31 && *m > 1 && i == step as usize % 3 {
                    *m -= 1;
                }
            }
            let ms: Vec<f64> = cohorts.iter().map(|&(m, _)| m as f64).collect();
            let ps: Vec<f64> = cohorts.iter().map(|&(_, p)| p).collect();
            let t = kernel.classify(&ms, &ps);
            let (silence, delivery, _) = exact_reference(&cohorts);
            assert_rel_close(t.t0, silence, 1e-9, "t0");
            assert_rel_close(t.t1, silence + delivery, 1e-9, "t1");
            let _ = rng.gen::<f64>();
        }
    }

    #[test]
    fn relative_gap_is_the_merge_tolerance_metric() {
        assert_eq!(relative_gap(0.0, 0.0), 0.0);
        assert_eq!(relative_gap(0.5, 0.5), 0.0);
        assert!((relative_gap(0.5, 0.45) - 0.1).abs() < 1e-12);
        assert!((relative_gap(0.45, 0.5) - 0.1).abs() < 1e-12);
        // A zero against a positive track is a full-scale gap.
        assert_eq!(relative_gap(0.0, 0.3), 1.0);
        // Consistency with the merge predicate |a−b| ≤ tol·max(a,b): the
        // gap is exactly the smallest tolerance that admits the pair.
        let (a, b) = (0.2, 0.26);
        let gap = relative_gap(a, b);
        assert!((a - b).abs() <= gap * a.max(b) + 1e-15);
        assert!((a - b).abs() > (gap - 1e-9) * a.max(b));
    }

    #[test]
    fn track_divergence_takes_the_worse_of_both_tracks() {
        let (kernel, _) = classify_fresh(&[(10, 0.1), (10, 0.11), (10, 0.1)]);
        assert_eq!(kernel.track_divergence(0, 2), 0.0);
        let d = kernel.track_divergence(0, 1);
        assert!(d > 0.0 && d <= 1.0);
        assert_eq!(kernel.track_divergence(0, 1), kernel.track_divergence(1, 0));
    }

    #[test]
    fn swap_remove_keeps_indices_aligned_with_the_callers_list() {
        let mut cohorts = vec![(3u64, 0.1f64), (2, 0.25), (8, 0.05), (1, 0.9)];
        let mut kernel = CohortKernel::new();
        for &(m, p) in &cohorts {
            kernel.push(m, p);
        }
        cohorts.swap_remove(1);
        kernel.swap_remove(1);
        assert_eq!(kernel.len(), 3);
        let ms: Vec<f64> = cohorts.iter().map(|&(m, _)| m as f64).collect();
        let ps: Vec<f64> = cohorts.iter().map(|&(_, p)| p).collect();
        let t = kernel.classify(&ms, &ps);
        let (silence, delivery, _) = exact_reference(&cohorts);
        assert_rel_close(t.t0, silence, 1e-10, "t0");
        assert_rel_close(t.t1, silence + delivery, 1e-10, "t1");
    }
}
