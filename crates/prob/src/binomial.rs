//! Exact binomial sampling and O(1) aggregate slot resolution.
//!
//! When all `m` active stations of a slot transmit independently with the
//! same probability `p`, the number of transmitters is `T ~ Binomial(m, p)`
//! and the channel outcome depends only on whether `T` is 0, 1 or ≥ 2. This
//! module provides the machinery to resolve such *homogeneous* slots in O(1)
//! — and, on the hot path, in a handful of arithmetic operations with **no
//! per-slot transcendentals**:
//!
//! * [`sample_binomial_fast`] — an exact `Binomial(n, p)` sampler: CDF
//!   inversion for small means, the BTPE rejection method of
//!   Kachitvichyanukul & Schmeiser for `n·min(p, 1-p) ≥ 10`. Expected O(1)
//!   for any `(n, p)`, unlike the geometric-skip sampler in
//!   [`crate::sampling`] (kept as the independent reference implementation
//!   the property tests cross-check against).
//! * [`SlotThresholds`] — the first two steps of binomial CDF inversion,
//!   `P(T = 0)` and `P(T ≤ 1)`, which classify a slot's trichotomy from one
//!   uniform draw: `u < P(T=0)` is silence, `u < P(T≤1)` is a delivery,
//!   anything else a collision.
//! * [`SlotKernel`] — incremental maintenance of [`SlotThresholds`] along a
//!   *slowly drifting* `(m, p)` sequence, the access pattern of the fair
//!   protocols (the probability changes by `O(p/κ)` per slot between
//!   deliveries). Between exact re-anchorings the kernel updates the
//!   thresholds with short Taylor polynomials whose truncation error is
//!   below `1e-12` relative, so a simulator pays `exp`/`ln` only a few times
//!   per *delivery* instead of several times per *slot*.
//!
//! ## Dead slots
//!
//! When `P(T ≤ 1)` evaluates to exactly `0.0` in `f64` (e.g. `m = 10⁶`
//! stations at `p = 1/21`: `P(T ≤ 1) < e^{-47000}`), no uniform draw can fall
//! below the threshold and the slot is a *certain collision at `f64`
//! resolution*: the kernel reports it via [`SlotKernel::is_dead`] /
//! [`SlotThresholds::is_dead`] and a simulator may skip the draw entirely.
//! This changes the RNG stream but not the distribution of any outcome —
//! the distributional-equivalence contract of `crates/sim/DESIGN.md` §5.

use crate::outcome::{slot_outcome_probabilities, SlotOutcome};
use crate::special::ln_gamma;
use crate::wire::{Decoder, Encoder, WireError};
use rand::Rng;
use std::sync::OnceLock;

/// Size of the shared reciprocal table: `recip_table()[t] == 1/t` for
/// `1 ≤ t < 256`. Covers every transmitter count the CDF-continuation and
/// mode-anchored pmf recurrences touch inside the sampled λ bands (the
/// certain-collision shortcut absorbs larger λ); rarer values fall back to
/// division.
pub(crate) const RECIP_TABLE_N: usize = 256;

/// `1/t` for `t ∈ [1, 256)` (entry 0 is unused), shared by the pmf
/// recurrences of [`ModeKernel`] and the window walk's CDF continuation so
/// neither pays a latency-chained divide per term.
pub(crate) fn recip_table() -> &'static [f64; RECIP_TABLE_N] {
    static TABLE: OnceLock<[f64; RECIP_TABLE_N]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0.0; RECIP_TABLE_N];
        for (t, r) in table.iter_mut().enumerate().skip(1) {
            *r = 1.0 / t as f64;
        }
        table
    })
}

/// Largest `n·min(p, 1-p)` handled by CDF inversion; above it BTPE applies.
const INVERSION_MEAN_MAX: f64 = 10.0;

/// `ln P(T ≤ 1)` below which the slot is certainly dead: `e^{-780}·(1+λ)`
/// with `λ ≤ 780` is below `2^{-1074}` (the smallest positive `f64`), so the
/// exact `f64` evaluation would round to `0.0` as well.
pub(crate) const DEAD_LOG: f64 = -780.0;

/// Largest exponent offset the incremental `exp` polynomial accepts
/// (`2^-4`; degree 7, truncation error below `1.5e-15` relative).
pub(crate) const MAX_EXP_OFFSET: f64 = 1.0 / 16.0;

/// Largest `ε` the incremental `ln1p` polynomial accepts (`2^-10`;
/// truncation error below `2e-13` relative).
const MAX_LN_EPS: f64 = 1.0 / 1024.0;

/// Largest `p` for which `1/(1-p)` is evaluated by series instead of division.
const SERIES_P_MAX: f64 = 1.0 / 1024.0;

/// Incremental updates between forced exact re-anchorings (bounds the
/// accumulated rounding drift of the maintained `ln(1-p)` to a few ulps).
const REBASE_PERIOD: u32 = 4096;

/// `exp(d)` for `|d| ≤ 1/16` by a degree-7 Taylor polynomial (truncation
/// error below `1.5e-15` relative).
#[inline]
pub(crate) fn exp_small(d: f64) -> f64 {
    debug_assert!(d.abs() <= MAX_EXP_OFFSET * 1.0001);
    1.0 + d
        * (1.0
            + d * (1.0 / 2.0
                + d * (1.0 / 6.0
                    + d * (1.0 / 24.0
                        + d * (1.0 / 120.0 + d * (1.0 / 720.0 + d * (1.0 / 5040.0)))))))
}

/// `ln(1 + e)` for `|e| ≤ 2^-16` by a degree-4 Taylor polynomial (truncation
/// error below `e⁴/5 ≈ 1e-20` relative).
#[inline]
fn ln1p_small(e: f64) -> f64 {
    debug_assert!(e.abs() <= MAX_LN_EPS * 1.0001);
    e * (1.0 - e * (1.0 / 2.0 - e * (1.0 / 3.0 - e * (1.0 / 4.0))))
}

/// `1/(1 - p)` — by geometric series for tiny `p` (the fair protocols'
/// common case, where the division's latency would sit on the hot loop's
/// critical path), by actual division otherwise.
#[inline]
pub(crate) fn inv_q(p: f64) -> f64 {
    if p.abs() <= SERIES_P_MAX {
        // Truncation error p⁷ ≈ 2^-70 relative.
        1.0 + p * (1.0 + p * (1.0 + p * (1.0 + p * (1.0 + p * (1.0 + p)))))
    } else {
        1.0 / (1.0 - p)
    }
}

/// The first two binomial CDF values of a homogeneous slot: `t0 = P(T = 0)`
/// and `t1 = P(T ≤ 1)` for `T ~ Binomial(m, p)`.
///
/// One uniform draw against these thresholds resolves the slot trichotomy —
/// exactly the first two steps of sampling `T` by CDF inversion, stopped as
/// soon as the outcome class (`T = 0`, `T = 1`, `T ≥ 2`) is known.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlotThresholds {
    /// `P(T = 0)` — the probability of a silent slot.
    pub t0: f64,
    /// `P(T ≤ 1)` — silence plus a single (delivering) transmitter.
    pub t1: f64,
}

impl SlotThresholds {
    /// Computes the thresholds exactly (up to `f64` rounding), using the same
    /// log-space evaluation as [`slot_outcome_probabilities`].
    pub fn exact(m: u64, p: f64) -> Self {
        let pr = slot_outcome_probabilities(m, p);
        Self {
            t0: pr.silence,
            t1: pr.silence + pr.delivery,
        }
    }

    /// `true` when no uniform draw in `[0, 1)` can produce silence or a
    /// delivery: the slot is a certain collision at `f64` resolution.
    #[inline]
    pub fn is_dead(&self) -> bool {
        self.t1 <= 0.0
    }

    /// Classifies a uniform draw `u ∈ [0, 1)` into the slot trichotomy.
    #[inline]
    pub fn classify(&self, u: f64) -> SlotOutcome {
        if u >= self.t1 {
            SlotOutcome::Collision
        } else if u >= self.t0 {
            SlotOutcome::Delivery
        } else {
            SlotOutcome::Silence
        }
    }
}

/// Resolves one homogeneous slot (`m` stations at probability `p`) from a
/// single binomial classification draw.
///
/// Distribution-identical to [`crate::outcome::sample_slot_outcome`]; this
/// entry point exists as the self-describing aggregate form (`T = 0` empty,
/// `T = 1` delivery, `T ≥ 2` collision) and as the uncached reference for
/// [`SlotKernel`].
pub fn sample_slot_class<R: Rng + ?Sized>(m: u64, p: f64, rng: &mut R) -> SlotOutcome {
    let thresholds = SlotThresholds::exact(m, p);
    if thresholds.is_dead() {
        return SlotOutcome::Collision;
    }
    thresholds.classify(rng.gen::<f64>())
}

/// Largest `p` admitted by the short-polynomial hot path of
/// [`SlotKernel::update`] (`2^-14`): below it, dropped series terms are at
/// relative `p³ < 2.3e-13`.
const HOT_P_MAX: f64 = 6.103_515_625e-5;

/// Largest relative probability move `|Δp|/p` the hot path accepts (`2^-13`
/// — covers both the fair protocols' estimator drift, `|Δp|/p ≈ p/κ̃`, and
/// the window walk's `1/w → 1/(w-1)` steps for `w ≥ 2^14`).
const HOT_MOVE_MAX: f64 = 1.220_703_125e-4;

/// Largest exponent offset the hot path's cubic `exp` accepts (`2^-10`,
/// truncation error `d⁴/24 < 4e-14` relative).
const HOT_OFFSET_MAX: f64 = 9.765_625e-4;

/// Incrementally maintained [`SlotThresholds`] for a drifting `(m, p)`
/// sequence.
///
/// The kernel anchors an exact evaluation (`t0_base = exp(L_base)`,
/// `L = m·ln(1-p)`) and follows small moves of `m` and `p` with Taylor
/// updates of `ln(1-p)` and of the exponent offset `L − L_base`; it re-anchors
/// exactly whenever the move is too large, the offset outgrows the
/// polynomial, or [`REBASE_PERIOD`] incremental steps have accumulated.
/// Tiny probabilities with tiny moves (the fair protocols' steady state)
/// take a short-polynomial hot path tuned for the simulator's inner loop;
/// larger ones take a general cold path. Relative error against
/// [`SlotThresholds::exact`] stays below `~1e-11` (property-tested).
#[derive(Debug, Clone, Copy)]
pub struct SlotKernel {
    m: f64,
    p: f64,
    /// `ln(1 - p)`, maintained incrementally.
    lnq: f64,
    /// `L = m·ln(1-p)` at the last exact anchoring.
    ell_base: f64,
    /// `exp(ell_base)`.
    t0_base: f64,
    thresholds: SlotThresholds,
    dead: bool,
    updates_since_rebase: u32,
}

impl SlotKernel {
    /// Creates a kernel anchored at `(m, p)`.
    pub fn new(m: u64, p: f64) -> Self {
        let mut kernel = Self {
            m: 0.0,
            p: -1.0,
            lnq: 0.0,
            ell_base: 0.0,
            t0_base: 1.0,
            thresholds: SlotThresholds { t0: 1.0, t1: 1.0 },
            dead: false,
            updates_since_rebase: 0,
        };
        kernel.rebase(m as f64, p);
        kernel
    }

    /// The `m` the thresholds currently describe.
    #[inline]
    pub fn m(&self) -> f64 {
        self.m
    }

    /// The `p` the thresholds currently describe.
    #[inline]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Current thresholds.
    #[inline]
    pub fn thresholds(&self) -> SlotThresholds {
        self.thresholds
    }

    /// `true` when the current slot is a certain collision at `f64`
    /// resolution (no draw needed).
    #[inline]
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Classifies a uniform draw against the current thresholds.
    #[inline]
    pub fn classify(&self, u: f64) -> SlotOutcome {
        self.thresholds.classify(u)
    }

    /// Moves the kernel to `(m, p)`, incrementally when the move is small.
    ///
    /// `m` is passed as `f64` because callers track it that way in their hot
    /// loops; it must be a non-negative integer value.
    #[inline]
    pub fn update(&mut self, m: f64, p: f64) {
        if m == self.m && p == self.p {
            return;
        }
        // Hot path: tiny probability, tiny relative move — short polynomials
        // with no division, tuned for the aggregate simulator's inner loop.
        let po = self.p;
        let x = po - p;
        if po > 0.0
            && po <= HOT_P_MAX
            && x.abs() <= po * HOT_MOVE_MAX
            && self.updates_since_rebase < REBASE_PERIOD
        {
            // ln((1-p)/(1-po)) = ln1p(x/(1-po))
            //                  = x·(1 + po + po²) − x²/2 + O(x·po³).
            let lnq = self.lnq + (x - 0.5 * x * x) + x * (po + po * po);
            let ell = m * lnq;
            self.m = m;
            self.p = p;
            self.lnq = lnq;
            self.updates_since_rebase += 1;
            if ell <= DEAD_LOG {
                self.thresholds = SlotThresholds { t0: 0.0, t1: 0.0 };
                self.dead = true;
                return;
            }
            let d = ell - self.ell_base;
            if d.abs() <= HOT_OFFSET_MAX {
                // exp(d) cubic; 1/(1-p) ≈ 1 + p + p² (error p³ relative).
                let t0 = self.t0_base * (1.0 + d * (1.0 + d * (0.5 + d * (1.0 / 6.0))));
                let t1 = t0 + t0 * (m * p) * (1.0 + p + p * p);
                self.thresholds = SlotThresholds { t0, t1 };
                self.dead = false;
                return;
            }
            if d.abs() <= MAX_EXP_OFFSET {
                // Larger drift (the window walk's shrinking windows): the
                // wider degree-7 polynomial still avoids a re-anchor.
                let t0 = self.t0_base * exp_small(d);
                let t1 = t0 + t0 * (m * p) * (1.0 + p + p * p);
                self.thresholds = SlotThresholds { t0, t1 };
                self.dead = false;
                return;
            }
            self.rebase(m, p);
            return;
        }
        self.update_cold(m, p);
    }

    #[cold]
    fn update_cold(&mut self, m: f64, p: f64) {
        // General incremental path: any probabilities with a well-conditioned
        // ε and log-space moves small enough for the wider Taylor kernels.
        if p > 0.0 && p < 1.0 && self.p > 0.0 && self.p < 1.0 && m >= 1.0 {
            let eps = (self.p - p) * inv_q(self.p);
            if eps.abs() <= MAX_LN_EPS && self.updates_since_rebase < REBASE_PERIOD {
                let lnq = self.lnq + ln1p_small(eps);
                let ell = m * lnq;
                self.m = m;
                self.p = p;
                self.lnq = lnq;
                self.updates_since_rebase += 1;
                if ell <= DEAD_LOG {
                    // Certain collision: exp would underflow to zero anyway.
                    self.thresholds = SlotThresholds { t0: 0.0, t1: 0.0 };
                    self.dead = true;
                    return;
                }
                let offset = ell - self.ell_base;
                if offset.abs() <= MAX_EXP_OFFSET {
                    let t0 = self.t0_base * exp_small(offset);
                    let t1 = t0 + t0 * (m * p) * inv_q(p);
                    self.thresholds = SlotThresholds {
                        t0,
                        t1: t1.min(1.0),
                    };
                    self.dead = t1 <= 0.0;
                    return;
                }
                // Offset outgrew the polynomial: fall through to re-anchor
                // (the state above is already consistent; rebase overwrites).
            }
        }
        self.rebase(m, p);
    }

    /// Serialises the complete kernel state.
    ///
    /// Every field is captured verbatim — including the Taylor-maintained
    /// `lnq`/`ell_base`/`t0_base` and the rebase countdown — because a kernel
    /// rebuilt fresh from `(m, p)` would re-anchor *exactly* and then follow
    /// a (minutely) different threshold trajectory than the incrementally
    /// maintained original. Checkpoint/resume bit-identity requires the
    /// incremental state itself.
    pub fn encode(&self, enc: &mut Encoder) {
        enc.put_f64(self.m);
        enc.put_f64(self.p);
        enc.put_f64(self.lnq);
        enc.put_f64(self.ell_base);
        enc.put_f64(self.t0_base);
        enc.put_f64(self.thresholds.t0);
        enc.put_f64(self.thresholds.t1);
        enc.put_bool(self.dead);
        enc.put_u32(self.updates_since_rebase);
    }

    /// Restores a kernel serialised by [`SlotKernel::encode`].
    ///
    /// # Errors
    /// [`WireError`] on a truncated or malformed stream.
    pub fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(Self {
            m: dec.take_f64()?,
            p: dec.take_f64()?,
            lnq: dec.take_f64()?,
            ell_base: dec.take_f64()?,
            t0_base: dec.take_f64()?,
            thresholds: SlotThresholds {
                t0: dec.take_f64()?,
                t1: dec.take_f64()?,
            },
            dead: dec.take_bool()?,
            updates_since_rebase: dec.take_u32()?,
        })
    }

    /// Exact re-anchoring at `(m, p)`.
    #[cold]
    fn rebase(&mut self, m: f64, p: f64) {
        debug_assert!(m >= 0.0 && (0.0..=1.0).contains(&p), "m={m} p={p}");
        let thresholds = SlotThresholds::exact(m as u64, p);
        self.m = m;
        self.p = p;
        self.lnq = if p < 1.0 {
            (-p).ln_1p()
        } else {
            f64::NEG_INFINITY
        };
        self.ell_base = m * self.lnq;
        self.t0_base = thresholds.t0;
        self.thresholds = thresholds;
        self.dead = thresholds.is_dead();
        self.updates_since_rebase = 0;
    }
}

/// A two-line cache of [`SlotKernel`]s for protocols that interleave **two
/// probability tracks** per feedback event (e.g. One-fail Adaptive's AT/BT
/// parity, Log-fails Adaptive's AT steps against its fixed BT probability).
///
/// Each track either repeats its probability exactly — a bit-equality cache
/// hit on one of the two lines — or drifts slowly, which the owning line
/// follows with [`SlotKernel::update`]'s short Taylor path. On a miss the
/// line whose probability is nearest in *relative* terms moves: the tracks
/// live at very different scales (an AT probability is `~1/κ̃ ≈ 1/m` while a
/// BT probability is `~1/log σ`), and an absolute metric would park one line
/// and thrash the other across the scales.
///
/// This is the cache the aggregate fair engine ran inline since PR 3; it is
/// a named type here so the cohort engine can keep one per cohort.
#[derive(Debug, Clone, Copy)]
pub struct SlotKernelCache {
    line_a: SlotKernel,
    line_b: SlotKernel,
}

impl SlotKernelCache {
    /// Creates a cache with both lines anchored at `(m, p)` — the
    /// nearest-probability rule below sorts the tracks out within the first
    /// two selections.
    pub fn new(m: u64, p: f64) -> Self {
        let line = SlotKernel::new(m, p);
        Self {
            line_a: line,
            line_b: line,
        }
    }

    /// Returns the kernel describing `(m, p)`, updating at most one line.
    ///
    /// Exact hit on either line is free; otherwise the line with the nearest
    /// probability in relative terms (`|p - p_line| / (p + p_line)`, compared
    /// cross-multiplied so no division is paid) absorbs the move.
    #[inline]
    pub fn select(&mut self, m: f64, p: f64) -> &SlotKernel {
        if self.line_a.m() == m && self.line_a.p() == p {
            &self.line_a
        } else if self.line_b.m() == m && self.line_b.p() == p {
            &self.line_b
        } else if (p - self.line_a.p()).abs() * (p + self.line_b.p())
            <= (p - self.line_b.p()).abs() * (p + self.line_a.p())
        {
            self.line_a.update(m, p);
            &self.line_a
        } else {
            self.line_b.update(m, p);
            &self.line_b
        }
    }

    /// The probabilities currently held by the two cache lines, in ascending
    /// order. These are the protocol's two probability *tracks* as actually
    /// observed — the cohort engine compares them across cohorts to decide
    /// whether two cohorts have converged onto the same schedule.
    pub fn track_probabilities(&self) -> (f64, f64) {
        let (a, b) = (self.line_a.p(), self.line_b.p());
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Serialises both cache lines (see [`SlotKernel::encode`] for why the
    /// incremental state is captured verbatim).
    pub fn encode(&self, enc: &mut Encoder) {
        self.line_a.encode(enc);
        self.line_b.encode(enc);
    }

    /// Restores a cache serialised by [`SlotKernelCache::encode`].
    ///
    /// # Errors
    /// [`WireError`] on a truncated or malformed stream.
    pub fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(Self {
            line_a: SlotKernel::decode(dec)?,
            line_b: SlotKernel::decode(dec)?,
        })
    }
}

/// Largest relative probability move `|Δp|/p` the mode kernel follows
/// incrementally (`2^-12` — one `1/w → 1/(w-1)` step for windows of
/// `w ≥ 4096` slots). Larger moves force an exact re-anchor.
const MODE_RP_MAX: f64 = 2.441_406_25e-4;

/// Largest `k₀/n` for which the maintained harmonic drift sums support
/// *incremental* updates to the documented tolerance (`2^-12`; in the
/// window walk this is `1/w`, so the gate coincides with [`MODE_RP_MAX`]).
const MODE_H_MAX: f64 = 2.441_406_25e-4;

/// Largest `k₀/n` for which the cancellation-free series *anchor* itself is
/// valid to the documented tolerance (`2^-8`; truncation after the quartic
/// power sum stays below `k₀·(k₀/n)⁵/5 ≈ 5e-11`). Between the two gates the
/// kernel re-anchors on every update — still O(1) and exact. Beyond this
/// one it falls back to the log-gamma pmf, whose accuracy at paper-scale
/// `n` degrades to the `~1e-7` absolute rounding of large `ln Γ`
/// differences (still far below statistical visibility).
const MODE_SERIES_MAX: f64 = 3.906_25e-3;

/// Accumulated-drift tolerance of the incrementally maintained mode pmf,
/// relative: the kernel re-anchors exactly before the neglected quartic
/// term of the falling-factorial Taylor stack (`h1` maintained through
/// `h2`, `h2` through the anchored `h3`) can move `ln f(k₀)` by more than
/// this — the bound is `(k₀/4)·Δ⁴` for a relative `n`-drift of `Δ` since
/// the anchor, so the kernel allows `Δ ≤ (4·tol/k₀)^{1/4}` (see
/// `crates/sim/DESIGN.md` §7 for the error ledger).
const MODE_PMF_TOL: f64 = 1e-10;

/// `ln k!` for `k < 256`, exact summation, built once. The mode kernel's
/// anchor needs it for the binomial coefficient without the catastrophic
/// `ln Γ(n)` cancellation at paper-scale `n`.
fn ln_factorial_table() -> &'static [f64; 256] {
    static TABLE: OnceLock<[f64; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0.0; 256];
        let mut acc = 0.0;
        for (k, slot) in table.iter_mut().enumerate() {
            if k >= 2 {
                acc += (k as f64).ln();
            }
            *slot = acc;
        }
        table
    })
}

/// Incrementally maintained binomial pmf **anchored at the mode**, plus the
/// O(√λ) conditional sampler for collision-slot transmitter counts.
///
/// The window walk resolves each collision slot by sampling
/// `T ~ Binomial(m, 1/w_left)` conditioned on `T ≥ 2`. The classic ways to
/// do that — CDF continuation from `T = 2` upward, or rejection from an
/// unconditioned sampler — cost O(λ) pmf terms or a full BTPE draw per
/// slot. This kernel instead keeps the pmf value at the **mode**
/// `k₀ = ⌊(n+1)p⌋` and inverts the conditional CDF by enumerating the
/// support **outward from the mode** (`k₀, k₀+1, k₀−1, k₀+2, …`, skipping
/// `T < 2`): any fixed enumeration order is a valid inversion, and this one
/// reaches the drawn value in `E|T − k₀| + O(1) ≈ 0.8·√λ` pmf-recurrence
/// steps instead of `~λ`.
///
/// Like [`SlotKernel`], the anchored value is maintained *incrementally*
/// along the walk's drifting `(m, w)`: a per-slot move
/// `(n, p) → (n − t, p')` updates `ln f(k₀)` with short Taylor polynomials
/// (the falling-factorial drift through maintained harmonic sums, the
/// `ln p` / `ln(1−p)` moves through `ln1p` kernels), and the kernel
/// re-anchors **exactly** — a cancellation-free O(1) evaluation — whenever
/// the accumulated third-order drift could move the pmf by more than
/// [`MODE_PMF_TOL`] relative, the relative probability move exceeds
/// [`MODE_RP_MAX`], or [`REBASE_PERIOD`] steps have passed. See
/// `crates/sim/DESIGN.md` §7 for the recurrence and the error budget.
#[derive(Debug, Clone, Copy)]
pub struct ModeKernel {
    /// Current trial count (integer-valued).
    n: f64,
    /// Current success probability.
    p: f64,
    /// `1/p`, maintained by Newton steps (exact at anchor time).
    inv_p: f64,
    /// `ln(1 - p)`, maintained incrementally.
    lnq: f64,
    /// Anchored mode (integer-valued; the enumeration start, not
    /// necessarily the exact mode of the *current* `(n, p)` — drift moves
    /// the true mode by `O(1)` between anchors, which costs a couple of
    /// extra enumeration steps and no exactness).
    k0: f64,
    /// `f(k₀)` at the current `(n, p)`, maintained incrementally.
    fm: f64,
    /// Maintained `Σ_{j<k₀} 1/(n−j)` (drift rate of the falling factorial).
    h1: f64,
    /// Maintained `Σ_{j<k₀} 1/(n−j)²` (drift rate of `h1`).
    h2: f64,
    /// Anchored `Σ_{j<k₀} 1/(n−j)³` (drift rate of `h2`).
    h3: f64,
    /// Re-anchor when `n` falls below this: the relative drift allowance
    /// `(4·tol/k₀)^{1/4}` derived from [`MODE_PMF_TOL`].
    n_floor: f64,
    /// Incremental updates left before a forced exact re-anchor.
    steps_left: u32,
    /// `false` when the anchor's series gate (`k₀/n ≤ 2^-12`) failed: every
    /// update re-anchors and accuracy is the log-gamma route's.
    incremental_ok: bool,
}

impl ModeKernel {
    /// Creates a kernel anchored at `(n, p)`.
    pub fn new(n: u64, p: f64) -> Self {
        let mut kernel = Self {
            n: 0.0,
            p: -1.0,
            inv_p: f64::INFINITY,
            lnq: 0.0,
            k0: 0.0,
            fm: 1.0,
            h1: 0.0,
            h2: 0.0,
            h3: 0.0,
            n_floor: 0.0,
            steps_left: 0,
            incremental_ok: false,
        };
        kernel.anchor(n as f64, p);
        kernel
    }

    /// The `n` the pmf currently describes.
    #[inline]
    pub fn n(&self) -> f64 {
        self.n
    }

    /// The `p` the pmf currently describes.
    #[inline]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// The anchored mode `k₀`.
    #[inline]
    pub fn mode(&self) -> u64 {
        self.k0 as u64
    }

    /// The maintained pmf value `P(T = k₀)` at the current `(n, p)`.
    #[inline]
    pub fn pmf_mode(&self) -> f64 {
        self.fm
    }

    /// Moves the kernel to `(n, p)`, incrementally when the move is small
    /// (`n` may only decrease between anchors, the access pattern of the
    /// conditional window walk).
    #[inline]
    pub fn update(&mut self, n: f64, p: f64) {
        if n == self.n && p == self.p {
            return;
        }
        let t = self.n - n;
        let dp = p - self.p;
        let rp = dp * self.inv_p;
        // Negated comparisons so that NaN (e.g. `rp` after a degenerate
        // anchor at p = 0) falls through to the exact re-anchor.
        if !(self.incremental_ok
            && t >= 0.0
            && rp.abs() <= MODE_RP_MAX
            && n >= self.n_floor
            && self.steps_left > 0)
        {
            self.anchor(n, p);
            return;
        }
        // Logarithmic increments for the generic move (the window walk's
        // fused loop computes these itself and calls `step_precomputed`
        // directly); `|rp| ≤ 2^-12` keeps both inside the `ln1p` range.
        let dlnp = ln1p_small(rp);
        let eps = -dp * inv_q(self.p);
        let dlnq = ln1p_small(eps);
        // Two Newton steps keep 1/p at full accuracy (the first absorbs
        // the O(rp) staleness, the second its square).
        let mut inv_p_new = self.inv_p * (2.0 - p * self.inv_p);
        inv_p_new *= 2.0 - p * inv_p_new;
        self.step_precomputed(t, n, p, inv_p_new, dlnp, dlnq);
    }

    /// Exact re-anchoring at `(n, p)`: recomputes the mode and its pmf from
    /// scratch and resets the drift budget.
    #[cold]
    fn anchor(&mut self, n: f64, p: f64) {
        debug_assert!(
            n >= 0.0 && (0.0..=1.0).contains(&p),
            "ModeKernel::anchor n={n} p={p}"
        );
        let k0 = ((n + 1.0) * p).floor().clamp(0.0, n);
        let inv_n = if n > 0.0 { 1.0 / n } else { 0.0 };
        self.n = n;
        self.p = p;
        self.k0 = k0;
        self.n_floor = n;
        self.steps_left = REBASE_PERIOD;
        let series_ok =
            p > 0.0 && p < 1.0 && k0 < 256.0 && k0 * inv_n <= MODE_SERIES_MAX && n >= 2.0;
        self.incremental_ok = series_ok && k0 * inv_n <= MODE_H_MAX;
        self.inv_p = if p > 0.0 { 1.0 / p } else { f64::INFINITY };
        self.lnq = if p < 1.0 {
            (-p).ln_1p()
        } else {
            f64::NEG_INFINITY
        };
        if !series_ok {
            // Degenerate or out-of-gate anchor: exact-at-f64 pmf through the
            // log-gamma route; every subsequent update re-anchors.
            self.fm = crate::special::binomial_pmf(n as u64, k0 as u64, p);
            self.h1 = 0.0;
            self.h2 = 0.0;
            self.h3 = 0.0;
            return;
        }
        // Cancellation-free anchor: ln f(k₀) = ln[(n)_{k₀}] − ln k₀!
        //   + k₀ ln p + (n−k₀) ln(1−p), with the falling factorial expanded
        // as k₀·ln(np) − Σ_m S_m/(m·nᵐ) (S_m = Σ_{j<k₀} jᵐ, exact in f64
        // for k₀ < 256). Truncation after m = 4 is below k₀·(k₀/n)⁵/5
        // ≤ 2e-19 under the series gate — far inside [`MODE_PMF_TOL`].
        let k = k0;
        let s1 = 0.5 * k * (k - 1.0);
        let s2 = s1 * (2.0 * k - 1.0) / 3.0;
        let s3 = s1 * s1;
        let s4 = s2 * (3.0 * k * k - 3.0 * k - 1.0) / 5.0;
        let series = inv_n * (s1 + inv_n * (0.5 * s2 + inv_n * (s3 / 3.0 + inv_n * (0.25 * s4))));
        let ln_fm =
            k * (n * p).ln() - ln_factorial_table()[k0 as usize] - series + (n - k) * self.lnq;
        self.fm = ln_fm.exp();
        // Harmonic drift sums over j < k₀, by the same power sums:
        //   h1 = Σ 1/(n−j) = (k₀ + S₁/n + S₂/n² + S₃/n³ + S₄/n⁴)/n,
        //   h2 = Σ 1/(n−j)² = (k₀ + 2S₁/n + 3S₂/n²)/n²,
        //   h3 = Σ 1/(n−j)³ = (k₀ + 3S₁/n)/n³.
        self.h1 = inv_n * (k + inv_n * (s1 + inv_n * (s2 + inv_n * (s3 + inv_n * s4))));
        self.h2 = inv_n * inv_n * (k + inv_n * (2.0 * s1 + inv_n * (3.0 * s2)));
        self.h3 = inv_n * inv_n * inv_n * (k + inv_n * (3.0 * s1));
        // Quartic drift budget: (k₀/4)·Δ⁴ ≤ tol ⇒ Δ ≤ (4·tol/k₀)^{1/4}.
        let max_drift = (4.0 * MODE_PMF_TOL / k.max(1.0)).powf(0.25).min(0.1);
        self.n_floor = n * (1.0 - max_drift);
    }

    /// Samples `T | T ≥ 2` by mode-outward CDF inversion.
    ///
    /// `target` must be uniform on `[0, P(T ≥ 2))` — in the window walk it
    /// is the leftover `u − P(T ≤ 1)` of the classification draw, so the
    /// conditional count costs **no additional randomness**. The support is
    /// enumerated outward from the mode, greedily taking whichever side's
    /// next pmf value is larger (values below 2 skipped, values above `n`
    /// exhausted) — a fixed, deterministic order, so accumulating terms
    /// until the cumulative mass passes `target` is a valid CDF inversion,
    /// and the greedy order reaches the drawn value in `E|T − k₀| + O(1)`
    /// steps. `f64` rounding leftovers beyond the last enumerable (or
    /// representable) term resolve to the last enumerated value, a
    /// deviation bounded by the same `~1e-11`-scale tolerance as the
    /// thresholds the target was formed from.
    pub fn sample_cond_ge2(&self, target: f64) -> u64 {
        let n = self.n;
        debug_assert!(n >= 2.0, "T >= 2 needs at least two trials");
        let recip = recip_table();
        let s = self.p * inv_q(self.p);
        let inv_s = (1.0 - self.p) * self.inv_p;
        let inv_nk = 1.0 / (n - self.k0);
        let mut up_t = self.k0;
        let mut up_f = self.fm;
        // Anchors below the conditioning cut walk up to T = 2 first (they
        // only occur for λ < 2-ish queries, where this is at most two
        // recurrence steps).
        while up_t < 2.0 {
            let next = up_t + 1.0;
            up_f *= s * (n - up_t) * recip[next as usize];
            up_t = next;
        }
        let mut cum = up_f;
        let mut last = up_t;
        if target < cum {
            return up_t as u64;
        }
        let mut dn_t = up_t;
        let mut dn_f = up_f;
        // Next candidate pmf values on each side (0 once a side is
        // exhausted, so the greedy pick and the underflow cut-off both fall
        // out of the same comparison).
        let mut up_next = if up_t < n {
            let next = up_t + 1.0;
            let r = if (next as usize) < RECIP_TABLE_N {
                recip[next as usize]
            } else {
                1.0 / next
            };
            up_f * s * (n - up_t) * r
        } else {
            0.0
        };
        let mut dn_next = if dn_t > 2.0 {
            let y = (self.k0 - dn_t + 1.0) * inv_nk;
            let inv = if y.abs() <= MODE_H_MAX {
                inv_nk * (1.0 - y * (1.0 - y))
            } else {
                1.0 / (n - dn_t + 1.0)
            };
            dn_f * dn_t * inv_s * inv
        } else {
            0.0
        };
        loop {
            if up_next >= dn_next {
                if up_next <= 0.0 {
                    // Both sides exhausted or underflowed: rounding
                    // leftovers resolve to the last enumerated value.
                    return last as u64;
                }
                up_f = up_next;
                up_t += 1.0;
                cum += up_f;
                last = up_t;
                if target < cum {
                    return up_t as u64;
                }
                up_next = if up_t < n {
                    let next = up_t + 1.0;
                    let r = if (next as usize) < RECIP_TABLE_N {
                        recip[next as usize]
                    } else {
                        1.0 / next
                    };
                    up_f * s * (n - up_t) * r
                } else {
                    0.0
                };
            } else {
                dn_f = dn_next;
                dn_t -= 1.0;
                cum += dn_f;
                last = dn_t;
                if target < cum {
                    return dn_t as u64;
                }
                dn_next = if dn_t > 2.0 {
                    let y = (self.k0 - dn_t + 1.0) * inv_nk;
                    let inv = if y.abs() <= MODE_H_MAX {
                        inv_nk * (1.0 - y * (1.0 - y))
                    } else {
                        1.0 / (n - dn_t + 1.0)
                    };
                    dn_f * dn_t * inv_s * inv
                } else {
                    0.0
                };
            }
        }
    }

    /// Fused per-slot step for the window walk: advances the kernel by one
    /// conditional-walk move `(n, p) → (n − t, p′)` with the logarithmic
    /// increments already computed by the caller
    /// (`dlnp = ln(p′/p)`, `dlnq = ln((1−p′)/(1−p))`), and `inv_p_new`
    /// exact (the walk knows `1/p′ = w_left` as an integer). Skips the
    /// polynomial evaluations [`ModeKernel::update`] would repeat — the
    /// walk's fast loop shares one set of increments between its thresholds
    /// and the mode pmf. Falls back to the exact anchor on the same guard
    /// set as `update`.
    #[inline]
    pub(crate) fn step_precomputed(
        &mut self,
        t: f64,
        n_new: f64,
        p_new: f64,
        inv_p_new: f64,
        dlnp: f64,
        dlnq: f64,
    ) {
        if !(self.incremental_ok && t >= 0.0 && n_new >= self.n_floor && self.steps_left > 0) {
            self.anchor(n_new, p_new);
            return;
        }
        let dg = -t * (self.h1 + 0.5 * t * self.h2);
        let dl = dg + self.k0 * dlnp + (n_new - self.k0) * dlnq - t * self.lnq;
        // Negated so that a NaN move (degenerate anchor state) re-anchors.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(dl.abs() <= MAX_EXP_OFFSET) {
            self.anchor(n_new, p_new);
            return;
        }
        self.h1 += t * (self.h2 + t * self.h3);
        self.h2 += 2.0 * t * self.h3;
        self.fm *= exp_small(dl);
        self.lnq += dlnq;
        self.inv_p = inv_p_new;
        self.n = n_new;
        self.p = p_new;
        self.steps_left -= 1;
    }
}

/// Samples `T ~ Binomial(n, p)` exactly, in expected O(1) time for any
/// `(n, p)`.
///
/// Dispatch: degenerate parameters are returned directly; `p > 1/2` samples
/// the complement; small means (`n·min(p,1-p) < 10`) use CDF inversion with
/// the multiplicative pmf recurrence; larger means use the BTPE rejection
/// algorithm (Kachitvichyanukul & Schmeiser, *ACM TOMS* 14(1), 1988) with
/// the final acceptance test evaluated through [`ln_gamma`].
///
/// Exactness is property-tested (chi-square goodness of fit against the
/// independent geometric-skip sampler [`crate::sampling::sample_binomial`]
/// and against per-trial Bernoulli counting) in `tests/properties.rs`.
///
/// # Panics
/// Panics if `p` is not in `[0, 1]`.
///
/// # Example
/// ```
/// use mac_prob::binomial::sample_binomial_fast;
/// use mac_prob::rng::Xoshiro256pp;
/// use rand::SeedableRng;
/// let mut rng = Xoshiro256pp::seed_from_u64(1);
/// let t = sample_binomial_fast(1_000_000, 0.25, &mut rng);
/// assert!((t as f64 - 250_000.0).abs() < 5_000.0);
/// ```
pub fn sample_binomial_fast<R: Rng + ?Sized>(n: u64, p: f64, rng: &mut R) -> u64 {
    assert!(
        (0.0..=1.0).contains(&p),
        "Binomial parameter must be in [0,1], got {p}"
    );
    if n == 0 || p == 0.0 {
        return 0;
    }
    if p == 1.0 {
        return n;
    }
    let (pp, flipped) = if p > 0.5 { (1.0 - p, true) } else { (p, false) };
    let x = if n as f64 * pp < INVERSION_MEAN_MAX {
        binomial_inversion(n, pp, rng)
    } else {
        binomial_btpe(n, pp, rng)
    };
    if flipped {
        n - x
    } else {
        x
    }
}

/// CDF inversion with the multiplicative pmf recurrence; requires
/// `n·p` small enough that `(1-p)^n` does not underflow (guaranteed by the
/// dispatch bound [`INVERSION_MEAN_MAX`]).
fn binomial_inversion<R: Rng + ?Sized>(n: u64, p: f64, rng: &mut R) -> u64 {
    let nf = n as f64;
    let s = p / (1.0 - p);
    let mut f = (nf * (-p).ln_1p()).exp(); // (1-p)^n = P(T = 0)
    let mut u = rng.gen::<f64>();
    let mut x = 0u64;
    loop {
        if u < f || x >= n {
            // The x >= n guard absorbs the f64 rounding leftovers of the CDF.
            return x;
        }
        u -= f;
        x += 1;
        // f(x) = f(x-1) · (n - x + 1)/x · p/(1-p)
        f *= s * (nf - (x as f64 - 1.0)) / x as f64;
    }
}

/// BTPE: triangle/parallelogram/exponential-tail envelope with squeeze
/// acceptance. Requires `p ≤ 1/2` and `n·p ≥ 10`.
fn binomial_btpe<R: Rng + ?Sized>(n: u64, p: f64, rng: &mut R) -> u64 {
    let nf = n as f64;
    let q = 1.0 - p;
    let npq = nf * p * q;
    // Mode and envelope geometry.
    let f_mode = nf * p + p;
    let mode = f_mode.floor();
    let p1 = (2.195 * npq.sqrt() - 4.6 * q).floor() + 0.5;
    let xm = mode + 0.5;
    let xl = xm - p1;
    let xr = xm + p1;
    let c = 0.134 + 20.5 / (15.3 + mode);
    let mut a = (f_mode - xl) / (f_mode - xl * p);
    let lambda_l = a * (1.0 + 0.5 * a);
    a = (xr - f_mode) / (xr * q);
    let lambda_r = a * (1.0 + 0.5 * a);
    let p2 = p1 * (1.0 + 2.0 * c);
    let p3 = p2 + c / lambda_l;
    let p4 = p3 + c / lambda_r;

    loop {
        let u = rng.gen::<f64>() * p4;
        let mut v = rng.gen::<f64>();
        let y: f64;
        if u <= p1 {
            // Triangular central region: always accepted.
            return (xm - p1 * v + u).floor() as u64;
        } else if u <= p2 {
            // Parallelogram.
            let x = xl + (u - p1) / c;
            v = v * c + 1.0 - (x - xm).abs() / p1;
            if v > 1.0 || v <= 0.0 {
                continue;
            }
            y = x.floor();
        } else if u <= p3 {
            // Left exponential tail.
            y = (xl + v.ln() / lambda_l).floor();
            if y < 0.0 {
                continue;
            }
            v *= (u - p2) * lambda_l;
        } else {
            // Right exponential tail.
            y = (xr - v.ln() / lambda_r).floor();
            if y > nf {
                continue;
            }
            v *= (u - p3) * lambda_r;
        }

        // Accept y iff v ≤ f(y)/f(mode).
        let k = (y - mode).abs();
        if k <= 20.0 || k >= npq / 2.0 - 1.0 {
            // Cheap explicit evaluation by the pmf recurrence.
            let s = p / q;
            let aa = s * (nf + 1.0);
            let mut f = 1.0;
            let mode_i = mode as i64;
            let y_i = y as i64;
            if mode_i < y_i {
                for i in (mode_i + 1)..=y_i {
                    f *= aa / i as f64 - s;
                }
            } else {
                for i in (y_i + 1)..=mode_i {
                    f /= aa / i as f64 - s;
                }
            }
            if v <= f {
                return y as u64;
            }
        } else {
            // Squeeze around the normal-scale log-acceptance ratio.
            let rho = (k / npq) * ((k * (k / 3.0 + 0.625) + 1.0 / 6.0) / npq + 0.5);
            let t = -k * k / (2.0 * npq);
            let alv = v.ln();
            if alv < t - rho {
                return y as u64;
            }
            if alv <= t + rho {
                // Final test: ln(f(y)/f(mode)) through O(1) log-gammas.
                let lf = ln_gamma(mode + 1.0) + ln_gamma(nf - mode + 1.0)
                    - ln_gamma(y + 1.0)
                    - ln_gamma(nf - y + 1.0)
                    + (y - mode) * (p / q).ln();
                if alv <= lf {
                    return y as u64;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256pp;
    use crate::stats::StreamingStats;
    use rand::SeedableRng;

    fn assert_rel_close(a: f64, b: f64, tol: f64, label: &str) {
        let scale = a.abs().max(b.abs()).max(1e-300);
        assert!(
            (a - b).abs() / scale < tol || (a - b).abs() < 1e-300,
            "{label}: {a} vs {b}"
        );
    }

    #[test]
    fn thresholds_match_outcome_probabilities() {
        for &(m, p) in &[
            (1u64, 0.3f64),
            (2, 0.5),
            (10, 0.07),
            (1_000, 1e-3),
            (1_000_000, 2.3e-6),
            (5, 0.0),
            (5, 1.0),
            (1, 1.0),
            (0, 0.4),
        ] {
            let t = SlotThresholds::exact(m, p);
            let pr = slot_outcome_probabilities(m, p);
            assert_rel_close(t.t0, pr.silence, 1e-14, "t0");
            assert_rel_close(t.t1, pr.silence + pr.delivery, 1e-14, "t1");
        }
    }

    #[test]
    fn classify_matches_the_trichotomy_boundaries() {
        let t = SlotThresholds { t0: 0.25, t1: 0.75 };
        assert_eq!(t.classify(0.0), SlotOutcome::Silence);
        assert_eq!(t.classify(0.2499), SlotOutcome::Silence);
        assert_eq!(t.classify(0.25), SlotOutcome::Delivery);
        assert_eq!(t.classify(0.7499), SlotOutcome::Delivery);
        assert_eq!(t.classify(0.75), SlotOutcome::Collision);
        assert_eq!(t.classify(0.9999), SlotOutcome::Collision);
    }

    #[test]
    fn dead_slot_is_reported_for_underflowing_probabilities() {
        // 10^6 stations at p = 1/21: P(T <= 1) ~ e^{-47000}.
        let t = SlotThresholds::exact(1_000_000, 1.0 / 21.0);
        assert!(t.is_dead());
        assert_eq!(t.t0, 0.0);
        assert_eq!(t.t1, 0.0);
        // A representable case is not dead.
        assert!(!SlotThresholds::exact(100, 0.01).is_dead());
    }

    /// Drives a kernel along a One-fail-Adaptive-shaped drift and checks it
    /// against fresh exact evaluations at every step.
    #[test]
    fn kernel_tracks_a_drifting_schedule_to_high_precision() {
        let mut m = 1_000_000u64;
        let mut kappa = 420_000.0f64;
        let mut kernel = SlotKernel::new(m, 1.0 / kappa);
        for step in 0..200_000u64 {
            // AT-style drift: kappa grows by one per step; every ~7th step a
            // delivery removes a station and pulls kappa back.
            kappa += 1.0;
            if step % 7 == 3 {
                m -= 1;
                kappa = (kappa - 3.72).max(3.72);
            }
            let p = 1.0 / kappa;
            kernel.update(m as f64, p);
            let exact = SlotThresholds::exact(m, p);
            assert_rel_close(kernel.thresholds().t0, exact.t0, 1e-11, "t0");
            assert_rel_close(kernel.thresholds().t1, exact.t1, 1e-11, "t1");
            assert_eq!(kernel.is_dead(), exact.is_dead(), "step {step}");
        }
    }

    #[test]
    fn kernel_handles_alternating_large_and_small_probabilities() {
        // BT-style line: large p, m walking down through the dead boundary.
        let p = 1.0 / 21.0;
        let mut kernel = SlotKernel::new(2_000_000, p);
        assert!(kernel.is_dead());
        for m in (2..=40_000u64).rev().step_by(7) {
            kernel.update(m as f64, p);
            let exact = SlotThresholds::exact(m, p);
            assert_eq!(kernel.is_dead(), exact.is_dead(), "m={m}");
            if !exact.is_dead() {
                assert_rel_close(kernel.thresholds().t0, exact.t0, 1e-11, "t0");
                assert_rel_close(kernel.thresholds().t1, exact.t1, 1e-11, "t1");
            }
        }
    }

    #[test]
    fn kernel_handles_degenerate_probabilities() {
        let mut kernel = SlotKernel::new(10, 0.0);
        assert!(!kernel.is_dead());
        assert_eq!(kernel.classify(0.9999), SlotOutcome::Silence);
        kernel.update(10.0, 1.0);
        assert!(kernel.is_dead(), "10 stations at p=1 always collide");
        kernel.update(1.0, 1.0);
        assert!(!kernel.is_dead());
        assert_eq!(kernel.classify(0.5), SlotOutcome::Delivery);
        kernel.update(1.0, 0.25);
        assert_eq!(kernel.classify(0.5), SlotOutcome::Silence);
        assert_eq!(kernel.classify(0.8), SlotOutcome::Delivery);
    }

    #[test]
    fn sample_slot_class_agrees_with_reference_sampler_statistically() {
        let mut rng = Xoshiro256pp::seed_from_u64(99);
        let m = 50u64;
        let p = 0.03;
        let pr = slot_outcome_probabilities(m, p);
        let n = 100_000;
        let mut counts = [0u64; 3];
        for _ in 0..n {
            match sample_slot_class(m, p, &mut rng) {
                SlotOutcome::Silence => counts[0] += 1,
                SlotOutcome::Delivery => counts[1] += 1,
                SlotOutcome::Collision => counts[2] += 1,
            }
        }
        let tol = 4.0 * (0.25f64 / n as f64).sqrt();
        assert!((counts[0] as f64 / n as f64 - pr.silence).abs() < tol);
        assert!((counts[1] as f64 / n as f64 - pr.delivery).abs() < tol);
        assert!((counts[2] as f64 / n as f64 - pr.collision).abs() < tol);
    }

    #[test]
    fn kernel_cache_tracks_two_alternating_scales_accurately() {
        // An OFA-shaped schedule: an AT track near 1/m drifting slowly, and a
        // BT track near 1/log2(σ) jumping on deliveries. The two-line cache
        // must keep both tracks within the single-kernel tolerance.
        let mut cache = SlotKernelCache::new(10_000, 1.0 / 12_000.0);
        let mut m = 10_000u64;
        let mut kappa = 12_000.0;
        let mut sigma = 0u64;
        for step in 0..100_000u64 {
            let (mm, p) = if step % 2 == 0 {
                kappa += 1.0;
                (m, 1.0 / kappa)
            } else {
                (m, 1.0 / (1.0 + ((sigma + 1) as f64).log2()))
            };
            if step % 11 == 7 && m > 1 {
                m -= 1;
                sigma += 1;
                kappa = (kappa - 3.72).max(3.72);
            }
            let line = cache.select(mm as f64, p);
            let exact = SlotThresholds::exact(mm, p);
            assert_eq!(line.is_dead(), exact.is_dead(), "step {step}");
            if !exact.is_dead() {
                assert_rel_close(line.thresholds().t0, exact.t0, 1e-10, "t0");
                assert_rel_close(line.thresholds().t1, exact.t1, 1e-10, "t1");
            }
        }
    }

    #[test]
    fn kernel_cache_reports_its_track_probabilities_sorted() {
        let mut cache = SlotKernelCache::new(100, 0.25);
        assert_eq!(cache.track_probabilities(), (0.25, 0.25));
        let _ = cache.select(100.0, 0.001);
        let tracks = cache.track_probabilities();
        assert_eq!(tracks, (0.001, 0.25));
        // Exact re-selection of either track touches nothing.
        let _ = cache.select(100.0, 0.25);
        let _ = cache.select(100.0, 0.001);
        assert_eq!(cache.track_probabilities(), tracks);
    }

    #[test]
    fn mode_kernel_anchor_matches_exact_pmf() {
        use crate::special::binomial_pmf;
        for &(n, p) in &[
            (100u64, 0.08f64),
            (4_096, 1.0 / 512.0),
            (40_960, 10.0 / 40_960.0),
            (500_000, 50.0 / 500_000.0),
            (10_000_000, 117.0 / 10_000_000.0),
            (1_000_000, 0.3), // out of the series gate: log-gamma route
            (10, 0.0),
            (10, 1.0),
            (2, 0.5),
        ] {
            let kernel = ModeKernel::new(n, p);
            let exact = binomial_pmf(n, kernel.mode(), p);
            // The log-gamma reference itself drifts by ~n·ln(n)·ulp ≈ 1e-8
            // at paper-scale n; the series anchor is the sharper of the two
            // (pinned against exact rational/40-digit arithmetic below).
            let tol = if kernel.incremental_ok { 1e-7 } else { 1e-6 };
            assert_rel_close(kernel.pmf_mode(), exact, tol, &format!("n={n} p={p}"));
            // The anchored k0 is the true mode: no neighbour has more mass.
            let k0 = kernel.mode();
            if k0 > 0 {
                assert!(binomial_pmf(n, k0 - 1, p) <= exact * (1.0 + 1e-9));
            }
            if k0 < n {
                assert!(binomial_pmf(n, k0 + 1, p) <= exact * (1.0 + 1e-9));
            }
        }
    }

    #[test]
    fn mode_kernel_tracks_a_window_walk_drift_to_tolerance() {
        use crate::special::binomial_pmf;
        // Drive the kernel along a conditional-window-walk-shaped drift
        // (w shrinking by one per slot, n dropping by ~λ per collision) and
        // check the maintained pmf against fresh exact evaluations.
        let mut rng = Xoshiro256pp::seed_from_u64(17);
        let mut sharp_checks = 0u32;
        for &lambda in &[9.0f64, 30.0, 110.0] {
            let mut w = 400_000u64;
            let mut n = (lambda * w as f64) as u64;
            let mut kernel = ModeKernel::new(n, 1.0 / w as f64);
            for step in 0..200_000u64 {
                let t = sample_binomial_fast(n, 1.0 / w as f64, &mut rng).max(2);
                n -= t.min(n);
                w -= 1;
                if n < 2 || w < 4096 {
                    break;
                }
                let p = 1.0 / w as f64;
                kernel.update(n as f64, p);
                if step % 997 == 0 {
                    // Loose cross-check against the log-gamma pmf (itself
                    // ~1e-7 noisy at paper-scale n)...
                    let exact = binomial_pmf(n, kernel.mode(), p);
                    assert_rel_close(
                        kernel.pmf_mode(),
                        exact,
                        1e-6,
                        &format!("lambda={lambda} step={step} n={n} w={w}"),
                    );
                    // ...and a sharp check against a fresh exact anchor
                    // (validated to ~1e-13 against 40-digit arithmetic in
                    // the anchor tests), whenever it lands on the same mode.
                    let fresh = ModeKernel::new(n, p);
                    if fresh.mode() == kernel.mode() {
                        sharp_checks += 1;
                        assert_rel_close(
                            kernel.pmf_mode(),
                            fresh.pmf_mode(),
                            1e-9,
                            &format!("drift lambda={lambda} step={step} n={n} w={w}"),
                        );
                    }
                }
            }
        }
        assert!(sharp_checks >= 50, "only {sharp_checks} sharp drift checks");
    }

    #[test]
    fn mode_kernel_reanchors_after_large_moves() {
        use crate::special::binomial_pmf;
        let mut kernel = ModeKernel::new(1_000_000, 1.0 / 100_000.0);
        // A huge jump in both n and p must still land exactly.
        kernel.update(30_000.0, 1.0 / 3_000.0);
        let exact = binomial_pmf(30_000, kernel.mode(), 1.0 / 3_000.0);
        assert_rel_close(kernel.pmf_mode(), exact, 1e-7, "jump");
        // Growing n (never produced by the walk) is also just a re-anchor.
        kernel.update(2_000_000.0, 1.0 / 100_000.0);
        let exact = binomial_pmf(2_000_000, kernel.mode(), 1.0 / 100_000.0);
        assert_rel_close(kernel.pmf_mode(), exact, 1e-7, "regrow");
    }

    #[test]
    fn mode_kernel_anchor_matches_exact_rational_value() {
        // C(40960, 10)·(1/4096)^10·(4095/4096)^40950, computed with exact
        // rational arithmetic and rounded to f64: the series anchor must hit
        // it to a few ulps (the log-gamma route is ~5e-11 off here).
        let kernel = ModeKernel::new(40_960, 1.0 / 4_096.0);
        assert_eq!(kernel.mode(), 10);
        let exact = 0.125_125_310_677_121_35_f64;
        assert!(
            (kernel.pmf_mode() - exact).abs() < 1e-14,
            "{} vs {exact}",
            kernel.pmf_mode()
        );
    }

    #[test]
    fn mode_sampler_matches_conditional_pmf_exhaustively() {
        use crate::special::binomial_pmf;
        // Deterministic sweep: feed equally spaced targets through the
        // sampler and reconstruct the conditional pmf; compare cell by cell
        // against the exact conditional distribution.
        for &(n, p) in &[(64u64, 0.125f64), (5_000, 2e-3), (200_000, 3e-4)] {
            let kernel = ModeKernel::new(n, p);
            let t1 = SlotThresholds::exact(n, p).t1;
            let mass = 1.0 - t1;
            let grid = 200_001u64;
            // Histogram keyed by sampled value; only ever indexed, and the
            // final comparison sorts keys — order never matters.
            #[allow(clippy::disallowed_types)]
            let mut counts = std::collections::HashMap::new();
            for i in 0..grid {
                let target = mass * (i as f64 + 0.5) / grid as f64;
                *counts.entry(kernel.sample_cond_ge2(target)).or_insert(0u64) += 1;
            }
            for (&t, &count) in &counts {
                assert!(t >= 2 && t <= n, "n={n} p={p}: sampled {t}");
                let expect = binomial_pmf(n, t, p) / mass;
                let got = count as f64 / grid as f64;
                // The grid discretisation is 1/grid per cell.
                assert!(
                    (got - expect).abs() < 3.0 / grid as f64 + 0.02 * expect,
                    "n={n} p={p} t={t}: {got:.6} vs {expect:.6}"
                );
            }
            let total: u64 = counts.values().sum();
            assert_eq!(total, grid);
        }
    }

    #[test]
    fn fast_binomial_edge_cases() {
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        assert_eq!(sample_binomial_fast(0, 0.5, &mut rng), 0);
        assert_eq!(sample_binomial_fast(17, 0.0, &mut rng), 0);
        assert_eq!(sample_binomial_fast(17, 1.0, &mut rng), 17);
        for _ in 0..1000 {
            assert!(sample_binomial_fast(5, 0.5, &mut rng) <= 5);
        }
    }

    #[test]
    fn fast_binomial_mean_and_variance_match_theory() {
        // Exercises inversion (small mean), BTPE (large mean) and the
        // complement path (p > 1/2).
        for &(n, p) in &[
            (20u64, 0.25f64),
            (100, 0.02),
            (7, 0.9),
            (1_000, 0.3),
            (1_000_000, 0.001),
            (100_000, 0.75),
        ] {
            let mut rng = Xoshiro256pp::seed_from_u64(5);
            let mut stats = StreamingStats::new();
            let reps = 60_000;
            for _ in 0..reps {
                stats.push(sample_binomial_fast(n, p, &mut rng) as f64);
            }
            let mean = n as f64 * p;
            let var = n as f64 * p * (1.0 - p);
            assert!(
                (stats.mean() - mean).abs() < 5.0 * (var / reps as f64).sqrt() + 1e-9,
                "n={n} p={p}: mean {} vs {mean}",
                stats.mean()
            );
            assert!(
                (stats.variance() - var).abs() < 0.05 * (var + 1.0),
                "n={n} p={p}: var {} vs {var}",
                stats.variance()
            );
        }
    }

    #[test]
    fn fast_binomial_never_exceeds_n() {
        let mut rng = Xoshiro256pp::seed_from_u64(6);
        for &(n, p) in &[(30u64, 0.5f64), (1000, 0.04), (50, 0.99)] {
            for _ in 0..20_000 {
                assert!(sample_binomial_fast(n, p, &mut rng) <= n);
            }
        }
    }
}
