//! Exact binomial sampling and O(1) aggregate slot resolution.
//!
//! When all `m` active stations of a slot transmit independently with the
//! same probability `p`, the number of transmitters is `T ~ Binomial(m, p)`
//! and the channel outcome depends only on whether `T` is 0, 1 or ≥ 2. This
//! module provides the machinery to resolve such *homogeneous* slots in O(1)
//! — and, on the hot path, in a handful of arithmetic operations with **no
//! per-slot transcendentals**:
//!
//! * [`sample_binomial_fast`] — an exact `Binomial(n, p)` sampler: CDF
//!   inversion for small means, the BTPE rejection method of
//!   Kachitvichyanukul & Schmeiser for `n·min(p, 1-p) ≥ 10`. Expected O(1)
//!   for any `(n, p)`, unlike the geometric-skip sampler in
//!   [`crate::sampling`] (kept as the independent reference implementation
//!   the property tests cross-check against).
//! * [`SlotThresholds`] — the first two steps of binomial CDF inversion,
//!   `P(T = 0)` and `P(T ≤ 1)`, which classify a slot's trichotomy from one
//!   uniform draw: `u < P(T=0)` is silence, `u < P(T≤1)` is a delivery,
//!   anything else a collision.
//! * [`SlotKernel`] — incremental maintenance of [`SlotThresholds`] along a
//!   *slowly drifting* `(m, p)` sequence, the access pattern of the fair
//!   protocols (the probability changes by `O(p/κ)` per slot between
//!   deliveries). Between exact re-anchorings the kernel updates the
//!   thresholds with short Taylor polynomials whose truncation error is
//!   below `1e-12` relative, so a simulator pays `exp`/`ln` only a few times
//!   per *delivery* instead of several times per *slot*.
//!
//! ## Dead slots
//!
//! When `P(T ≤ 1)` evaluates to exactly `0.0` in `f64` (e.g. `m = 10⁶`
//! stations at `p = 1/21`: `P(T ≤ 1) < e^{-47000}`), no uniform draw can fall
//! below the threshold and the slot is a *certain collision at `f64`
//! resolution*: the kernel reports it via [`SlotKernel::is_dead`] /
//! [`SlotThresholds::is_dead`] and a simulator may skip the draw entirely.
//! This changes the RNG stream but not the distribution of any outcome —
//! the distributional-equivalence contract of `crates/sim/DESIGN.md` §5.

use crate::outcome::{slot_outcome_probabilities, SlotOutcome};
use crate::special::ln_gamma;
use rand::Rng;

/// Largest `n·min(p, 1-p)` handled by CDF inversion; above it BTPE applies.
const INVERSION_MEAN_MAX: f64 = 10.0;

/// `ln P(T ≤ 1)` below which the slot is certainly dead: `e^{-780}·(1+λ)`
/// with `λ ≤ 780` is below `2^{-1074}` (the smallest positive `f64`), so the
/// exact `f64` evaluation would round to `0.0` as well.
const DEAD_LOG: f64 = -780.0;

/// Largest exponent offset the incremental `exp` polynomial accepts
/// (`2^-4`; degree 7, truncation error below `1.5e-15` relative).
const MAX_EXP_OFFSET: f64 = 1.0 / 16.0;

/// Largest `ε` the incremental `ln1p` polynomial accepts (`2^-10`;
/// truncation error below `2e-13` relative).
const MAX_LN_EPS: f64 = 1.0 / 1024.0;

/// Largest `p` for which `1/(1-p)` is evaluated by series instead of division.
const SERIES_P_MAX: f64 = 1.0 / 1024.0;

/// Incremental updates between forced exact re-anchorings (bounds the
/// accumulated rounding drift of the maintained `ln(1-p)` to a few ulps).
const REBASE_PERIOD: u32 = 4096;

/// `exp(d)` for `|d| ≤ 1/16` by a degree-7 Taylor polynomial (truncation
/// error below `1.5e-15` relative).
#[inline]
fn exp_small(d: f64) -> f64 {
    debug_assert!(d.abs() <= MAX_EXP_OFFSET * 1.0001);
    1.0 + d
        * (1.0
            + d * (1.0 / 2.0
                + d * (1.0 / 6.0
                    + d * (1.0 / 24.0
                        + d * (1.0 / 120.0 + d * (1.0 / 720.0 + d * (1.0 / 5040.0)))))))
}

/// `ln(1 + e)` for `|e| ≤ 2^-16` by a degree-4 Taylor polynomial (truncation
/// error below `e⁴/5 ≈ 1e-20` relative).
#[inline]
fn ln1p_small(e: f64) -> f64 {
    debug_assert!(e.abs() <= MAX_LN_EPS * 1.0001);
    e * (1.0 - e * (1.0 / 2.0 - e * (1.0 / 3.0 - e * (1.0 / 4.0))))
}

/// `1/(1 - p)` — by geometric series for tiny `p` (the fair protocols'
/// common case, where the division's latency would sit on the hot loop's
/// critical path), by actual division otherwise.
#[inline]
fn inv_q(p: f64) -> f64 {
    if p.abs() <= SERIES_P_MAX {
        // Truncation error p⁷ ≈ 2^-70 relative.
        1.0 + p * (1.0 + p * (1.0 + p * (1.0 + p * (1.0 + p * (1.0 + p)))))
    } else {
        1.0 / (1.0 - p)
    }
}

/// The first two binomial CDF values of a homogeneous slot: `t0 = P(T = 0)`
/// and `t1 = P(T ≤ 1)` for `T ~ Binomial(m, p)`.
///
/// One uniform draw against these thresholds resolves the slot trichotomy —
/// exactly the first two steps of sampling `T` by CDF inversion, stopped as
/// soon as the outcome class (`T = 0`, `T = 1`, `T ≥ 2`) is known.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlotThresholds {
    /// `P(T = 0)` — the probability of a silent slot.
    pub t0: f64,
    /// `P(T ≤ 1)` — silence plus a single (delivering) transmitter.
    pub t1: f64,
}

impl SlotThresholds {
    /// Computes the thresholds exactly (up to `f64` rounding), using the same
    /// log-space evaluation as [`slot_outcome_probabilities`].
    pub fn exact(m: u64, p: f64) -> Self {
        let pr = slot_outcome_probabilities(m, p);
        Self {
            t0: pr.silence,
            t1: pr.silence + pr.delivery,
        }
    }

    /// `true` when no uniform draw in `[0, 1)` can produce silence or a
    /// delivery: the slot is a certain collision at `f64` resolution.
    #[inline]
    pub fn is_dead(&self) -> bool {
        self.t1 <= 0.0
    }

    /// Classifies a uniform draw `u ∈ [0, 1)` into the slot trichotomy.
    #[inline]
    pub fn classify(&self, u: f64) -> SlotOutcome {
        if u >= self.t1 {
            SlotOutcome::Collision
        } else if u >= self.t0 {
            SlotOutcome::Delivery
        } else {
            SlotOutcome::Silence
        }
    }
}

/// Resolves one homogeneous slot (`m` stations at probability `p`) from a
/// single binomial classification draw.
///
/// Distribution-identical to [`crate::outcome::sample_slot_outcome`]; this
/// entry point exists as the self-describing aggregate form (`T = 0` empty,
/// `T = 1` delivery, `T ≥ 2` collision) and as the uncached reference for
/// [`SlotKernel`].
pub fn sample_slot_class<R: Rng + ?Sized>(m: u64, p: f64, rng: &mut R) -> SlotOutcome {
    let thresholds = SlotThresholds::exact(m, p);
    if thresholds.is_dead() {
        return SlotOutcome::Collision;
    }
    thresholds.classify(rng.gen::<f64>())
}

/// Largest `p` admitted by the short-polynomial hot path of
/// [`SlotKernel::update`] (`2^-14`): below it, dropped series terms are at
/// relative `p³ < 2.3e-13`.
const HOT_P_MAX: f64 = 6.103_515_625e-5;

/// Largest relative probability move `|Δp|/p` the hot path accepts (`2^-13`
/// — covers both the fair protocols' estimator drift, `|Δp|/p ≈ p/κ̃`, and
/// the window walk's `1/w → 1/(w-1)` steps for `w ≥ 2^14`).
const HOT_MOVE_MAX: f64 = 1.220_703_125e-4;

/// Largest exponent offset the hot path's cubic `exp` accepts (`2^-10`,
/// truncation error `d⁴/24 < 4e-14` relative).
const HOT_OFFSET_MAX: f64 = 9.765_625e-4;

/// Incrementally maintained [`SlotThresholds`] for a drifting `(m, p)`
/// sequence.
///
/// The kernel anchors an exact evaluation (`t0_base = exp(L_base)`,
/// `L = m·ln(1-p)`) and follows small moves of `m` and `p` with Taylor
/// updates of `ln(1-p)` and of the exponent offset `L − L_base`; it re-anchors
/// exactly whenever the move is too large, the offset outgrows the
/// polynomial, or [`REBASE_PERIOD`] incremental steps have accumulated.
/// Tiny probabilities with tiny moves (the fair protocols' steady state)
/// take a short-polynomial hot path tuned for the simulator's inner loop;
/// larger ones take a general cold path. Relative error against
/// [`SlotThresholds::exact`] stays below `~1e-11` (property-tested).
#[derive(Debug, Clone, Copy)]
pub struct SlotKernel {
    m: f64,
    p: f64,
    /// `ln(1 - p)`, maintained incrementally.
    lnq: f64,
    /// `L = m·ln(1-p)` at the last exact anchoring.
    ell_base: f64,
    /// `exp(ell_base)`.
    t0_base: f64,
    thresholds: SlotThresholds,
    dead: bool,
    updates_since_rebase: u32,
}

impl SlotKernel {
    /// Creates a kernel anchored at `(m, p)`.
    pub fn new(m: u64, p: f64) -> Self {
        let mut kernel = Self {
            m: 0.0,
            p: -1.0,
            lnq: 0.0,
            ell_base: 0.0,
            t0_base: 1.0,
            thresholds: SlotThresholds { t0: 1.0, t1: 1.0 },
            dead: false,
            updates_since_rebase: 0,
        };
        kernel.rebase(m as f64, p);
        kernel
    }

    /// The `m` the thresholds currently describe.
    #[inline]
    pub fn m(&self) -> f64 {
        self.m
    }

    /// The `p` the thresholds currently describe.
    #[inline]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Current thresholds.
    #[inline]
    pub fn thresholds(&self) -> SlotThresholds {
        self.thresholds
    }

    /// `true` when the current slot is a certain collision at `f64`
    /// resolution (no draw needed).
    #[inline]
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Classifies a uniform draw against the current thresholds.
    #[inline]
    pub fn classify(&self, u: f64) -> SlotOutcome {
        self.thresholds.classify(u)
    }

    /// Moves the kernel to `(m, p)`, incrementally when the move is small.
    ///
    /// `m` is passed as `f64` because callers track it that way in their hot
    /// loops; it must be a non-negative integer value.
    #[inline]
    pub fn update(&mut self, m: f64, p: f64) {
        if m == self.m && p == self.p {
            return;
        }
        // Hot path: tiny probability, tiny relative move — short polynomials
        // with no division, tuned for the aggregate simulator's inner loop.
        let po = self.p;
        let x = po - p;
        if po > 0.0
            && po <= HOT_P_MAX
            && x.abs() <= po * HOT_MOVE_MAX
            && self.updates_since_rebase < REBASE_PERIOD
        {
            // ln((1-p)/(1-po)) = ln1p(x/(1-po))
            //                  = x·(1 + po + po²) − x²/2 + O(x·po³).
            let lnq = self.lnq + (x - 0.5 * x * x) + x * (po + po * po);
            let ell = m * lnq;
            self.m = m;
            self.p = p;
            self.lnq = lnq;
            self.updates_since_rebase += 1;
            if ell <= DEAD_LOG {
                self.thresholds = SlotThresholds { t0: 0.0, t1: 0.0 };
                self.dead = true;
                return;
            }
            let d = ell - self.ell_base;
            if d.abs() <= HOT_OFFSET_MAX {
                // exp(d) cubic; 1/(1-p) ≈ 1 + p + p² (error p³ relative).
                let t0 = self.t0_base * (1.0 + d * (1.0 + d * (0.5 + d * (1.0 / 6.0))));
                let t1 = t0 + t0 * (m * p) * (1.0 + p + p * p);
                self.thresholds = SlotThresholds { t0, t1 };
                self.dead = false;
                return;
            }
            if d.abs() <= MAX_EXP_OFFSET {
                // Larger drift (the window walk's shrinking windows): the
                // wider degree-7 polynomial still avoids a re-anchor.
                let t0 = self.t0_base * exp_small(d);
                let t1 = t0 + t0 * (m * p) * (1.0 + p + p * p);
                self.thresholds = SlotThresholds { t0, t1 };
                self.dead = false;
                return;
            }
            self.rebase(m, p);
            return;
        }
        self.update_cold(m, p);
    }

    #[cold]
    fn update_cold(&mut self, m: f64, p: f64) {
        // General incremental path: any probabilities with a well-conditioned
        // ε and log-space moves small enough for the wider Taylor kernels.
        if p > 0.0 && p < 1.0 && self.p > 0.0 && self.p < 1.0 && m >= 1.0 {
            let eps = (self.p - p) * inv_q(self.p);
            if eps.abs() <= MAX_LN_EPS && self.updates_since_rebase < REBASE_PERIOD {
                let lnq = self.lnq + ln1p_small(eps);
                let ell = m * lnq;
                self.m = m;
                self.p = p;
                self.lnq = lnq;
                self.updates_since_rebase += 1;
                if ell <= DEAD_LOG {
                    // Certain collision: exp would underflow to zero anyway.
                    self.thresholds = SlotThresholds { t0: 0.0, t1: 0.0 };
                    self.dead = true;
                    return;
                }
                let offset = ell - self.ell_base;
                if offset.abs() <= MAX_EXP_OFFSET {
                    let t0 = self.t0_base * exp_small(offset);
                    let t1 = t0 + t0 * (m * p) * inv_q(p);
                    self.thresholds = SlotThresholds {
                        t0,
                        t1: t1.min(1.0),
                    };
                    self.dead = t1 <= 0.0;
                    return;
                }
                // Offset outgrew the polynomial: fall through to re-anchor
                // (the state above is already consistent; rebase overwrites).
            }
        }
        self.rebase(m, p);
    }

    /// Exact re-anchoring at `(m, p)`.
    #[cold]
    fn rebase(&mut self, m: f64, p: f64) {
        debug_assert!(m >= 0.0 && (0.0..=1.0).contains(&p), "m={m} p={p}");
        let thresholds = SlotThresholds::exact(m as u64, p);
        self.m = m;
        self.p = p;
        self.lnq = if p < 1.0 {
            (-p).ln_1p()
        } else {
            f64::NEG_INFINITY
        };
        self.ell_base = m * self.lnq;
        self.t0_base = thresholds.t0;
        self.thresholds = thresholds;
        self.dead = thresholds.is_dead();
        self.updates_since_rebase = 0;
    }
}

/// A two-line cache of [`SlotKernel`]s for protocols that interleave **two
/// probability tracks** per feedback event (e.g. One-fail Adaptive's AT/BT
/// parity, Log-fails Adaptive's AT steps against its fixed BT probability).
///
/// Each track either repeats its probability exactly — a bit-equality cache
/// hit on one of the two lines — or drifts slowly, which the owning line
/// follows with [`SlotKernel::update`]'s short Taylor path. On a miss the
/// line whose probability is nearest in *relative* terms moves: the tracks
/// live at very different scales (an AT probability is `~1/κ̃ ≈ 1/m` while a
/// BT probability is `~1/log σ`), and an absolute metric would park one line
/// and thrash the other across the scales.
///
/// This is the cache the aggregate fair engine ran inline since PR 3; it is
/// a named type here so the cohort engine can keep one per cohort.
#[derive(Debug, Clone, Copy)]
pub struct SlotKernelCache {
    line_a: SlotKernel,
    line_b: SlotKernel,
}

impl SlotKernelCache {
    /// Creates a cache with both lines anchored at `(m, p)` — the
    /// nearest-probability rule below sorts the tracks out within the first
    /// two selections.
    pub fn new(m: u64, p: f64) -> Self {
        let line = SlotKernel::new(m, p);
        Self {
            line_a: line,
            line_b: line,
        }
    }

    /// Returns the kernel describing `(m, p)`, updating at most one line.
    ///
    /// Exact hit on either line is free; otherwise the line with the nearest
    /// probability in relative terms (`|p - p_line| / (p + p_line)`, compared
    /// cross-multiplied so no division is paid) absorbs the move.
    #[inline]
    pub fn select(&mut self, m: f64, p: f64) -> &SlotKernel {
        if self.line_a.m() == m && self.line_a.p() == p {
            &self.line_a
        } else if self.line_b.m() == m && self.line_b.p() == p {
            &self.line_b
        } else if (p - self.line_a.p()).abs() * (p + self.line_b.p())
            <= (p - self.line_b.p()).abs() * (p + self.line_a.p())
        {
            self.line_a.update(m, p);
            &self.line_a
        } else {
            self.line_b.update(m, p);
            &self.line_b
        }
    }

    /// The probabilities currently held by the two cache lines, in ascending
    /// order. These are the protocol's two probability *tracks* as actually
    /// observed — the cohort engine compares them across cohorts to decide
    /// whether two cohorts have converged onto the same schedule.
    pub fn track_probabilities(&self) -> (f64, f64) {
        let (a, b) = (self.line_a.p(), self.line_b.p());
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }
}

/// Samples `T ~ Binomial(n, p)` exactly, in expected O(1) time for any
/// `(n, p)`.
///
/// Dispatch: degenerate parameters are returned directly; `p > 1/2` samples
/// the complement; small means (`n·min(p,1-p) < 10`) use CDF inversion with
/// the multiplicative pmf recurrence; larger means use the BTPE rejection
/// algorithm (Kachitvichyanukul & Schmeiser, *ACM TOMS* 14(1), 1988) with
/// the final acceptance test evaluated through [`ln_gamma`].
///
/// Exactness is property-tested (chi-square goodness of fit against the
/// independent geometric-skip sampler [`crate::sampling::sample_binomial`]
/// and against per-trial Bernoulli counting) in `tests/properties.rs`.
///
/// # Panics
/// Panics if `p` is not in `[0, 1]`.
///
/// # Example
/// ```
/// use mac_prob::binomial::sample_binomial_fast;
/// use mac_prob::rng::Xoshiro256pp;
/// use rand::SeedableRng;
/// let mut rng = Xoshiro256pp::seed_from_u64(1);
/// let t = sample_binomial_fast(1_000_000, 0.25, &mut rng);
/// assert!((t as f64 - 250_000.0).abs() < 5_000.0);
/// ```
pub fn sample_binomial_fast<R: Rng + ?Sized>(n: u64, p: f64, rng: &mut R) -> u64 {
    assert!(
        (0.0..=1.0).contains(&p),
        "Binomial parameter must be in [0,1], got {p}"
    );
    if n == 0 || p == 0.0 {
        return 0;
    }
    if p == 1.0 {
        return n;
    }
    let (pp, flipped) = if p > 0.5 { (1.0 - p, true) } else { (p, false) };
    let x = if n as f64 * pp < INVERSION_MEAN_MAX {
        binomial_inversion(n, pp, rng)
    } else {
        binomial_btpe(n, pp, rng)
    };
    if flipped {
        n - x
    } else {
        x
    }
}

/// CDF inversion with the multiplicative pmf recurrence; requires
/// `n·p` small enough that `(1-p)^n` does not underflow (guaranteed by the
/// dispatch bound [`INVERSION_MEAN_MAX`]).
fn binomial_inversion<R: Rng + ?Sized>(n: u64, p: f64, rng: &mut R) -> u64 {
    let nf = n as f64;
    let s = p / (1.0 - p);
    let mut f = (nf * (-p).ln_1p()).exp(); // (1-p)^n = P(T = 0)
    let mut u = rng.gen::<f64>();
    let mut x = 0u64;
    loop {
        if u < f || x >= n {
            // The x >= n guard absorbs the f64 rounding leftovers of the CDF.
            return x;
        }
        u -= f;
        x += 1;
        // f(x) = f(x-1) · (n - x + 1)/x · p/(1-p)
        f *= s * (nf - (x as f64 - 1.0)) / x as f64;
    }
}

/// BTPE: triangle/parallelogram/exponential-tail envelope with squeeze
/// acceptance. Requires `p ≤ 1/2` and `n·p ≥ 10`.
fn binomial_btpe<R: Rng + ?Sized>(n: u64, p: f64, rng: &mut R) -> u64 {
    let nf = n as f64;
    let q = 1.0 - p;
    let npq = nf * p * q;
    // Mode and envelope geometry.
    let f_mode = nf * p + p;
    let mode = f_mode.floor();
    let p1 = (2.195 * npq.sqrt() - 4.6 * q).floor() + 0.5;
    let xm = mode + 0.5;
    let xl = xm - p1;
    let xr = xm + p1;
    let c = 0.134 + 20.5 / (15.3 + mode);
    let mut a = (f_mode - xl) / (f_mode - xl * p);
    let lambda_l = a * (1.0 + 0.5 * a);
    a = (xr - f_mode) / (xr * q);
    let lambda_r = a * (1.0 + 0.5 * a);
    let p2 = p1 * (1.0 + 2.0 * c);
    let p3 = p2 + c / lambda_l;
    let p4 = p3 + c / lambda_r;

    loop {
        let u = rng.gen::<f64>() * p4;
        let mut v = rng.gen::<f64>();
        let y: f64;
        if u <= p1 {
            // Triangular central region: always accepted.
            return (xm - p1 * v + u).floor() as u64;
        } else if u <= p2 {
            // Parallelogram.
            let x = xl + (u - p1) / c;
            v = v * c + 1.0 - (x - xm).abs() / p1;
            if v > 1.0 || v <= 0.0 {
                continue;
            }
            y = x.floor();
        } else if u <= p3 {
            // Left exponential tail.
            y = (xl + v.ln() / lambda_l).floor();
            if y < 0.0 {
                continue;
            }
            v *= (u - p2) * lambda_l;
        } else {
            // Right exponential tail.
            y = (xr - v.ln() / lambda_r).floor();
            if y > nf {
                continue;
            }
            v *= (u - p3) * lambda_r;
        }

        // Accept y iff v ≤ f(y)/f(mode).
        let k = (y - mode).abs();
        if k <= 20.0 || k >= npq / 2.0 - 1.0 {
            // Cheap explicit evaluation by the pmf recurrence.
            let s = p / q;
            let aa = s * (nf + 1.0);
            let mut f = 1.0;
            let mode_i = mode as i64;
            let y_i = y as i64;
            if mode_i < y_i {
                for i in (mode_i + 1)..=y_i {
                    f *= aa / i as f64 - s;
                }
            } else {
                for i in (y_i + 1)..=mode_i {
                    f /= aa / i as f64 - s;
                }
            }
            if v <= f {
                return y as u64;
            }
        } else {
            // Squeeze around the normal-scale log-acceptance ratio.
            let rho = (k / npq) * ((k * (k / 3.0 + 0.625) + 1.0 / 6.0) / npq + 0.5);
            let t = -k * k / (2.0 * npq);
            let alv = v.ln();
            if alv < t - rho {
                return y as u64;
            }
            if alv <= t + rho {
                // Final test: ln(f(y)/f(mode)) through O(1) log-gammas.
                let lf = ln_gamma(mode + 1.0) + ln_gamma(nf - mode + 1.0)
                    - ln_gamma(y + 1.0)
                    - ln_gamma(nf - y + 1.0)
                    + (y - mode) * (p / q).ln();
                if alv <= lf {
                    return y as u64;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256pp;
    use crate::stats::StreamingStats;
    use rand::SeedableRng;

    fn assert_rel_close(a: f64, b: f64, tol: f64, label: &str) {
        let scale = a.abs().max(b.abs()).max(1e-300);
        assert!(
            (a - b).abs() / scale < tol || (a - b).abs() < 1e-300,
            "{label}: {a} vs {b}"
        );
    }

    #[test]
    fn thresholds_match_outcome_probabilities() {
        for &(m, p) in &[
            (1u64, 0.3f64),
            (2, 0.5),
            (10, 0.07),
            (1_000, 1e-3),
            (1_000_000, 2.3e-6),
            (5, 0.0),
            (5, 1.0),
            (1, 1.0),
            (0, 0.4),
        ] {
            let t = SlotThresholds::exact(m, p);
            let pr = slot_outcome_probabilities(m, p);
            assert_rel_close(t.t0, pr.silence, 1e-14, "t0");
            assert_rel_close(t.t1, pr.silence + pr.delivery, 1e-14, "t1");
        }
    }

    #[test]
    fn classify_matches_the_trichotomy_boundaries() {
        let t = SlotThresholds { t0: 0.25, t1: 0.75 };
        assert_eq!(t.classify(0.0), SlotOutcome::Silence);
        assert_eq!(t.classify(0.2499), SlotOutcome::Silence);
        assert_eq!(t.classify(0.25), SlotOutcome::Delivery);
        assert_eq!(t.classify(0.7499), SlotOutcome::Delivery);
        assert_eq!(t.classify(0.75), SlotOutcome::Collision);
        assert_eq!(t.classify(0.9999), SlotOutcome::Collision);
    }

    #[test]
    fn dead_slot_is_reported_for_underflowing_probabilities() {
        // 10^6 stations at p = 1/21: P(T <= 1) ~ e^{-47000}.
        let t = SlotThresholds::exact(1_000_000, 1.0 / 21.0);
        assert!(t.is_dead());
        assert_eq!(t.t0, 0.0);
        assert_eq!(t.t1, 0.0);
        // A representable case is not dead.
        assert!(!SlotThresholds::exact(100, 0.01).is_dead());
    }

    /// Drives a kernel along a One-fail-Adaptive-shaped drift and checks it
    /// against fresh exact evaluations at every step.
    #[test]
    fn kernel_tracks_a_drifting_schedule_to_high_precision() {
        let mut m = 1_000_000u64;
        let mut kappa = 420_000.0f64;
        let mut kernel = SlotKernel::new(m, 1.0 / kappa);
        for step in 0..200_000u64 {
            // AT-style drift: kappa grows by one per step; every ~7th step a
            // delivery removes a station and pulls kappa back.
            kappa += 1.0;
            if step % 7 == 3 {
                m -= 1;
                kappa = (kappa - 3.72).max(3.72);
            }
            let p = 1.0 / kappa;
            kernel.update(m as f64, p);
            let exact = SlotThresholds::exact(m, p);
            assert_rel_close(kernel.thresholds().t0, exact.t0, 1e-11, "t0");
            assert_rel_close(kernel.thresholds().t1, exact.t1, 1e-11, "t1");
            assert_eq!(kernel.is_dead(), exact.is_dead(), "step {step}");
        }
    }

    #[test]
    fn kernel_handles_alternating_large_and_small_probabilities() {
        // BT-style line: large p, m walking down through the dead boundary.
        let p = 1.0 / 21.0;
        let mut kernel = SlotKernel::new(2_000_000, p);
        assert!(kernel.is_dead());
        for m in (2..=40_000u64).rev().step_by(7) {
            kernel.update(m as f64, p);
            let exact = SlotThresholds::exact(m, p);
            assert_eq!(kernel.is_dead(), exact.is_dead(), "m={m}");
            if !exact.is_dead() {
                assert_rel_close(kernel.thresholds().t0, exact.t0, 1e-11, "t0");
                assert_rel_close(kernel.thresholds().t1, exact.t1, 1e-11, "t1");
            }
        }
    }

    #[test]
    fn kernel_handles_degenerate_probabilities() {
        let mut kernel = SlotKernel::new(10, 0.0);
        assert!(!kernel.is_dead());
        assert_eq!(kernel.classify(0.9999), SlotOutcome::Silence);
        kernel.update(10.0, 1.0);
        assert!(kernel.is_dead(), "10 stations at p=1 always collide");
        kernel.update(1.0, 1.0);
        assert!(!kernel.is_dead());
        assert_eq!(kernel.classify(0.5), SlotOutcome::Delivery);
        kernel.update(1.0, 0.25);
        assert_eq!(kernel.classify(0.5), SlotOutcome::Silence);
        assert_eq!(kernel.classify(0.8), SlotOutcome::Delivery);
    }

    #[test]
    fn sample_slot_class_agrees_with_reference_sampler_statistically() {
        let mut rng = Xoshiro256pp::seed_from_u64(99);
        let m = 50u64;
        let p = 0.03;
        let pr = slot_outcome_probabilities(m, p);
        let n = 100_000;
        let mut counts = [0u64; 3];
        for _ in 0..n {
            match sample_slot_class(m, p, &mut rng) {
                SlotOutcome::Silence => counts[0] += 1,
                SlotOutcome::Delivery => counts[1] += 1,
                SlotOutcome::Collision => counts[2] += 1,
            }
        }
        let tol = 4.0 * (0.25f64 / n as f64).sqrt();
        assert!((counts[0] as f64 / n as f64 - pr.silence).abs() < tol);
        assert!((counts[1] as f64 / n as f64 - pr.delivery).abs() < tol);
        assert!((counts[2] as f64 / n as f64 - pr.collision).abs() < tol);
    }

    #[test]
    fn kernel_cache_tracks_two_alternating_scales_accurately() {
        // An OFA-shaped schedule: an AT track near 1/m drifting slowly, and a
        // BT track near 1/log2(σ) jumping on deliveries. The two-line cache
        // must keep both tracks within the single-kernel tolerance.
        let mut cache = SlotKernelCache::new(10_000, 1.0 / 12_000.0);
        let mut m = 10_000u64;
        let mut kappa = 12_000.0;
        let mut sigma = 0u64;
        for step in 0..100_000u64 {
            let (mm, p) = if step % 2 == 0 {
                kappa += 1.0;
                (m, 1.0 / kappa)
            } else {
                (m, 1.0 / (1.0 + ((sigma + 1) as f64).log2()))
            };
            if step % 11 == 7 && m > 1 {
                m -= 1;
                sigma += 1;
                kappa = (kappa - 3.72).max(3.72);
            }
            let line = cache.select(mm as f64, p);
            let exact = SlotThresholds::exact(mm, p);
            assert_eq!(line.is_dead(), exact.is_dead(), "step {step}");
            if !exact.is_dead() {
                assert_rel_close(line.thresholds().t0, exact.t0, 1e-10, "t0");
                assert_rel_close(line.thresholds().t1, exact.t1, 1e-10, "t1");
            }
        }
    }

    #[test]
    fn kernel_cache_reports_its_track_probabilities_sorted() {
        let mut cache = SlotKernelCache::new(100, 0.25);
        assert_eq!(cache.track_probabilities(), (0.25, 0.25));
        let _ = cache.select(100.0, 0.001);
        let tracks = cache.track_probabilities();
        assert_eq!(tracks, (0.001, 0.25));
        // Exact re-selection of either track touches nothing.
        let _ = cache.select(100.0, 0.25);
        let _ = cache.select(100.0, 0.001);
        assert_eq!(cache.track_probabilities(), tracks);
    }

    #[test]
    fn fast_binomial_edge_cases() {
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        assert_eq!(sample_binomial_fast(0, 0.5, &mut rng), 0);
        assert_eq!(sample_binomial_fast(17, 0.0, &mut rng), 0);
        assert_eq!(sample_binomial_fast(17, 1.0, &mut rng), 17);
        for _ in 0..1000 {
            assert!(sample_binomial_fast(5, 0.5, &mut rng) <= 5);
        }
    }

    #[test]
    fn fast_binomial_mean_and_variance_match_theory() {
        // Exercises inversion (small mean), BTPE (large mean) and the
        // complement path (p > 1/2).
        for &(n, p) in &[
            (20u64, 0.25f64),
            (100, 0.02),
            (7, 0.9),
            (1_000, 0.3),
            (1_000_000, 0.001),
            (100_000, 0.75),
        ] {
            let mut rng = Xoshiro256pp::seed_from_u64(5);
            let mut stats = StreamingStats::new();
            let reps = 60_000;
            for _ in 0..reps {
                stats.push(sample_binomial_fast(n, p, &mut rng) as f64);
            }
            let mean = n as f64 * p;
            let var = n as f64 * p * (1.0 - p);
            assert!(
                (stats.mean() - mean).abs() < 5.0 * (var / reps as f64).sqrt() + 1e-9,
                "n={n} p={p}: mean {} vs {mean}",
                stats.mean()
            );
            assert!(
                (stats.variance() - var).abs() < 0.05 * (var + 1.0),
                "n={n} p={p}: var {} vs {var}",
                stats.variance()
            );
        }
    }

    #[test]
    fn fast_binomial_never_exceeds_n() {
        let mut rng = Xoshiro256pp::seed_from_u64(6);
        for &(n, p) in &[(30u64, 0.5f64), (1000, 0.04), (50, 0.99)] {
            for _ in 0..20_000 {
                assert!(sample_binomial_fast(n, p, &mut rng) <= n);
            }
        }
    }
}
