//! Discrete samplers built directly on a [`rand::Rng`] source.
//!
//! The workspace deliberately avoids an external distributions crate: the
//! simulators only need a handful of discrete samplers, all of which are
//! implemented (and tested) here:
//!
//! * [`sample_bernoulli`] — one biased coin flip;
//! * [`sample_geometric`] — number of failures before the first success, via
//!   inversion (`⌊ln U / ln(1-p)⌋`), O(1);
//! * [`sample_binomial`] — exact for any `(n, p)`: waiting-time (geometric
//!   skip) sampling when `n·min(p,1-p)` is small, otherwise the normal
//!   approximation is *not* used — instead the count is built from the
//!   Poisson-style BTRS-free split described below, which keeps the sampler
//!   exact at the cost of O(n·p) expected work. The simulators never need
//!   large `n·p` draws, so exactness is preferred over constant-time;
//! * [`sample_poisson`] — Knuth multiplication method for small λ, normal
//!   rejection-free sum-of-exponentials splitting for large λ.
//!
//! Arrival processes (`mac-channel`) use the Poisson and geometric samplers;
//! tests use the binomial sampler to cross-check the fast slot-outcome path.

use rand::Rng;

/// Samples a Bernoulli(`p`) trial; returns `true` with probability `p`.
///
/// # Panics
/// Panics if `p` is not in `[0, 1]`.
///
/// # Example
/// ```
/// use mac_prob::sampling::sample_bernoulli;
/// use mac_prob::rng::Xoshiro256pp;
/// use rand::SeedableRng;
/// let mut rng = Xoshiro256pp::seed_from_u64(0);
/// assert!(sample_bernoulli(1.0, &mut rng));
/// assert!(!sample_bernoulli(0.0, &mut rng));
/// ```
#[inline]
pub fn sample_bernoulli<R: Rng + ?Sized>(p: f64, rng: &mut R) -> bool {
    assert!(
        (0.0..=1.0).contains(&p),
        "Bernoulli parameter must be in [0,1], got {p}"
    );
    if p <= 0.0 {
        return false;
    }
    if p >= 1.0 {
        return true;
    }
    rng.gen::<f64>() < p
}

/// Samples a Geometric(`p`) variable: the number of independent failures
/// before the first success, each trial succeeding with probability `p`.
///
/// Support `{0, 1, 2, …}`. Sampled by inversion, O(1).
///
/// # Panics
/// Panics if `p` is not in `(0, 1]`.
///
/// # Example
/// ```
/// use mac_prob::sampling::sample_geometric;
/// use mac_prob::rng::Xoshiro256pp;
/// use rand::SeedableRng;
/// let mut rng = Xoshiro256pp::seed_from_u64(0);
/// assert_eq!(sample_geometric(1.0, &mut rng), 0);
/// ```
#[inline]
pub fn sample_geometric<R: Rng + ?Sized>(p: f64, rng: &mut R) -> u64 {
    assert!(
        p > 0.0 && p <= 1.0,
        "Geometric parameter must be in (0,1], got {p}"
    );
    if p >= 1.0 {
        return 0;
    }
    // U in (0,1]; using 1-gen() avoids ln(0).
    let u = 1.0 - rng.gen::<f64>();
    let g = (u.ln() / (-p).ln_1p()).floor();
    if g < 0.0 {
        0
    } else if g > u64::MAX as f64 {
        u64::MAX
    } else {
        g as u64
    }
}

/// Samples a Binomial(`n`, `p`) variable exactly.
///
/// Strategy:
/// * degenerate cases (`p ∈ {0,1}`, `n = 0`) are returned directly;
/// * for `p > 1/2` the complement `n - Binomial(n, 1-p)` is sampled so the
///   expected work is always `O(n·min(p, 1-p) + 1)`;
/// * the count of successes is produced by repeatedly sampling the geometric
///   waiting time to the next success and skipping over it (the "geometric
///   method" of Devroye, ch. X.4), which is exact.
///
/// The simulators only draw binomials whose mean is at most a few units
/// (e.g. the number of transmitters in one slot), so the expected-linear cost
/// in `n·p` is irrelevant in practice, and exactness lets the fast simulators
/// be validated against the per-node ones bit-for-bit in distribution.
///
/// # Panics
/// Panics if `p` is not in `[0, 1]`.
///
/// # Example
/// ```
/// use mac_prob::sampling::sample_binomial;
/// use mac_prob::rng::Xoshiro256pp;
/// use rand::SeedableRng;
/// let mut rng = Xoshiro256pp::seed_from_u64(0);
/// assert_eq!(sample_binomial(10, 0.0, &mut rng), 0);
/// assert_eq!(sample_binomial(10, 1.0, &mut rng), 10);
/// let x = sample_binomial(10, 0.3, &mut rng);
/// assert!(x <= 10);
/// ```
pub fn sample_binomial<R: Rng + ?Sized>(n: u64, p: f64, rng: &mut R) -> u64 {
    assert!(
        (0.0..=1.0).contains(&p),
        "Binomial parameter must be in [0,1], got {p}"
    );
    if n == 0 || p == 0.0 {
        return 0;
    }
    if p == 1.0 {
        return n;
    }
    if p > 0.5 {
        return n - sample_binomial(n, 1.0 - p, rng);
    }
    // Geometric-skip method: positions of successes among n trials are found
    // by accumulating geometric gaps.
    let mut successes = 0u64;
    let mut position = 0u64;
    loop {
        let gap = sample_geometric(p, rng);
        // The next success would occur at trial index position + gap (0-based).
        if gap >= n - position {
            break;
        }
        successes += 1;
        position += gap + 1;
        if position >= n {
            break;
        }
    }
    successes
}

/// Samples a Poisson(λ) variable.
///
/// For `λ ≤ 30` the Knuth multiplication method is used (exact, O(λ)).
/// For larger λ the variable is split as the sum of independent Poisson
/// variables with parameter ≤ 30 (exact, O(λ/30) recursion depth is folded
/// into a loop), which keeps the sampler exact without requiring a rejection
/// method.
///
/// # Panics
/// Panics if `λ` is negative or not finite.
///
/// # Example
/// ```
/// use mac_prob::sampling::sample_poisson;
/// use mac_prob::rng::Xoshiro256pp;
/// use rand::SeedableRng;
/// let mut rng = Xoshiro256pp::seed_from_u64(0);
/// assert_eq!(sample_poisson(0.0, &mut rng), 0);
/// let x = sample_poisson(3.5, &mut rng);
/// assert!(x < 100);
/// ```
pub fn sample_poisson<R: Rng + ?Sized>(lambda: f64, rng: &mut R) -> u64 {
    assert!(
        lambda.is_finite() && lambda >= 0.0,
        "Poisson parameter must be finite and non-negative, got {lambda}"
    );
    if lambda == 0.0 {
        return 0;
    }
    let mut total = 0u64;
    let mut remaining = lambda;
    // Split into chunks of at most 30 to keep exp(-chunk) well away from the
    // subnormal range used by the multiplication method.
    while remaining > 30.0 {
        total += knuth_poisson(30.0, rng);
        remaining -= 30.0;
    }
    total + knuth_poisson(remaining, rng)
}

fn knuth_poisson<R: Rng + ?Sized>(lambda: f64, rng: &mut R) -> u64 {
    let limit = (-lambda).exp();
    let mut count = 0u64;
    let mut product: f64 = rng.gen();
    while product > limit {
        count += 1;
        product *= rng.gen::<f64>();
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256pp;
    use crate::stats::StreamingStats;
    use rand::SeedableRng;

    fn mean_of<F: FnMut(&mut Xoshiro256pp) -> f64>(seed: u64, n: usize, mut f: F) -> (f64, f64) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut stats = StreamingStats::new();
        for _ in 0..n {
            stats.push(f(&mut rng));
        }
        (stats.mean(), stats.std_dev())
    }

    #[test]
    fn bernoulli_edge_cases() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        assert!(sample_bernoulli(1.0, &mut rng));
        assert!(!sample_bernoulli(0.0, &mut rng));
    }

    #[test]
    fn bernoulli_frequency_matches_p() {
        let (mean, _) = mean_of(2, 100_000, |r| {
            if sample_bernoulli(0.37, r) {
                1.0
            } else {
                0.0
            }
        });
        assert!((mean - 0.37).abs() < 0.01, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "Bernoulli parameter")]
    fn bernoulli_rejects_invalid() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        sample_bernoulli(-0.1, &mut rng);
    }

    #[test]
    fn geometric_p_one_is_zero() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(sample_geometric(1.0, &mut rng), 0);
        }
    }

    #[test]
    fn geometric_mean_matches_theory() {
        // E[G] = (1-p)/p
        for &p in &[0.1, 0.4, 0.75] {
            let (mean, _) = mean_of(3, 200_000, |r| sample_geometric(p, r) as f64);
            let expected = (1.0 - p) / p;
            assert!(
                (mean - expected).abs() < 0.05 * (expected + 1.0),
                "p={p}: {mean} vs {expected}"
            );
        }
    }

    #[test]
    fn binomial_edge_cases() {
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        assert_eq!(sample_binomial(0, 0.5, &mut rng), 0);
        assert_eq!(sample_binomial(17, 0.0, &mut rng), 0);
        assert_eq!(sample_binomial(17, 1.0, &mut rng), 17);
        for _ in 0..1000 {
            assert!(sample_binomial(5, 0.5, &mut rng) <= 5);
        }
    }

    #[test]
    fn binomial_mean_and_variance_match_theory() {
        for &(n, p) in &[(20u64, 0.25f64), (100, 0.02), (7, 0.9)] {
            let mut rng = Xoshiro256pp::seed_from_u64(5);
            let mut stats = StreamingStats::new();
            for _ in 0..100_000 {
                stats.push(sample_binomial(n, p, &mut rng) as f64);
            }
            let mean = n as f64 * p;
            let var = n as f64 * p * (1.0 - p);
            assert!(
                (stats.mean() - mean).abs() < 0.03 * (mean + 1.0),
                "n={n} p={p}: mean {} vs {mean}",
                stats.mean()
            );
            assert!(
                (stats.variance() - var).abs() < 0.08 * (var + 1.0),
                "n={n} p={p}: var {} vs {var}",
                stats.variance()
            );
        }
    }

    #[test]
    fn binomial_complement_path_is_consistent() {
        // p = 0.98 goes through the complement branch.
        let mut rng = Xoshiro256pp::seed_from_u64(6);
        let mut stats = StreamingStats::new();
        for _ in 0..50_000 {
            stats.push(sample_binomial(50, 0.98, &mut rng) as f64);
        }
        assert!((stats.mean() - 49.0).abs() < 0.1, "mean {}", stats.mean());
    }

    #[test]
    fn poisson_zero_lambda() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        assert_eq!(sample_poisson(0.0, &mut rng), 0);
    }

    #[test]
    fn poisson_mean_matches_small_and_large_lambda() {
        for &lambda in &[0.5, 4.0, 75.0] {
            let (mean, _) = mean_of(8, 60_000, |r| sample_poisson(lambda, r) as f64);
            assert!(
                (mean - lambda).abs() < 0.03 * (lambda + 1.0),
                "lambda={lambda}: {mean}"
            );
        }
    }

    #[test]
    fn binomial_agrees_with_slot_outcome_probabilities() {
        // P[Binomial(m,p) == 1] must equal the delivery probability of the
        // slot-outcome module: this is the cross-check that justifies the
        // fast simulator.
        use crate::outcome::slot_outcome_probabilities;
        let m = 40u64;
        let p = 0.05f64;
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        let n = 200_000;
        let mut ones = 0usize;
        for _ in 0..n {
            if sample_binomial(m, p, &mut rng) == 1 {
                ones += 1;
            }
        }
        let expected = slot_outcome_probabilities(m, p).delivery;
        let tol = 4.0 * (expected * (1.0 - expected) / n as f64).sqrt();
        assert!(
            ((ones as f64 / n as f64) - expected).abs() < tol,
            "{} vs {expected}",
            ones as f64 / n as f64
        );
    }
}
