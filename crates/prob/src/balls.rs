//! Balls-in-bins occupancy experiments.
//!
//! Contention-window protocols (Exp Back-on/Back-off, Loglog-iterated
//! Back-off, r-exponential back-off) have every active station pick one slot
//! uniformly at random inside a window of `w` slots. A window with `m` active
//! stations is therefore exactly an experiment in which `m` balls are dropped
//! uniformly at random into `w` bins; the stations whose ball lands alone in
//! its bin deliver their message (Lemma 1 of the paper analyses precisely this
//! process).
//!
//! This module provides two tiers of occupancy machinery:
//!
//! * the **counts-only fast path** — [`OccupancyScratch`] with
//!   [`occupancy_counts`] / [`throw_balls_into`] — which streams the tallies
//!   the simulators consume ([`OccupancyCounts`]: singletons, empty bins,
//!   colliding bins, max load) without materialising per-ball assignments
//!   for the caller, reusing internal buffers so that steady-state windows
//!   perform **zero heap allocations**;
//! * the **detailed path** — [`throw_balls`] / [`BinsOccupancy`] — a thin
//!   allocating wrapper retained for callers that need per-ball detail (the
//!   exact simulator, traces, tests).
//!
//! Both paths draw exactly `m` values from the generator in the same order,
//! so they are interchangeable without perturbing the RNG stream, and both
//! use the same density switch: a dense `Vec<u32>` of per-bin counts when `w`
//! is comparable to `m`, and a sorted-assignment scan when `w ≫ m` (so that a
//! window of four billion slots with three active stations does not allocate
//! four billion counters).

use crate::binomial::{
    exp_small, inv_q, recip_table, sample_binomial_fast, ModeKernel, SlotKernel, DEAD_LOG,
    MAX_EXP_OFFSET, RECIP_TABLE_N,
};
use crate::outcome::SlotOutcome;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Density switch shared by every occupancy routine in this module: dense
/// per-bin counters are used when `bins <= max(8·balls, 1024)`, a sorted
/// assignment scan otherwise.
#[inline]
fn dense_limit(balls: u64) -> u64 {
    balls.saturating_mul(8).max(1024)
}

/// Counts-only summary of one balls-in-bins experiment.
///
/// Produced by [`occupancy_counts`] / [`throw_balls_into`]; carries exactly
/// the tallies the window simulator and the analytical bounds consume,
/// without any per-ball or per-bin materialisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OccupancyCounts {
    /// Number of bins in the experiment.
    pub bins: u64,
    /// Number of balls thrown.
    pub balls: u64,
    /// Number of bins containing exactly one ball.
    pub singletons: u64,
    /// Number of bins with no ball.
    pub empty_bins: u64,
    /// Number of bins with two or more balls.
    pub colliding_bins: u64,
    /// Largest number of balls in any single bin (0 when there are no balls).
    pub max_load: u64,
    /// Largest bin index containing at least one ball (`None` when empty).
    ///
    /// When `colliding_bins == 0` this is the position of the last delivered
    /// message inside the window, which is what the window simulator needs to
    /// close its final window without a singleton list.
    pub max_occupied_bin: Option<u64>,
}

impl OccupancyCounts {
    fn empty(bins: u64) -> Self {
        Self {
            bins,
            balls: 0,
            singletons: 0,
            empty_bins: bins,
            colliding_bins: 0,
            max_load: 0,
            max_occupied_bin: None,
        }
    }
}

/// Reusable buffers for the allocation-free occupancy paths.
///
/// A scratch owns three buffers — dense per-bin counters, the per-ball
/// assignment list and a singleton-bin list — that grow to the high-water
/// mark of the runs they serve and are then reused, so a long simulation
/// performs no per-window heap allocation. Construct one per run (or per
/// worker thread) and pass it to [`occupancy_counts`] or
/// [`throw_balls_into`].
///
/// # Example
/// ```
/// use mac_prob::balls::{occupancy_counts, OccupancyScratch};
/// use mac_prob::rng::Xoshiro256pp;
/// use rand::SeedableRng;
///
/// let mut rng = Xoshiro256pp::seed_from_u64(3);
/// let mut scratch = OccupancyScratch::new();
/// let counts = occupancy_counts(10, 100, &mut rng, &mut scratch);
/// assert_eq!(counts.balls, 10);
/// assert_eq!(counts.singletons + counts.colliding_bins + counts.empty_bins, 100);
/// ```
#[derive(Debug, Default, Clone)]
pub struct OccupancyScratch {
    /// Dense per-bin counters; entries touched by a run are re-zeroed before
    /// the run returns, so the buffer is always all-zero between calls.
    counts: Vec<u32>,
    /// Bin chosen by each ball of the most recent throw.
    assignments: Vec<u64>,
    /// Singleton bins of the most recent [`throw_balls_into`], ascending.
    singleton_bins: Vec<u64>,
}

impl OccupancyScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a scratch whose per-ball buffers (assignments, singleton
    /// list) are pre-sized for throws of up to `balls` balls — useful for
    /// the detailed [`throw_balls_into`] path; the counts-only path does not
    /// touch these buffers. The dense counter window always grows on first
    /// use, since its size depends on the bin count, not the ball count.
    pub fn with_capacity(balls: usize) -> Self {
        Self {
            counts: Vec::new(),
            assignments: Vec::with_capacity(balls),
            singleton_bins: Vec::with_capacity(balls),
        }
    }

    /// Bins chosen by the balls of the most recent [`throw_balls_into`].
    ///
    /// [`occupancy_counts`] does not materialise assignments (its dense fast
    /// path fuses drawing and counting), so this view is empty after a
    /// counts-only throw. In the sparse regime (`w ≫ m`) the buffer is
    /// sorted in place during counting, so the slice is **not** guaranteed
    /// to be in ball order; callers that need ball identity should use
    /// [`BinsOccupancy::from_assignments`] instead.
    pub fn assignments(&self) -> &[u64] {
        &self.assignments
    }

    /// Singleton bins (ascending) of the most recent [`throw_balls_into`].
    ///
    /// [`occupancy_counts`] does not maintain this list; it is only valid
    /// after a detailed throw.
    pub fn singleton_bins(&self) -> &[u64] {
        &self.singleton_bins
    }

    /// Draws `m` assignments into the internal buffer, identically to
    /// [`throw_balls`] (same number of draws, same order).
    fn draw<R: Rng + ?Sized>(&mut self, m: u64, w: u64, rng: &mut R) {
        self.assignments.clear();
        self.assignments.reserve(m as usize);
        for _ in 0..m {
            self.assignments.push(rng.gen_range(0..w));
        }
    }

    /// Fused draw-and-count for the dense counts-only fast path: one uniform
    /// draw and one branch-free counter increment per ball (no assignment
    /// materialisation), one branch-light sequential scan of the counter
    /// window for the tallies, one sequential re-zeroing fill. This is the
    /// window simulator's steady-state inner loop; the scan and the fill are
    /// O(w), but in the dense regime `w ≤ 8m` they stream at memory
    /// bandwidth, which profiling shows is far cheaper than tracking the
    /// tallies branchily inside the random-access increment loop (or
    /// re-zeroing by re-touching `m` random entries).
    fn count_dense_streaming<R: Rng + ?Sized>(
        &mut self,
        m: u64,
        w: u64,
        rng: &mut R,
    ) -> OccupancyCounts {
        self.assignments.clear();
        self.singleton_bins.clear();
        if self.counts.len() < w as usize {
            self.counts.resize(w as usize, 0);
        }
        let counts = &mut self.counts[..w as usize];
        for _ in 0..m {
            let a = rng.gen_range(0..w);
            counts[a as usize] += 1;
        }
        let counted = scan_dense_window(counts, m, w, None);
        counts.fill(0);
        counted
    }

    /// Counts the assignments currently in the buffer, optionally collecting
    /// singleton bins (ascending) into `self.singleton_bins`.
    fn count_buffered(&mut self, w: u64, collect_singletons: bool) -> OccupancyCounts {
        let m = self.assignments.len() as u64;
        self.singleton_bins.clear();
        if w <= dense_limit(m) {
            if self.counts.len() < w as usize {
                self.counts.resize(w as usize, 0);
            }
            let counts = &mut self.counts[..w as usize];
            for &a in &self.assignments {
                counts[a as usize] += 1;
            }
            let singles = collect_singletons.then_some(&mut self.singleton_bins);
            let counted = scan_dense_window(counts, m, w, singles);
            counts.fill(0);
            counted
        } else {
            // Sparse path: sort the assignments in place and scan the runs.
            self.assignments.sort_unstable();
            let mut singletons = 0u64;
            let mut occupied = 0u64;
            let mut colliding = 0u64;
            let mut max_load = 0u64;
            let mut max_occupied_bin = None;
            let mut i = 0usize;
            while i < self.assignments.len() {
                let bin = self.assignments[i];
                let mut j = i + 1;
                while j < self.assignments.len() && self.assignments[j] == bin {
                    j += 1;
                }
                let load = (j - i) as u64;
                occupied += 1;
                if load == 1 {
                    singletons += 1;
                    if collect_singletons {
                        self.singleton_bins.push(bin);
                    }
                } else {
                    colliding += 1;
                }
                max_load = max_load.max(load);
                max_occupied_bin = Some(bin);
                i = j;
            }
            OccupancyCounts {
                bins: w,
                balls: m,
                singletons,
                empty_bins: w - occupied,
                colliding_bins: colliding,
                max_load,
                max_occupied_bin,
            }
        }
    }
}

/// Derives the occupancy tallies from a dense counter window with one
/// sequential, mostly branch-free pass (the comparisons compile to
/// flag-setting arithmetic the auto-vectoriser handles well). When `singles`
/// is given, singleton bins are appended in ascending order as a side
/// effect of the same pass.
fn scan_dense_window(
    counts: &[u32],
    balls: u64,
    bins: u64,
    singles: Option<&mut Vec<u64>>,
) -> OccupancyCounts {
    let mut empty = 0u64;
    let mut singletons = 0u64;
    let mut max_load = 0u32;
    let mut max_occupied_bin = usize::MAX;
    if let Some(singles) = singles {
        for (bin, &count) in counts.iter().enumerate() {
            empty += u64::from(count == 0);
            max_load = max_load.max(count);
            if count == 1 {
                singletons += 1;
                singles.push(bin as u64);
            }
            if count > 0 {
                max_occupied_bin = bin;
            }
        }
    } else {
        for (bin, &count) in counts.iter().enumerate() {
            empty += u64::from(count == 0);
            singletons += u64::from(count == 1);
            max_load = max_load.max(count);
            if count > 0 {
                max_occupied_bin = bin;
            }
        }
    }
    debug_assert_eq!(counts.len() as u64, bins);
    OccupancyCounts {
        bins,
        balls,
        singletons,
        empty_bins: empty,
        colliding_bins: bins - empty - singletons,
        max_load: u64::from(max_load),
        max_occupied_bin: (max_occupied_bin != usize::MAX).then_some(max_occupied_bin as u64),
    }
}

/// Drops `m` balls uniformly at random into `w` bins and returns the
/// counts-only summary, reusing `scratch` so that steady-state calls perform
/// no heap allocation.
///
/// Draws exactly the same RNG stream as [`throw_balls`] (`m` uniform values
/// in ball order), so the two paths are interchangeable per seed; the
/// property tests assert the tallies agree.
///
/// # Panics
/// Panics if `w == 0` while `m > 0` (there is nowhere to put the balls).
pub fn occupancy_counts<R: Rng + ?Sized>(
    m: u64,
    w: u64,
    rng: &mut R,
    scratch: &mut OccupancyScratch,
) -> OccupancyCounts {
    if m == 0 {
        scratch.assignments.clear();
        scratch.singleton_bins.clear();
        return OccupancyCounts::empty(w);
    }
    assert!(w > 0, "cannot throw {m} balls into zero bins");
    if w <= dense_limit(m) {
        scratch.count_dense_streaming(m, w, rng)
    } else {
        scratch.draw(m, w, rng);
        let counts = scratch.count_buffered(w, false);
        // Keep the documented contract: counts-only throws leave no
        // assignments visible (the sparse path needs them only internally).
        scratch.assignments.clear();
        counts
    }
}

/// Like [`occupancy_counts`], additionally leaving the per-ball assignments
/// and the ascending singleton-bin list available in `scratch`
/// ([`OccupancyScratch::assignments`] / [`OccupancyScratch::singleton_bins`]).
///
/// This is the path for callers that need per-delivery detail (e.g. the
/// window simulator when recording delivery slots) without paying
/// [`throw_balls`]'s fresh allocations per window.
///
/// # Panics
/// Panics if `w == 0` while `m > 0`.
pub fn throw_balls_into<R: Rng + ?Sized>(
    m: u64,
    w: u64,
    rng: &mut R,
    scratch: &mut OccupancyScratch,
) -> OccupancyCounts {
    if m == 0 {
        scratch.assignments.clear();
        scratch.singleton_bins.clear();
        return OccupancyCounts::empty(w);
    }
    assert!(w > 0, "cannot throw {m} balls into zero bins");
    scratch.draw(m, w, rng);
    scratch.count_buffered(w, true)
}

/// Result of dropping `m` balls uniformly at random into `w` bins.
///
/// `assignments[i]` is the bin of ball `i`; the remaining fields summarise the
/// occupancy. Constructed by [`throw_balls`] or from a pre-existing assignment
/// with [`BinsOccupancy::from_assignments`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinsOccupancy {
    /// Number of bins in the experiment.
    pub bins: u64,
    /// Bin chosen by each ball (`assignments.len()` is the number of balls).
    pub assignments: Vec<u64>,
    /// Bins containing exactly one ball, in increasing bin order.
    pub singleton_bins: Vec<u64>,
    /// Number of bins with no ball.
    pub empty_bins: u64,
    /// Number of bins with two or more balls.
    pub colliding_bins: u64,
    /// Largest number of balls in any single bin (0 when there are no balls).
    pub max_load: u64,
}

impl BinsOccupancy {
    /// Builds the occupancy summary from an explicit assignment of balls to
    /// bins.
    ///
    /// # Panics
    /// Panics if any assignment refers to a bin `>= bins`.
    pub fn from_assignments(bins: u64, assignments: Vec<u64>) -> Self {
        for &a in &assignments {
            assert!(
                a < bins,
                "ball assigned to bin {a} but only {bins} bins exist"
            );
        }
        let m = assignments.len() as u64;
        // Dense counting when the bins array is affordable relative to the
        // number of balls; otherwise sort a copy of the assignments.
        let (singleton_bins, empty_bins, colliding_bins, max_load) = if bins <= dense_limit(m) {
            let mut counts = vec![0u32; bins as usize];
            for &a in &assignments {
                counts[a as usize] += 1;
            }
            let mut singles = Vec::new();
            let mut empty = 0u64;
            let mut colliding = 0u64;
            let mut max_load = 0u64;
            for (bin, &c) in counts.iter().enumerate() {
                match c {
                    0 => empty += 1,
                    1 => singles.push(bin as u64),
                    _ => colliding += 1,
                }
                max_load = max_load.max(c as u64);
            }
            (singles, empty, colliding, max_load)
        } else {
            let mut sorted = assignments.clone();
            sorted.sort_unstable();
            let mut singles = Vec::new();
            let mut occupied = 0u64;
            let mut colliding = 0u64;
            let mut max_load = 0u64;
            let mut i = 0usize;
            while i < sorted.len() {
                let bin = sorted[i];
                let mut j = i + 1;
                while j < sorted.len() && sorted[j] == bin {
                    j += 1;
                }
                let load = (j - i) as u64;
                occupied += 1;
                if load == 1 {
                    singles.push(bin);
                } else {
                    colliding += 1;
                }
                max_load = max_load.max(load);
                i = j;
            }
            (singles, bins - occupied, colliding, max_load)
        };
        debug_assert_eq!(
            singleton_bins.len() as u64 + empty_bins + colliding_bins,
            bins,
            "occupancy categories must partition the bins"
        );
        debug_assert!(m == 0 || max_load >= 1);
        Self {
            bins,
            assignments,
            singleton_bins,
            empty_bins,
            colliding_bins,
            max_load,
        }
    }

    /// Number of balls in the experiment.
    pub fn balls(&self) -> u64 {
        self.assignments.len() as u64
    }

    /// Number of bins that contain exactly one ball.
    pub fn singletons(&self) -> u64 {
        self.singleton_bins.len() as u64
    }

    /// Indices (into the ball list) of the balls that landed alone in their
    /// bin, i.e. the stations whose transmission is delivered.
    pub fn singleton_balls(&self) -> Vec<usize> {
        // The singleton bin list is sorted; binary-search each ball's bin.
        self.assignments
            .iter()
            .enumerate()
            .filter(|(_, bin)| self.singleton_bins.binary_search(bin).is_ok())
            .map(|(i, _)| i)
            .collect()
    }
}

/// Drops `m` balls uniformly at random into `w` bins.
///
/// # Panics
/// Panics if `w == 0` while `m > 0` (there is nowhere to put the balls).
///
/// # Example
/// ```
/// use mac_prob::balls::throw_balls;
/// use mac_prob::rng::Xoshiro256pp;
/// use rand::SeedableRng;
/// let mut rng = Xoshiro256pp::seed_from_u64(3);
/// let occ = throw_balls(10, 100, &mut rng);
/// assert_eq!(occ.balls(), 10);
/// assert_eq!(occ.bins, 100);
/// assert_eq!(occ.singletons() + occ.colliding_bins + occ.empty_bins, 100);
/// ```
pub fn throw_balls<R: Rng + ?Sized>(m: u64, w: u64, rng: &mut R) -> BinsOccupancy {
    if m == 0 {
        return BinsOccupancy::from_assignments(w, Vec::new());
    }
    assert!(w > 0, "cannot throw {m} balls into zero bins");
    let assignments = (0..m).map(|_| rng.gen_range(0..w)).collect();
    BinsOccupancy::from_assignments(w, assignments)
}

/// Counts-only summary of one window resolved slot-by-slot by
/// [`walk_window`] (conditional binomial sampling).
///
/// Unlike [`OccupancyCounts`] there is no `max_load` field: the aggregate
/// walk does not track individual bin loads beyond the 0/1/≥2 trichotomy
/// (and the certain-collision shortcut never samples them at all).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotOccupancy {
    /// Number of bins (slots) in the window.
    pub bins: u64,
    /// Number of balls (stations) thrown.
    pub balls: u64,
    /// Bins holding exactly one ball.
    pub singletons: u64,
    /// Bins holding no ball.
    pub empty_bins: u64,
    /// Bins holding two or more balls.
    pub colliding_bins: u64,
    /// Largest occupied bin index (`None` when `balls == 0`).
    pub max_occupied_bin: Option<u64>,
}

/// Reusable buffers for [`walk_window`]: the ascending singleton-bin list
/// of the most recent walk, plus an [`OccupancyScratch`] for the sparse
/// per-ball tail regime. (The walk's slot kernel — thresholds and the
/// mode-anchored collision pmf, see [`WalkKernel`] — is per-window state
/// and lives on the stack.)
#[derive(Debug, Clone, Default)]
pub struct WalkScratch {
    singles: Vec<u64>,
    occupancy: OccupancyScratch,
}

impl WalkScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Singleton bins (ascending) of the most recent [`walk_window`] call
    /// (empty after a counts-only [`walk_window_counts`]).
    pub fn singleton_bins(&self) -> &[u64] {
        &self.singles
    }
}

/// Collision slots whose transmitter count exceeds this `m·p` are resolved
/// by the mode-anchored sampler ([`ModeKernel::sample_cond_ge2`], O(√λ)
/// two-sided steps from the mode) instead of term-by-term CDF continuation
/// from `T = 1` (O(λ) terms). Measured crossover on the 2.1 GHz CI-class
/// box: the continuation's smaller constant wins while the expected term
/// count `≈ λ` stays single-digit.
const WALK_MODE_LAMBDA_MIN: f64 = 8.0;

/// Smallest `w_left` served by the walk's fused fast loop: below it
/// `p = 1/w_left` leaves the documented truncation range of the per-slot
/// series (geometric `p` advance, `ln q` increment) and the walk falls back
/// to the general [`SlotKernel`] tail loop — at most this many slots per
/// window.
const WALK_FAST_W_MIN: u64 = 4096;

/// Block size of the conditional-binomial block decomposition: the walk
/// resolves low-λ stretches of huge windows in blocks of this many bins —
/// one `Binomial(m_left, b/w_left)` draw decides how many balls land in the
/// block (the conditional chain at block granularity, exact in law), and
/// the block is then resolved by the dense per-ball machinery against a
/// counter window that fits in L1, instead of one cache-missing increment
/// per ball into a `w`-sized array.
const WALK_BLOCK_BINS: u64 = 4096;

/// λ at which the walk switches from block decomposition to the per-slot
/// mode-anchored loop (measured crossover: the per-ball block resolver's
/// cost grows linearly in λ, the per-slot loop's is flat once collisions
/// dominate), with hysteresis so in-window λ drift cannot ping-pong the
/// regimes.
const WALK_PER_SLOT_LAMBDA_ENTER: f64 = 48.0;

/// λ below which the per-slot loop hands back to block decomposition.
const WALK_PER_SLOT_LAMBDA_EXIT: f64 = 32.0;

/// Slots between exact re-divisions of the fast loop's series-maintained
/// `p = 1/w_left` (no drift accumulates past one period).
const WALK_P_RESYNC: u32 = 256;

/// Slots between exact re-exponentiations of the fast loop's
/// multiplicatively maintained `P(T = 0)` (bounds the accumulated rounding
/// and polynomial truncation of the running product below `~1e-11`).
const WALK_T0_RESYNC: u32 = 4096;

/// Two-tier incremental `exp` for the fast loop's per-slot `P(T = 0)`
/// update: a cubic for the common tiny move (truncation `d⁴/24 < 4e-16` at
/// the `3e-4` bound), the shared degree-7 polynomial up to `1/16`.
#[inline]
fn exp_walk(d: f64) -> f64 {
    if d.abs() <= 3e-4 {
        1.0 + d * (1.0 + d * (0.5 + d * (1.0 / 6.0)))
    } else {
        exp_small(d)
    }
}

/// Finishes the CDF inversion a collision classification started: `u ≥ t1`,
/// so the pmf terms are walked upward from `T = 2` until the cumulative
/// mass passes `u` (table-based reciprocals keep the recurrence free of a
/// latency-chained divide). `s = p/(1−p)` as computed by the caller's
/// series; `t1 − t0` is `P(T = 1)`.
#[inline]
fn continue_cdf_inversion(u: f64, t0: f64, t1: f64, s: f64, m_f: f64, m_left: u64) -> u64 {
    let recip = recip_table();
    let mut t = 1u64;
    let mut term = t1 - t0;
    let mut cum = t1;
    loop {
        t += 1;
        let inv_t = if (t as usize) < RECIP_TABLE_N {
            recip[t as usize]
        } else {
            1.0 / t as f64
        };
        term *= s * (m_f - (t as f64 - 1.0)) * inv_t;
        cum += term;
        if u < cum || t >= m_left {
            break;
        }
    }
    t
}

/// Log-probability bound below which a window is resolved as all-collisions
/// without sampling (see [`walk_window`]): with the union bound on *any* bin
/// holding ≤ 1 ball below `e^{-100} ≈ 10^{-44}`, the total-variation
/// distance the shortcut introduces is far below the `f64` rounding noise
/// the sampled path accumulates anyway (every per-slot probability carries
/// ~1e-16 relative rounding, over millions of slots), and no statistical
/// test at any feasible sample size can tell the difference.
const ALL_COLLIDE_LOG_BOUND: f64 = -100.0;

/// Drops `m` balls uniformly at random into `w` bins, resolving the bins
/// **slot by slot** with conditional binomial draws: bin `i` receives
/// `T_i ~ Binomial(m_left, 1/w_left)` given the balls and bins still in
/// play. Cost is O(w) draws instead of O(m + w) per-ball work, which is the
/// difference between O(m) and O(1) per *slot* for the early back-off
/// windows where `m ≫ w`.
///
/// Three regimes, dispatched per call and per slot:
///
/// * **Certain collision** — when the union bound
///   `w·(1-1/w)^{m-1}·(1 + (m-1)/w)` on the probability of *any* bin holding
///   ≤ 1 ball is below `e^{-100}` ([`ALL_COLLIDE_LOG_BOUND`]), the window is
///   resolved as `w` colliding bins without consuming any randomness. This
///   is the only place the aggregate path deviates from the exact
///   distribution, by a total variation distance `< e^{-100} ≈ 10^{-44}`
///   (documented in `crates/sim/DESIGN.md` §5).
/// * **Walk** — one classification draw per slot against incrementally
///   maintained thresholds ([`SlotKernel`]); collision slots additionally
///   sample the transmitter count (CDF continuation for small `m·p`,
///   rejection from [`sample_binomial_fast`] otherwise) to keep the
///   conditional chain exact.
/// * **Sparse tail** — once `w_left` exceeds [`dense_limit`]`(m_left)` the
///   few remaining balls are thrown per-ball into the remaining bins (the
///   conditional distribution of the remaining balls is exactly uniform on
///   the remaining bins).
///
/// The ascending singleton-bin list is left in `scratch`
/// ([`WalkScratch::singleton_bins`]). The RNG consumption differs from
/// [`throw_balls`] / [`occupancy_counts`]; equivalence is distributional,
/// not per-stream (property-tested).
///
/// # Panics
/// Panics if `w == 0` while `m > 0`.
pub fn walk_window<R: Rng + ?Sized>(
    m: u64,
    w: u64,
    rng: &mut R,
    scratch: &mut WalkScratch,
) -> SlotOccupancy {
    walk_window_impl::<true, R>(m, w, rng, scratch)
}

/// Counts-only variant of [`walk_window`]: identical law and identical RNG
/// consumption, but the ascending singleton-bin list is *not* maintained
/// (the scratch's view is left empty). This is the window simulator's
/// steady-state path when no adversary is active and no delivery slots are
/// recorded — at low λ a third of all slots are deliveries, and skipping
/// the list write keeps the walk's inner loop free of memory traffic.
pub fn walk_window_counts<R: Rng + ?Sized>(
    m: u64,
    w: u64,
    rng: &mut R,
    scratch: &mut WalkScratch,
) -> SlotOccupancy {
    walk_window_impl::<false, R>(m, w, rng, scratch)
}

fn walk_window_impl<const COLLECT: bool, R: Rng + ?Sized>(
    m: u64,
    w: u64,
    rng: &mut R,
    scratch: &mut WalkScratch,
) -> SlotOccupancy {
    scratch.singles.clear();
    if m == 0 {
        return SlotOccupancy {
            bins: w,
            balls: 0,
            singletons: 0,
            empty_bins: w,
            colliding_bins: 0,
            max_occupied_bin: None,
        };
    }
    assert!(w > 0, "cannot throw {m} balls into zero bins");
    if m == 1 {
        let bin = rng.gen_range(0..w);
        if COLLECT {
            scratch.singles.push(bin);
        }
        return SlotOccupancy {
            bins: w,
            balls: 1,
            singletons: 1,
            empty_bins: w - 1,
            colliding_bins: 0,
            max_occupied_bin: Some(bin),
        };
    }
    // Certain-collision shortcut: union bound on any bin holding <= 1 ball.
    let mf = m as f64;
    let wf = w as f64;
    let ln_bound = wf.ln() + (mf - 1.0) * (-1.0 / wf).ln_1p() + ((mf - 1.0) / wf).ln_1p();
    if ln_bound < ALL_COLLIDE_LOG_BOUND {
        return SlotOccupancy {
            bins: w,
            balls: m,
            singletons: 0,
            empty_bins: 0,
            colliding_bins: w,
            max_occupied_bin: Some(w - 1),
        };
    }

    let mut m_left = m;
    let mut singletons = 0u64;
    let mut empty = 0u64;
    let mut colliding = 0u64;
    let mut max_occupied: Option<u64> = None;
    let mut i = 0u64;
    // Which bin the sparse per-ball tail should start from, when the walk
    // crosses the density switch mid-window.
    let mut sparse_from: Option<u64> = None;
    // The mode-anchored collision pmf, shared by the per-slot regimes.
    // Anchoring is an O(1) series evaluation and the kernel re-anchors
    // itself exactly whenever its drift guards trip, so it is simply
    // (re-)synchronised on use whenever a regime left it stale.
    let mut mode = ModeKernel::new(m, 1.0 / wf);

    // Outer dispatch: each round picks the cheapest exact resolver for the
    // current load λ = m_left/w_left (the measured crossover table lives in
    // the constants above; see `crates/sim/DESIGN.md` §7):
    //
    // * `w_left > 8·m_left` — sparse per-ball tail, terminal;
    // * `λ < WALK_PER_SLOT_LAMBDA_ENTER` — one conditional-binomial
    //   **block**: `T_b ~ Binomial(m_left, b/w_left)` balls land in the
    //   next `b` bins (4096, or the whole remainder up to 6143 so no tiny
    //   trailing block is left) and are resolved by the dense per-ball
    //   machinery against a cache-resident counter window;
    // * otherwise — the per-slot mode-anchored loop (fused fast loop for
    //   `w_left ≥ 4096`, the general `SlotKernel` tail below that).
    'outer: while m_left > 0 && i < w {
        let w_left = w - i;
        if w_left > dense_limit(m_left) {
            sparse_from = Some(i);
            break 'outer;
        }
        let lam = m_left as f64 / w_left as f64;
        if lam < WALK_PER_SLOT_LAMBDA_ENTER {
            // ---- block decomposition ----
            let b = if w_left < WALK_BLOCK_BINS + WALK_BLOCK_BINS / 2 {
                w_left
            } else {
                WALK_BLOCK_BINS
            };
            let n_b = if b == w_left {
                m_left
            } else {
                sample_binomial_fast(m_left, b as f64 / w_left as f64, rng)
            };
            if n_b > 0 {
                let blk = if COLLECT {
                    let blk = throw_balls_into(n_b, b, rng, &mut scratch.occupancy);
                    for &bin in scratch.occupancy.singleton_bins() {
                        scratch.singles.push(i + bin);
                    }
                    blk
                } else {
                    occupancy_counts(n_b, b, rng, &mut scratch.occupancy)
                };
                singletons += blk.singletons;
                empty += blk.empty_bins;
                colliding += blk.colliding_bins;
                if let Some(bin) = blk.max_occupied_bin {
                    max_occupied = Some(i + bin);
                }
                m_left -= n_b;
            } else {
                empty += b;
            }
            i += b;
            continue 'outer;
        }
        if w_left < WALK_FAST_W_MIN {
            // ---- general tail loop (high λ in a sub-4096 window tail) ----
            let mut kernel = SlotKernel::new(m_left, 1.0 / w_left as f64);
            while i < w && m_left > 0 {
                let w_left = w - i;
                if w_left > dense_limit(m_left) {
                    sparse_from = Some(i);
                    break 'outer;
                }
                let p = 1.0 / w_left as f64;
                let m_f = m_left as f64;
                kernel.update(m_f, p);
                let taken = if kernel.is_dead() {
                    colliding += 1;
                    max_occupied = Some(i);
                    mode.update(m_f, p);
                    mode.sample_cond_ge2(rng.gen::<f64>())
                } else {
                    let thresholds = kernel.thresholds();
                    let u = rng.gen::<f64>();
                    match thresholds.classify(u) {
                        SlotOutcome::Silence => {
                            empty += 1;
                            0
                        }
                        SlotOutcome::Delivery => {
                            singletons += 1;
                            if COLLECT {
                                scratch.singles.push(i);
                            }
                            max_occupied = Some(i);
                            1
                        }
                        SlotOutcome::Collision => {
                            colliding += 1;
                            max_occupied = Some(i);
                            if m_f * p < WALK_MODE_LAMBDA_MIN {
                                continue_cdf_inversion(
                                    u,
                                    thresholds.t0,
                                    thresholds.t1,
                                    p * inv_q(p),
                                    m_f,
                                    m_left,
                                )
                            } else {
                                mode.update(m_f, p);
                                mode.sample_cond_ge2(u - thresholds.t1)
                            }
                        }
                    }
                };
                m_left -= taken;
                i += 1;
            }
            break 'outer;
        }
        // ---- per-slot fused fast loop (λ ≥ enter threshold, w_left ≥ 4096) ----
        //
        // All slot state lives in locals: p = 1/w_left by geometric series
        // (exact re-division every WALK_P_RESYNC slots), ln q by its
        // per-slot increment δ = ln(1 − p′²) (the exact log-ratio of
        // consecutive q's), ℓ = n·ln q additively, and t0 = e^ℓ
        // multiplicatively (exact re-sync every WALK_T0_RESYNC slots;
        // lazily re-derived after dead stretches). The mode pmf advances
        // off the same increments, using Δln p = ln(w/(w−1)) = −ln q.
        let mut p = 1.0 / w_left as f64;
        let mut lnq = (-p).ln_1p();
        let mut nn = m_left as f64;
        let mut ell = nn * lnq;
        let mut t0 = if ell <= DEAD_LOG { 0.0 } else { ell.exp() };
        let mut t0_stale = false;
        let mut p_resync: u32 = WALK_P_RESYNC;
        let mut t0_resync: u32 = WALK_T0_RESYNC;
        loop {
            let taken = if ell <= DEAD_LOG {
                // Certain collision at f64 resolution (λ ≳ 37 here), but
                // the ball count still shapes the rest of the window:
                // sample T | T ≥ 2 from the mode-anchored pmf with a fresh
                // uniform (the conditioning event has probability 1 at f64
                // resolution, so the full unit interval is the conditional
                // mass).
                t0_stale = true;
                colliding += 1;
                max_occupied = Some(i);
                if mode.n() != nn || mode.p() != p {
                    mode.update(nn, p);
                }
                mode.sample_cond_ge2(rng.gen::<f64>())
            } else {
                if t0_stale {
                    // Waking from a dead stretch (or a freak-move resync):
                    // the multiplicative product was not advanced.
                    t0 = ell.exp();
                    t0_stale = false;
                    t0_resync = WALK_T0_RESYNC;
                }
                let s = p * (1.0 + p * (1.0 + p * (1.0 + p)));
                let t1 = (t0 + t0 * (nn * s)).min(1.0);
                let u = rng.gen::<f64>();
                if u < t0 {
                    empty += 1;
                    0
                } else if u < t1 {
                    singletons += 1;
                    if COLLECT {
                        scratch.singles.push(i);
                    }
                    max_occupied = Some(i);
                    1
                } else {
                    // Mode-anchored two-sided inversion on the leftover
                    // uniform mass: O(√λ) recurrence steps from the
                    // incrementally maintained mode pmf instead of O(λ)
                    // continuation terms or a BTPE rejection loop. (This
                    // loop only serves λ ≥ 32, so the λ < 8 continuation
                    // band lives in the block and tail regimes.)
                    debug_assert!(nn * p >= WALK_PER_SLOT_LAMBDA_EXIT);
                    colliding += 1;
                    max_occupied = Some(i);
                    if mode.n() != nn || mode.p() != p {
                        mode.update(nn, p);
                    }
                    mode.sample_cond_ge2(u - t1)
                }
            };
            m_left -= taken;
            i += 1;
            if m_left == 0 || i >= w {
                break 'outer;
            }
            let w_left_new = w - i;
            if w_left_new < WALK_FAST_W_MIN {
                continue 'outer;
            }
            // Advance the maintained state to the next slot.
            let t = taken as f64;
            nn -= t;
            p_resync -= 1;
            let p_new = if p_resync == 0 {
                p_resync = WALK_P_RESYNC;
                1.0 / w_left_new as f64
            } else {
                p * (1.0 + p * (1.0 + p * (1.0 + p)))
            };
            // δ = ln(q′/q) = ln(1 − p′²) exactly (q′/q = w(w−2)/(w−1)²).
            let x = p_new * p_new;
            let dlnq = -x * (1.0 + 0.5 * x);
            let dl = nn * dlnq - t * lnq;
            if dl.abs() <= MAX_EXP_OFFSET {
                // Δln p = ln(w/(w−1)) = −ln(1 − 1/w) = −ln q (old). The
                // mode pmf is consulted on essentially every slot at these
                // loads, so it is stepped unconditionally.
                mode.step_precomputed(t, nn, p_new, w_left_new as f64, -lnq, dlnq);
                ell += dl;
                lnq += dlnq;
                if !t0_stale {
                    if ell <= DEAD_LOG {
                        t0_stale = true;
                    } else {
                        t0_resync -= 1;
                        if t0_resync == 0 {
                            t0_resync = WALK_T0_RESYNC;
                            t0 = ell.exp();
                        } else {
                            t0 *= exp_walk(dl);
                        }
                    }
                }
                p = p_new;
            } else {
                // A freak collision count (taken ≫ λ) pushed the move
                // outside the polynomial range: re-derive exactly.
                p = 1.0 / w_left_new as f64;
                lnq = (-p).ln_1p();
                ell = nn * lnq;
                t0_stale = true;
                p_resync = WALK_P_RESYNC;
            }
            if nn * p < WALK_PER_SLOT_LAMBDA_EXIT || w_left_new > dense_limit(m_left) {
                // λ drifted back to block territory (or the window went
                // sparse): hand control back to the dispatcher.
                continue 'outer;
            }
        }
    }

    if let Some(start) = sparse_from {
        // Sparse tail: the remaining balls are uniform on the remaining
        // bins; finish with the per-ball machinery.
        let w_left = w - start;
        let tail = if COLLECT {
            let tail = throw_balls_into(m_left, w_left, rng, &mut scratch.occupancy);
            for &bin in scratch.occupancy.singleton_bins() {
                scratch.singles.push(start + bin);
            }
            tail
        } else {
            occupancy_counts(m_left, w_left, rng, &mut scratch.occupancy)
        };
        singletons += tail.singletons;
        empty += tail.empty_bins;
        colliding += tail.colliding_bins;
        if let Some(bin) = tail.max_occupied_bin {
            max_occupied = Some(start + bin);
        }
        m_left = 0;
    } else if i < w {
        // Balls ran out early: every remaining bin is empty.
        empty += w - i;
    }

    debug_assert_eq!(m_left, 0, "every ball lands in some bin");
    SlotOccupancy {
        bins: w,
        balls: m,
        singletons,
        empty_bins: empty,
        colliding_bins: colliding,
        max_occupied_bin: max_occupied,
    }
}

/// Expected fraction of balls that land alone when `m` balls are thrown into
/// `w` bins: `(1 - 1/w)^(m-1)`.
///
/// This is the quantity Lemma 1 of the paper bounds from below by `δ` (for
/// `w ≥ m` large enough); exposing it here lets tests and the analysis module
/// share one definition.
pub fn expected_singleton_fraction(m: u64, w: u64) -> f64 {
    if m == 0 {
        return 0.0;
    }
    assert!(w > 0, "zero bins");
    let q = -1.0 / w as f64;
    ((m as f64 - 1.0) * q.ln_1p()).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256pp;
    use rand::SeedableRng;

    #[test]
    fn zero_balls_everything_empty() {
        let occ = BinsOccupancy::from_assignments(5, vec![]);
        assert_eq!(occ.balls(), 0);
        assert_eq!(occ.empty_bins, 5);
        assert_eq!(occ.singletons(), 0);
        assert_eq!(occ.colliding_bins, 0);
        assert_eq!(occ.max_load, 0);
    }

    #[test]
    fn explicit_assignment_counts() {
        // bins: 0 has 2 balls, 1 has 1 ball, 2 empty, 3 has 3 balls.
        let occ = BinsOccupancy::from_assignments(4, vec![0, 0, 1, 3, 3, 3]);
        assert_eq!(occ.singleton_bins, vec![1]);
        assert_eq!(occ.empty_bins, 1);
        assert_eq!(occ.colliding_bins, 2);
        assert_eq!(occ.max_load, 3);
        assert_eq!(occ.singleton_balls(), vec![2]);
    }

    #[test]
    fn sparse_path_matches_dense_path() {
        // Force the sparse path with a huge bin count, then verify against a
        // manual count.
        let assignments = vec![1_000_000_000u64, 1_000_000_000, 42, 7, 7, 7];
        let occ = BinsOccupancy::from_assignments(5_000_000_000, assignments);
        assert_eq!(occ.singleton_bins, vec![42]);
        assert_eq!(occ.colliding_bins, 2);
        assert_eq!(occ.max_load, 3);
        assert_eq!(occ.empty_bins, 5_000_000_000 - 3);
        assert_eq!(occ.singleton_balls(), vec![2]);
    }

    #[test]
    #[should_panic(expected = "only")]
    fn rejects_out_of_range_assignment() {
        let _ = BinsOccupancy::from_assignments(3, vec![3]);
    }

    #[test]
    #[should_panic(expected = "zero bins")]
    fn rejects_throwing_into_zero_bins() {
        let mut rng = Xoshiro256pp::seed_from_u64(0);
        let _ = throw_balls(1, 0, &mut rng);
    }

    #[test]
    fn categories_partition_bins() {
        let mut rng = Xoshiro256pp::seed_from_u64(10);
        for &(m, w) in &[(1u64, 1u64), (5, 3), (100, 100), (1000, 64), (3, 10_000)] {
            let occ = throw_balls(m, w, &mut rng);
            assert_eq!(occ.balls(), m);
            assert_eq!(occ.singletons() + occ.empty_bins + occ.colliding_bins, w);
            assert_eq!(occ.singleton_balls().len() as u64, occ.singletons());
        }
    }

    #[test]
    fn singleton_fraction_matches_lemma_one_expectation() {
        // With w = m, the expected fraction of singleton balls tends to 1/e.
        let m = 10_000u64;
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let mut total_singletons = 0u64;
        let reps = 50;
        for _ in 0..reps {
            total_singletons += throw_balls(m, m, &mut rng).singletons();
        }
        let frac = total_singletons as f64 / (m * reps) as f64;
        let expected = expected_singleton_fraction(m, m);
        assert!((expected - (-1.0f64).exp()).abs() < 1e-3);
        assert!((frac - expected).abs() < 0.01, "{frac} vs {expected}");
    }

    #[test]
    fn expected_singleton_fraction_edges() {
        assert_eq!(expected_singleton_fraction(0, 10), 0.0);
        assert_eq!(expected_singleton_fraction(1, 10), 1.0);
        assert!(expected_singleton_fraction(2, 2) - 0.5 < 1e-12);
    }

    #[test]
    fn all_balls_one_bin_when_single_bin() {
        let mut rng = Xoshiro256pp::seed_from_u64(12);
        let occ = throw_balls(7, 1, &mut rng);
        assert_eq!(occ.max_load, 7);
        assert_eq!(occ.colliding_bins, 1);
        assert_eq!(occ.singletons(), 0);
    }

    /// The counts a [`BinsOccupancy`] summarises, for comparison with the
    /// counts-only path.
    fn counts_of(occ: &BinsOccupancy) -> OccupancyCounts {
        OccupancyCounts {
            bins: occ.bins,
            balls: occ.balls(),
            singletons: occ.singletons(),
            empty_bins: occ.empty_bins,
            colliding_bins: occ.colliding_bins,
            max_load: occ.max_load,
            max_occupied_bin: occ.assignments.iter().copied().max(),
        }
    }

    #[test]
    fn counts_only_path_matches_full_path_on_the_same_stream() {
        // Same seed → same draws → identical tallies, across both density
        // regimes and the m = 0 / w = 1 edges.
        let mut scratch = OccupancyScratch::new();
        for &(m, w) in &[
            (0u64, 5u64),
            (1, 1),
            (7, 1),
            (5, 3),
            (100, 100),
            (1000, 64),
            (3, 10_000),
            (2, 5_000_000_000),
        ] {
            let mut rng_a = Xoshiro256pp::seed_from_u64(77);
            let mut rng_b = Xoshiro256pp::seed_from_u64(77);
            let full = throw_balls(m, w, &mut rng_a);
            let fast = occupancy_counts(m, w, &mut rng_b, &mut scratch);
            assert_eq!(fast, counts_of(&full), "m={m} w={w}");
            // Both paths must also leave the generators in the same state.
            assert_eq!(rng_a, rng_b, "m={m} w={w}: diverged RNG streams");
            // Counts-only throws expose no assignments, in either regime.
            assert!(scratch.assignments().is_empty(), "m={m} w={w}");
        }
    }

    #[test]
    fn throw_balls_into_collects_sorted_singletons() {
        let mut scratch = OccupancyScratch::with_capacity(64);
        for seed in 0..20 {
            let mut rng_a = Xoshiro256pp::seed_from_u64(seed);
            let mut rng_b = Xoshiro256pp::seed_from_u64(seed);
            for &(m, w) in &[(40u64, 40u64), (40, 9), (6, 100_000)] {
                let full = throw_balls(m, w, &mut rng_a);
                let fast = throw_balls_into(m, w, &mut rng_b, &mut scratch);
                assert_eq!(scratch.singleton_bins(), &full.singleton_bins[..]);
                assert_eq!(fast, counts_of(&full));
            }
        }
    }

    #[test]
    fn scratch_is_reusable_across_mixed_regimes() {
        // Alternate dense and sparse windows through one scratch; the dense
        // counters must be fully re-zeroed between calls or the second dense
        // window would observe stale counts.
        let mut scratch = OccupancyScratch::new();
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        for round in 0..50u64 {
            let (m, w) = if round % 2 == 0 {
                (100, 64)
            } else {
                (4, 1 << 40)
            };
            let counts = occupancy_counts(m, w, &mut rng, &mut scratch);
            assert_eq!(counts.balls, m);
            assert_eq!(
                counts.singletons + counts.empty_bins + counts.colliding_bins,
                w,
                "round {round}"
            );
            assert!(counts.max_load >= 1 && counts.max_load <= m);
        }
    }

    #[test]
    fn max_occupied_bin_is_the_last_delivery_when_collision_free() {
        let mut scratch = OccupancyScratch::new();
        let mut rng = Xoshiro256pp::seed_from_u64(23);
        let mut seen_collision_free = false;
        for _ in 0..100 {
            let mut probe = rng.clone();
            let counts = occupancy_counts(8, 1024, &mut probe, &mut scratch);
            let full = throw_balls(8, 1024, &mut rng);
            if counts.colliding_bins == 0 {
                seen_collision_free = true;
                assert_eq!(counts.max_occupied_bin, full.singleton_bins.last().copied());
            }
        }
        assert!(seen_collision_free, "8 balls in 1024 bins collide rarely");
    }

    #[test]
    fn walk_window_partitions_bins_and_conserves_balls() {
        let mut rng = Xoshiro256pp::seed_from_u64(31);
        let mut scratch = WalkScratch::new();
        for &(m, w) in &[
            (0u64, 7u64),
            (1, 5),
            (2, 2),
            (7, 1),
            (50, 10),
            (100, 100),
            (1000, 64),
            (5000, 4000),
            (12, 100_000),
        ] {
            for _ in 0..20 {
                let occ = walk_window(m, w, &mut rng, &mut scratch);
                assert_eq!(occ.balls, m, "m={m} w={w}");
                assert_eq!(occ.bins, w);
                assert_eq!(
                    occ.singletons + occ.empty_bins + occ.colliding_bins,
                    w,
                    "m={m} w={w}: categories must partition the bins"
                );
                assert_eq!(scratch.singleton_bins().len() as u64, occ.singletons);
                assert!(
                    scratch.singleton_bins().windows(2).all(|p| p[0] < p[1]),
                    "singleton bins must be ascending"
                );
                assert!(scratch.singleton_bins().iter().all(|&b| b < w));
                // At least ceil(m/max-possible) bins must be occupied and the
                // occupied bins can't exceed the balls.
                assert!(occ.singletons + occ.colliding_bins <= m.min(w));
                if m > 0 {
                    let last = occ.max_occupied_bin.expect("balls were thrown");
                    assert!(last < w);
                    if let Some(&s) = scratch.singleton_bins().last() {
                        assert!(last >= s);
                    }
                }
            }
        }
    }

    #[test]
    fn walk_window_certain_collision_shortcut_consumes_no_randomness() {
        let mut rng_a = Xoshiro256pp::seed_from_u64(5);
        let rng_b = rng_a.clone();
        let mut scratch = WalkScratch::new();
        let occ = walk_window(1_000_000, 4, &mut rng_a, &mut scratch);
        assert_eq!(occ.colliding_bins, 4);
        assert_eq!(occ.singletons, 0);
        assert_eq!(occ.empty_bins, 0);
        assert_eq!(occ.max_occupied_bin, Some(3));
        assert_eq!(rng_a, rng_b, "shortcut must not consume the RNG");
    }

    #[test]
    fn walk_window_matches_per_ball_distribution() {
        // Statistical cross-check: mean singleton count of the walk vs the
        // per-ball reference, across density regimes (including the dead-slot
        // and inversion-continuation branches).
        for &(m, w) in &[(12u64, 12u64), (64, 16), (40, 120), (3000, 64)] {
            let reps = 4000;
            let mut rng = Xoshiro256pp::seed_from_u64(1000 + m + w);
            let mut scratch = WalkScratch::new();
            let mut walk_singles = 0u64;
            let mut walk_empty = 0u64;
            for _ in 0..reps {
                let occ = walk_window(m, w, &mut rng, &mut scratch);
                walk_singles += occ.singletons;
                walk_empty += occ.empty_bins;
            }
            let mut ball_singles = 0u64;
            let mut ball_empty = 0u64;
            for _ in 0..reps {
                let occ = throw_balls(m, w, &mut rng);
                ball_singles += occ.singletons();
                ball_empty += occ.empty_bins;
            }
            let n = reps as f64;
            // Singleton counts are in [0, min(m, w)]; 5-sigma-ish tolerance
            // from the binomial-scale spread.
            let tol = 5.0 * (w as f64).sqrt() * n.sqrt();
            assert!(
                ((walk_singles as f64) - (ball_singles as f64)).abs() < tol,
                "m={m} w={w}: walk {walk_singles} vs per-ball {ball_singles}"
            );
            assert!(
                ((walk_empty as f64) - (ball_empty as f64)).abs() < tol,
                "m={m} w={w}: walk empty {walk_empty} vs per-ball {ball_empty}"
            );
        }
    }

    #[test]
    fn walk_window_single_ball_is_a_uniform_singleton() {
        let mut rng = Xoshiro256pp::seed_from_u64(8);
        let mut scratch = WalkScratch::new();
        let mut sum = 0u64;
        let reps = 20_000;
        for _ in 0..reps {
            let occ = walk_window(1, 10, &mut rng, &mut scratch);
            assert_eq!(occ.singletons, 1);
            sum += scratch.singleton_bins()[0];
        }
        let mean = sum as f64 / reps as f64;
        assert!((mean - 4.5).abs() < 0.1, "uniform over 0..10, mean {mean}");
    }

    #[test]
    fn empty_throw_resets_scratch_views() {
        let mut scratch = OccupancyScratch::new();
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        let _ = throw_balls_into(32, 32, &mut rng, &mut scratch);
        assert!(!scratch.assignments().is_empty());
        let counts = throw_balls_into(0, 17, &mut rng, &mut scratch);
        assert_eq!(counts, OccupancyCounts::empty(17));
        assert!(scratch.assignments().is_empty());
        assert!(scratch.singleton_bins().is_empty());
    }
}
