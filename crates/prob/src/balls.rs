//! Balls-in-bins occupancy experiments.
//!
//! Contention-window protocols (Exp Back-on/Back-off, Loglog-iterated
//! Back-off, r-exponential back-off) have every active station pick one slot
//! uniformly at random inside a window of `w` slots. A window with `m` active
//! stations is therefore exactly an experiment in which `m` balls are dropped
//! uniformly at random into `w` bins; the stations whose ball lands alone in
//! its bin deliver their message (Lemma 1 of the paper analyses precisely this
//! process).
//!
//! This module provides the sampling primitive ([`throw_balls`]) and an
//! occupancy summary ([`BinsOccupancy`]) with the counts the protocols and the
//! analytical bounds care about: number of singleton bins, number of empty
//! bins, number of colliding bins and the maximum load.
//!
//! Two occupancy-counting strategies are used depending on density:
//! a dense `Vec<u32>` of per-bin counts when `w` is comparable to `m`, and a
//! sorted-assignment scan when `w ≫ m` (so that a window of four billion slots
//! with three active stations does not allocate four billion counters).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Result of dropping `m` balls uniformly at random into `w` bins.
///
/// `assignments[i]` is the bin of ball `i`; the remaining fields summarise the
/// occupancy. Constructed by [`throw_balls`] or from a pre-existing assignment
/// with [`BinsOccupancy::from_assignments`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinsOccupancy {
    /// Number of bins in the experiment.
    pub bins: u64,
    /// Bin chosen by each ball (`assignments.len()` is the number of balls).
    pub assignments: Vec<u64>,
    /// Bins containing exactly one ball, in increasing bin order.
    pub singleton_bins: Vec<u64>,
    /// Number of bins with no ball.
    pub empty_bins: u64,
    /// Number of bins with two or more balls.
    pub colliding_bins: u64,
    /// Largest number of balls in any single bin (0 when there are no balls).
    pub max_load: u64,
}

impl BinsOccupancy {
    /// Builds the occupancy summary from an explicit assignment of balls to
    /// bins.
    ///
    /// # Panics
    /// Panics if any assignment refers to a bin `>= bins`.
    pub fn from_assignments(bins: u64, assignments: Vec<u64>) -> Self {
        for &a in &assignments {
            assert!(a < bins, "ball assigned to bin {a} but only {bins} bins exist");
        }
        let m = assignments.len() as u64;
        // Dense counting when the bins array is affordable relative to the
        // number of balls; otherwise sort a copy of the assignments.
        let dense_limit = (assignments.len() as u64).saturating_mul(8).max(1024);
        let (singleton_bins, empty_bins, colliding_bins, max_load) = if bins <= dense_limit {
            let mut counts = vec![0u32; bins as usize];
            for &a in &assignments {
                counts[a as usize] += 1;
            }
            let mut singles = Vec::new();
            let mut empty = 0u64;
            let mut colliding = 0u64;
            let mut max_load = 0u64;
            for (bin, &c) in counts.iter().enumerate() {
                match c {
                    0 => empty += 1,
                    1 => singles.push(bin as u64),
                    _ => colliding += 1,
                }
                max_load = max_load.max(c as u64);
            }
            (singles, empty, colliding, max_load)
        } else {
            let mut sorted = assignments.clone();
            sorted.sort_unstable();
            let mut singles = Vec::new();
            let mut occupied = 0u64;
            let mut colliding = 0u64;
            let mut max_load = 0u64;
            let mut i = 0usize;
            while i < sorted.len() {
                let bin = sorted[i];
                let mut j = i + 1;
                while j < sorted.len() && sorted[j] == bin {
                    j += 1;
                }
                let load = (j - i) as u64;
                occupied += 1;
                if load == 1 {
                    singles.push(bin);
                } else {
                    colliding += 1;
                }
                max_load = max_load.max(load);
                i = j;
            }
            (singles, bins - occupied, colliding, max_load)
        };
        debug_assert_eq!(
            singleton_bins.len() as u64 + empty_bins + colliding_bins,
            bins,
            "occupancy categories must partition the bins"
        );
        debug_assert!(m == 0 || max_load >= 1);
        Self {
            bins,
            assignments,
            singleton_bins,
            empty_bins,
            colliding_bins,
            max_load,
        }
    }

    /// Number of balls in the experiment.
    pub fn balls(&self) -> u64 {
        self.assignments.len() as u64
    }

    /// Number of bins that contain exactly one ball.
    pub fn singletons(&self) -> u64 {
        self.singleton_bins.len() as u64
    }

    /// Indices (into the ball list) of the balls that landed alone in their
    /// bin, i.e. the stations whose transmission is delivered.
    pub fn singleton_balls(&self) -> Vec<usize> {
        // The singleton bin list is sorted; binary-search each ball's bin.
        self.assignments
            .iter()
            .enumerate()
            .filter(|(_, bin)| self.singleton_bins.binary_search(bin).is_ok())
            .map(|(i, _)| i)
            .collect()
    }
}

/// Drops `m` balls uniformly at random into `w` bins.
///
/// # Panics
/// Panics if `w == 0` while `m > 0` (there is nowhere to put the balls).
///
/// # Example
/// ```
/// use mac_prob::balls::throw_balls;
/// use mac_prob::rng::Xoshiro256pp;
/// use rand::SeedableRng;
/// let mut rng = Xoshiro256pp::seed_from_u64(3);
/// let occ = throw_balls(10, 100, &mut rng);
/// assert_eq!(occ.balls(), 10);
/// assert_eq!(occ.bins, 100);
/// assert_eq!(occ.singletons() + occ.colliding_bins + occ.empty_bins, 100);
/// ```
pub fn throw_balls<R: Rng + ?Sized>(m: u64, w: u64, rng: &mut R) -> BinsOccupancy {
    if m == 0 {
        return BinsOccupancy::from_assignments(w, Vec::new());
    }
    assert!(w > 0, "cannot throw {m} balls into zero bins");
    let assignments = (0..m).map(|_| rng.gen_range(0..w)).collect();
    BinsOccupancy::from_assignments(w, assignments)
}

/// Expected fraction of balls that land alone when `m` balls are thrown into
/// `w` bins: `(1 - 1/w)^(m-1)`.
///
/// This is the quantity Lemma 1 of the paper bounds from below by `δ` (for
/// `w ≥ m` large enough); exposing it here lets tests and the analysis module
/// share one definition.
pub fn expected_singleton_fraction(m: u64, w: u64) -> f64 {
    if m == 0 {
        return 0.0;
    }
    assert!(w > 0, "zero bins");
    let q = -1.0 / w as f64;
    ((m as f64 - 1.0) * q.ln_1p()).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256pp;
    use rand::SeedableRng;

    #[test]
    fn zero_balls_everything_empty() {
        let occ = BinsOccupancy::from_assignments(5, vec![]);
        assert_eq!(occ.balls(), 0);
        assert_eq!(occ.empty_bins, 5);
        assert_eq!(occ.singletons(), 0);
        assert_eq!(occ.colliding_bins, 0);
        assert_eq!(occ.max_load, 0);
    }

    #[test]
    fn explicit_assignment_counts() {
        // bins: 0 has 2 balls, 1 has 1 ball, 2 empty, 3 has 3 balls.
        let occ = BinsOccupancy::from_assignments(4, vec![0, 0, 1, 3, 3, 3]);
        assert_eq!(occ.singleton_bins, vec![1]);
        assert_eq!(occ.empty_bins, 1);
        assert_eq!(occ.colliding_bins, 2);
        assert_eq!(occ.max_load, 3);
        assert_eq!(occ.singleton_balls(), vec![2]);
    }

    #[test]
    fn sparse_path_matches_dense_path() {
        // Force the sparse path with a huge bin count, then verify against a
        // manual count.
        let assignments = vec![1_000_000_000u64, 1_000_000_000, 42, 7, 7, 7];
        let occ = BinsOccupancy::from_assignments(5_000_000_000, assignments);
        assert_eq!(occ.singleton_bins, vec![42]);
        assert_eq!(occ.colliding_bins, 2);
        assert_eq!(occ.max_load, 3);
        assert_eq!(occ.empty_bins, 5_000_000_000 - 3);
        assert_eq!(occ.singleton_balls(), vec![2]);
    }

    #[test]
    #[should_panic(expected = "only")]
    fn rejects_out_of_range_assignment() {
        let _ = BinsOccupancy::from_assignments(3, vec![3]);
    }

    #[test]
    #[should_panic(expected = "zero bins")]
    fn rejects_throwing_into_zero_bins() {
        let mut rng = Xoshiro256pp::seed_from_u64(0);
        let _ = throw_balls(1, 0, &mut rng);
    }

    #[test]
    fn categories_partition_bins() {
        let mut rng = Xoshiro256pp::seed_from_u64(10);
        for &(m, w) in &[(1u64, 1u64), (5, 3), (100, 100), (1000, 64), (3, 10_000)] {
            let occ = throw_balls(m, w, &mut rng);
            assert_eq!(occ.balls(), m);
            assert_eq!(occ.singletons() + occ.empty_bins + occ.colliding_bins, w);
            assert_eq!(occ.singleton_balls().len() as u64, occ.singletons());
        }
    }

    #[test]
    fn singleton_fraction_matches_lemma_one_expectation() {
        // With w = m, the expected fraction of singleton balls tends to 1/e.
        let m = 10_000u64;
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let mut total_singletons = 0u64;
        let reps = 50;
        for _ in 0..reps {
            total_singletons += throw_balls(m, m, &mut rng).singletons();
        }
        let frac = total_singletons as f64 / (m * reps) as f64;
        let expected = expected_singleton_fraction(m, m);
        assert!((expected - (-1.0f64).exp()).abs() < 1e-3);
        assert!((frac - expected).abs() < 0.01, "{frac} vs {expected}");
    }

    #[test]
    fn expected_singleton_fraction_edges() {
        assert_eq!(expected_singleton_fraction(0, 10), 0.0);
        assert_eq!(expected_singleton_fraction(1, 10), 1.0);
        assert!(expected_singleton_fraction(2, 2) - 0.5 < 1e-12);
    }

    #[test]
    fn all_balls_one_bin_when_single_bin() {
        let mut rng = Xoshiro256pp::seed_from_u64(12);
        let occ = throw_balls(7, 1, &mut rng);
        assert_eq!(occ.max_load, 7);
        assert_eq!(occ.colliding_bins, 1);
        assert_eq!(occ.singletons(), 0);
    }
}
