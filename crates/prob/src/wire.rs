//! Word-oriented binary codec for engine checkpoints.
//!
//! The streaming-session subsystem (`mac-sim`) serialises full engine state —
//! RNG streams, incremental threshold kernels, protocol state — so that a
//! resumed run is *bit-identical* to an unbroken one. The vendored `serde`
//! in this workspace is a no-op stub, so checkpoints are encoded by hand
//! into a flat stream of `u64` words:
//!
//! * `u64` values are stored verbatim;
//! * `f64` values are stored via [`f64::to_bits`] — the round trip is exact,
//!   including signed zeros, subnormals and NaN payloads, which is what the
//!   bit-identity contract requires (a decimal round trip would not be);
//! * strings are stored as a length word followed by little-endian packed
//!   bytes (used for the adversary-model config strings, which already have
//!   a canonical `Display`/`FromStr` round trip);
//! * the whole word stream converts to/from little-endian bytes for storage.
//!
//! Decoding is checked: a truncated or malformed stream yields a
//! [`WireError`] instead of a panic, so corrupt checkpoints fail loudly.
//!
//! # Example
//! ```
//! use mac_prob::wire::{Decoder, Encoder};
//! let mut enc = Encoder::new();
//! enc.put_u64(42);
//! enc.put_f64(0.1);
//! enc.put_str("periodic:2:1:0");
//! let words = enc.finish();
//! let mut dec = Decoder::new(&words);
//! assert_eq!(dec.take_u64().unwrap(), 42);
//! assert_eq!(dec.take_f64().unwrap(), 0.1);
//! assert_eq!(dec.take_str().unwrap(), "periodic:2:1:0");
//! assert!(dec.finish().is_ok());
//! ```

use std::fmt;

/// Error raised by [`Decoder`] on a truncated or malformed word stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The stream ended before the expected field.
    Truncated,
    /// A field was present but held an invalid value.
    Malformed(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "checkpoint stream truncated"),
            WireError::Malformed(what) => write!(f, "malformed checkpoint field: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Appends checkpoint fields to a growing `u64` word stream.
#[derive(Debug, Clone, Default)]
pub struct Encoder {
    words: Vec<u64>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of words written so far.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Appends a raw word.
    pub fn put_u64(&mut self, v: u64) {
        self.words.push(v);
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (exact round trip).
    pub fn put_f64(&mut self, v: f64) {
        self.words.push(v.to_bits());
    }

    /// Appends a `u32` (widened to one word).
    pub fn put_u32(&mut self, v: u32) {
        self.words.push(u64::from(v));
    }

    /// Appends a boolean as 0 or 1.
    pub fn put_bool(&mut self, v: bool) {
        self.words.push(u64::from(v));
    }

    /// Appends a `usize` (widened to one word).
    pub fn put_usize(&mut self, v: usize) {
        self.words.push(v as u64);
    }

    /// Appends a string: one length word, then bytes packed 8 per word
    /// little-endian.
    pub fn put_str(&mut self, s: &str) {
        let bytes = s.as_bytes();
        self.words.push(bytes.len() as u64);
        for chunk in bytes.chunks(8) {
            let mut b = [0u8; 8];
            b[..chunk.len()].copy_from_slice(chunk);
            self.words.push(u64::from_le_bytes(b));
        }
    }

    /// Appends a slice of raw words prefixed by its length.
    pub fn put_words(&mut self, ws: &[u64]) {
        self.words.push(ws.len() as u64);
        self.words.extend_from_slice(ws);
    }

    /// Consumes the encoder and returns the word stream.
    pub fn finish(self) -> Vec<u64> {
        self.words
    }
}

/// Reads checkpoint fields back out of a `u64` word stream.
#[derive(Debug, Clone)]
pub struct Decoder<'a> {
    words: &'a [u64],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over `words`, positioned at the start.
    pub fn new(words: &'a [u64]) -> Self {
        Self { words, pos: 0 }
    }

    /// Number of words not yet consumed.
    pub fn remaining(&self) -> usize {
        self.words.len() - self.pos
    }

    /// Reads one raw word.
    ///
    /// # Errors
    /// [`WireError::Truncated`] if the stream is exhausted.
    pub fn take_u64(&mut self) -> Result<u64, WireError> {
        let w = *self.words.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(w)
    }

    /// Reads an `f64` from its bit pattern.
    ///
    /// # Errors
    /// [`WireError::Truncated`] if the stream is exhausted.
    pub fn take_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads a `u32`, rejecting out-of-range words.
    ///
    /// # Errors
    /// Truncated stream, or a word that does not fit in `u32`.
    pub fn take_u32(&mut self) -> Result<u32, WireError> {
        u32::try_from(self.take_u64()?).map_err(|_| WireError::Malformed("u32 out of range"))
    }

    /// Reads a boolean, rejecting words other than 0 and 1.
    ///
    /// # Errors
    /// Truncated stream, or a word other than 0/1.
    pub fn take_bool(&mut self) -> Result<bool, WireError> {
        match self.take_u64()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Malformed("boolean not 0 or 1")),
        }
    }

    /// Reads a `usize`, rejecting words beyond the platform's range.
    ///
    /// # Errors
    /// Truncated stream, or a word that does not fit in `usize`.
    pub fn take_usize(&mut self) -> Result<usize, WireError> {
        usize::try_from(self.take_u64()?).map_err(|_| WireError::Malformed("usize out of range"))
    }

    /// Reads a string written by [`Encoder::put_str`].
    ///
    /// # Errors
    /// Truncated stream, an implausible length, or invalid UTF-8.
    pub fn take_str(&mut self) -> Result<String, WireError> {
        let len = self.take_usize()?;
        let n_words = len.div_ceil(8);
        if n_words > self.remaining() {
            return Err(WireError::Truncated);
        }
        let mut bytes = Vec::with_capacity(len);
        for _ in 0..n_words {
            bytes.extend_from_slice(&self.take_u64()?.to_le_bytes());
        }
        bytes.truncate(len);
        String::from_utf8(bytes).map_err(|_| WireError::Malformed("string not UTF-8"))
    }

    /// Reads a length-prefixed word slice written by [`Encoder::put_words`].
    ///
    /// # Errors
    /// Truncated stream or an implausible length.
    pub fn take_words(&mut self) -> Result<&'a [u64], WireError> {
        let len = self.take_usize()?;
        if len > self.remaining() {
            return Err(WireError::Truncated);
        }
        let ws = &self.words[self.pos..self.pos + len];
        self.pos += len;
        Ok(ws)
    }

    /// Asserts that the stream has been fully consumed.
    ///
    /// # Errors
    /// [`WireError::Malformed`] if trailing words remain.
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing words after checkpoint"))
        }
    }
}

/// SplitMix64-folded digest of a word stream, used as the integrity
/// checksum appended to checkpoint frames.
///
/// The digest chains the SplitMix64 finalizer over the words:
/// `h ← mix(h ⊕ wᵢ)` with `h₀ = γ ⊕ len`. Because `mix` is a bijection on
/// `u64`, changing any **single** word (for a fixed prefix state) changes
/// the chained value bijectively at that step and at every later step —
/// so corrupting any one word of the stream is *guaranteed* to change the
/// digest, not merely overwhelmingly likely. Multi-word corruptions are
/// caught with probability `1 − 2⁻⁶⁴` per independent trial. Folding the
/// length into the seed distinguishes streams that are prefixes of each
/// other.
pub fn digest_words(words: &[u64]) -> u64 {
    const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut h = GAMMA ^ (words.len() as u64);
    for &w in words {
        let mut z = (h ^ w).wrapping_add(GAMMA);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h = z ^ (z >> 31);
    }
    h
}

/// Converts a word stream to little-endian bytes (for file storage).
pub fn words_to_bytes(words: &[u64]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(words.len() * 8);
    for w in words {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    bytes
}

/// Converts little-endian bytes back to a word stream.
///
/// # Errors
/// [`WireError::Malformed`] if the byte length is not a multiple of 8.
pub fn bytes_to_words(bytes: &[u8]) -> Result<Vec<u64>, WireError> {
    if !bytes.len().is_multiple_of(8) {
        return Err(WireError::Malformed("byte length not a multiple of 8"));
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|chunk| {
            let mut b = [0u8; 8];
            b.copy_from_slice(chunk);
            u64::from_le_bytes(b)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_field_kind() {
        let mut enc = Encoder::new();
        enc.put_u64(u64::MAX);
        enc.put_f64(-0.0);
        enc.put_f64(f64::NAN);
        enc.put_f64(2.5e-308 / 1e10); // subnormal
        enc.put_u32(u32::MAX);
        enc.put_bool(true);
        enc.put_bool(false);
        enc.put_usize(12345);
        enc.put_str("");
        enc.put_str("reactive:31:near-success");
        enc.put_words(&[1, 2, 3]);
        let words = enc.finish();

        let mut dec = Decoder::new(&words);
        assert_eq!(dec.take_u64().unwrap(), u64::MAX);
        let nz = dec.take_f64().unwrap();
        assert_eq!(nz.to_bits(), (-0.0f64).to_bits());
        assert!(dec.take_f64().unwrap().is_nan());
        let sub = dec.take_f64().unwrap();
        assert!(sub > 0.0 && !sub.is_normal());
        assert_eq!(dec.take_u32().unwrap(), u32::MAX);
        assert!(dec.take_bool().unwrap());
        assert!(!dec.take_bool().unwrap());
        assert_eq!(dec.take_usize().unwrap(), 12345);
        assert_eq!(dec.take_str().unwrap(), "");
        assert_eq!(dec.take_str().unwrap(), "reactive:31:near-success");
        assert_eq!(dec.take_words().unwrap(), &[1, 2, 3]);
        assert!(dec.finish().is_ok());
    }

    #[test]
    fn truncated_streams_error_instead_of_panicking() {
        assert_eq!(Decoder::new(&[]).take_u64(), Err(WireError::Truncated));
        // String whose length word promises more data than exists.
        assert_eq!(Decoder::new(&[64]).take_str(), Err(WireError::Truncated));
        assert_eq!(Decoder::new(&[9]).take_words(), Err(WireError::Truncated));
    }

    #[test]
    fn malformed_fields_are_rejected() {
        assert!(matches!(
            Decoder::new(&[2]).take_bool(),
            Err(WireError::Malformed(_))
        ));
        assert!(matches!(
            Decoder::new(&[u64::MAX]).take_u32(),
            Err(WireError::Malformed(_))
        ));
        // A stream with unread trailing words fails `finish`.
        let mut dec = Decoder::new(&[1, 2]);
        let _ = dec.take_u64().unwrap();
        assert!(matches!(dec.finish(), Err(WireError::Malformed(_))));
        // Invalid UTF-8 inside a string payload.
        let mut enc = Encoder::new();
        enc.put_u64(2);
        enc.put_u64(u64::from_le_bytes([0xFF, 0xFE, 0, 0, 0, 0, 0, 0]));
        let words = enc.finish();
        assert!(matches!(
            Decoder::new(&words).take_str(),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn byte_conversion_round_trips_and_checks_length() {
        let words = vec![0, 1, u64::MAX, 0x0123_4567_89AB_CDEF];
        let bytes = words_to_bytes(&words);
        assert_eq!(bytes.len(), 32);
        assert_eq!(bytes_to_words(&bytes).unwrap(), words);
        assert!(bytes_to_words(&bytes[..31]).is_err());
    }

    #[test]
    fn digest_detects_every_single_word_corruption() {
        let words: Vec<u64> = (0..64)
            .map(|i| 0x0123_4567_89AB_CDEFu64.rotate_left(i))
            .collect();
        let reference = digest_words(&words);
        // Any single-word change — any position, any flipped bit — must
        // change the digest (the guarantee the checkpoint frame relies on).
        for pos in 0..words.len() {
            for bit in 0..64 {
                let mut corrupted = words.clone();
                corrupted[pos] ^= 1u64 << bit;
                assert_ne!(
                    digest_words(&corrupted),
                    reference,
                    "digest collision at word {pos}, bit {bit}"
                );
            }
        }
    }

    #[test]
    fn digest_distinguishes_prefixes_and_is_deterministic() {
        let words = vec![5u64, 6, 7, 8];
        assert_eq!(digest_words(&words), digest_words(&words.clone()));
        assert_ne!(digest_words(&words), digest_words(&words[..3]));
        assert_ne!(digest_words(&[]), digest_words(&[0]));
        // Appending the digest itself must not fix the chain (a frame is
        // [payload..., digest(payload)]; verifying recomputes over payload).
        let mut framed = words.clone();
        framed.push(digest_words(&words));
        assert_ne!(digest_words(&framed), digest_words(&words));
    }

    #[test]
    fn string_packing_is_word_aligned() {
        // 8-byte and 9-byte strings exercise the chunk boundary.
        for s in ["12345678", "123456789", "1234567"] {
            let mut enc = Encoder::new();
            enc.put_str(s);
            let words = enc.finish();
            assert_eq!(words.len(), 1 + s.len().div_ceil(8));
            let mut dec = Decoder::new(&words);
            assert_eq!(dec.take_str().unwrap(), s);
            assert!(dec.finish().is_ok());
        }
    }
}
