//! Special functions and tail bounds used by the analytical-bound module.
//!
//! The paper's analysis (Theorem 1, Theorem 2, Lemma 1 and the appendix
//! lemmata) is phrased in terms of a small set of quantities: logarithms of
//! factorials and binomial coefficients, Chernoff–Hoeffding tails for sums of
//! independent indicator variables, and the Poisson-approximation correction
//! factor `e·√m` of Mitzenmacher–Upfal. This module implements those
//! quantities once so that `mac-protocols::analysis` and the tests can share
//! them.

/// Natural logarithm of `n!`, computed exactly by summation for `n ≤ 256` and
/// by Stirling's series (with the `1/(12n)` and `1/(360n^3)` corrections) for
/// larger `n`.
///
/// Accuracy is better than `1e-9` relative error over the whole range, which
/// is far more than the tail bounds need.
///
/// # Example
/// ```
/// use mac_prob::special::ln_factorial;
/// assert_eq!(ln_factorial(0), 0.0);
/// assert!((ln_factorial(5) - 120f64.ln()).abs() < 1e-12);
/// ```
pub fn ln_factorial(n: u64) -> f64 {
    if n <= 256 {
        let mut acc = 0.0;
        for i in 2..=n {
            acc += (i as f64).ln();
        }
        acc
    } else {
        let x = n as f64;
        let ln2pi = (2.0 * std::f64::consts::PI).ln();
        (x + 0.5) * x.ln() - x + 0.5 * ln2pi + 1.0 / (12.0 * x) - 1.0 / (360.0 * x.powi(3))
    }
}

/// Natural logarithm of the binomial coefficient `C(n, k)`.
///
/// Returns `-inf` when `k > n`.
///
/// # Example
/// ```
/// use mac_prob::special::ln_binomial;
/// assert!((ln_binomial(5, 2) - 10f64.ln()).abs() < 1e-12);
/// assert_eq!(ln_binomial(3, 5), f64::NEG_INFINITY);
/// ```
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Exact probability that a `Binomial(n, p)` variable equals `k`.
///
/// Computed in log-space; accurate for large `n`.
pub fn binomial_pmf(n: u64, k: u64, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1]");
    if k > n {
        return 0.0;
    }
    if p == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p == 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    let ln_p = ln_binomial(n, k) + k as f64 * p.ln() + (n - k) as f64 * (-p).ln_1p();
    ln_p.exp()
}

/// Chernoff–Hoeffding upper bound on the lower tail of a sum of independent
/// `[0,1]` variables with mean `mu`:
/// `P[X ≤ (1-φ)·mu] ≤ exp(-φ²·mu/2)` for `0 < φ < 1`.
///
/// This is the form used in Lemma 5 of the paper's appendix.
///
/// # Panics
/// Panics unless `0 < phi < 1` and `mu ≥ 0`.
pub fn chernoff_lower_tail(mu: f64, phi: f64) -> f64 {
    assert!(phi > 0.0 && phi < 1.0, "phi must be in (0,1), got {phi}");
    assert!(mu >= 0.0, "mu must be non-negative");
    (-phi * phi * mu / 2.0).exp()
}

/// Chernoff upper bound on the upper tail:
/// `P[X ≥ (1+φ)·mu] ≤ exp(-φ²·mu/3)` for `0 < φ ≤ 1`.
pub fn chernoff_upper_tail(mu: f64, phi: f64) -> f64 {
    assert!(phi > 0.0 && phi <= 1.0, "phi must be in (0,1], got {phi}");
    assert!(mu >= 0.0, "mu must be non-negative");
    (-phi * phi * mu / 3.0).exp()
}

/// The Poisson-approximation correction factor `e·√m` of
/// Mitzenmacher–Upfal (Probability and Computing, Cor. 5.9, cited as [21] in
/// the paper): any event with probability `p` under the independent-Poisson
/// approximation of a balls-in-bins experiment with `m` balls has probability
/// at most `p · e·√m` in the exact experiment.
pub fn poisson_approximation_factor(m: u64) -> f64 {
    std::f64::consts::E * (m as f64).sqrt()
}

/// Base-2 logarithm as used by the paper (the paper's `log` is `log₂`).
///
/// # Panics
/// Panics if `x <= 0`.
pub fn log2(x: f64) -> f64 {
    assert!(x > 0.0, "log2 of non-positive value {x}");
    x.log2()
}

/// `log_{1/(1-δ)}(x)`, the number of multiplicative reductions by `(1-δ)`
/// needed to go from `x` down to 1; appears in Theorem 2's probability bound.
///
/// # Panics
/// Panics unless `0 < delta < 1` and `x ≥ 1`.
pub fn log_shrink(x: f64, delta: f64) -> f64 {
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    assert!(x >= 1.0, "x must be at least 1");
    x.ln() / (1.0 / (1.0 - delta)).ln()
}

/// Natural logarithm of the gamma function `ln Γ(x)` for `x > 0`, via the
/// Lanczos approximation (g = 7, 9 coefficients; relative error below
/// `1e-13` over the positive reals).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument, got {x}");
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_1,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1-x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x)/Γ(a)`,
/// the CDF of a `Gamma(a, 1)` variable — and hence, as `P(dof/2, x/2)`, the
/// CDF of a chi-square variable with `dof` degrees of freedom.
///
/// Series expansion for `x < a + 1`, continued fraction otherwise (the
/// standard construction; both converge to `~1e-14`).
///
/// # Panics
/// Panics unless `a > 0` and `x ≥ 0`.
pub fn regularized_gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "shape must be positive, got {a}");
    assert!(x >= 0.0, "argument must be non-negative, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    let ln_prefactor = a * x.ln() - x - ln_gamma(a);
    if x < a + 1.0 {
        // Series: P(a,x) = e^{-x} x^a / Γ(a) · Σ_{n≥0} x^n / (a(a+1)…(a+n)).
        let mut term = 1.0 / a;
        let mut sum = term;
        let mut denom = a;
        for _ in 0..500 {
            denom += 1.0;
            term *= x / denom;
            sum += term;
            if term.abs() < sum.abs() * 1e-16 {
                break;
            }
        }
        (ln_prefactor.exp() * sum).clamp(0.0, 1.0)
    } else {
        // Continued fraction for Q(a,x) (modified Lentz).
        let tiny = 1e-300;
        let mut b = x + 1.0 - a;
        let mut c = 1.0 / tiny;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < tiny {
                d = tiny;
            }
            c = b + an / c;
            if c.abs() < tiny {
                c = tiny;
            }
            d = 1.0 / d;
            let delta = d * c;
            h *= delta;
            if (delta - 1.0).abs() < 1e-16 {
                break;
            }
        }
        (1.0 - ln_prefactor.exp() * h).clamp(0.0, 1.0)
    }
}

/// Asymptotic survival function of the Kolmogorov distribution,
/// `Q(λ) = 2 Σ_{j≥1} (-1)^{j-1} e^{-2 j² λ²}` — the limiting p-value of the
/// (scaled) Kolmogorov–Smirnov statistic.
///
/// Returns 1 for `λ ≤ 0`; the alternating series is truncated once terms
/// drop below `1e-12`.
pub fn kolmogorov_survival(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for j in 1..=100 {
        let term = (-2.0 * (j as f64) * (j as f64) * lambda * lambda).exp();
        sum += sign * term;
        if term < 1e-12 {
            break;
        }
        sign = -sign;
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_factorial_small_values() {
        let factorials = [1.0f64, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0, 5040.0];
        for (n, &f) in factorials.iter().enumerate() {
            assert!((ln_factorial(n as u64) - f.ln()).abs() < 1e-12, "n={n}");
        }
    }

    #[test]
    fn ln_factorial_stirling_continuity() {
        // The exact and Stirling branches must agree near the switch point.
        let exact: f64 = (2..=300u64).map(|i| (i as f64).ln()).sum();
        assert!((ln_factorial(300) - exact).abs() / exact < 1e-9);
    }

    #[test]
    fn ln_binomial_symmetry_and_edges() {
        assert_eq!(ln_binomial(10, 0), 0.0);
        assert_eq!(ln_binomial(10, 10), 0.0);
        assert!((ln_binomial(10, 3) - ln_binomial(10, 7)).abs() < 1e-10);
        assert_eq!(ln_binomial(3, 4), f64::NEG_INFINITY);
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        let n = 40;
        let p = 0.3;
        let total: f64 = (0..=n).map(|k| binomial_pmf(n, k, p)).sum();
        assert!((total - 1.0).abs() < 1e-10);
    }

    #[test]
    fn binomial_pmf_degenerate() {
        assert_eq!(binomial_pmf(5, 0, 0.0), 1.0);
        assert_eq!(binomial_pmf(5, 3, 0.0), 0.0);
        assert_eq!(binomial_pmf(5, 5, 1.0), 1.0);
        assert_eq!(binomial_pmf(5, 6, 0.5), 0.0);
    }

    #[test]
    fn binomial_pmf_matches_slot_outcome() {
        use crate::outcome::slot_outcome_probabilities;
        let m = 1000u64;
        let p = 1.0 / 997.0;
        let pr = slot_outcome_probabilities(m, p);
        assert!((binomial_pmf(m, 0, p) - pr.silence).abs() < 1e-12);
        assert!((binomial_pmf(m, 1, p) - pr.delivery).abs() < 1e-12);
    }

    #[test]
    fn chernoff_bounds_are_valid_probabilities_and_monotone() {
        let b1 = chernoff_lower_tail(100.0, 0.5);
        let b2 = chernoff_lower_tail(200.0, 0.5);
        assert!(b1 > 0.0 && b1 < 1.0);
        assert!(b2 < b1, "larger mean gives a stronger bound");
        let u1 = chernoff_upper_tail(100.0, 0.5);
        assert!(u1 > 0.0 && u1 < 1.0);
    }

    #[test]
    fn chernoff_bound_dominates_exact_binomial_tail() {
        // P[Bin(n, 1/2) <= (1-phi) n/2] <= exp(-phi^2 n/4)
        let n = 200u64;
        let p = 0.5;
        let phi = 0.4;
        let mu = n as f64 * p;
        let cutoff = ((1.0 - phi) * mu).floor() as u64;
        let exact: f64 = (0..=cutoff).map(|k| binomial_pmf(n, k, p)).sum();
        assert!(exact <= chernoff_lower_tail(mu, phi) + 1e-12);
    }

    #[test]
    fn log_helpers() {
        assert_eq!(log2(8.0), 3.0);
        assert!((log_shrink(8.0, 0.5) - 3.0).abs() < 1e-12);
        assert!(poisson_approximation_factor(4) > 2.0 * std::f64::consts::E - 1e-12);
    }

    #[test]
    #[should_panic(expected = "log2 of non-positive")]
    fn log2_rejects_zero() {
        let _ = log2(0.0);
    }

    #[test]
    fn ln_gamma_matches_factorials_and_half_integers() {
        for n in 1..=20u64 {
            assert!(
                (ln_gamma(n as f64 + 1.0) - ln_factorial(n)).abs() < 1e-10,
                "n={n}"
            );
        }
        // Γ(1/2) = √π.
        let sqrt_pi = std::f64::consts::PI.sqrt();
        assert!((ln_gamma(0.5) - sqrt_pi.ln()).abs() < 1e-12);
        // Γ(3/2) = √π/2.
        assert!((ln_gamma(1.5) - (sqrt_pi / 2.0).ln()).abs() < 1e-12);
    }

    #[test]
    fn regularized_gamma_p_known_values() {
        // P(1, x) = 1 - e^{-x} (exponential CDF).
        for &x in &[0.1f64, 1.0, 3.0, 10.0] {
            assert!(
                (regularized_gamma_p(1.0, x) - (1.0 - (-x).exp())).abs() < 1e-12,
                "x={x}"
            );
        }
        // Chi-square with 2 dof: P(chi2 <= 5.991) ~ 0.95.
        assert!((regularized_gamma_p(1.0, 5.991 / 2.0) - 0.95).abs() < 1e-3);
        // Chi-square with 10 dof: P(chi2 <= 18.307) ~ 0.95.
        assert!((regularized_gamma_p(5.0, 18.307 / 2.0) - 0.95).abs() < 1e-3);
        assert_eq!(regularized_gamma_p(2.0, 0.0), 0.0);
        // Monotone in x, approaching 1.
        assert!(regularized_gamma_p(3.0, 50.0) > 0.999_999);
    }

    #[test]
    fn kolmogorov_survival_known_values() {
        // Standard critical values of the Kolmogorov distribution.
        assert!((kolmogorov_survival(1.358) - 0.05).abs() < 2e-3);
        assert!((kolmogorov_survival(1.224) - 0.10).abs() < 2e-3);
        assert_eq!(kolmogorov_survival(0.0), 1.0);
        assert!(kolmogorov_survival(3.0) < 1e-6);
        assert!(kolmogorov_survival(0.2) > 0.999);
    }
}
