//! Special functions and tail bounds used by the analytical-bound module.
//!
//! The paper's analysis (Theorem 1, Theorem 2, Lemma 1 and the appendix
//! lemmata) is phrased in terms of a small set of quantities: logarithms of
//! factorials and binomial coefficients, Chernoff–Hoeffding tails for sums of
//! independent indicator variables, and the Poisson-approximation correction
//! factor `e·√m` of Mitzenmacher–Upfal. This module implements those
//! quantities once so that `mac-protocols::analysis` and the tests can share
//! them.

/// Natural logarithm of `n!`, computed exactly by summation for `n ≤ 256` and
/// by Stirling's series (with the `1/(12n)` and `1/(360n^3)` corrections) for
/// larger `n`.
///
/// Accuracy is better than `1e-9` relative error over the whole range, which
/// is far more than the tail bounds need.
///
/// # Example
/// ```
/// use mac_prob::special::ln_factorial;
/// assert_eq!(ln_factorial(0), 0.0);
/// assert!((ln_factorial(5) - 120f64.ln()).abs() < 1e-12);
/// ```
pub fn ln_factorial(n: u64) -> f64 {
    if n <= 256 {
        let mut acc = 0.0;
        for i in 2..=n {
            acc += (i as f64).ln();
        }
        acc
    } else {
        let x = n as f64;
        let ln2pi = (2.0 * std::f64::consts::PI).ln();
        (x + 0.5) * x.ln() - x + 0.5 * ln2pi + 1.0 / (12.0 * x) - 1.0 / (360.0 * x.powi(3))
    }
}

/// Natural logarithm of the binomial coefficient `C(n, k)`.
///
/// Returns `-inf` when `k > n`.
///
/// # Example
/// ```
/// use mac_prob::special::ln_binomial;
/// assert!((ln_binomial(5, 2) - 10f64.ln()).abs() < 1e-12);
/// assert_eq!(ln_binomial(3, 5), f64::NEG_INFINITY);
/// ```
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Exact probability that a `Binomial(n, p)` variable equals `k`.
///
/// Computed in log-space; accurate for large `n`.
pub fn binomial_pmf(n: u64, k: u64, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1]");
    if k > n {
        return 0.0;
    }
    if p == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p == 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    let ln_p = ln_binomial(n, k) + k as f64 * p.ln() + (n - k) as f64 * (-p).ln_1p();
    ln_p.exp()
}

/// Chernoff–Hoeffding upper bound on the lower tail of a sum of independent
/// `[0,1]` variables with mean `mu`:
/// `P[X ≤ (1-φ)·mu] ≤ exp(-φ²·mu/2)` for `0 < φ < 1`.
///
/// This is the form used in Lemma 5 of the paper's appendix.
///
/// # Panics
/// Panics unless `0 < phi < 1` and `mu ≥ 0`.
pub fn chernoff_lower_tail(mu: f64, phi: f64) -> f64 {
    assert!(phi > 0.0 && phi < 1.0, "phi must be in (0,1), got {phi}");
    assert!(mu >= 0.0, "mu must be non-negative");
    (-phi * phi * mu / 2.0).exp()
}

/// Chernoff upper bound on the upper tail:
/// `P[X ≥ (1+φ)·mu] ≤ exp(-φ²·mu/3)` for `0 < φ ≤ 1`.
pub fn chernoff_upper_tail(mu: f64, phi: f64) -> f64 {
    assert!(phi > 0.0 && phi <= 1.0, "phi must be in (0,1], got {phi}");
    assert!(mu >= 0.0, "mu must be non-negative");
    (-phi * phi * mu / 3.0).exp()
}

/// The Poisson-approximation correction factor `e·√m` of
/// Mitzenmacher–Upfal (Probability and Computing, Cor. 5.9, cited as [21] in
/// the paper): any event with probability `p` under the independent-Poisson
/// approximation of a balls-in-bins experiment with `m` balls has probability
/// at most `p · e·√m` in the exact experiment.
pub fn poisson_approximation_factor(m: u64) -> f64 {
    std::f64::consts::E * (m as f64).sqrt()
}

/// Base-2 logarithm as used by the paper (the paper's `log` is `log₂`).
///
/// # Panics
/// Panics if `x <= 0`.
pub fn log2(x: f64) -> f64 {
    assert!(x > 0.0, "log2 of non-positive value {x}");
    x.log2()
}

/// `log_{1/(1-δ)}(x)`, the number of multiplicative reductions by `(1-δ)`
/// needed to go from `x` down to 1; appears in Theorem 2's probability bound.
///
/// # Panics
/// Panics unless `0 < delta < 1` and `x ≥ 1`.
pub fn log_shrink(x: f64, delta: f64) -> f64 {
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    assert!(x >= 1.0, "x must be at least 1");
    x.ln() / (1.0 / (1.0 - delta)).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_factorial_small_values() {
        let factorials = [1.0f64, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0, 5040.0];
        for (n, &f) in factorials.iter().enumerate() {
            assert!((ln_factorial(n as u64) - f.ln()).abs() < 1e-12, "n={n}");
        }
    }

    #[test]
    fn ln_factorial_stirling_continuity() {
        // The exact and Stirling branches must agree near the switch point.
        let exact: f64 = (2..=300u64).map(|i| (i as f64).ln()).sum();
        assert!((ln_factorial(300) - exact).abs() / exact < 1e-9);
    }

    #[test]
    fn ln_binomial_symmetry_and_edges() {
        assert_eq!(ln_binomial(10, 0), 0.0);
        assert_eq!(ln_binomial(10, 10), 0.0);
        assert!((ln_binomial(10, 3) - ln_binomial(10, 7)).abs() < 1e-10);
        assert_eq!(ln_binomial(3, 4), f64::NEG_INFINITY);
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        let n = 40;
        let p = 0.3;
        let total: f64 = (0..=n).map(|k| binomial_pmf(n, k, p)).sum();
        assert!((total - 1.0).abs() < 1e-10);
    }

    #[test]
    fn binomial_pmf_degenerate() {
        assert_eq!(binomial_pmf(5, 0, 0.0), 1.0);
        assert_eq!(binomial_pmf(5, 3, 0.0), 0.0);
        assert_eq!(binomial_pmf(5, 5, 1.0), 1.0);
        assert_eq!(binomial_pmf(5, 6, 0.5), 0.0);
    }

    #[test]
    fn binomial_pmf_matches_slot_outcome() {
        use crate::outcome::slot_outcome_probabilities;
        let m = 1000u64;
        let p = 1.0 / 997.0;
        let pr = slot_outcome_probabilities(m, p);
        assert!((binomial_pmf(m, 0, p) - pr.silence).abs() < 1e-12);
        assert!((binomial_pmf(m, 1, p) - pr.delivery).abs() < 1e-12);
    }

    #[test]
    fn chernoff_bounds_are_valid_probabilities_and_monotone() {
        let b1 = chernoff_lower_tail(100.0, 0.5);
        let b2 = chernoff_lower_tail(200.0, 0.5);
        assert!(b1 > 0.0 && b1 < 1.0);
        assert!(b2 < b1, "larger mean gives a stronger bound");
        let u1 = chernoff_upper_tail(100.0, 0.5);
        assert!(u1 > 0.0 && u1 < 1.0);
    }

    #[test]
    fn chernoff_bound_dominates_exact_binomial_tail() {
        // P[Bin(n, 1/2) <= (1-phi) n/2] <= exp(-phi^2 n/4)
        let n = 200u64;
        let p = 0.5;
        let phi = 0.4;
        let mu = n as f64 * p;
        let cutoff = ((1.0 - phi) * mu).floor() as u64;
        let exact: f64 = (0..=cutoff).map(|k| binomial_pmf(n, k, p)).sum();
        assert!(exact <= chernoff_lower_tail(mu, phi) + 1e-12);
    }

    #[test]
    fn log_helpers() {
        assert_eq!(log2(8.0), 3.0);
        assert!((log_shrink(8.0, 0.5) - 3.0).abs() < 1e-12);
        assert!(poisson_approximation_factor(4) > 2.0 * std::f64::consts::E - 1e-12);
    }

    #[test]
    #[should_panic(expected = "log2 of non-positive")]
    fn log2_rejects_zero() {
        let _ = log2(0.0);
    }
}
