//! Deterministic, splittable random-number generation.
//!
//! Every simulated run in this workspace must be reproducible from a single
//! master seed, and independent replications must use statistically
//! independent streams. This module provides:
//!
//! * [`SplitMix64`] — a tiny, well-mixed generator used for seed derivation
//!   (exactly the construction recommended by Vigna for seeding xoshiro);
//! * [`Xoshiro256pp`] — xoshiro256++ 1.0, the workhorse generator used by the
//!   simulators (fast, 256-bit state, passes BigCrush);
//! * [`derive_seed`] / [`SeedSequence`] — a deterministic way to derive
//!   per-run, per-node seeds from a master seed and a path of indices.
//!
//! Both generators implement [`rand::RngCore`] and [`rand::SeedableRng`], so
//! they can be used with the `rand` combinators used elsewhere in the
//! workspace, and both are `Serialize`/`Deserialize`-free on purpose: a seed,
//! not a generator state, is the unit of reproducibility.

use rand::{Error, RngCore, SeedableRng};

/// SplitMix64 generator.
///
/// A 64-bit state generator with excellent mixing, primarily used here to
/// expand a `u64` master seed into larger seeds and to derive independent
/// sub-seeds. It is the seeding procedure recommended by the designers of the
/// xoshiro family.
///
/// # Example
/// ```
/// use mac_prob::rng::SplitMix64;
/// use rand::RngCore;
/// let mut sm = SplitMix64::new(7);
/// let a = sm.next_u64();
/// let b = sm.next_u64();
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a new generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the raw 64-bit state.
    ///
    /// Together with [`SplitMix64::new`] this makes the generator exactly
    /// checkpointable: `SplitMix64::new(g.state())` produces the same future
    /// stream as `g`. Used by the streaming quantile sketch so that its
    /// compaction randomness survives checkpoint/resume bit-identically.
    #[inline]
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Returns the next 64-bit output.
    // The name follows the SplitMix64 reference implementation; the type is
    // not an `Iterator` (`RngCore::next_u64` is the iterator-safe spelling).
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl RngCore for SplitMix64 {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        fill_bytes_via_u64(self, dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for SplitMix64 {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        Self::new(u64::from_le_bytes(seed))
    }

    fn seed_from_u64(state: u64) -> Self {
        Self::new(state)
    }
}

/// xoshiro256++ 1.0 generator.
///
/// The default generator for all simulators in this workspace: 256 bits of
/// state, period 2^256 − 1, extremely fast and of high statistical quality.
/// Seeded from a `u64` through [`SplitMix64`], as recommended by its authors.
///
/// # Example
/// ```
/// use mac_prob::rng::Xoshiro256pp;
/// use rand::{Rng, SeedableRng};
/// let mut rng = Xoshiro256pp::seed_from_u64(123);
/// let x: f64 = rng.gen();
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Creates a generator whose 256-bit state is expanded from `seed` with
    /// [`SplitMix64`].
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for v in &mut s {
            *v = sm.next();
        }
        // An all-zero state is invalid (fixed point); SplitMix64 cannot
        // produce four consecutive zeros, but guard anyway.
        if s == [0, 0, 0, 0] {
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        Self { s }
    }

    /// Advances the generator 2^128 steps, producing a non-overlapping stream.
    ///
    /// Useful to derive parallel streams from a single seeded generator
    /// without re-seeding.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180e_c6d3_3cfd_0aba,
            0xd5a6_1266_f0c9_392c,
            0xa958_2618_e03f_c9aa,
            0x39ab_dc45_29b1_661c,
        ];
        let mut s0 = 0u64;
        let mut s1 = 0u64;
        let mut s2 = 0u64;
        let mut s3 = 0u64;
        for j in JUMP {
            for b in 0..64 {
                if (j & (1u64 << b)) != 0 {
                    s0 ^= self.s[0];
                    s1 ^= self.s[1];
                    s2 ^= self.s[2];
                    s3 ^= self.s[3];
                }
                self.step();
            }
        }
        self.s = [s0, s1, s2, s3];
    }

    /// Returns the raw 256-bit state as four words.
    ///
    /// Two generators with equal state words produce identical streams
    /// forever, so the words serve as an *exact* fingerprint of the
    /// generator's future — used by the adversary strategy search to
    /// deduplicate game-tree states without any risk of hash collisions.
    #[inline]
    pub fn state_words(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from the words of [`Xoshiro256pp::state_words`],
    /// continuing the original stream exactly. The all-zero state (a fixed
    /// point that [`Xoshiro256pp::new`] can never produce) falls back to the
    /// seed-0 generator.
    #[inline]
    pub fn from_state_words(s: [u64; 4]) -> Self {
        if s == [0, 0, 0, 0] {
            return Self::new(0);
        }
        Self { s }
    }

    #[inline]
    fn step(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl RngCore for Xoshiro256pp {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.step() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.step()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        fill_bytes_via_u64(self, dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for Xoshiro256pp {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(chunk);
            s[i] = u64::from_le_bytes(b);
        }
        if s == [0, 0, 0, 0] {
            return Self::new(0);
        }
        Self { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        Self::new(state)
    }
}

fn fill_bytes_via_u64<R: RngCore + ?Sized>(rng: &mut R, dest: &mut [u8]) {
    let mut chunks = dest.chunks_exact_mut(8);
    for chunk in &mut chunks {
        chunk.copy_from_slice(&rng.next_u64().to_le_bytes());
    }
    let rem = chunks.into_remainder();
    if !rem.is_empty() {
        let bytes = rng.next_u64().to_le_bytes();
        rem.copy_from_slice(&bytes[..rem.len()]);
    }
}

/// Derives a sub-seed from a master seed and a path of indices.
///
/// The derivation hashes the master seed and each path element through
/// [`SplitMix64`], so `derive_seed(s, &[a, b])` and `derive_seed(s, &[a, c])`
/// are statistically independent for `b != c`, and the whole scheme is
/// platform-independent and stable across releases of this crate.
///
/// # Example
/// ```
/// use mac_prob::rng::derive_seed;
/// let run0 = derive_seed(0xDEADBEEF, &[0]);
/// let run1 = derive_seed(0xDEADBEEF, &[1]);
/// assert_ne!(run0, run1);
/// assert_eq!(run0, derive_seed(0xDEADBEEF, &[0]));
/// ```
pub fn derive_seed(master: u64, path: &[u64]) -> u64 {
    let mut sm = SplitMix64::new(master);
    let mut acc = sm.next();
    for &p in path {
        // Mix the path element in, then re-diffuse.
        let mut s = SplitMix64::new(acc ^ p.wrapping_mul(0xA24B_AED4_963E_E407));
        acc = s.next();
    }
    acc
}

/// A convenience builder for hierarchical seed derivation.
///
/// `SeedSequence` remembers a master seed and a path prefix; children extend
/// the path. This is how the experiment runner hands independent seeds to
/// replications, and replications hand independent seeds to nodes.
///
/// # Example
/// ```
/// use mac_prob::rng::SeedSequence;
/// let root = SeedSequence::new(99);
/// let rep3 = root.child(3);
/// let node7 = rep3.child(7);
/// assert_ne!(rep3.seed(), node7.seed());
/// assert_eq!(node7.seed(), SeedSequence::new(99).child(3).child(7).seed());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedSequence {
    master: u64,
    path: Vec<u64>,
}

impl SeedSequence {
    /// Creates the root sequence for a master seed.
    pub fn new(master: u64) -> Self {
        Self {
            master,
            path: Vec::new(),
        }
    }

    /// Returns the child sequence obtained by appending `index` to the path.
    pub fn child(&self, index: u64) -> Self {
        let mut path = self.path.clone();
        path.push(index);
        Self {
            master: self.master,
            path,
        }
    }

    /// Returns the derived seed for this node of the tree.
    pub fn seed(&self) -> u64 {
        derive_seed(self.master, &self.path)
    }

    /// Returns a [`Xoshiro256pp`] generator seeded for this node of the tree.
    pub fn rng(&self) -> Xoshiro256pp {
        Xoshiro256pp::new(self.seed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn splitmix_is_deterministic_and_mixes_nearby_seeds() {
        let mut a = SplitMix64::new(1234567);
        let mut b = SplitMix64::new(1234567);
        let mut c = SplitMix64::new(1234568);
        for _ in 0..64 {
            let x = a.next();
            assert_eq!(x, b.next());
            let y = c.next();
            // Adjacent seeds must diverge immediately and strongly:
            // at least a quarter of the bits should differ on every output.
            assert!((x ^ y).count_ones() >= 16, "weak mixing: {x:#x} vs {y:#x}");
        }
    }

    #[test]
    fn xoshiro_is_deterministic_per_seed() {
        let mut a = Xoshiro256pp::seed_from_u64(5);
        let mut b = Xoshiro256pp::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256pp::seed_from_u64(6);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn xoshiro_uniform_f64_in_unit_interval() {
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let mut sum = 0.0;
        const N: usize = 20_000;
        for _ in 0..N {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / N as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn xoshiro_jump_produces_disjoint_stream_prefixes() {
        let mut a = Xoshiro256pp::seed_from_u64(42);
        let mut b = a.clone();
        b.jump();
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
        // No element of the jumped prefix should appear in the original prefix
        // (overwhelmingly unlikely unless the jump is broken).
        for y in ys {
            assert!(!xs.contains(&y));
        }
    }

    #[test]
    fn from_seed_roundtrips_bytes() {
        let seed = [7u8; 32];
        let mut a = Xoshiro256pp::from_seed(seed);
        let mut b = Xoshiro256pp::from_seed(seed);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut z = Xoshiro256pp::from_seed([0u8; 32]);
        let a = z.next_u64();
        let b = z.next_u64();
        assert!(a != 0 || b != 0);
    }

    #[test]
    fn derive_seed_differs_per_path_and_is_stable() {
        let s1 = derive_seed(1, &[0, 1]);
        let s2 = derive_seed(1, &[0, 2]);
        let s3 = derive_seed(1, &[1, 1]);
        let s4 = derive_seed(2, &[0, 1]);
        assert_ne!(s1, s2);
        assert_ne!(s1, s3);
        assert_ne!(s1, s4);
        assert_eq!(s1, derive_seed(1, &[0, 1]));
    }

    #[test]
    fn seed_sequence_matches_derive_seed() {
        let seq = SeedSequence::new(77).child(3).child(9);
        assert_eq!(seq.seed(), derive_seed(77, &[3, 9]));
        let mut rng = seq.rng();
        let _ = rng.next_u64();
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
