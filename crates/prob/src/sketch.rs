//! Mergeable streaming quantile sketch with a proven rank-error ledger.
//!
//! The dynamic-arrival simulators used to accumulate every delivery latency
//! in a `Vec<u64>` and sort it at the end — O(arrivals) memory, which is
//! exactly what a 10⁹-slot sustained-traffic run cannot afford. This module
//! replaces that path with a KLL-style compacting sketch
//! ([`QuantileSketch`]) plus an exact-moment wrapper
//! ([`StreamingLatencyStats`]):
//!
//! * **Structure.** Level `h` holds items of weight `2^h`. New observations
//!   enter level 0 with weight 1. When a level reaches the per-level
//!   capacity it is *compacted*: the level is sorted, an even prefix is
//!   paired up, and one survivor per pair — odds or evens, chosen by a fair
//!   coin — is promoted to level `h + 1` with doubled weight. Total weight
//!   is conserved, so the sketch always represents exactly `count`
//!   observations.
//!
//! * **Proven error bound.** For any threshold `v`, a single compaction at
//!   level `h` changes the estimated rank `R̂(v) = Σ weight(items ≤ v)` by
//!   at most `2^h`: after sorting, pairs entirely below `v` keep their total
//!   weight, pairs entirely above contribute nothing, and only the one pair
//!   straddling `v` can gain or lose one item-weight. The sketch therefore
//!   maintains a deterministic *ledger* — the sum of `2^h` over every
//!   compaction it (or any sketch merged into it) has performed — and
//!   guarantees `|R̂(v) − R(v)| ≤ ledger` for every `v` simultaneously,
//!   where `R` is the exact rank function of the full stream. The ledger is
//!   exposed as [`QuantileSketch::rank_error_bound`] and is the bound the
//!   conformance suite asserts against. (The random survivor choice makes
//!   compaction errors zero-mean, so typical error is far below the ledger;
//!   the ledger is the *worst-case certificate*.)
//!
//! * **Mergeability.** Merging concatenates levels — which introduces *no*
//!   error — and re-compacts; the merged ledger is the sum of the two input
//!   ledgers plus any new compactions. This is what lets the sharded
//!   multi-channel driver combine per-shard statistics exactly.
//!
//! * **Checkpointability.** The compaction coin is a [`SplitMix64`] whose
//!   state is part of the encoded form, so a sketch restored from a
//!   checkpoint continues bit-identically — the same contract the session
//!   engines obey for their main RNG streams.
//!
//! Memory is O(capacity · log(n / capacity)) items: with the default
//! capacity of 1024, a 10⁹-observation stream retains ~20k items (~160 KiB)
//! and carries a ledger below 2% of `n`.

use crate::rng::SplitMix64;
use crate::wire::{Decoder, Encoder, WireError};

/// Default per-level capacity: ledger ≈ `log2(n/1024) · n / 1024`, i.e.
/// ≤ 2% of `n` for streams up to 10⁹ observations, with ~20k retained items.
pub const DEFAULT_SKETCH_CAPACITY: usize = 1024;

/// Smallest accepted per-level capacity (below this the ledger bound is
/// useless and the even-pairing compaction degenerates).
const MIN_SKETCH_CAPACITY: usize = 8;

/// KLL-style mergeable quantile sketch over `u64` observations.
///
/// # Example
/// ```
/// use mac_prob::sketch::QuantileSketch;
/// let mut sketch = QuantileSketch::new(7);
/// for v in 0..100_000u64 {
///     sketch.push(v);
/// }
/// let p50 = sketch.quantile(0.50).unwrap();
/// // The returned value's true rank is within the proven ledger bound of
/// // the target rank.
/// let bound = sketch.rank_error_bound();
/// assert!(p50.abs_diff(50_000) <= bound + 1);
/// ```
#[derive(Debug, Clone)]
pub struct QuantileSketch {
    capacity: usize,
    /// `levels[h]` holds items of weight `2^h`; only level boundaries are
    /// sorted lazily (at compaction and query time).
    levels: Vec<Vec<u64>>,
    count: u64,
    min: u64,
    max: u64,
    /// Compaction coin; checkpointed so resume is bit-identical.
    rng: SplitMix64,
    /// Proven worst-case rank error: Σ 2^h over all compactions performed.
    rank_error: u64,
}

impl QuantileSketch {
    /// Creates an empty sketch with the default capacity.
    ///
    /// `seed` drives the compaction coin only — it affects which survivor of
    /// each pair is kept, never the correctness bound.
    pub fn new(seed: u64) -> Self {
        Self::with_capacity(DEFAULT_SKETCH_CAPACITY, seed)
    }

    /// Creates an empty sketch with an explicit per-level capacity (clamped
    /// to at least 8). Larger capacities tighten the ledger (error ∝ 1/c)
    /// at proportional memory cost.
    pub fn with_capacity(capacity: usize, seed: u64) -> Self {
        Self {
            capacity: capacity.max(MIN_SKETCH_CAPACITY),
            levels: vec![Vec::new()],
            count: 0,
            min: u64::MAX,
            max: 0,
            // lint:allow(rng-stream-discipline): the compaction coin is
            // seeded by the caller — sessions pass derive_seed(run_seed,
            // &[SKETCH_STREAM]) — and this crate sits below the stream
            // constants, so the derivation cannot happen here.
            rng: SplitMix64::new(seed),
            rank_error: 0,
        }
    }

    /// Number of observations pushed (or merged) so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact minimum observation, if any. Tracked outside the compactor, so
    /// it is never lost to compaction.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum observation, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Number of items currently retained across all levels (the memory
    /// footprint, up to constant factors).
    pub fn retained_items(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// The proven worst-case rank error: for every threshold `v`,
    /// `|estimated_rank(v) − true_rank(v)| ≤ rank_error_bound()`.
    pub fn rank_error_bound(&self) -> u64 {
        self.rank_error
    }

    /// Adds one observation.
    pub fn push(&mut self, v: u64) {
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.levels[0].push(v);
        if self.levels[0].len() >= self.capacity {
            self.compress();
        }
    }

    /// Merges another sketch into this one.
    ///
    /// Concatenating levels is error-free; the merged ledger is the sum of
    /// both ledgers plus whatever new compactions the merge triggers. The
    /// capacity and compaction coin of `self` are kept.
    pub fn merge(&mut self, other: &QuantileSketch) {
        if other.count == 0 {
            return;
        }
        if self.levels.len() < other.levels.len() {
            self.levels.resize(other.levels.len(), Vec::new());
        }
        for (h, level) in other.levels.iter().enumerate() {
            self.levels[h].extend_from_slice(level);
        }
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.rank_error += other.rank_error;
        self.compress();
    }

    /// Compacts every level at or above capacity, cascading upward.
    fn compress(&mut self) {
        let mut h = 0;
        while h < self.levels.len() {
            if self.levels[h].len() >= self.capacity {
                self.compact_level(h);
            }
            h += 1;
        }
    }

    /// Compacts level `h`: sorts it, pairs up an even prefix, promotes one
    /// randomly chosen survivor per pair to level `h + 1` with doubled
    /// weight. An odd leftover item (the largest, after sorting) stays at
    /// level `h`, so total weight is conserved exactly.
    fn compact_level(&mut self, h: usize) {
        if self.levels.len() == h + 1 {
            self.levels.push(Vec::new());
        }
        let offset = (self.rng.next() & 1) as usize;
        let (level, upper) = {
            let (lo, hi) = self.levels.split_at_mut(h + 1);
            (&mut lo[h], &mut hi[0])
        };
        level.sort_unstable();
        let paired = level.len() & !1;
        for i in (0..paired).step_by(2) {
            upper.push(level[i + offset]);
        }
        let leftover = (paired < level.len()).then(|| level[level.len() - 1]);
        level.clear();
        level.extend(leftover);
        // Each compaction perturbs any rank query by at most one item-weight
        // at this level (only the pair straddling the query threshold can
        // gain or lose weight — see the module docs for the argument).
        self.rank_error += 1u64 << h;
    }

    /// Estimated rank of `v`: the total weight of retained items ≤ `v`.
    ///
    /// Within [`QuantileSketch::rank_error_bound`] of the exact rank of `v`
    /// in the full stream, for every `v` simultaneously.
    pub fn estimated_rank(&self, v: u64) -> u64 {
        self.levels
            .iter()
            .enumerate()
            .map(|(h, level)| (level.iter().filter(|&&x| x <= v).count() as u64) << h)
            .sum()
    }

    /// The value whose estimated rank first reaches `⌈q · count⌉`
    /// (clamped to `[1, count]`), or `None` on an empty sketch.
    ///
    /// `q ≤ 0` returns the exact minimum and `q ≥ 1` the exact maximum.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        if q <= 0.0 {
            return Some(self.min);
        }
        if q >= 1.0 {
            return Some(self.max);
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut items: Vec<(u64, u64)> = Vec::with_capacity(self.retained_items());
        for (h, level) in self.levels.iter().enumerate() {
            items.extend(level.iter().map(|&v| (v, 1u64 << h)));
        }
        items.sort_unstable_by_key(|&(v, _)| v);
        let mut cumulative = 0u64;
        for (v, w) in &items {
            cumulative += w;
            if cumulative >= target {
                return Some(*v);
            }
        }
        Some(self.max)
    }

    /// Serialises the full sketch state (compaction coin included).
    pub fn encode(&self, enc: &mut Encoder) {
        enc.put_usize(self.capacity);
        enc.put_u64(self.count);
        enc.put_u64(self.min);
        enc.put_u64(self.max);
        enc.put_u64(self.rng.state());
        enc.put_u64(self.rank_error);
        enc.put_usize(self.levels.len());
        for level in &self.levels {
            enc.put_words(level);
        }
    }

    /// Restores a sketch serialised by [`QuantileSketch::encode`].
    ///
    /// # Errors
    /// [`WireError`] on a truncated or malformed stream.
    pub fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        let capacity = dec.take_usize()?;
        if capacity < MIN_SKETCH_CAPACITY {
            return Err(WireError::Malformed("sketch capacity below minimum"));
        }
        let count = dec.take_u64()?;
        let min = dec.take_u64()?;
        let max = dec.take_u64()?;
        // lint:allow(rng-stream-discipline): checkpoint restore — the word
        // is the serialized generator state captured by encode, replayed
        // verbatim so the resumed coin flips bit-identically.
        let rng = SplitMix64::new(dec.take_u64()?);
        let rank_error = dec.take_u64()?;
        let n_levels = dec.take_usize()?;
        if n_levels == 0 || n_levels > 64 {
            return Err(WireError::Malformed("sketch level count out of range"));
        }
        let mut levels = Vec::with_capacity(n_levels);
        for _ in 0..n_levels {
            levels.push(dec.take_words()?.to_vec());
        }
        Ok(Self {
            capacity,
            levels,
            count,
            min,
            max,
            rng,
            rank_error,
        })
    }
}

/// Streaming latency statistics: an exact mean/max/count beside a
/// [`QuantileSketch`] for percentiles — the bounded-memory replacement for
/// the sort-everything latency path of the dynamic-arrival reports.
///
/// The sum is held as a `u128`, matching the integer-exact mean semantics of
/// `DynamicReport` (latencies near `2^63` still produce the exactly rounded
/// mean).
///
/// # Example
/// ```
/// use mac_prob::sketch::StreamingLatencyStats;
/// let mut stats = StreamingLatencyStats::new(1);
/// for v in [2u64, 4, 9] {
///     stats.push(v);
/// }
/// assert_eq!(stats.count(), 3);
/// assert_eq!(stats.max(), 9);
/// assert!((stats.mean() - 5.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct StreamingLatencyStats {
    sketch: QuantileSketch,
    sum: u128,
}

impl StreamingLatencyStats {
    /// Creates an empty accumulator; `seed` drives the sketch's compaction
    /// coin.
    pub fn new(seed: u64) -> Self {
        Self {
            sketch: QuantileSketch::new(seed),
            sum: 0,
        }
    }

    /// Adds one latency observation.
    pub fn push(&mut self, latency: u64) {
        self.sketch.push(latency);
        self.sum += u128::from(latency);
    }

    /// Merges another accumulator (shard) into this one.
    pub fn merge(&mut self, other: &StreamingLatencyStats) {
        self.sketch.merge(&other.sketch);
        self.sum += other.sum;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.sketch.count()
    }

    /// Integer-exact mean (0 if empty), with the same `u128` accumulation as
    /// the monolithic report path.
    pub fn mean(&self) -> f64 {
        if self.count() == 0 {
            0.0
        } else {
            (self.sum as f64) / (self.count() as f64)
        }
    }

    /// Exact maximum (0 if empty).
    pub fn max(&self) -> u64 {
        self.sketch.max().unwrap_or(0)
    }

    /// Sketch quantile (0 if empty); see [`QuantileSketch::quantile`].
    pub fn quantile(&self, q: f64) -> u64 {
        self.sketch.quantile(q).unwrap_or(0)
    }

    /// The proven rank-error certificate of the underlying sketch.
    pub fn rank_error_bound(&self) -> u64 {
        self.sketch.rank_error_bound()
    }

    /// Access to the underlying sketch (for conformance checks).
    pub fn sketch(&self) -> &QuantileSketch {
        &self.sketch
    }

    /// Serialises the accumulator.
    pub fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.sum as u64);
        enc.put_u64((self.sum >> 64) as u64);
        self.sketch.encode(enc);
    }

    /// Restores an accumulator serialised by
    /// [`StreamingLatencyStats::encode`].
    ///
    /// # Errors
    /// [`WireError`] on a truncated or malformed stream.
    pub fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        let lo = dec.take_u64()?;
        let hi = dec.take_u64()?;
        let sketch = QuantileSketch::decode(dec)?;
        Ok(Self {
            sketch,
            sum: (u128::from(hi) << 64) | u128::from(lo),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256pp;
    use rand::{Rng, SeedableRng};

    /// Exact rank (count of elements ≤ v) in a sorted reference vector.
    fn exact_rank(sorted: &[u64], v: u64) -> u64 {
        sorted.partition_point(|&x| x <= v) as u64
    }

    #[test]
    fn small_streams_are_exact() {
        // Below capacity nothing is ever compacted: every quantile is the
        // exact order statistic and the ledger is zero.
        let mut sketch = QuantileSketch::with_capacity(64, 3);
        for v in [5u64, 1, 9, 3, 7] {
            sketch.push(v);
        }
        assert_eq!(sketch.rank_error_bound(), 0);
        assert_eq!(sketch.quantile(0.0), Some(1));
        assert_eq!(sketch.quantile(0.2), Some(1));
        assert_eq!(sketch.quantile(0.5), Some(5));
        assert_eq!(sketch.quantile(0.95), Some(9));
        assert_eq!(sketch.quantile(1.0), Some(9));
        assert_eq!(sketch.min(), Some(1));
        assert_eq!(sketch.max(), Some(9));
        assert_eq!(sketch.count(), 5);
    }

    #[test]
    fn empty_sketch_has_no_quantiles() {
        let sketch = QuantileSketch::new(0);
        assert_eq!(sketch.quantile(0.5), None);
        assert_eq!(sketch.min(), None);
        assert_eq!(sketch.max(), None);
    }

    #[test]
    fn weight_is_conserved_across_compactions() {
        let mut sketch = QuantileSketch::with_capacity(16, 9);
        for v in 0..10_000u64 {
            sketch.push(v * 31 % 10_000);
        }
        let total_weight: u64 = sketch
            .levels
            .iter()
            .enumerate()
            .map(|(h, level)| (level.len() as u64) << h)
            .sum();
        assert_eq!(total_weight, sketch.count());
        assert_eq!(sketch.count(), 10_000);
    }

    #[test]
    fn rank_estimates_respect_the_ledger_everywhere() {
        // The ledger must bound the rank error at *every* threshold, not
        // just at queried quantiles, across adversarial input orderings.
        let n = 50_000u64;
        let orderings: [Box<dyn Fn(u64) -> u64>; 3] = [
            Box::new(|i| i),                          // sorted
            Box::new(move |i| n - 1 - i),             // reverse sorted
            Box::new(|i| i.wrapping_mul(0x9E37) % n), // scrambled
        ];
        for (case, order) in orderings.iter().enumerate() {
            let mut sketch = QuantileSketch::with_capacity(128, case as u64);
            let mut reference: Vec<u64> = Vec::with_capacity(n as usize);
            for i in 0..n {
                let v = order(i);
                sketch.push(v);
                reference.push(v);
            }
            reference.sort_unstable();
            let bound = sketch.rank_error_bound();
            assert!(bound > 0, "capacity 128 at n = {n} must compact");
            assert!(bound < n / 4, "ledger uselessly large: {bound}");
            for probe in (0..n).step_by(997) {
                let est = sketch.estimated_rank(probe);
                let exact = exact_rank(&reference, probe);
                assert!(
                    est.abs_diff(exact) <= bound,
                    "case {case}: rank({probe}) est {est} vs exact {exact}, bound {bound}"
                );
            }
        }
    }

    #[test]
    fn quantiles_hit_the_target_rank_within_the_ledger() {
        let mut rng = Xoshiro256pp::seed_from_u64(2026);
        let n = 100_000u64;
        let mut sketch = QuantileSketch::new(5);
        let mut reference = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let v = rng.gen::<u64>() >> 20;
            sketch.push(v);
            reference.push(v);
        }
        reference.sort_unstable();
        let bound = sketch.rank_error_bound();
        for q in [0.01, 0.25, 0.50, 0.75, 0.95, 0.99] {
            let answer = sketch.quantile(q).unwrap();
            let target = (q * n as f64).ceil() as u64;
            let exact = exact_rank(&reference, answer);
            // The answer's exact rank must be within ledger + one max item
            // weight of the target (the walk can overshoot by the weight of
            // the item it stops on).
            let max_weight = 1u64 << (sketch.levels.len() - 1);
            assert!(
                exact.abs_diff(target) <= bound + max_weight,
                "q {q}: rank {exact} vs target {target}, bound {bound}"
            );
        }
    }

    #[test]
    fn merge_agrees_with_single_stream_within_both_ledgers() {
        let mut rng = Xoshiro256pp::seed_from_u64(17);
        let n = 40_000u64;
        let mut whole = QuantileSketch::new(100);
        let mut shards: Vec<QuantileSketch> =
            (0..4).map(|i| QuantileSketch::new(200 + i)).collect();
        let mut reference = Vec::with_capacity(n as usize);
        for i in 0..n {
            let v = rng.gen::<u64>() >> 32;
            whole.push(v);
            shards[(i % 4) as usize].push(v);
            reference.push(v);
        }
        reference.sort_unstable();
        let mut merged = shards.remove(0);
        for shard in &shards {
            merged.merge(shard);
        }
        assert_eq!(merged.count(), whole.count());
        assert_eq!(merged.min(), whole.min());
        assert_eq!(merged.max(), whole.max());
        for q in [0.5, 0.95] {
            let target = (q * n as f64).ceil() as u64;
            for (label, sketch) in [("whole", &whole), ("merged", &merged)] {
                let answer = sketch.quantile(q).unwrap();
                let exact = exact_rank(&reference, answer);
                let max_weight = 1u64 << (sketch.levels.len() - 1);
                let bound = sketch.rank_error_bound() + max_weight;
                assert!(
                    exact.abs_diff(target) <= bound,
                    "{label} q {q}: rank {exact} vs target {target}, bound {bound}"
                );
            }
        }
    }

    #[test]
    fn checkpoint_resume_is_bit_identical() {
        // Interrupting a sketch mid-stream, encoding, decoding and pushing
        // the remaining items must equal the uninterrupted sketch exactly —
        // levels, ledger and compaction-coin state included.
        let mut rng = Xoshiro256pp::seed_from_u64(55);
        let values: Vec<u64> = (0..30_000).map(|_| rng.gen::<u64>() >> 24).collect();
        let mut unbroken = QuantileSketch::with_capacity(64, 8);
        let mut first_half = QuantileSketch::with_capacity(64, 8);
        for &v in &values {
            unbroken.push(v);
        }
        for &v in &values[..15_000] {
            first_half.push(v);
        }
        let mut enc = Encoder::new();
        first_half.encode(&mut enc);
        let words = enc.finish();
        let mut dec = Decoder::new(&words);
        let mut resumed = QuantileSketch::decode(&mut dec).unwrap();
        dec.finish().unwrap();
        for &v in &values[15_000..] {
            resumed.push(v);
        }
        assert_eq!(resumed.levels, unbroken.levels);
        assert_eq!(resumed.count, unbroken.count);
        assert_eq!(resumed.rank_error, unbroken.rank_error);
        assert_eq!(resumed.rng, unbroken.rng);
        assert_eq!(resumed.min, unbroken.min);
        assert_eq!(resumed.max, unbroken.max);
    }

    #[test]
    fn decode_rejects_corrupt_streams() {
        let mut enc = Encoder::new();
        QuantileSketch::new(1).encode(&mut enc);
        let words = enc.finish();
        // Truncation at every prefix length must error, never panic.
        for cut in 0..words.len() {
            let mut dec = Decoder::new(&words[..cut]);
            assert!(QuantileSketch::decode(&mut dec).is_err());
        }
        // A capacity below the minimum is malformed.
        let mut bad = words.clone();
        bad[0] = 1;
        assert!(QuantileSketch::decode(&mut Decoder::new(&bad)).is_err());
    }

    #[test]
    fn memory_stays_logarithmic() {
        let mut sketch = QuantileSketch::new(4);
        for v in 0..2_000_000u64 {
            sketch.push(v);
        }
        // ~20 levels × 1024 capacity is the ceiling; well under 64k items.
        assert!(
            sketch.retained_items() < 32 * DEFAULT_SKETCH_CAPACITY,
            "retained {}",
            sketch.retained_items()
        );
    }

    #[test]
    fn latency_stats_mean_is_u128_exact() {
        // Mirrors the dynamic-report exactness test: latencies near 2^63
        // must produce the exactly rounded mean, not a f64-accumulation one.
        let huge = u64::MAX / 2;
        let mut stats = StreamingLatencyStats::new(0);
        for v in [huge, 2, 4] {
            stats.push(v);
        }
        let expected = ((huge as u128 + 6) as f64) / 3.0;
        assert_eq!(stats.mean(), expected);
        assert_eq!(stats.max(), huge);
        assert_eq!(stats.count(), 3);
    }

    #[test]
    fn latency_stats_round_trip_and_merge() {
        let mut a = StreamingLatencyStats::new(1);
        let mut b = StreamingLatencyStats::new(2);
        for v in 0..5_000u64 {
            a.push(v);
            b.push(v + 5_000);
        }
        a.merge(&b);
        assert_eq!(a.count(), 10_000);
        assert_eq!(a.max(), 9_999);
        assert!((a.mean() - 4_999.5).abs() < 1e-9);

        let mut enc = Encoder::new();
        a.encode(&mut enc);
        let words = enc.finish();
        let mut dec = Decoder::new(&words);
        let restored = StreamingLatencyStats::decode(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(restored.count(), a.count());
        assert_eq!(restored.sum, a.sum);
        assert_eq!(restored.quantile(0.5), a.quantile(0.5));
        assert_eq!(restored.rank_error_bound(), a.rank_error_bound());
    }

    #[test]
    fn empty_latency_stats_report_zeros() {
        let stats = StreamingLatencyStats::new(0);
        assert_eq!(stats.mean(), 0.0);
        assert_eq!(stats.max(), 0);
        assert_eq!(stats.quantile(0.5), 0);
    }
}
