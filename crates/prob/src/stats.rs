//! Streaming and batch summary statistics.
//!
//! The experiment runner (`mac-sim`) aggregates the makespan of many
//! replicated simulation runs; this module provides the aggregation
//! primitives:
//!
//! * [`StreamingStats`] — single-pass Welford accumulation of count, mean,
//!   variance, min and max; merging two accumulators is supported so that
//!   per-thread partial results can be combined;
//! * [`Summary`] — an immutable snapshot (plus the 95% normal-approximation
//!   confidence interval) that is what gets serialised into result records;
//! * [`percentile`] — linearly interpolated percentile of a slice (with
//!   sorted-slice and integer variants for callers that sort once);
//! * [`ConfidenceInterval`] — a `[lo, hi]` pair with its nominal level;
//! * [`chi_square_test`] / [`two_sample_ks_test`] — goodness-of-fit and
//!   two-sample equivalence tests, used by the binomial-sampler property
//!   tests and the aggregate-vs-per-station simulator equivalence suite.

use crate::special::{kolmogorov_survival, regularized_gamma_p};
use serde::{Deserialize, Serialize};

/// Single-pass (Welford) accumulator for mean/variance/min/max.
///
/// # Example
/// ```
/// use mac_prob::stats::StreamingStats;
/// let mut s = StreamingStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct StreamingStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl StreamingStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel Welford/Chan).
    pub fn merge(&mut self, other: &StreamingStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations pushed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 if fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population variance (0 if empty).
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest observation (`+inf` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// 95% normal-approximation confidence interval for the mean.
    pub fn ci95(&self) -> ConfidenceInterval {
        let half = 1.959_963_985 * self.std_error();
        ConfidenceInterval {
            lo: self.mean() - half,
            hi: self.mean() + half,
            level: 0.95,
        }
    }

    /// Produces an immutable summary snapshot.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean(),
            std_dev: self.std_dev(),
            min: if self.count == 0 { f64::NAN } else { self.min },
            max: if self.count == 0 { f64::NAN } else { self.max },
            ci95: self.ci95(),
        }
    }
}

impl FromIterator<f64> for StreamingStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = StreamingStats::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

impl Extend<f64> for StreamingStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

/// A two-sided confidence interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Lower endpoint.
    pub lo: f64,
    /// Upper endpoint.
    pub hi: f64,
    /// Nominal coverage level (e.g. 0.95).
    pub level: f64,
}

impl ConfidenceInterval {
    /// Returns `true` if `x` lies inside the interval (inclusive).
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo && x <= self.hi
    }

    /// Returns `true` if the two intervals overlap.
    pub fn overlaps(&self, other: &ConfidenceInterval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }
}

/// Immutable summary of a set of observations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum observation (NaN if empty).
    pub min: f64,
    /// Maximum observation (NaN if empty).
    pub max: f64,
    /// 95% confidence interval for the mean.
    pub ci95: ConfidenceInterval,
}

/// Linearly interpolated percentile (`q` in `[0, 100]`) of a slice.
///
/// The slice does not need to be sorted; a sorted copy is made internally.
/// Returns `None` for an empty slice.
///
/// # Example
/// ```
/// use mac_prob::stats::percentile;
/// let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
/// assert_eq!(percentile(&xs, 50.0), Some(3.0));
/// assert_eq!(percentile(&xs, 100.0), Some(5.0));
/// // Even-length samples interpolate: the median of [1, 2, 3, 4] is 2.5.
/// assert_eq!(percentile(&[1.0, 2.0, 3.0, 4.0], 50.0), Some(2.5));
/// assert_eq!(percentile(&[], 50.0), None);
/// ```
pub fn percentile(values: &[f64], q: f64) -> Option<f64> {
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    percentile_sorted(&sorted, q)
}

/// Linearly interpolated percentile of an **already sorted** slice.
///
/// The rank is `q/100 · (n − 1)`; a fractional rank interpolates linearly
/// between the two neighbouring order statistics (the "C = 1" / inclusive
/// convention of NumPy's default `linear` method), so `q = 50` of an
/// even-length sample is the midpoint of the two middle elements — the
/// textbook median — rather than the lower one, `q = 0` is the minimum and
/// `q = 100` the maximum exactly.
///
/// Callers that need several percentiles of the same data should sort once
/// and use this directly instead of paying one sort per [`percentile`]
/// call. Returns `None` for an empty slice.
///
/// # Example
/// ```
/// use mac_prob::stats::percentile_sorted;
/// let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
/// assert_eq!(percentile_sorted(&xs, 50.0), Some(3.0));
/// // Rank 0.95·4 = 3.8 interpolates between 4.0 and 5.0.
/// assert_eq!(percentile_sorted(&xs, 95.0), Some(4.8));
/// ```
pub fn percentile_sorted(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    assert!((0.0..=100.0).contains(&q), "percentile must be in [0,100]");
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "percentile_sorted requires sorted input"
    );
    let rank = (q / 100.0) * (sorted.len() - 1) as f64;
    let lower = rank.floor() as usize;
    let fraction = rank - lower as f64;
    let value = if fraction == 0.0 || lower + 1 == sorted.len() {
        sorted[lower]
    } else {
        sorted[lower] + fraction * (sorted[lower + 1] - sorted[lower])
    };
    Some(value)
}

/// Linearly interpolated percentile of an **already sorted** slice of
/// integers, with the same rank convention as [`percentile_sorted`].
///
/// The two order statistics are converted to `f64` individually (exact for
/// values below 2⁵³); callers needing the exact maximum of huge integer
/// samples should read `sorted.last()` directly rather than ask for
/// `q = 100`.
///
/// # Example
/// ```
/// use mac_prob::stats::percentile_sorted_u64;
/// assert_eq!(percentile_sorted_u64(&[1, 2, 3, 4], 50.0), Some(2.5));
/// assert_eq!(percentile_sorted_u64(&[7], 0.0), Some(7.0));
/// ```
pub fn percentile_sorted_u64(sorted: &[u64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    assert!((0.0..=100.0).contains(&q), "percentile must be in [0,100]");
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "percentile_sorted_u64 requires sorted input"
    );
    let rank = (q / 100.0) * (sorted.len() - 1) as f64;
    let lower = rank.floor() as usize;
    let fraction = rank - lower as f64;
    let lo = sorted[lower] as f64;
    let value = if fraction == 0.0 || lower + 1 == sorted.len() {
        lo
    } else {
        lo + fraction * (sorted[lower + 1] as f64 - lo)
    };
    Some(value)
}

/// Result of a statistical hypothesis test: the test statistic and the
/// probability of seeing a statistic at least this extreme under the null
/// hypothesis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TestResult {
    /// The value of the test statistic.
    pub statistic: f64,
    /// Degrees of freedom (chi-square) or the effective sample factor
    /// `√(n·m/(n+m))` (Kolmogorov–Smirnov).
    pub parameter: f64,
    /// The p-value under the null hypothesis.
    pub p_value: f64,
}

impl TestResult {
    /// `true` when the null hypothesis is *not* rejected at significance
    /// level `alpha` — the assertion equivalence tests make.
    pub fn is_consistent_at(&self, alpha: f64) -> bool {
        self.p_value >= alpha
    }
}

/// Pearson chi-square goodness-of-fit test of observed category counts
/// against expected probabilities.
///
/// Categories with expected probability 0 must have observed count 0 (a
/// nonzero observation there yields `p_value = 0`); such categories
/// contribute no degree of freedom. The p-value uses the chi-square CDF
/// `P(dof/2, x/2)` via [`regularized_gamma_p`].
///
/// # Panics
/// Panics if the slices differ in length, fewer than two categories have
/// positive expected probability, or the probabilities do not sum to ~1.
///
/// # Example
/// ```
/// use mac_prob::stats::chi_square_test;
/// // A fair three-sided die observed 300 times.
/// let result = chi_square_test(&[98, 104, 98], &[1.0 / 3.0; 3]);
/// assert!(result.is_consistent_at(0.01));
/// ```
pub fn chi_square_test(observed: &[u64], expected_probabilities: &[f64]) -> TestResult {
    assert_eq!(
        observed.len(),
        expected_probabilities.len(),
        "observed and expected lengths differ"
    );
    let total_probability: f64 = expected_probabilities.iter().sum();
    assert!(
        (total_probability - 1.0).abs() < 1e-6,
        "expected probabilities sum to {total_probability}, not 1"
    );
    let n: u64 = observed.iter().sum();
    let nf = n as f64;
    let mut statistic = 0.0;
    let mut categories = 0u64;
    let mut impossible_observed = false;
    for (&obs, &prob) in observed.iter().zip(expected_probabilities) {
        assert!((0.0..=1.0).contains(&prob), "invalid probability {prob}");
        if prob == 0.0 {
            impossible_observed |= obs > 0;
            continue;
        }
        categories += 1;
        let expected = nf * prob;
        let diff = obs as f64 - expected;
        statistic += diff * diff / expected;
    }
    assert!(
        categories >= 2,
        "chi-square needs at least two categories with positive probability"
    );
    let dof = (categories - 1) as f64;
    let p_value = if impossible_observed {
        0.0
    } else {
        1.0 - regularized_gamma_p(dof / 2.0, statistic / 2.0)
    };
    TestResult {
        statistic,
        parameter: dof,
        p_value,
    }
}

/// Two-sample Kolmogorov–Smirnov test: the supremum distance between the
/// empirical CDFs of `a` and `b`, with the asymptotic p-value from the
/// Kolmogorov distribution ([`kolmogorov_survival`]).
///
/// Both samples are sorted internally; ties are handled by advancing both
/// cursors past equal values before comparing the CDFs. The asymptotic
/// p-value is accurate for samples of a few dozen observations and larger
/// (the regime the simulator equivalence tests use).
///
/// # Panics
/// Panics if either sample is empty or contains NaN.
///
/// # Example
/// ```
/// use mac_prob::stats::two_sample_ks_test;
/// let a: Vec<f64> = (0..100).map(|i| i as f64).collect();
/// let b: Vec<f64> = (0..100).map(|i| i as f64 + 0.5).collect();
/// // Nearly identical distributions: large p-value.
/// assert!(two_sample_ks_test(&a, &b).is_consistent_at(0.05));
/// ```
pub fn two_sample_ks_test(a: &[f64], b: &[f64]) -> TestResult {
    assert!(!a.is_empty() && !b.is_empty(), "KS needs non-empty samples");
    let sort = |xs: &[f64]| {
        let mut v = xs.to_vec();
        v.sort_by(|x, y| x.partial_cmp(y).expect("NaN in KS input"));
        v
    };
    let a = sort(a);
    let b = sort(b);
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let mut i = 0usize;
    let mut j = 0usize;
    let mut statistic = 0.0f64;
    while i < a.len() && j < b.len() {
        let x = a[i].min(b[j]);
        while i < a.len() && a[i] <= x {
            i += 1;
        }
        while j < b.len() && b[j] <= x {
            j += 1;
        }
        statistic = statistic.max((i as f64 / na - j as f64 / nb).abs());
    }
    let effective = (na * nb / (na + nb)).sqrt();
    TestResult {
        statistic,
        parameter: effective,
        p_value: kolmogorov_survival(effective * statistic),
    }
}

pub mod conformance {
    //! Statistical-conformance harness for sampler rewrites and
    //! engine-equivalence suites.
    //!
    //! Every fast path in this workspace is *exact in law*, not in stream
    //! (`crates/sim/DESIGN.md` §5), so its tests are statistical: chi-square
    //! goodness of fit of drawn samples against an exact pmf, and paired-seed
    //! two-sample comparisons (mean, median, Kolmogorov–Smirnov) between an
    //! engine under test and the per-station reference. This module is the
    //! shared machinery those suites use — the support binning with tail
    //! pooling, the pooled two-empirical-sample chi-square, and the
    //! paired-sample agreement assertion — so that a sampler rewrite is
    //! pinned by one reusable gate instead of ad-hoc copies.
    //!
    //! ## Significance levels and multiplicity
    //!
    //! [`Conformance`] carries the *suite-wide* significance level `α`. A
    //! suite running `n` comparisons divides it per test (Bonferroni:
    //! `α_per_test = α/n` via [`Conformance::with_comparisons`]), which
    //! controls the family-wise false-positive rate at `α` at the price of
    //! conservatism — appropriate here, where a failure gates CI and false
    //! alarms are expensive, while real distributional drift (a wrong pmf
    //! term, a biased sampler) produces p-values tens of orders of magnitude
    //! below any sane level.

    use super::{chi_square_test, percentile, two_sample_ks_test, StreamingStats, TestResult};

    /// Suite-wide statistical-conformance configuration: the significance
    /// level and the number of planned comparisons it is spread over.
    #[derive(Debug, Clone, Copy)]
    pub struct Conformance {
        alpha: f64,
        comparisons: u32,
    }

    impl Conformance {
        /// A conformance gate at suite-wide significance `alpha` for a
        /// single comparison.
        pub fn new(alpha: f64) -> Self {
            assert!((0.0..1.0).contains(&alpha) && alpha > 0.0, "bad alpha");
            Self {
                alpha,
                comparisons: 1,
            }
        }

        /// Spreads the suite-wide level over `comparisons` planned tests
        /// (Bonferroni correction).
        pub fn with_comparisons(alpha: f64, comparisons: u32) -> Self {
            assert!(comparisons >= 1, "need at least one comparison");
            let mut cfg = Self::new(alpha);
            cfg.comparisons = comparisons;
            cfg
        }

        /// The per-test significance level `α / comparisons`.
        pub fn per_test_alpha(&self) -> f64 {
            self.alpha / self.comparisons as f64
        }

        /// Panics with a diagnostic unless `result` is consistent with the
        /// null hypothesis at the per-test level.
        pub fn assert_consistent(&self, result: &TestResult, label: &str) {
            assert!(
                result.is_consistent_at(self.per_test_alpha()),
                "{label}: statistic {:.4} (parameter {:.1}), p = {:.3e} < per-test alpha {:.1e}",
                result.statistic,
                result.parameter,
                result.p_value,
                self.per_test_alpha()
            );
        }
    }

    /// Support binning of an exact pmf for chi-square goodness of fit:
    /// values whose expected count under `planned_samples` draws reaches
    /// `min_expected` get individual cells; everything below the first such
    /// value pools into a lower-tail cell, everything above the last into
    /// an upper-tail cell.
    #[derive(Debug, Clone)]
    pub struct PmfHistogram {
        lo: usize,
        hi: usize,
        observed: Vec<u64>,
        expected: Vec<f64>,
    }

    impl PmfHistogram {
        /// Builds the binning for `pmf` (indexed by value) under
        /// `planned_samples` draws. `min_expected` is the classic ≥ 5
        /// expected-count rule; pass a larger value for extra headroom.
        ///
        /// # Panics
        /// Panics if no cell reaches `min_expected` (the sample is too
        /// small to test against this pmf).
        pub fn new(pmf: &[f64], planned_samples: u64, min_expected: f64) -> Self {
            let threshold = min_expected / planned_samples as f64;
            let lo = pmf
                .iter()
                .position(|&q| q >= threshold)
                .unwrap_or_else(|| panic!("no pmf cell reaches {min_expected} expected counts"));
            let hi = pmf.iter().rposition(|&q| q >= threshold).unwrap().max(lo);
            // Cells: [<= lo-1], lo, lo+1, …, hi, [>= hi+1].
            let cells = hi - lo + 3;
            let mut expected = vec![0.0f64; cells];
            expected[0] = pmf[..lo].iter().sum();
            for v in lo..=hi {
                expected[v - lo + 1] = pmf[v];
            }
            expected[cells - 1] = (1.0 - expected[..cells - 1].iter().sum::<f64>()).max(0.0);
            Self {
                lo,
                hi,
                observed: vec![0; cells],
                expected,
            }
        }

        /// Records one drawn value.
        pub fn record(&mut self, value: u64) {
            let v = value as usize;
            let cell = if v < self.lo {
                0
            } else if v > self.hi {
                self.observed.len() - 1
            } else {
                v - self.lo + 1
            };
            self.observed[cell] += 1;
        }

        /// Pearson chi-square of the recorded counts against the binned pmf.
        pub fn chi_square(&self) -> TestResult {
            chi_square_test(&self.observed, &self.expected)
        }
    }

    /// One-shot sample-vs-exact-pmf chi-square: draws `reps` samples from
    /// `draw` and tests them against `pmf` (indexed by value, tails pooled
    /// at the ≥ 5 expected-count rule).
    pub fn sample_vs_pmf_chi_square<F: FnMut() -> u64>(
        pmf: &[f64],
        reps: u64,
        mut draw: F,
    ) -> TestResult {
        let mut hist = PmfHistogram::new(pmf, reps, 5.0);
        for _ in 0..reps {
            hist.record(draw());
        }
        hist.chi_square()
    }

    /// Pooled chi-square of two *empirical* count vectors over the same
    /// support (e.g. two samplers' histograms of the same size): cells are
    /// pooled left to right until the reference side reaches
    /// `min_expected`, and the observed side is tested against the
    /// reference's empirical frequencies.
    ///
    /// The reference is itself a sample of the same size, which roughly
    /// doubles the variance of the statistic, so gate this at an `α` one
    /// or two orders stricter than a true GOF — or compare the statistic
    /// against `2·dof` for a scale-free check.
    pub fn pooled_empirical_chi_square(
        observed: &[u64],
        reference: &[u64],
        min_expected: f64,
    ) -> TestResult {
        assert_eq!(observed.len(), reference.len(), "support mismatch");
        let total: u64 = reference.iter().sum();
        assert!(total > 0, "empty reference sample");
        let mut pooled_obs = Vec::new();
        let mut pooled_exp = Vec::new();
        let mut acc_obs = 0u64;
        let mut acc_exp = 0.0f64;
        for (&o, &r) in observed.iter().zip(reference) {
            acc_obs += o;
            acc_exp += r as f64 / total as f64;
            if acc_exp * total as f64 >= min_expected {
                pooled_obs.push(acc_obs);
                pooled_exp.push(acc_exp);
                acc_obs = 0;
                acc_exp = 0.0;
            }
        }
        // Fold the trailing remainder into the last flushed pool: pushing
        // it as its own cell could pair a zero expected probability with a
        // nonzero observed count (an observed extreme beyond the
        // reference's support) and spuriously hard-reject two same-law
        // samples.
        let tail_exp = (1.0 - pooled_exp.iter().sum::<f64>()).max(0.0);
        if let (Some(last_obs), Some(last_exp)) = (pooled_obs.last_mut(), pooled_exp.last_mut()) {
            *last_obs += acc_obs;
            *last_exp += tail_exp;
        } else {
            pooled_obs.push(acc_obs);
            pooled_exp.push(tail_exp);
        }
        chi_square_test(&pooled_obs, &pooled_exp)
    }

    /// Paired-sample law-agreement gate: means within `sigmas` standard
    /// errors (with an absolute floor for tiny scales), medians within the
    /// same tolerance, and the two-sample Kolmogorov–Smirnov test not
    /// rejected at the per-test level. This is the workhorse assertion of
    /// the engine-equivalence suites (aggregate vs exact, cohort vs exact,
    /// window walk before/after).
    #[allow(clippy::too_many_arguments)]
    pub fn assert_law_agreement(
        cfg: &Conformance,
        reference: &[f64],
        candidate: &[f64],
        sigmas: f64,
        mean_floor: f64,
        label: &str,
    ) {
        let ref_stats: StreamingStats = reference.iter().copied().collect();
        let cand_stats: StreamingStats = candidate.iter().copied().collect();
        let tolerance = (sigmas * (ref_stats.std_error() + cand_stats.std_error())).max(mean_floor);
        assert!(
            (ref_stats.mean() - cand_stats.mean()).abs() < tolerance,
            "{label}: reference mean {:.2} vs candidate mean {:.2} (tolerance {:.2})",
            ref_stats.mean(),
            cand_stats.mean(),
            tolerance
        );
        let p50_ref = percentile(reference, 50.0).unwrap();
        let p50_cand = percentile(candidate, 50.0).unwrap();
        assert!(
            (p50_ref - p50_cand).abs() < tolerance.max(0.25 * p50_ref.abs()),
            "{label}: reference p50 {p50_ref} vs candidate p50 {p50_cand}"
        );
        let ks = two_sample_ks_test(reference, candidate);
        cfg.assert_consistent(&ks, &format!("{label} (KS)"));
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn per_test_alpha_applies_bonferroni() {
            let cfg = Conformance::with_comparisons(0.01, 10);
            assert!((cfg.per_test_alpha() - 0.001).abs() < 1e-15);
            assert_eq!(Conformance::new(0.05).per_test_alpha(), 0.05);
        }

        #[test]
        fn histogram_pools_tails_and_accepts_its_own_pmf() {
            // Binomial(20, 0.3)-ish shape via a hand-rolled pmf.
            let pmf: Vec<f64> = (0..=20)
                .map(|t| crate::special::binomial_pmf(20, t, 0.3))
                .collect();
            let mut hist = PmfHistogram::new(&pmf, 10_000, 5.0);
            // Feed expected counts directly: statistic ~ 0.
            for (v, &q) in pmf.iter().enumerate() {
                for _ in 0..(q * 10_000.0).round() as u64 {
                    hist.record(v as u64);
                }
            }
            let r = hist.chi_square();
            assert!(r.p_value > 0.5, "{r:?}");
        }

        #[test]
        fn sample_vs_pmf_rejects_a_wrong_distribution() {
            use crate::rng::Xoshiro256pp;
            use rand::{Rng, SeedableRng};
            let pmf: Vec<f64> = (0..=20)
                .map(|t| crate::special::binomial_pmf(20, t, 0.3))
                .collect();
            let mut rng = Xoshiro256pp::seed_from_u64(1);
            // Draw from Binomial(20, 0.4) instead: must be rejected hard.
            let bad = sample_vs_pmf_chi_square(&pmf, 20_000, || {
                (0..20).map(|_| u64::from(rng.gen::<f64>() < 0.4)).sum()
            });
            assert!(bad.p_value < 1e-12, "{bad:?}");
        }

        #[test]
        fn pooled_empirical_chi_square_accepts_same_law() {
            use crate::rng::Xoshiro256pp;
            use rand::{Rng, SeedableRng};
            let mut rng = Xoshiro256pp::seed_from_u64(5);
            let mut a = vec![0u64; 30];
            let mut b = vec![0u64; 30];
            for _ in 0..20_000 {
                let draw = |rng: &mut Xoshiro256pp| -> usize {
                    (0..29).take_while(|_| rng.gen::<f64>() < 0.7).count()
                };
                a[draw(&mut rng)] += 1;
                b[draw(&mut rng)] += 1;
            }
            let r = pooled_empirical_chi_square(&a, &b, 20.0);
            assert!(
                r.p_value > 1e-4 || r.statistic < 2.0 * r.parameter + 20.0,
                "{r:?}"
            );
        }

        #[test]
        #[should_panic(expected = "KS")]
        fn law_agreement_rejects_shifted_samples() {
            let cfg = Conformance::new(0.001);
            let a: Vec<f64> = (0..300).map(|i| i as f64).collect();
            let b: Vec<f64> = (0..300).map(|i| i as f64 + 200.0).collect();
            assert_law_agreement(&cfg, &a, &b, 1e9, f64::INFINITY, "shifted");
        }

        #[test]
        fn law_agreement_accepts_identical_samples() {
            let cfg = Conformance::new(0.001);
            let a: Vec<f64> = (0..300).map(|i| (i % 37) as f64).collect();
            assert_law_agreement(&cfg, &a, &a.clone(), 4.0, 8.0, "identical");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_safe() {
        let s = StreamingStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_error(), 0.0);
        assert!(s.summary().min.is_nan());
    }

    #[test]
    fn welford_matches_two_pass() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 * 0.5).collect();
        let s: StreamingStats = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-9);
        assert!((s.variance() - var).abs() < 1e-9);
        assert_eq!(
            s.min(),
            *xs.iter().min_by(|a, b| a.partial_cmp(b).unwrap()).unwrap()
        );
        assert_eq!(
            s.max(),
            *xs.iter().max_by(|a, b| a.partial_cmp(b).unwrap()).unwrap()
        );
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..500).map(|i| (i as f64).sin() * 10.0).collect();
        let (a, b) = xs.split_at(123);
        let mut sa: StreamingStats = a.iter().copied().collect();
        let sb: StreamingStats = b.iter().copied().collect();
        sa.merge(&sb);
        let all: StreamingStats = xs.iter().copied().collect();
        assert_eq!(sa.count(), all.count());
        assert!((sa.mean() - all.mean()).abs() < 1e-9);
        assert!((sa.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(sa.min(), all.min());
        assert_eq!(sa.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: StreamingStats = [1.0, 2.0, 3.0].into_iter().collect();
        let before = s;
        s.merge(&StreamingStats::new());
        assert_eq!(s, before);
        let mut empty = StreamingStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn ci95_contains_mean_and_shrinks_with_n() {
        let small: StreamingStats = (0..10).map(|i| i as f64).collect();
        let large: StreamingStats = (0..10_000).map(|i| (i % 10) as f64).collect();
        assert!(small.ci95().contains(small.mean()));
        let w_small = small.ci95().hi - small.ci95().lo;
        let w_large = large.ci95().hi - large.ci95().lo;
        assert!(w_large < w_small);
    }

    #[test]
    fn interval_overlap_logic() {
        let a = ConfidenceInterval {
            lo: 0.0,
            hi: 1.0,
            level: 0.95,
        };
        let b = ConfidenceInterval {
            lo: 0.9,
            hi: 2.0,
            level: 0.95,
        };
        let c = ConfidenceInterval {
            lo: 1.5,
            hi: 2.0,
            level: 0.95,
        };
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert!(a.contains(0.5));
        assert!(!a.contains(1.5));
    }

    #[test]
    fn percentile_interpolates_between_order_statistics() {
        let xs = [9.0, 1.0, 5.0, 3.0, 7.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        // Rank 0.2·4 = 0.8 interpolates between 1 and 3.
        assert_eq!(percentile(&xs, 20.0), Some(1.0 + 0.8 * 2.0));
        assert_eq!(percentile(&xs, 50.0), Some(5.0));
        // Rank 0.9·4 = 3.6 interpolates between 7 and 9.
        assert!((percentile(&xs, 90.0).unwrap() - 8.2).abs() < 1e-12);
        assert_eq!(percentile(&xs, 100.0), Some(9.0));
    }

    #[test]
    fn percentile_median_of_even_length_sample_is_the_midpoint() {
        // The original nearest-rank rule returned the lower-middle element
        // here; the interpolated definition returns the textbook median.
        assert_eq!(percentile(&[4.0, 1.0, 3.0, 2.0], 50.0), Some(2.5));
        assert_eq!(percentile_sorted(&[10.0, 20.0], 50.0), Some(15.0));
    }

    #[test]
    fn percentile_boundaries_and_single_element() {
        // q = 0 and q = 100 are exactly the extremes, on odd and even sizes.
        for xs in [vec![2.0, 8.0, 5.0], vec![2.0, 8.0, 5.0, 11.0]] {
            assert_eq!(percentile(&xs, 0.0), Some(2.0));
            assert_eq!(percentile(&xs, 100.0), xs.iter().copied().reduce(f64::max));
        }
        // A single-element slice answers every quantile with that element.
        for q in [0.0, 37.5, 50.0, 100.0] {
            assert_eq!(percentile(&[42.0], q), Some(42.0));
            assert_eq!(percentile_sorted(&[42.0], q), Some(42.0));
            assert_eq!(percentile_sorted_u64(&[42], q), Some(42.0));
        }
        assert_eq!(percentile_sorted_u64(&[], 50.0), None);
    }

    #[test]
    fn percentile_u64_matches_the_f64_version() {
        let xs = [1u64, 5, 9, 12, 40, 41];
        let fs: Vec<f64> = xs.iter().map(|&x| x as f64).collect();
        for q in [0.0, 10.0, 33.3, 50.0, 77.7, 95.0, 100.0] {
            assert_eq!(percentile_sorted_u64(&xs, q), percentile_sorted(&fs, q));
        }
    }

    #[test]
    fn extend_adds_observations() {
        let mut s = StreamingStats::new();
        s.extend([1.0, 2.0, 3.0]);
        assert_eq!(s.count(), 3);
    }

    #[test]
    #[should_panic(expected = "percentile must be in")]
    fn percentile_rejects_out_of_range() {
        let _ = percentile(&[1.0], 150.0);
    }

    #[test]
    fn chi_square_accepts_matching_counts_and_rejects_skewed_ones() {
        // Perfectly matching counts: statistic 0, p-value 1.
        let fit = chi_square_test(&[250, 250, 500], &[0.25, 0.25, 0.5]);
        assert_eq!(fit.statistic, 0.0);
        assert!((fit.p_value - 1.0).abs() < 1e-12);
        assert_eq!(fit.parameter, 2.0);
        // Grossly skewed counts: rejected at any reasonable level.
        let off = chi_square_test(&[900, 50, 50], &[0.25, 0.25, 0.5]);
        assert!(off.p_value < 1e-10);
        assert!(!off.is_consistent_at(0.001));
    }

    #[test]
    fn chi_square_handles_zero_probability_categories() {
        // A zero-probability category with zero observations contributes
        // nothing; with observations, the null is impossible.
        let ok = chi_square_test(&[500, 500, 0], &[0.5, 0.5, 0.0]);
        assert!(ok.is_consistent_at(0.05));
        assert_eq!(ok.parameter, 1.0);
        let bad = chi_square_test(&[500, 499, 1], &[0.5, 0.5, 0.0]);
        assert_eq!(bad.p_value, 0.0);
    }

    #[test]
    fn chi_square_p_value_is_calibrated() {
        // The 95th percentile of chi-square with 1 dof is 3.841: a statistic
        // just below must give p just above 0.05.
        let n = 10_000u64;
        // Construct counts with statistic ~ 3.8: diff²·(1/E1+1/E2) with
        // E1 = E2 = 5000 → diff = sqrt(3.8·2500) ≈ 97.5.
        let fit = chi_square_test(&[5097, 4903], &[0.5, 0.5]);
        assert!(fit.statistic > 3.5 && fit.statistic < 3.85);
        assert!(fit.p_value > 0.05 && fit.p_value < 0.07, "{:?}", fit);
        assert_eq!(n, 10_000); // silence unused warning paranoia
    }

    #[test]
    fn ks_distinguishes_shifted_samples() {
        let a: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let shifted: Vec<f64> = (0..200).map(|i| i as f64 + 100.0).collect();
        let reject = two_sample_ks_test(&a, &shifted);
        assert!(reject.p_value < 1e-6);
        let same = two_sample_ks_test(&a, &a);
        assert_eq!(same.statistic, 0.0);
        assert!((same.p_value - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ks_statistic_is_the_cdf_sup_distance() {
        // a = {1,2}, b = {1,3}: CDFs differ by 1/2 on [2,3).
        let result = two_sample_ks_test(&[1.0, 2.0], &[1.0, 3.0]);
        assert!((result.statistic - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn ks_rejects_empty_sample() {
        let _ = two_sample_ks_test(&[], &[1.0]);
    }
}
