//! Streaming and batch summary statistics.
//!
//! The experiment runner (`mac-sim`) aggregates the makespan of many
//! replicated simulation runs; this module provides the aggregation
//! primitives:
//!
//! * [`StreamingStats`] — single-pass Welford accumulation of count, mean,
//!   variance, min and max; merging two accumulators is supported so that
//!   per-thread partial results can be combined;
//! * [`Summary`] — an immutable snapshot (plus the 95% normal-approximation
//!   confidence interval) that is what gets serialised into result records;
//! * [`percentile`] — nearest-rank percentile of a slice;
//! * [`ConfidenceInterval`] — a `[lo, hi]` pair with its nominal level.

use serde::{Deserialize, Serialize};

/// Single-pass (Welford) accumulator for mean/variance/min/max.
///
/// # Example
/// ```
/// use mac_prob::stats::StreamingStats;
/// let mut s = StreamingStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct StreamingStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl StreamingStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel Welford/Chan).
    pub fn merge(&mut self, other: &StreamingStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations pushed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 if fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population variance (0 if empty).
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest observation (`+inf` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// 95% normal-approximation confidence interval for the mean.
    pub fn ci95(&self) -> ConfidenceInterval {
        let half = 1.959_963_985 * self.std_error();
        ConfidenceInterval {
            lo: self.mean() - half,
            hi: self.mean() + half,
            level: 0.95,
        }
    }

    /// Produces an immutable summary snapshot.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean(),
            std_dev: self.std_dev(),
            min: if self.count == 0 { f64::NAN } else { self.min },
            max: if self.count == 0 { f64::NAN } else { self.max },
            ci95: self.ci95(),
        }
    }
}

impl FromIterator<f64> for StreamingStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = StreamingStats::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

impl Extend<f64> for StreamingStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

/// A two-sided confidence interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Lower endpoint.
    pub lo: f64,
    /// Upper endpoint.
    pub hi: f64,
    /// Nominal coverage level (e.g. 0.95).
    pub level: f64,
}

impl ConfidenceInterval {
    /// Returns `true` if `x` lies inside the interval (inclusive).
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo && x <= self.hi
    }

    /// Returns `true` if the two intervals overlap.
    pub fn overlaps(&self, other: &ConfidenceInterval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }
}

/// Immutable summary of a set of observations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum observation (NaN if empty).
    pub min: f64,
    /// Maximum observation (NaN if empty).
    pub max: f64,
    /// 95% confidence interval for the mean.
    pub ci95: ConfidenceInterval,
}

/// Nearest-rank percentile (`q` in `[0, 100]`) of a slice.
///
/// The slice does not need to be sorted; a sorted copy is made internally.
/// Returns `None` for an empty slice.
///
/// # Example
/// ```
/// use mac_prob::stats::percentile;
/// let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
/// assert_eq!(percentile(&xs, 50.0), Some(3.0));
/// assert_eq!(percentile(&xs, 100.0), Some(5.0));
/// assert_eq!(percentile(&[], 50.0), None);
/// ```
pub fn percentile(values: &[f64], q: f64) -> Option<f64> {
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    percentile_sorted(&sorted, q)
}

/// Nearest-rank percentile of an **already sorted** slice.
///
/// Callers that need several percentiles of the same data should sort once
/// and use this directly instead of paying one sort per [`percentile`]
/// call. Returns `None` for an empty slice.
///
/// # Example
/// ```
/// use mac_prob::stats::percentile_sorted;
/// let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
/// assert_eq!(percentile_sorted(&xs, 50.0), Some(3.0));
/// assert_eq!(percentile_sorted(&xs, 95.0), Some(5.0));
/// ```
pub fn percentile_sorted(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    assert!((0.0..=100.0).contains(&q), "percentile must be in [0,100]");
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "percentile_sorted requires sorted input"
    );
    let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
    Some(sorted[rank.saturating_sub(1).min(sorted.len() - 1)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_safe() {
        let s = StreamingStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_error(), 0.0);
        assert!(s.summary().min.is_nan());
    }

    #[test]
    fn welford_matches_two_pass() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 * 0.5).collect();
        let s: StreamingStats = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-9);
        assert!((s.variance() - var).abs() < 1e-9);
        assert_eq!(
            s.min(),
            *xs.iter().min_by(|a, b| a.partial_cmp(b).unwrap()).unwrap()
        );
        assert_eq!(
            s.max(),
            *xs.iter().max_by(|a, b| a.partial_cmp(b).unwrap()).unwrap()
        );
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..500).map(|i| (i as f64).sin() * 10.0).collect();
        let (a, b) = xs.split_at(123);
        let mut sa: StreamingStats = a.iter().copied().collect();
        let sb: StreamingStats = b.iter().copied().collect();
        sa.merge(&sb);
        let all: StreamingStats = xs.iter().copied().collect();
        assert_eq!(sa.count(), all.count());
        assert!((sa.mean() - all.mean()).abs() < 1e-9);
        assert!((sa.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(sa.min(), all.min());
        assert_eq!(sa.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: StreamingStats = [1.0, 2.0, 3.0].into_iter().collect();
        let before = s;
        s.merge(&StreamingStats::new());
        assert_eq!(s, before);
        let mut empty = StreamingStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn ci95_contains_mean_and_shrinks_with_n() {
        let small: StreamingStats = (0..10).map(|i| i as f64).collect();
        let large: StreamingStats = (0..10_000).map(|i| (i % 10) as f64).collect();
        assert!(small.ci95().contains(small.mean()));
        let w_small = small.ci95().hi - small.ci95().lo;
        let w_large = large.ci95().hi - large.ci95().lo;
        assert!(w_large < w_small);
    }

    #[test]
    fn interval_overlap_logic() {
        let a = ConfidenceInterval {
            lo: 0.0,
            hi: 1.0,
            level: 0.95,
        };
        let b = ConfidenceInterval {
            lo: 0.9,
            hi: 2.0,
            level: 0.95,
        };
        let c = ConfidenceInterval {
            lo: 1.5,
            hi: 2.0,
            level: 0.95,
        };
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert!(a.contains(0.5));
        assert!(!a.contains(1.5));
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs = [9.0, 1.0, 5.0, 3.0, 7.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 20.0), Some(1.0));
        assert_eq!(percentile(&xs, 50.0), Some(5.0));
        assert_eq!(percentile(&xs, 90.0), Some(9.0));
        assert_eq!(percentile(&xs, 100.0), Some(9.0));
    }

    #[test]
    fn extend_adds_observations() {
        let mut s = StreamingStats::new();
        s.extend([1.0, 2.0, 3.0]);
        assert_eq!(s.count(), 3);
    }

    #[test]
    #[should_panic(expected = "percentile must be in")]
    fn percentile_rejects_out_of_range() {
        let _ = percentile(&[1.0], 150.0);
    }
}
