//! # mac-prob — probability toolkit for multiple-access-channel simulation
//!
//! This crate provides the numerical substrate used by the contention-resolution
//! simulators in this workspace:
//!
//! * [`rng`] — deterministic, splittable random-number generation
//!   ([`rng::SplitMix64`], [`rng::Xoshiro256pp`], seed derivation) so that every
//!   simulated run is reproducible from a master seed;
//! * [`outcome`] — exact sampling of the *slot outcome trichotomy*
//!   (silence / single delivery / collision) for a slot in which `m` stations
//!   each transmit independently with probability `p`, computed in log-space
//!   so it is stable up to `m = 10^9` and beyond;
//! * [`sampling`] — Bernoulli, binomial, geometric and Poisson samplers built
//!   only on a [`rand::RngCore`] source;
//! * [`binomial`] — the expected-O(1) exact binomial sampler (CDF inversion
//!   for small means, BTPE for large) and the incremental slot-threshold
//!   kernel behind the aggregate simulators' per-slot fast path;
//! * [`cohort`] — sum-of-binomials slot classification over station cohorts
//!   (the heterogeneous-phase generalisation of the aggregate slot kernel
//!   that the dynamic-arrival cohort engine runs on);
//! * [`balls`] — balls-in-bins occupancy experiments (the random process behind
//!   contention-window protocols) and their summary statistics;
//! * [`stats`] — streaming (Welford) and batch summary statistics, percentiles
//!   and normal-approximation confidence intervals used by the experiment
//!   runner;
//! * [`sketch`] — a mergeable KLL-style streaming quantile sketch with a
//!   deterministic rank-error ledger, the bounded-memory latency path of the
//!   streaming simulation sessions;
//! * [`wire`] — the hand-rolled word-oriented checkpoint codec those sessions
//!   serialise their engine state with;
//! * [`special`] — log-factorials, log-binomial coefficients and
//!   Chernoff–Hoeffding tail helpers used by the analytical-bound module of
//!   `mac-protocols`.
//!
//! # Example
//!
//! Sample the outcome of a slot in which 1000 stations transmit with
//! probability 1/1000 each:
//!
//! ```
//! use mac_prob::outcome::{SlotOutcome, slot_outcome_probabilities, sample_slot_outcome};
//! use mac_prob::rng::Xoshiro256pp;
//! use rand::SeedableRng;
//!
//! let probs = slot_outcome_probabilities(1000, 1e-3);
//! assert!((probs.silence + probs.delivery + probs.collision - 1.0).abs() < 1e-12);
//! // With p = 1/m the delivery probability is close to 1/e.
//! assert!((probs.delivery - (-1.0f64).exp()).abs() < 0.01);
//!
//! let mut rng = Xoshiro256pp::seed_from_u64(42);
//! match sample_slot_outcome(1000, 1e-3, &mut rng) {
//!     SlotOutcome::Silence | SlotOutcome::Delivery | SlotOutcome::Collision => {}
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod balls;
pub mod binomial;
pub mod cohort;
pub mod histogram;
pub mod outcome;
pub mod rng;
pub mod sampling;
pub mod sketch;
pub mod special;
pub mod stats;
pub mod wire;

pub use balls::{
    occupancy_counts, throw_balls, throw_balls_into, walk_window, BinsOccupancy, OccupancyCounts,
    OccupancyScratch, SlotOccupancy, WalkScratch,
};
pub use binomial::{
    sample_binomial_fast, sample_slot_class, ModeKernel, SlotKernel, SlotKernelCache,
    SlotThresholds,
};
pub use cohort::CohortKernel;
pub use outcome::{
    sample_slot_outcome, slot_outcome_probabilities, SlotOutcome, SlotOutcomeProbabilities,
};
pub use rng::{derive_seed, SeedSequence, SplitMix64, Xoshiro256pp};
pub use sampling::{sample_bernoulli, sample_binomial, sample_geometric, sample_poisson};
pub use sketch::{QuantileSketch, StreamingLatencyStats};
pub use stats::{ConfidenceInterval, StreamingStats, Summary};
pub use wire::{Decoder, Encoder, WireError};
