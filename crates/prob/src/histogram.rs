//! Fixed-bucket and logarithmic histograms.
//!
//! The dynamic-arrival experiments summarise per-message latencies; mean and
//! percentiles (in [`crate::stats`]) lose the shape of the distribution,
//! which for contention-resolution protocols is often heavy-tailed (a few
//! stragglers survive several windows). [`Histogram`] keeps exact counts in
//! logarithmically spaced buckets so that a latency distribution spanning
//! five orders of magnitude can be rendered compactly (used by the examples'
//! text output) and compared across protocols.

use serde::{Deserialize, Serialize};

/// A histogram over `u64` values with logarithmically spaced buckets.
///
/// Bucket `i` covers the value range `[base^i, base^(i+1))`, except bucket 0
/// which also includes 0. The default base is 2.
///
/// # Example
/// ```
/// use mac_prob::histogram::Histogram;
/// let mut h = Histogram::new();
/// for v in [0u64, 1, 2, 3, 5, 9, 1000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 7);
/// assert_eq!(h.max(), Some(1000));
/// assert!(h.bucket_for(3) == h.bucket_for(2));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    base: f64,
    counts: Vec<u64>,
    total: u64,
    min: Option<u64>,
    max: Option<u64>,
    sum: u128,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates a histogram with base-2 buckets.
    pub fn new() -> Self {
        Self::with_base(2.0)
    }

    /// Creates a histogram with the given bucket base (> 1).
    ///
    /// # Panics
    /// Panics if `base ≤ 1` or is not finite.
    pub fn with_base(base: f64) -> Self {
        assert!(base.is_finite() && base > 1.0, "histogram base must be > 1");
        Self {
            base,
            counts: Vec::new(),
            total: 0,
            min: None,
            max: None,
            sum: 0,
        }
    }

    /// Index of the bucket a value falls into.
    pub fn bucket_for(&self, value: u64) -> usize {
        if value <= 1 {
            0
        } else {
            (value as f64).log(self.base).floor() as usize
        }
    }

    /// Lower bound (inclusive) of bucket `i`.
    pub fn bucket_lower_bound(&self, i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            self.base.powi(i as i32).floor() as u64
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        let bucket = self.bucket_for(value);
        if bucket >= self.counts.len() {
            self.counts.resize(bucket + 1, 0);
        }
        self.counts[bucket] += 1;
        self.total += 1;
        self.sum += value as u128;
        self.min = Some(self.min.map_or(value, |m| m.min(value)));
        self.max = Some(self.max.map_or(value, |m| m.max(value)));
    }

    /// Records every value of an iterator.
    pub fn record_all<I: IntoIterator<Item = u64>>(&mut self, values: I) {
        for v in values {
            self.record(v);
        }
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Smallest recorded value.
    pub fn min(&self) -> Option<u64> {
        self.min
    }

    /// Largest recorded value.
    pub fn max(&self) -> Option<u64> {
        self.max
    }

    /// Mean of the recorded values (`None` if empty).
    pub fn mean(&self) -> Option<f64> {
        if self.total == 0 {
            None
        } else {
            Some(self.sum as f64 / self.total as f64)
        }
    }

    /// Non-empty buckets as `(lower_bound, count)` pairs, in increasing
    /// order.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (self.bucket_lower_bound(i), c))
            .collect()
    }

    /// An upper bound on the `q`-quantile (`q` in `[0,1]`): the upper edge of
    /// the bucket in which the quantile falls. `None` if empty.
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.total == 0 {
            return None;
        }
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(self.bucket_lower_bound(i + 1).saturating_sub(1).max(1));
            }
        }
        self.max
    }

    /// Renders the histogram as an ASCII bar chart (one line per non-empty
    /// bucket), scaled so the largest bucket uses `width` characters.
    pub fn ascii(&self, width: usize) -> String {
        let buckets = self.buckets();
        let Some(&(_, max_count)) = buckets.iter().max_by_key(|(_, c)| *c) else {
            return String::from("(empty)\n");
        };
        let mut out = String::new();
        for (lo, count) in buckets {
            let bar_len = ((count as f64 / max_count as f64) * width as f64).round() as usize;
            out.push_str(&format!(
                "{:>12} | {:<width$} {}\n",
                format!(">= {lo}"),
                "#".repeat(bar_len.max(1)),
                count,
                width = width
            ));
        }
        out
    }
}

impl FromIterator<u64> for Histogram {
    fn from_iter<T: IntoIterator<Item = u64>>(iter: T) -> Self {
        let mut h = Histogram::new();
        h.record_all(iter);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_safe() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile_upper_bound(0.5), None);
        assert!(h.buckets().is_empty());
        assert_eq!(h.ascii(10), "(empty)\n");
    }

    #[test]
    fn bucket_assignment_base_two() {
        let h = Histogram::new();
        assert_eq!(h.bucket_for(0), 0);
        assert_eq!(h.bucket_for(1), 0);
        assert_eq!(h.bucket_for(2), 1);
        assert_eq!(h.bucket_for(3), 1);
        assert_eq!(h.bucket_for(4), 2);
        assert_eq!(h.bucket_for(1023), 9);
        assert_eq!(h.bucket_for(1024), 10);
        assert_eq!(h.bucket_lower_bound(0), 0);
        assert_eq!(h.bucket_lower_bound(3), 8);
    }

    #[test]
    fn counts_min_max_mean() {
        let h: Histogram = [1u64, 2, 3, 4, 10].into_iter().collect();
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(10));
        assert_eq!(h.mean(), Some(4.0));
        let buckets = h.buckets();
        assert_eq!(buckets.iter().map(|(_, c)| c).sum::<u64>(), 5);
    }

    #[test]
    fn quantile_bounds_are_monotone_and_cover_values() {
        let h: Histogram = (1u64..=1000).collect();
        let p50 = h.quantile_upper_bound(0.5).unwrap();
        let p95 = h.quantile_upper_bound(0.95).unwrap();
        let p100 = h.quantile_upper_bound(1.0).unwrap();
        assert!(p50 <= p95 && p95 <= p100);
        assert!(p50 >= 500, "upper bound must not be below the true median");
        assert!(p100 >= 1000 - 1);
    }

    #[test]
    fn ascii_output_has_one_line_per_nonempty_bucket() {
        let h: Histogram = [1u64, 1, 1, 2, 100].into_iter().collect();
        let art = h.ascii(20);
        assert_eq!(art.lines().count(), h.buckets().len());
        assert!(art.contains('#'));
    }

    #[test]
    fn custom_base_changes_bucket_granularity() {
        let coarse = Histogram::with_base(10.0);
        assert_eq!(coarse.bucket_for(9), 0);
        assert_eq!(coarse.bucket_for(10), 1);
        assert_eq!(coarse.bucket_for(99), 1);
        assert_eq!(coarse.bucket_for(100), 2);
    }

    #[test]
    #[should_panic(expected = "base must be > 1")]
    fn rejects_invalid_base() {
        let _ = Histogram::with_base(1.0);
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn rejects_invalid_quantile() {
        let h: Histogram = [1u64].into_iter().collect();
        let _ = h.quantile_upper_bound(1.5);
    }
}
