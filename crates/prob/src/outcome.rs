//! Exact sampling of the slot-outcome trichotomy.
//!
//! In a slotted multiple-access channel, the only thing the channel reveals
//! about a slot is whether **zero**, **exactly one**, or **more than one**
//! station transmitted (and, without collision detection, stations cannot even
//! tell the first and last case apart). When every one of the `m` active
//! stations transmits independently with the *same* probability `p` — which is
//! the case for the "fair" protocols of the paper (One-fail Adaptive,
//! Log-fails Adaptive, the known-k oracle) under batched arrivals — the number
//! of transmitters is `Binomial(m, p)` and the slot outcome only depends on
//! whether that draw is 0, 1 or ≥ 2.
//!
//! Sampling the trichotomy directly — instead of simulating every station —
//! is what makes the paper's `k = 10^7` experiments tractable: it costs O(1)
//! time and two logarithms per slot, independent of `m`.
//!
//! All probabilities are computed in log-space with `ln_1p` so they remain
//! accurate for `m` up to billions and `p` down to `1e-12`.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// The three observable outcomes of a communication slot.
///
/// These are *channel-level* outcomes. A station without collision detection
/// cannot distinguish [`SlotOutcome::Silence`] from [`SlotOutcome::Collision`];
/// that restriction is modelled by `mac-channel`, not here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SlotOutcome {
    /// No station transmitted (background noise).
    Silence,
    /// Exactly one station transmitted: its message is delivered.
    Delivery,
    /// Two or more stations transmitted: all messages are garbled.
    Collision,
}

impl SlotOutcome {
    /// Returns `true` if the outcome is a successful delivery.
    #[inline]
    pub fn is_delivery(self) -> bool {
        matches!(self, SlotOutcome::Delivery)
    }
}

/// The probabilities of the three slot outcomes for a given `(m, p)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlotOutcomeProbabilities {
    /// Probability that no station transmits: `(1-p)^m`.
    pub silence: f64,
    /// Probability that exactly one station transmits: `m·p·(1-p)^(m-1)`.
    pub delivery: f64,
    /// Probability that two or more stations transmit.
    pub collision: f64,
}

impl SlotOutcomeProbabilities {
    /// Returns the probability of the given outcome.
    pub fn of(&self, outcome: SlotOutcome) -> f64 {
        match outcome {
            SlotOutcome::Silence => self.silence,
            SlotOutcome::Delivery => self.delivery,
            SlotOutcome::Collision => self.collision,
        }
    }
}

/// Computes the exact outcome probabilities for a slot in which `m` stations
/// each transmit independently with probability `p`.
///
/// The computation is carried out in log-space:
/// `ln P[silence] = m·ln(1-p)` and
/// `ln P[delivery] = ln m + ln p + (m-1)·ln(1-p)`,
/// so it is stable for very large `m` and very small `p`.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]` or is not finite.
///
/// # Example
/// ```
/// use mac_prob::outcome::slot_outcome_probabilities;
/// // Two stations, each transmitting with probability 1/2:
/// let pr = slot_outcome_probabilities(2, 0.5);
/// assert!((pr.silence - 0.25).abs() < 1e-15);
/// assert!((pr.delivery - 0.50).abs() < 1e-15);
/// assert!((pr.collision - 0.25).abs() < 1e-15);
/// ```
pub fn slot_outcome_probabilities(m: u64, p: f64) -> SlotOutcomeProbabilities {
    assert!(
        p.is_finite() && (0.0..=1.0).contains(&p),
        "transmission probability must be in [0,1], got {p}"
    );
    if m == 0 || p == 0.0 {
        return SlotOutcomeProbabilities {
            silence: 1.0,
            delivery: 0.0,
            collision: 0.0,
        };
    }
    if m == 1 {
        return SlotOutcomeProbabilities {
            silence: 1.0 - p,
            delivery: p,
            collision: 0.0,
        };
    }
    if p == 1.0 {
        // Every station transmits: certain collision for m >= 2.
        return SlotOutcomeProbabilities {
            silence: 0.0,
            delivery: 0.0,
            collision: 1.0,
        };
    }
    let mf = m as f64;
    let ln_q = (-p).ln_1p(); // ln(1-p), accurate for small p
    let silence = (mf * ln_q).exp();
    let delivery = (mf.ln() + p.ln() + (mf - 1.0) * ln_q).exp();
    let collision = (1.0 - silence - delivery).max(0.0);
    SlotOutcomeProbabilities {
        silence,
        delivery,
        collision,
    }
}

/// Samples the outcome of a slot in which `m` stations each transmit
/// independently with probability `p`.
///
/// Exact (up to f64 rounding of the outcome probabilities) and O(1) in `m`.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]` or is not finite.
///
/// # Example
/// ```
/// use mac_prob::outcome::{sample_slot_outcome, SlotOutcome};
/// use mac_prob::rng::Xoshiro256pp;
/// use rand::SeedableRng;
/// let mut rng = Xoshiro256pp::seed_from_u64(1);
/// // A single active station transmitting with probability 1 always delivers.
/// assert_eq!(sample_slot_outcome(1, 1.0, &mut rng), SlotOutcome::Delivery);
/// ```
pub fn sample_slot_outcome<R: Rng + ?Sized>(m: u64, p: f64, rng: &mut R) -> SlotOutcome {
    let pr = slot_outcome_probabilities(m, p);
    let u: f64 = rng.gen();
    if u < pr.silence {
        SlotOutcome::Silence
    } else if u < pr.silence + pr.delivery {
        SlotOutcome::Delivery
    } else {
        SlotOutcome::Collision
    }
}

/// Samples the outcome of a slot in which station `i` transmits with its own
/// probability `ps[i]` (heterogeneous probabilities).
///
/// This is O(len(ps)) and is used by the exact simulator for protocols whose
/// stations are *not* in lockstep. Returns the outcome together with the index
/// of the transmitting station when the outcome is a delivery.
pub fn sample_heterogeneous_slot<R: Rng + ?Sized>(
    ps: &[f64],
    rng: &mut R,
) -> (SlotOutcome, Option<usize>) {
    let mut transmitters = 0usize;
    let mut who = None;
    for (i, &p) in ps.iter().enumerate() {
        debug_assert!((0.0..=1.0).contains(&p));
        if rng.gen::<f64>() < p {
            transmitters += 1;
            if transmitters == 1 {
                who = Some(i);
            } else {
                // Early exit: outcome is already a collision and callers never
                // need the identity of colliding stations.
                return (SlotOutcome::Collision, None);
            }
        }
    }
    match transmitters {
        0 => (SlotOutcome::Silence, None),
        1 => (SlotOutcome::Delivery, who),
        _ => unreachable!("loop returns early on the second transmitter"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256pp;
    use rand::SeedableRng;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn probabilities_sum_to_one() {
        for &m in &[0u64, 1, 2, 3, 10, 1000, 1_000_000, 10_000_000_000] {
            for &p in &[0.0, 1e-9, 1e-3, 0.1, 0.5, 0.9, 1.0] {
                let pr = slot_outcome_probabilities(m, p);
                assert_close(pr.silence + pr.delivery + pr.collision, 1.0, 1e-9);
                assert!(pr.silence >= 0.0 && pr.delivery >= 0.0 && pr.collision >= 0.0);
            }
        }
    }

    #[test]
    fn zero_stations_is_always_silent() {
        let pr = slot_outcome_probabilities(0, 0.7);
        assert_eq!(pr.silence, 1.0);
        assert_eq!(pr.delivery, 0.0);
        assert_eq!(pr.collision, 0.0);
    }

    #[test]
    fn single_station_never_collides() {
        let pr = slot_outcome_probabilities(1, 0.3);
        assert_close(pr.delivery, 0.3, 1e-15);
        assert_close(pr.silence, 0.7, 1e-15);
        assert_eq!(pr.collision, 0.0);
    }

    #[test]
    fn all_transmit_collides_for_two_or_more() {
        let pr = slot_outcome_probabilities(5, 1.0);
        assert_eq!(pr.collision, 1.0);
    }

    #[test]
    fn two_stations_half_probability_closed_form() {
        let pr = slot_outcome_probabilities(2, 0.5);
        assert_close(pr.silence, 0.25, 1e-15);
        assert_close(pr.delivery, 0.5, 1e-15);
        assert_close(pr.collision, 0.25, 1e-15);
    }

    #[test]
    fn delivery_probability_approaches_one_over_e_at_p_equals_one_over_m() {
        for &m in &[100u64, 10_000, 1_000_000] {
            let pr = slot_outcome_probabilities(m, 1.0 / m as f64);
            assert_close(pr.delivery, (-1.0f64).exp(), 2.0 / m as f64 + 1e-3);
        }
    }

    #[test]
    fn large_m_small_p_is_numerically_stable() {
        let pr = slot_outcome_probabilities(1_000_000_000, 1e-9);
        // Poisson(1) limit: P0 = P1 = 1/e.
        assert_close(pr.silence, (-1.0f64).exp(), 1e-3);
        assert_close(pr.delivery, (-1.0f64).exp(), 1e-3);
        assert!(pr.collision > 0.0);
    }

    #[test]
    fn of_returns_matching_field() {
        let pr = slot_outcome_probabilities(3, 0.2);
        assert_eq!(pr.of(SlotOutcome::Silence), pr.silence);
        assert_eq!(pr.of(SlotOutcome::Delivery), pr.delivery);
        assert_eq!(pr.of(SlotOutcome::Collision), pr.collision);
    }

    #[test]
    #[should_panic(expected = "transmission probability")]
    fn rejects_probability_above_one() {
        let _ = slot_outcome_probabilities(2, 1.5);
    }

    #[test]
    fn sampling_matches_probabilities_empirically() {
        let mut rng = Xoshiro256pp::seed_from_u64(2024);
        let m = 50;
        let p = 0.02;
        let pr = slot_outcome_probabilities(m, p);
        let n = 200_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            match sample_slot_outcome(m, p, &mut rng) {
                SlotOutcome::Silence => counts[0] += 1,
                SlotOutcome::Delivery => counts[1] += 1,
                SlotOutcome::Collision => counts[2] += 1,
            }
        }
        let tol = 4.0 * (0.25f64 / n as f64).sqrt(); // ~4 sigma
        assert_close(counts[0] as f64 / n as f64, pr.silence, tol);
        assert_close(counts[1] as f64 / n as f64, pr.delivery, tol);
        assert_close(counts[2] as f64 / n as f64, pr.collision, tol);
    }

    #[test]
    fn heterogeneous_slot_identifies_the_unique_transmitter() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        // Station 2 transmits with probability 1, everyone else 0.
        let ps = [0.0, 0.0, 1.0, 0.0];
        let (outcome, who) = sample_heterogeneous_slot(&ps, &mut rng);
        assert_eq!(outcome, SlotOutcome::Delivery);
        assert_eq!(who, Some(2));
    }

    #[test]
    fn heterogeneous_slot_collision_and_silence() {
        let mut rng = Xoshiro256pp::seed_from_u64(6);
        let all = [1.0, 1.0, 1.0];
        assert_eq!(
            sample_heterogeneous_slot(&all, &mut rng).0,
            SlotOutcome::Collision
        );
        let none = [0.0, 0.0];
        assert_eq!(
            sample_heterogeneous_slot(&none, &mut rng).0,
            SlotOutcome::Silence
        );
        let empty: [f64; 0] = [];
        assert_eq!(
            sample_heterogeneous_slot(&empty, &mut rng).0,
            SlotOutcome::Silence
        );
    }

    #[test]
    fn heterogeneous_matches_homogeneous_statistically() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let m = 8usize;
        let p = 0.125;
        let ps = vec![p; m];
        let n = 100_000;
        let mut delivered = 0usize;
        for _ in 0..n {
            if sample_heterogeneous_slot(&ps, &mut rng).0.is_delivery() {
                delivered += 1;
            }
        }
        let expected = slot_outcome_probabilities(m as u64, p).delivery;
        let tol = 4.0 * (expected * (1.0 - expected) / n as f64).sqrt();
        assert_close(delivered as f64 / n as f64, expected, tol);
    }
}
