//! Error types for protocol construction.

use std::borrow::Cow;
use std::error::Error;
use std::fmt;

/// Error returned when a protocol is constructed with parameters outside the
/// range required by its analysis.
///
/// Every protocol constructor has a panicking `new` (convenient for the
/// common case of literal, known-good parameters) and a `try_new` returning
/// `Result<Self, ParameterError>` for parameters coming from configuration or
/// sweeps.
#[derive(Debug, Clone, PartialEq)]
pub struct ParameterError {
    parameter: &'static str,
    value: f64,
    requirement: Cow<'static, str>,
}

impl ParameterError {
    /// Creates a new parameter error. The requirement is usually a static
    /// string, but computed messages (e.g. adversary-configuration
    /// diagnostics) can pass an owned `String`.
    pub fn new(
        parameter: &'static str,
        value: f64,
        requirement: impl Into<Cow<'static, str>>,
    ) -> Self {
        Self {
            parameter,
            value,
            requirement: requirement.into(),
        }
    }

    /// Name of the offending parameter.
    pub fn parameter(&self) -> &'static str {
        self.parameter
    }

    /// The rejected value.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Human-readable statement of the valid range.
    pub fn requirement(&self) -> &str {
        &self.requirement
    }
}

impl fmt::Display for ParameterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid value {} for parameter `{}`: {}",
            self.value, self.parameter, self.requirement
        )
    }
}

impl Error for ParameterError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_parameter_value_and_requirement() {
        let e = ParameterError::new("delta", 5.0, "must satisfy e < delta <= 2.99");
        let s = e.to_string();
        assert!(s.contains("delta"));
        assert!(s.contains('5'));
        assert!(s.contains("2.99"));
        assert_eq!(e.parameter(), "delta");
        assert_eq!(e.value(), 5.0);
        assert_eq!(e.requirement(), "must satisfy e < delta <= 2.99");
    }

    #[test]
    fn is_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<ParameterError>();
    }
}
