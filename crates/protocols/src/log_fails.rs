//! Log-fails Adaptive — the predecessor protocol of [7], reconstructed.
//!
//! Log-fails Adaptive (Fernández Anta & Mosteiro, *Discrete Mathematics,
//! Algorithms and Applications* 2(4), 2010 — reference [7] of the paper) is
//! the baseline the paper improves upon: it solves static k-selection in
//! `(e+1+ξ)k + O(log²(1/ε))` slots with probability at least `1 − 2ε`, but it
//! **requires knowledge of `ε ≤ 1/(n+1)`** — i.e. of an upper bound on the
//! number of stations — to set its thresholds and its fixed BT probability.
//!
//! ## Reconstruction notice
//!
//! The full pseudocode of [7] is not contained in the reproduced paper, so
//! this module implements a *documented reconstruction* based on every
//! property the paper states about the protocol (§1, §3 and §5):
//!
//! * it is composed of two interleaved algorithms, AT and BT, like One-fail
//!   Adaptive; the parameter `ξt` controls the interleaving (the paper
//!   simulates `ξt = 1/2` and `ξt = 1/10`); here a BT-step occurs every
//!   `round(1/ξt)` steps;
//! * the BT transmission probability is **fixed** (unlike One-fail Adaptive,
//!   where it adapts to `σ`); it is fixed to `1/(1 + log₂(1/ε))`, the value
//!   the `ε`-tuned analysis of [7] targets for the `O(log(1/ε))` messages the
//!   BT algorithm is responsible for;
//! * the AT transmission probability is `1/κ̃` with a density estimator `κ̃`
//!   that is updated **only "after some steps without communication"**
//!   (hence *Log-fails*): after `⌈ξβ·log₂(1/ε)⌉` consecutive AT-steps without
//!   a delivery, the estimator is increased by that same amount (a lazy,
//!   batched version of One-fail Adaptive's +1 per step); on every delivery
//!   heard it is decreased by `e + ξδ + ξβ`, never dropping below its initial
//!   value;
//! * its linear-regime constant is `(e + 1 + ξδ + ξβ)/(1 − ξt)`, which for the
//!   paper's parameters (`ξδ = ξβ = 0.1`) evaluates to ≈ 7.8 for `ξt = 1/2`
//!   and ≈ 4.4 for `ξt = 1/10` — the two "Analysis" entries of Table 1.
//!
//! The reconstruction reproduces the protocol's large-k behaviour (it
//! converges to its analysis constant, and the `ξt = 1/10` configuration is
//! the fastest protocol for very large `k`, as in the paper). It does **not**
//! reproduce the very large overhead the original exhibits for moderate `k`
//! (ratios in the hundreds for `k ∈ [10², 10⁴]`), which depends on internals
//! of [7] that cannot be recovered from the reproduced paper; EXPERIMENTS.md
//! tracks this as a known deviation.

use crate::error::ParameterError;
use crate::traits::FairProtocol;
use serde::{Deserialize, Serialize};

/// Configuration of the Log-fails Adaptive reconstruction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogFailsConfig {
    /// Estimator slack `ξδ` (paper simulation value 0.1).
    pub xi_delta: f64,
    /// Failure-window factor `ξβ` (paper simulation value 0.1).
    pub xi_beta: f64,
    /// Fraction of steps that are BT-steps `ξt` (paper uses 1/2 and 1/10).
    pub xi_t: f64,
    /// Error parameter `ε`; the protocol requires `ε ≤ 1/(n+1)`. The paper's
    /// simulations use `ε ≈ 1/(k+1)`.
    pub epsilon: f64,
}

impl LogFailsConfig {
    /// The paper's simulation configuration for a given `ξt` and instance
    /// size `k` (i.e. `ξδ = ξβ = 0.1`, `ε = 1/(k+1)`).
    pub fn paper(xi_t: f64, k: u64) -> Self {
        Self::for_instance(0.1, 0.1, xi_t, k)
    }

    /// Builds a configuration with the instance-size rule `ε = 1/(k+1)`
    /// (the paper's simulation choice) — the single place that rule lives.
    ///
    /// An empty instance (`k = 0`) never consults the protocol, but the
    /// configuration must still validate; `k` is clamped to 1 so that `ε`
    /// stays strictly below 1.
    pub fn for_instance(xi_delta: f64, xi_beta: f64, xi_t: f64, k: u64) -> Self {
        Self {
            xi_delta,
            xi_beta,
            xi_t,
            epsilon: 1.0 / (k.max(1) as f64 + 1.0),
        }
    }

    fn validate(&self) -> Result<(), ParameterError> {
        if !self.xi_delta.is_finite() || self.xi_delta <= 0.0 || self.xi_delta > 1.0 {
            return Err(ParameterError::new(
                "xi_delta",
                self.xi_delta,
                "Log-fails Adaptive requires 0 < xi_delta <= 1",
            ));
        }
        if !self.xi_beta.is_finite() || self.xi_beta <= 0.0 || self.xi_beta > 1.0 {
            return Err(ParameterError::new(
                "xi_beta",
                self.xi_beta,
                "Log-fails Adaptive requires 0 < xi_beta <= 1",
            ));
        }
        if !self.xi_t.is_finite() || self.xi_t <= 0.0 || self.xi_t > 0.5 {
            return Err(ParameterError::new(
                "xi_t",
                self.xi_t,
                "Log-fails Adaptive requires 0 < xi_t <= 1/2 (a BT-step every 1/xi_t steps)",
            ));
        }
        if !self.epsilon.is_finite() || self.epsilon <= 0.0 || self.epsilon >= 1.0 {
            return Err(ParameterError::new(
                "epsilon",
                self.epsilon,
                "Log-fails Adaptive requires 0 < epsilon < 1 (and epsilon <= 1/(n+1) for the guarantee)",
            ));
        }
        Ok(())
    }
}

/// Shared state of the Log-fails Adaptive reconstruction.
///
/// # Example
/// ```
/// use mac_protocols::{FairProtocol, LogFailsAdaptive, LogFailsConfig};
/// let cfg = LogFailsConfig::paper(0.5, 1000);
/// let lfa = LogFailsAdaptive::try_new(cfg).unwrap();
/// let p = lfa.transmission_probability();
/// assert!(p > 0.0 && p <= 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogFailsAdaptive {
    // lint:allow(checkpoint-coverage): construction parameter — restore
    // rebuilds it from the ProtocolKind that recreates the instance.
    config: LogFailsConfig,
    /// Density estimator κ̃.
    kappa_estimate: f64,
    /// Length of the failure window: ⌈ξβ·log₂(1/ε)⌉, at least 1.
    // lint:allow(checkpoint-coverage): derived from `config` in try_new;
    // reconstructed, never mutated after construction.
    fail_window: u64,
    /// Consecutive AT-steps without a delivery since the last estimator
    /// update.
    consecutive_failures: u64,
    /// Fixed BT-step transmission probability: 1/(1 + log₂(1/ε)).
    // lint:allow(checkpoint-coverage): derived from `config` in try_new;
    // reconstructed, never mutated after construction.
    bt_probability: f64,
    /// A BT-step occurs every `bt_period` steps.
    // lint:allow(checkpoint-coverage): derived from `config` in try_new;
    // reconstructed, never mutated after construction.
    bt_period: u64,
    /// Next communication step, numbered from 1.
    step: u64,
}

impl LogFailsAdaptive {
    /// Creates the protocol state from a configuration.
    ///
    /// # Panics
    /// Panics if the configuration is invalid; use
    /// [`LogFailsAdaptive::try_new`] for fallible construction.
    pub fn new(config: LogFailsConfig) -> Self {
        Self::try_new(config).expect("invalid Log-fails Adaptive configuration")
    }

    /// Creates the protocol state from a configuration.
    ///
    /// # Errors
    /// Returns an error if any of `ξδ`, `ξβ`, `ξt`, `ε` is outside its
    /// admissible range (see [`LogFailsConfig`]).
    pub fn try_new(config: LogFailsConfig) -> Result<Self, ParameterError> {
        config.validate()?;
        let log_inv_eps = (1.0 / config.epsilon).log2().max(0.0);
        let fail_window = (config.xi_beta * log_inv_eps).ceil().max(1.0) as u64;
        let bt_probability = 1.0 / (1.0 + log_inv_eps);
        let bt_period = (1.0 / config.xi_t).round().max(2.0) as u64;
        Ok(Self {
            config,
            kappa_estimate: Self::floor_for(&config),
            fail_window,
            consecutive_failures: 0,
            bt_probability,
            bt_period,
            step: 1,
        })
    }

    fn floor_for(config: &LogFailsConfig) -> f64 {
        1.0 + std::f64::consts::E + config.xi_delta + config.xi_beta
    }

    /// The configuration this state was built from.
    pub fn config(&self) -> LogFailsConfig {
        self.config
    }

    /// Current value of the density estimator `κ̃`.
    pub fn kappa_estimate(&self) -> f64 {
        self.kappa_estimate
    }

    /// The fixed BT-step transmission probability `1/(1 + log₂(1/ε))`.
    pub fn bt_probability(&self) -> f64 {
        self.bt_probability
    }

    /// Length of the failure window (`⌈ξβ·log₂(1/ε)⌉`).
    pub fn fail_window(&self) -> u64 {
        self.fail_window
    }

    /// True if the *next* step is a BT-step.
    pub fn next_step_is_bt(&self) -> bool {
        self.step.is_multiple_of(self.bt_period)
    }

    /// Amount by which the estimator decreases on each delivery heard.
    fn decrement(&self) -> f64 {
        std::f64::consts::E + self.config.xi_delta + self.config.xi_beta
    }
}

impl FairProtocol for LogFailsAdaptive {
    fn name(&self) -> &'static str {
        "log-fails-adaptive"
    }

    fn transmission_probability(&self) -> f64 {
        if self.next_step_is_bt() {
            self.bt_probability
        } else {
            1.0 / self.kappa_estimate
        }
    }

    fn advance(&mut self, delivered: bool) {
        let is_bt = self.next_step_is_bt();
        if delivered {
            // Any communication heard resets the run of failures and pulls the
            // estimator down (never below its floor).
            self.consecutive_failures = 0;
            let floor = Self::floor_for(&self.config);
            self.kappa_estimate = (self.kappa_estimate - self.decrement()).max(floor);
        } else if !is_bt {
            self.consecutive_failures += 1;
            if self.consecutive_failures >= self.fail_window {
                // Lazy batched increase: "updated after some steps without
                // communication".
                self.kappa_estimate += self.fail_window as f64;
                self.consecutive_failures = 0;
            }
        }
        self.step += 1;
    }

    fn steps_elapsed(&self) -> u64 {
        self.step - 1
    }

    fn schedule_phase(&self) -> u64 {
        // Position in the BT cycle *and* the consecutive-failure count: two
        // states at the same cycle position but with different failure
        // counts apply the lazy estimator bump at different future steps,
        // so they must not be treated as interchangeable. The failure count
        // is bounded by the fail window, keeping the phase space small.
        self.step % self.bt_period + self.bt_period * self.consecutive_failures
    }

    fn probability_tracks(&self) -> (f64, f64) {
        // The AT track 1/κ̃ and the (fixed) BT track. The phase already
        // carries the consecutive-failure count, so phase + these tracks pin
        // the full state — reporting only the *current* probability would
        // conflate states whose other track differs.
        (1.0 / self.kappa_estimate, self.bt_probability)
    }

    fn checkpoint_words(&self) -> Option<Vec<u64>> {
        // `fail_window`, `bt_probability` and `bt_period` are pure functions
        // of the configuration, re-derived at construction; only the three
        // mutable fields travel.
        Some(vec![
            self.kappa_estimate.to_bits(),
            self.consecutive_failures,
            self.step,
        ])
    }

    fn restore_words(&mut self, words: &[u64]) -> bool {
        let [kappa, failures, step] = words else {
            return false;
        };
        self.kappa_estimate = f64::from_bits(*kappa);
        self.consecutive_failures = *failures;
        self.step = *step;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_state(xi_t: f64, k: u64) -> LogFailsAdaptive {
        LogFailsAdaptive::try_new(LogFailsConfig::paper(xi_t, k)).unwrap()
    }

    #[test]
    fn paper_configuration_is_valid() {
        for &xi_t in &[0.5, 0.1] {
            for &k in &[10u64, 1000, 1_000_000] {
                let lfa = paper_state(xi_t, k);
                assert_eq!(lfa.config().xi_delta, 0.1);
                assert!((lfa.config().epsilon - 1.0 / (k as f64 + 1.0)).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn rejects_invalid_parameters() {
        let mut bad = LogFailsConfig::paper(0.5, 100);
        bad.xi_delta = 0.0;
        assert!(LogFailsAdaptive::try_new(bad).is_err());
        let mut bad = LogFailsConfig::paper(0.5, 100);
        bad.xi_beta = -1.0;
        assert!(LogFailsAdaptive::try_new(bad).is_err());
        let mut bad = LogFailsConfig::paper(0.5, 100);
        bad.xi_t = 0.75;
        assert!(LogFailsAdaptive::try_new(bad).is_err());
        let mut bad = LogFailsConfig::paper(0.5, 100);
        bad.epsilon = 1.5;
        assert!(LogFailsAdaptive::try_new(bad).is_err());
    }

    #[test]
    #[should_panic(expected = "invalid Log-fails Adaptive configuration")]
    fn new_panics_on_invalid_config() {
        let mut bad = LogFailsConfig::paper(0.5, 100);
        bad.xi_t = 0.0;
        let _ = LogFailsAdaptive::new(bad);
    }

    #[test]
    fn bt_probability_is_fixed_and_depends_on_epsilon() {
        let lfa = paper_state(0.5, 1023); // 1/eps = 1024, log2 = 10
        assert!((lfa.bt_probability() - 1.0 / 11.0).abs() < 1e-12);
        // The BT probability never changes, no matter what is observed.
        let mut lfa2 = lfa.clone();
        for i in 0..100 {
            lfa2.advance(i % 3 == 0);
        }
        assert_eq!(lfa.bt_probability(), lfa2.bt_probability());
    }

    #[test]
    fn bt_steps_occur_with_period_one_over_xi_t() {
        let mut half = paper_state(0.5, 100);
        let pattern: Vec<bool> = (0..10)
            .map(|_| {
                let b = half.next_step_is_bt();
                half.advance(false);
                b
            })
            .collect();
        assert_eq!(
            pattern,
            vec![false, true, false, true, false, true, false, true, false, true]
        );

        let mut tenth = paper_state(0.1, 100);
        let bt_count = (0..100)
            .filter(|_| {
                let b = tenth.next_step_is_bt();
                tenth.advance(false);
                b
            })
            .count();
        assert_eq!(bt_count, 10, "one BT-step in ten for xi_t = 1/10");
    }

    #[test]
    fn estimator_updates_lazily_after_fail_window() {
        let lfa = paper_state(0.5, 1023); // fail_window = ceil(0.1 * 10) = 1
        assert_eq!(lfa.fail_window(), 1);
        let lfa_large = paper_state(0.5, (1u64 << 40) - 1); // log2(1/eps) = 40
        assert_eq!(lfa_large.fail_window(), 4);

        // With fail_window = 4, the estimator must not move during the first
        // three silent AT-steps and jump by 4 at the fourth.
        let mut lfa = lfa_large;
        let initial = lfa.kappa_estimate();
        let mut at_fails = 0;
        while at_fails < 3 {
            if !lfa.next_step_is_bt() {
                at_fails += 1;
            }
            lfa.advance(false);
            assert_eq!(lfa.kappa_estimate(), initial);
        }
        // Fourth silent AT-step triggers the batched increase.
        while lfa.next_step_is_bt() {
            lfa.advance(false);
        }
        lfa.advance(false);
        assert!((lfa.kappa_estimate() - (initial + 4.0)).abs() < 1e-12);
    }

    #[test]
    fn delivery_decreases_estimator_down_to_floor() {
        let mut lfa = paper_state(0.5, 1023);
        // Inflate the estimator.
        for _ in 0..200 {
            lfa.advance(false);
        }
        let inflated = lfa.kappa_estimate();
        assert!(inflated > lfa.config().xi_delta + 4.0);
        lfa.advance(true);
        assert!(lfa.kappa_estimate() < inflated);
        // Hammer with deliveries: the estimator must stop at its floor.
        for _ in 0..500 {
            lfa.advance(true);
        }
        let floor = 1.0 + std::f64::consts::E + 0.1 + 0.1;
        assert!((lfa.kappa_estimate() - floor).abs() < 1e-9);
    }

    #[test]
    fn delivery_resets_the_failure_run() {
        let mut lfa = paper_state(0.5, (1u64 << 40) - 1); // fail_window = 4
        let initial = lfa.kappa_estimate();
        // Two silent AT-steps, then a delivery, then two silent AT-steps:
        // never four consecutive failures, so no lazy increase; the only
        // change is the single decrement (clipped at the floor).
        let mut silent_at = 0;
        while silent_at < 2 {
            if !lfa.next_step_is_bt() {
                silent_at += 1;
            }
            lfa.advance(false);
        }
        lfa.advance(true);
        let mut silent_at = 0;
        while silent_at < 2 {
            if !lfa.next_step_is_bt() {
                silent_at += 1;
            }
            lfa.advance(false);
        }
        assert!(lfa.kappa_estimate() <= initial);
    }

    #[test]
    fn probability_is_always_valid() {
        let mut lfa = paper_state(0.1, 10_000);
        for i in 0..50_000 {
            let p = lfa.transmission_probability();
            assert!((0.0..=1.0).contains(&p), "step {i}: p = {p}");
            lfa.advance(i % 11 == 0);
        }
        assert_eq!(lfa.steps_elapsed(), 50_000);
    }
}
