//! Monotone window back-off baselines: Loglog-iterated Back-off and
//! r-exponential back-off (Bender et al., SPAA 2005 — reference [2]).
//!
//! These are the *monotone* contention-window strategies the paper compares
//! against (§1, §5): the window never shrinks, which makes them simple and
//! robust but provably super-linear for batched arrivals:
//!
//! * **r-exponential back-off** — windows `r, r², r³, …`; makespan
//!   `Θ(k·log_{log r} log k)` for a batch of `k` messages;
//! * **Loglog-iterated Back-off** — the best monotone strategy of [2]:
//!   makespan `Θ(k·log log k / log log log k)` w.h.p. The reconstruction used
//!   here keeps each window size `w = r^i` for `Θ(log log w)` consecutive
//!   windows before growing it by the factor `r` — i.e. the growth of the
//!   window is slowed down ("iterated") by a log-log factor, which is what
//!   removes one log-log-log factor from the makespan compared with plain
//!   exponential back-off.
//!
//! ## Reconstruction notice
//!
//! The exact pseudocode of loglog-iterated back-off is in [2], which is not
//! part of the reproduced paper; the schedule here is reconstructed from the
//! protocol's name, its makespan class and the paper's simulation parameter
//! `r = 2`. The repeat count uses `2·⌈log₂ log₂ w⌉`; the factor 2 is the
//! constant inside the `Θ(·)`, calibrated so that the measured ratio at
//! moderate-to-large `k` sits above Exp Back-on/Back-off's, as the paper
//! reports for this baseline (with a unit constant the schedule is ≈ 30%
//! faster than the original, which would invert the paper's EBB-vs-LLIB
//! ordering). EXPERIMENTS.md records the calibrated values and the residual
//! gap to the paper's absolute numbers.

use crate::error::ParameterError;
use crate::traits::WindowSchedule;
use serde::{Deserialize, Serialize};

/// Largest window length the schedules will emit, to keep slot arithmetic
/// comfortably inside `u64` even in adversarial parameter sweeps.
const WINDOW_CAP: f64 = 1.0e15;

/// Window schedule of plain r-exponential back-off: windows `r, r², r³, …`.
///
/// # Example
/// ```
/// use mac_protocols::{RExponentialBackoff, WindowSchedule};
/// let mut ebo = RExponentialBackoff::try_new(2.0).unwrap();
/// assert_eq!(ebo.next_window(), 2);
/// assert_eq!(ebo.next_window(), 4);
/// assert_eq!(ebo.next_window(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RExponentialBackoff {
    // lint:allow(checkpoint-coverage): construction parameter — restore
    // rebuilds it from the ProtocolKind that recreates the instance.
    r: f64,
    current: f64,
}

impl RExponentialBackoff {
    /// Creates the schedule with growth factor `r`.
    ///
    /// # Panics
    /// Panics if `r ≤ 1` or `r` is not finite; use
    /// [`RExponentialBackoff::try_new`] for fallible construction.
    pub fn new(r: f64) -> Self {
        Self::try_new(r).expect("invalid exponential back-off parameter")
    }

    /// Creates the schedule with growth factor `r`.
    ///
    /// # Errors
    /// Returns an error unless `r > 1` and finite.
    pub fn try_new(r: f64) -> Result<Self, ParameterError> {
        if !r.is_finite() || r <= 1.0 {
            return Err(ParameterError::new(
                "r",
                r,
                "exponential back-off requires a finite growth factor r > 1",
            ));
        }
        Ok(Self { r, current: r })
    }

    /// The configured growth factor.
    pub fn r(&self) -> f64 {
        self.r
    }
}

impl WindowSchedule for RExponentialBackoff {
    fn name(&self) -> &'static str {
        "r-exponential-backoff"
    }

    fn next_window(&mut self) -> u64 {
        let window = self.current.floor().clamp(1.0, WINDOW_CAP);
        self.current = (self.current * self.r).min(WINDOW_CAP);
        window as u64
    }

    fn checkpoint_words(&self) -> Option<Vec<u64>> {
        Some(vec![self.current.to_bits()])
    }

    fn restore_words(&mut self, words: &[u64]) -> bool {
        let [current] = words else {
            return false;
        };
        self.current = f64::from_bits(*current);
        true
    }
}

/// Window schedule of Loglog-iterated Back-off (reconstruction, default
/// growth factor `r = 2` as in the paper's simulations).
///
/// Each window size `w = r^i` is used `2·⌈log₂ log₂ max(w, 4)⌉`
/// consecutive times before the size is multiplied by `r`.
///
/// # Example
/// ```
/// use mac_protocols::{LoglogIteratedBackoff, WindowSchedule};
/// let mut llib = LoglogIteratedBackoff::with_default_r();
/// // Windows 2 and 4 are each repeated twice, window 8 three times, ...
/// assert_eq!(llib.next_window(), 2);
/// assert_eq!(llib.next_window(), 2);
/// assert_eq!(llib.next_window(), 4);
/// assert_eq!(llib.next_window(), 4);
/// assert_eq!(llib.next_window(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoglogIteratedBackoff {
    // lint:allow(checkpoint-coverage): construction parameter — restore
    // rebuilds it from the ProtocolKind that recreates the instance.
    r: f64,
    current: f64,
    repeats_left: u32,
}

impl LoglogIteratedBackoff {
    /// The growth factor used in the paper's simulations.
    pub const PAPER_R: f64 = 2.0;

    /// Creates the schedule with growth factor `r`.
    ///
    /// # Panics
    /// Panics if `r ≤ 1` or `r` is not finite; use
    /// [`LoglogIteratedBackoff::try_new`] for fallible construction.
    pub fn new(r: f64) -> Self {
        Self::try_new(r).expect("invalid loglog-iterated back-off parameter")
    }

    /// Creates the schedule with growth factor `r`.
    ///
    /// # Errors
    /// Returns an error unless `r > 1` and finite.
    pub fn try_new(r: f64) -> Result<Self, ParameterError> {
        if !r.is_finite() || r <= 1.0 {
            return Err(ParameterError::new(
                "r",
                r,
                "loglog-iterated back-off requires a finite growth factor r > 1",
            ));
        }
        let current = r;
        Ok(Self {
            r,
            current,
            repeats_left: Self::repeats_for(current),
        })
    }

    /// Creates the schedule with the paper's `r = 2`.
    pub fn with_default_r() -> Self {
        Self::new(Self::PAPER_R)
    }

    /// The configured growth factor.
    pub fn r(&self) -> f64 {
        self.r
    }

    /// Number of consecutive windows of size `w`:
    /// `2·⌈log₂ log₂ max(w,4)⌉` (see the module documentation for the
    /// calibration of the constant factor).
    pub fn repeats_for(w: f64) -> u32 {
        let w = w.max(4.0);
        2 * (w.log2().log2().ceil() as u32).max(1)
    }
}

impl WindowSchedule for LoglogIteratedBackoff {
    fn name(&self) -> &'static str {
        "loglog-iterated-backoff"
    }

    fn next_window(&mut self) -> u64 {
        if self.repeats_left == 0 {
            self.current = (self.current * self.r).min(WINDOW_CAP);
            self.repeats_left = Self::repeats_for(self.current);
        }
        self.repeats_left -= 1;
        self.current.floor().clamp(1.0, WINDOW_CAP) as u64
    }

    fn checkpoint_words(&self) -> Option<Vec<u64>> {
        Some(vec![self.current.to_bits(), u64::from(self.repeats_left)])
    }

    fn restore_words(&mut self, words: &[u64]) -> bool {
        let [current, repeats] = words else {
            return false;
        };
        let Ok(repeats_left) = u32::try_from(*repeats) else {
            return false;
        };
        self.current = f64::from_bits(*current);
        self.repeats_left = repeats_left;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_rejects_bad_r() {
        assert!(RExponentialBackoff::try_new(1.0).is_err());
        assert!(RExponentialBackoff::try_new(0.5).is_err());
        assert!(RExponentialBackoff::try_new(f64::NAN).is_err());
        assert!(RExponentialBackoff::try_new(2.0).is_ok());
        assert!(RExponentialBackoff::try_new(1.5).is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid exponential back-off parameter")]
    fn exponential_new_panics() {
        let _ = RExponentialBackoff::new(1.0);
    }

    #[test]
    fn exponential_windows_grow_by_r() {
        let mut e = RExponentialBackoff::new(2.0);
        let seq: Vec<u64> = (0..10).map(|_| e.next_window()).collect();
        assert_eq!(seq, vec![2, 4, 8, 16, 32, 64, 128, 256, 512, 1024]);
        assert_eq!(e.r(), 2.0);

        let mut e = RExponentialBackoff::new(1.5);
        let seq: Vec<u64> = (0..5).map(|_| e.next_window()).collect();
        // 1.5, 2.25, 3.375, 5.06, 7.59 floored.
        assert_eq!(seq, vec![1, 2, 3, 5, 7]);
    }

    #[test]
    fn exponential_windows_saturate_at_cap() {
        let mut e = RExponentialBackoff::new(1e6);
        let mut last = 0;
        for _ in 0..20 {
            last = e.next_window();
        }
        assert_eq!(last, WINDOW_CAP as u64);
    }

    #[test]
    fn llib_rejects_bad_r() {
        assert!(LoglogIteratedBackoff::try_new(1.0).is_err());
        assert!(LoglogIteratedBackoff::try_new(-3.0).is_err());
        assert!(LoglogIteratedBackoff::try_new(2.0).is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid loglog-iterated back-off parameter")]
    fn llib_new_panics() {
        let _ = LoglogIteratedBackoff::new(0.9);
    }

    #[test]
    fn llib_repeat_counts_grow_doubly_logarithmically() {
        assert_eq!(LoglogIteratedBackoff::repeats_for(2.0), 2);
        assert_eq!(LoglogIteratedBackoff::repeats_for(4.0), 2);
        assert_eq!(LoglogIteratedBackoff::repeats_for(8.0), 4);
        assert_eq!(LoglogIteratedBackoff::repeats_for(16.0), 4);
        assert_eq!(LoglogIteratedBackoff::repeats_for(256.0), 6);
        assert_eq!(LoglogIteratedBackoff::repeats_for(65536.0), 8);
        assert_eq!(LoglogIteratedBackoff::repeats_for(4.2e9), 10);
    }

    #[test]
    fn llib_schedule_prefix_matches_repeat_rule() {
        let mut llib = LoglogIteratedBackoff::with_default_r();
        let seq: Vec<u64> = (0..14).map(|_| llib.next_window()).collect();
        // 2 (×2), 4 (×2), 8 (×4), 16 (×4 → only first 2 shown)
        assert_eq!(seq, vec![2, 2, 4, 4, 8, 8, 8, 8, 16, 16, 16, 16, 32, 32]);
        assert_eq!(llib.r(), 2.0);
    }

    #[test]
    fn llib_is_monotone_non_decreasing() {
        let mut llib = LoglogIteratedBackoff::new(3.0);
        let mut prev = 0;
        for _ in 0..200 {
            let w = llib.next_window();
            assert!(w >= prev, "monotone strategies never shrink the window");
            prev = w;
        }
    }

    #[test]
    fn exponential_is_strictly_increasing_until_cap() {
        let mut e = RExponentialBackoff::new(2.0);
        let mut prev = 0;
        for _ in 0..40 {
            let w = e.next_window();
            assert!(w > prev);
            prev = w;
        }
    }

    #[test]
    fn llib_grows_slower_than_exponential() {
        // After the same number of windows, the loglog-iterated schedule must
        // be at a smaller window size than plain exponential back-off (that
        // is the whole point of iterating).
        let mut llib = LoglogIteratedBackoff::with_default_r();
        let mut exp = RExponentialBackoff::new(2.0);
        let mut llib_last = 0;
        let mut exp_last = 0;
        for _ in 0..30 {
            llib_last = llib.next_window();
            exp_last = exp.next_window();
        }
        assert!(llib_last < exp_last);
    }
}
