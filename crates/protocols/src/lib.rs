//! # mac-protocols — contention-resolution protocols for static k-selection
//!
//! This crate is the core contribution of the reproduction of
//! *Unbounded Contention Resolution in Multiple-Access Channels*
//! (Fernández Anta, Mosteiro, Muñoz — PODC 2011). It implements, as reusable
//! per-station state machines, the two protocols the paper introduces and
//! every baseline it evaluates against, together with the closed-form
//! quantities of the paper's analysis:
//!
//! | Protocol | Module | Knowledge required | Makespan (w.h.p.) |
//! |----------|--------|--------------------|-------------------|
//! | **One-fail Adaptive** (Algorithm 1) | [`one_fail`] | none | `2(δ+1)k + O(log² k)` |
//! | **Exp Back-on/Back-off** (Algorithm 2) | [`exp_backon_backoff`] | none | `4(1+1/δ)k` |
//! | Log-fails Adaptive (reconstruction of [7]) | [`log_fails`] | `ε ≤ 1/(n+1)` | `(e+1+ξ)k + O(log²(1/ε))` |
//! | Loglog-iterated Back-off (reconstruction of [2]) | [`loglog_backoff`] | none | `Θ(k·loglog k / logloglog k)` |
//! | r-exponential back-off | [`loglog_backoff`] | none | `Θ(k·log_{log r} log k)` |
//! | Known-k oracle (fair-protocol optimum) | [`oracle`] | exact k | `≈ e·k` in expectation |
//!
//! Two *protocol families* cover all of the above, and each family has its
//! own trait so that the simulators in `mac-sim` can exploit its structure:
//!
//! * [`FairProtocol`] — in every slot, every active station transmits with
//!   the **same** probability, computed from public information (the slot
//!   number and the history of deliveries). One-fail Adaptive, Log-fails
//!   Adaptive and the oracle are fair. Under batched arrivals the state of
//!   all active stations is identical, which is what permits the O(1)-per-slot
//!   fair simulator.
//! * [`WindowSchedule`] — the station picks one uniformly random slot inside
//!   each window of a deterministic window-length sequence. Exp
//!   Back-on/Back-off, Loglog-iterated Back-off and r-exponential back-off
//!   are window protocols.
//!
//! Every protocol is *also* usable as a plain per-station [`Protocol`]
//! (via [`FairNode`] and [`WindowNode`]), which is what the exact,
//! per-station simulator uses; this redundancy is deliberate — the fast
//! simulators are validated against the exact one.
//!
//! The [`analysis`] module exposes the constants and bounds of the paper's
//! theorems (Theorem 1, Theorem 2, Lemma 1) and the "Analysis" column of
//! Table 1.
//!
//! # Quick example
//!
//! ```
//! use mac_protocols::{FairProtocol, OneFailAdaptive};
//!
//! // The shared state of One-fail Adaptive for the paper's δ = 2.72.
//! let mut state = OneFailAdaptive::with_default_delta();
//! // Step 1 is an AT-step: the transmission probability is 1/κ̃ = 1/(δ+1).
//! let p = state.transmission_probability();
//! assert!((p - 1.0 / 3.72).abs() < 1e-12);
//! // Nothing was delivered in the step:
//! state.advance(false);
//! // Step 2 is a BT-step: probability 1/(1 + log2(σ+1)) = 1 since σ = 0.
//! assert_eq!(state.transmission_probability(), 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod cd_adaptive;
pub mod error;
pub mod exp_backon_backoff;
pub mod log_fails;
pub mod loglog_backoff;
pub mod one_fail;
pub mod oracle;
pub mod randomized_parity;
pub mod traits;

pub use cd_adaptive::CdAdaptive;
pub use error::ParameterError;
pub use exp_backon_backoff::ExpBackonBackoff;
pub use log_fails::{LogFailsAdaptive, LogFailsConfig};
pub use loglog_backoff::{LoglogIteratedBackoff, RExponentialBackoff};
pub use one_fail::OneFailAdaptive;
pub use oracle::KnownKOracle;
pub use randomized_parity::RandomizedParityOneFail;
pub use traits::{
    FairNode, FairProtocol, Protocol, ProtocolFamily, ProtocolKind, WindowNode, WindowSchedule,
};
