//! Exp Back-on/Back-off (Algorithm 2 of the paper).
//!
//! Exp Back-on/Back-off is the paper's second protocol: a contention-window
//! ("sawtooth") strategy that, like One-fail Adaptive, requires no knowledge
//! of the number of contenders and no collision detection. It solves static
//! k-selection within `4(1 + 1/δ)k` slots with probability at least
//! `1 − 1/k^c` for big enough `k` (Theorem 2).
//!
//! The window-length sequence is produced by two nested loops
//! (Algorithm 2):
//!
//! ```text
//! for i = 1, 2, …            # phases  (back-on: the window doubles)
//!     w ← 2^i
//!     while w ≥ 1:           # rounds  (back-off: the window shrinks)
//!         use a window of w slots (transmit in one uniform slot of it)
//!         w ← w · (1 − δ)
//! ```
//!
//! The intuition (§4): once the phase reaches `k ≤ 2^i < 2k`, each round is a
//! balls-in-bins experiment in which, w.h.p., at least a `δ` fraction of the
//! remaining messages are delivered (Lemma 1); shrinking the window
//! geometrically matches the shrinking number of survivors, and the doubling
//! outer loop replaces knowledge of `k`.
//!
//! `w` is maintained as a real number; the window actually used has
//! `⌊w⌋ ≥ 1` slots (the paper does not specify the rounding; any rounding
//! preserves the analysis since it changes each window by at most one slot).

use crate::error::ParameterError;
use crate::traits::WindowSchedule;
use serde::{Deserialize, Serialize};

/// The `δ` used in the paper's simulations (§5).
pub const PAPER_DELTA: f64 = 0.366;

/// Window schedule of the Exp Back-on/Back-off protocol.
///
/// # Example
/// ```
/// use mac_protocols::{ExpBackonBackoff, WindowSchedule};
/// let mut ebb = ExpBackonBackoff::with_default_delta();
/// // Phase 1: w = 2, then 2·0.634 = 1.268, then 0.803 < 1 ends the phase.
/// assert_eq!(ebb.next_window(), 2);
/// assert_eq!(ebb.next_window(), 1);
/// // Phase 2 starts with w = 4.
/// assert_eq!(ebb.next_window(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExpBackonBackoff {
    // lint:allow(checkpoint-coverage): construction parameter — restore
    // rebuilds it from the ProtocolKind that recreates the instance, so
    // the checkpoint carries only the mutable loop variables.
    delta: f64,
    /// Current phase `i ≥ 1` (the outer loop variable).
    phase: u32,
    /// Current real-valued window size `w` (the inner loop variable).
    w: f64,
}

impl ExpBackonBackoff {
    /// Creates the schedule with the given `δ`.
    ///
    /// # Panics
    /// Panics if `δ` is outside `(0, 1/e)`; use
    /// [`ExpBackonBackoff::try_new`] for fallible construction.
    pub fn new(delta: f64) -> Self {
        Self::try_new(delta).expect("invalid Exp Back-on/Back-off parameter")
    }

    /// Creates the schedule with the given `δ`.
    ///
    /// # Errors
    /// Returns an error unless `0 < δ < 1/e` (Theorem 2's admissible range).
    pub fn try_new(delta: f64) -> Result<Self, ParameterError> {
        if !delta.is_finite() || delta <= 0.0 || delta >= 1.0 / std::f64::consts::E {
            return Err(ParameterError::new(
                "delta",
                delta,
                "Exp Back-on/Back-off requires 0 < delta < 1/e ~= 0.3679",
            ));
        }
        Ok(Self {
            delta,
            phase: 1,
            w: 2.0,
        })
    }

    /// Creates the schedule with the paper's simulation value `δ = 0.366`.
    pub fn with_default_delta() -> Self {
        Self::new(PAPER_DELTA)
    }

    /// The configured `δ`.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// The current phase (outer-loop index, starting at 1).
    pub fn phase(&self) -> u32 {
        self.phase
    }

    /// Returns the first `n` window lengths of a fresh schedule with the same
    /// `δ` (a convenience for tests, documentation and the examples; the
    /// schedule itself is not advanced).
    pub fn window_preview(&self, n: usize) -> Vec<u64> {
        let mut copy = Self::try_new(self.delta).expect("delta already validated");
        (0..n).map(|_| copy.next_window()).collect()
    }
}

impl WindowSchedule for ExpBackonBackoff {
    fn name(&self) -> &'static str {
        "exp-backon-backoff"
    }

    fn next_window(&mut self) -> u64 {
        if self.w < 1.0 {
            // Inner loop exhausted: start the next phase with w = 2^(i+1).
            self.phase += 1;
            self.w = 2.0f64.powi(self.phase as i32);
        }
        let window = self.w.floor().max(1.0);
        self.w *= 1.0 - self.delta;
        // Windows are capped so that pathological δ→0 sweeps cannot overflow
        // the u64 slot arithmetic of the simulator.
        window.min(u64::MAX as f64 / 4.0) as u64
    }

    fn checkpoint_words(&self) -> Option<Vec<u64>> {
        // `w` is a running product of (1 − δ) factors — captured verbatim,
        // since recomputing it from the phase would round differently.
        Some(vec![u64::from(self.phase), self.w.to_bits()])
    }

    fn restore_words(&mut self, words: &[u64]) -> bool {
        let [phase, w] = words else {
            return false;
        };
        let Ok(phase) = u32::try_from(*phase) else {
            return false;
        };
        self.phase = phase;
        self.w = f64::from_bits(*w);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_delta_outside_range() {
        assert!(ExpBackonBackoff::try_new(0.0).is_err());
        assert!(ExpBackonBackoff::try_new(-0.1).is_err());
        assert!(ExpBackonBackoff::try_new(1.0 / std::f64::consts::E).is_err());
        assert!(ExpBackonBackoff::try_new(0.5).is_err());
        assert!(ExpBackonBackoff::try_new(f64::INFINITY).is_err());
        assert!(ExpBackonBackoff::try_new(0.366).is_ok());
        assert!(ExpBackonBackoff::try_new(0.01).is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid Exp Back-on/Back-off parameter")]
    fn new_panics_on_invalid_delta() {
        let _ = ExpBackonBackoff::new(0.9);
    }

    #[test]
    fn paper_delta_schedule_prefix() {
        // With δ = 0.366 the real-valued w sequence is
        // phase 1: 2, 1.268, (0.804 < 1)
        // phase 2: 4, 2.536, 1.608, 1.019, (0.646 < 1)
        // phase 3: 8, ...
        let mut ebb = ExpBackonBackoff::with_default_delta();
        let seq: Vec<u64> = (0..8).map(|_| ebb.next_window()).collect();
        assert_eq!(seq, vec![2, 1, 4, 2, 1, 1, 8, 5]);
        assert_eq!(ebb.phase(), 3);
    }

    #[test]
    fn phases_double_the_starting_window() {
        let mut ebb = ExpBackonBackoff::new(0.2);
        let mut phase_starts = Vec::new();
        let mut last_phase = 0;
        for _ in 0..200 {
            // The phase is advanced inside next_window, so read it afterwards
            // to attribute the window to the phase it belongs to.
            let w = ebb.next_window();
            let phase = ebb.phase();
            if phase != last_phase {
                phase_starts.push(w);
                last_phase = phase;
            }
        }
        // First windows of successive phases are 2, 4, 8, 16, ...
        for (i, &w) in phase_starts.iter().enumerate() {
            assert_eq!(w, 1u64 << (i + 1), "phase {} start", i + 1);
        }
    }

    #[test]
    fn windows_within_a_phase_shrink_geometrically() {
        let delta = 0.3;
        let mut ebb = ExpBackonBackoff::new(delta);
        let mut previous = u64::MAX;
        let mut phase = ebb.phase();
        for _ in 0..500 {
            let w = ebb.next_window();
            let current_phase = ebb.phase();
            if current_phase == phase {
                assert!(w <= previous, "windows must not grow within a phase");
            } else {
                phase = current_phase;
            }
            previous = w;
            assert!(w >= 1);
        }
    }

    #[test]
    fn window_preview_matches_fresh_schedule_and_does_not_advance() {
        let ebb = ExpBackonBackoff::with_default_delta();
        let preview = ebb.window_preview(6);
        let mut fresh = ExpBackonBackoff::with_default_delta();
        let direct: Vec<u64> = (0..6).map(|_| fresh.next_window()).collect();
        assert_eq!(preview, direct);
        assert_eq!(ebb.phase(), 1, "preview must not advance the schedule");
    }

    #[test]
    fn total_slots_of_phase_i_is_close_to_2_to_i_over_delta() {
        // The analysis telescopes the schedule: a full phase starting at 2^i
        // has about 2^i/δ slots. Check the order of magnitude for phase 10.
        let delta = 0.366;
        let mut ebb = ExpBackonBackoff::new(delta);
        let mut total_phase_10 = 0u64;
        for _ in 0..10_000 {
            let w = ebb.next_window();
            let phase = ebb.phase();
            if phase == 10 {
                total_phase_10 += w;
            }
            if phase > 10 {
                break;
            }
        }
        let expected = 1024.0 / delta;
        assert!(
            (total_phase_10 as f64) > 0.8 * expected && (total_phase_10 as f64) < 1.2 * expected,
            "phase-10 slots {total_phase_10} vs expected ~{expected}"
        );
    }
}
