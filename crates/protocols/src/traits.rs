//! Protocol traits and adapters.
//!
//! Three levels of abstraction are provided:
//!
//! * [`Protocol`] — the per-station state machine interface: *decide* whether
//!   to transmit in the next slot, then *observe* the channel feedback for
//!   that slot. This is what the exact simulator drives, one instance per
//!   station, and it works for any protocol.
//! * [`FairProtocol`] — protocols in which every active station uses the
//!   same transmission probability in every slot and reacts only to public
//!   feedback. Wrapping a `FairProtocol` in a [`FairNode`] yields a
//!   [`Protocol`]; the fair fast simulator instead keeps a *single* shared
//!   copy of the state.
//! * [`WindowSchedule`] — protocols in which a station picks one uniform slot
//!   per window of a deterministic window-length sequence. Wrapping a
//!   schedule in a [`WindowNode`] yields a [`Protocol`]; the window fast
//!   simulator instead runs one balls-in-bins experiment per window.
//!
//! [`ProtocolKind`] is a serialisable description (name + parameters) of any
//! protocol in this crate, used by the experiment runner and the benchmark
//! harness to construct protocol instances from configuration.

use crate::error::ParameterError;
use crate::exp_backon_backoff::ExpBackonBackoff;
use crate::log_fails::{LogFailsAdaptive, LogFailsConfig};
use crate::loglog_backoff::{LoglogIteratedBackoff, RExponentialBackoff};
use crate::one_fail::OneFailAdaptive;
use crate::oracle::KnownKOracle;
use crate::randomized_parity::RandomizedParityOneFail;
use mac_channel::Observation;
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};
use std::fmt::Debug;

/// A per-station contention-resolution protocol.
///
/// The driving loop is, for every slot while the station is active:
///
/// 1. `transmit = protocol.decide(rng)`;
/// 2. the channel resolves the slot from all stations' decisions;
/// 3. `protocol.observe(observation)` with the station's view of the slot.
///
/// Once the station's own message has been delivered
/// ([`Observation::DeliveredOwn`]), [`Protocol::has_delivered`] returns
/// `true` and the simulator stops driving the station (the model's stations
/// become idle on delivery).
pub trait Protocol: Debug {
    /// A short human-readable protocol name (e.g. `"one-fail-adaptive"`).
    fn name(&self) -> &'static str;

    /// Decides whether the station transmits in the next slot.
    fn decide(&mut self, rng: &mut dyn RngCore) -> bool;

    /// Observes the station's view of the slot that was just decided.
    fn observe(&mut self, observation: Observation);

    /// True once the station's own message has been delivered.
    fn has_delivered(&self) -> bool;

    /// The probability with which the *next* [`Protocol::decide`] call will
    /// return `true`, when that decision is an independent Bernoulli draw
    /// determined by public state — the capability that lets an aggregate
    /// simulator resolve a slot of stations reporting the same value with a
    /// **single binomial draw** (`T = 0` empty, `T = 1` delivery, `T ≥ 2`
    /// collision) instead of one coin per station.
    ///
    /// Returns `None` when the next decision is *not* an independent
    /// Bernoulli trial: window protocols commit to exactly one slot per
    /// window (their per-slot marginals are not independent across slots),
    /// and arbitrary protocols may randomise in ways this interface cannot
    /// describe. The default is `None`.
    ///
    /// The aggregate fair simulator serves exactly the protocol kinds whose
    /// station adapters report `Some` (the capability is pinned to the
    /// fair/window family split by the
    /// `slot_probability_capability_matches_the_families` test); protocols
    /// reporting `None` run per-station. The dispatch is currently static,
    /// by protocol kind — see `crates/sim/DESIGN.md` §5.
    fn slot_probability(&self) -> Option<f64> {
        None
    }

    /// An *exact* fingerprint of the station's protocol state, if the
    /// protocol can produce one: two stations returning equal signatures
    /// behave identically under identical future inputs (decide draws and
    /// observations), forever.
    ///
    /// This is the per-station analogue of the cohort engine's
    /// ([`FairProtocol::schedule_phase`], probability tracks) merge key: the
    /// adversary strategy search uses it to deduplicate game-tree nodes, and
    /// soundness of the resulting *certificates* requires exactness — a
    /// lossy hash could merge distinct states and silently prune the true
    /// worst case. Protocols that cannot pin their state exactly (window
    /// protocols carry in-window position and the chosen slot, which this
    /// interface does not expose) return `None`, and the search falls back
    /// to exploring without deduplication. The default is `None`.
    fn state_signature(&self) -> Option<Vec<u64>> {
        None
    }
}

impl Protocol for Box<dyn Protocol> {
    fn name(&self) -> &'static str {
        self.as_ref().name()
    }
    fn decide(&mut self, rng: &mut dyn RngCore) -> bool {
        self.as_mut().decide(rng)
    }
    fn observe(&mut self, observation: Observation) {
        self.as_mut().observe(observation)
    }
    fn has_delivered(&self) -> bool {
        self.as_ref().has_delivered()
    }
    fn slot_probability(&self) -> Option<f64> {
        self.as_ref().slot_probability()
    }
    fn state_signature(&self) -> Option<Vec<u64>> {
        self.as_ref().state_signature()
    }
}

/// A *fair* protocol: all active stations transmit with the same probability,
/// derived from public information only.
///
/// The object captures the **common state** of the active stations (under
/// batched arrivals every active station holds an identical copy). Each slot:
///
/// 1. every active station transmits with
///    [`FairProtocol::transmission_probability`];
/// 2. after the slot, [`FairProtocol::advance`] is called with `delivered =
///    true` iff some station's message was delivered in the slot.
///
/// `Send` is a supertrait so that engine states built over fair protocols
/// can be driven on the multi-threaded runner (the sharded multi-channel
/// sessions move each shard's state onto a worker thread).
pub trait FairProtocol: Debug + Send {
    /// A short human-readable protocol name.
    fn name(&self) -> &'static str;

    /// The probability with which each active station transmits in the next
    /// slot. Always in `[0, 1]`.
    fn transmission_probability(&self) -> f64;

    /// Advances the common state by one slot. `delivered` states whether a
    /// message (necessarily of another station, from the point of view of the
    /// stations that remain active) was delivered in the slot.
    fn advance(&mut self, delivered: bool);

    /// Number of slots already elapsed since activation.
    fn steps_elapsed(&self) -> u64;

    /// The state's position within the protocol's deterministic update
    /// schedule — the *phase-schedule accessor* the cohort aggregate engine
    /// advances and merges cohorts by.
    ///
    /// Two copies of a protocol state may evolve in lockstep from now on
    /// only if they sit at the same schedule position: One-fail Adaptive's
    /// AT/BT parity decides which update rule the next slot applies,
    /// Log-fails Adaptive additionally counts consecutive failures towards
    /// its lazy estimator bump. The contract is: if two states report the
    /// same `schedule_phase()` **and** currently agree on the transmission
    /// probability of every track of their schedule, then feeding both the
    /// same feedback keeps them identical forever. Cohort merging relies on
    /// exactly this — states in different phases are never merged, however
    /// close their probabilities happen to be this slot.
    ///
    /// The default (a constant) is correct for protocols whose update rule
    /// does not depend on the step index, e.g. the known-k oracle.
    fn schedule_phase(&self) -> u64 {
        0
    }

    /// The current value of every probability track of the protocol's
    /// schedule, as a pair (protocols with a single track report it twice).
    ///
    /// The exactness contract extends [`FairProtocol::schedule_phase`]: two
    /// states reporting the same phase **and** bit-equal track pairs evolve
    /// in lockstep under identical feedback, forever. For the paper's fair
    /// line-up the pair is *injective* in the protocol state — One-fail and
    /// Log-fails Adaptive report their two cached tracks (the AT probability
    /// `1/κ̃` and the BT probability), the oracle's single track `1/remaining`
    /// determines its whole state — which is what lets the cohort engine
    /// merge on bit equality and the adversary search deduplicate game-tree
    /// nodes without unsoundness.
    ///
    /// The default reports the current transmission probability on both
    /// tracks; protocols whose state carries more than the current
    /// probability (at a fixed phase) **must** override this.
    fn probability_tracks(&self) -> (f64, f64) {
        let p = self.transmission_probability();
        (p, p)
    }

    /// Serialises the protocol's *mutable* state as raw words, or `None` if
    /// the protocol does not support checkpointing.
    ///
    /// The contract is exact resumption: feeding the returned words to
    /// [`FairProtocol::restore_words`] on a freshly constructed instance with
    /// identical parameters must yield a state whose future behaviour —
    /// every transmission probability, bit for bit — equals the original's.
    /// Incrementally maintained fields (Taylor-tracked estimators, rebase
    /// countdowns) must therefore be captured verbatim, never recomputed.
    /// Constructor parameters are *not* part of the words; the session layer
    /// records the [`ProtocolKind`] separately and rebuilds from it.
    ///
    /// The default is `None` (not checkpointable); every protocol in the
    /// paper line-up overrides it.
    fn checkpoint_words(&self) -> Option<Vec<u64>> {
        None
    }

    /// Restores state captured by [`FairProtocol::checkpoint_words`] into
    /// this instance. Returns `false` (leaving the state untouched or
    /// partially default — callers must treat it as unusable) if the words
    /// are malformed or the protocol does not support checkpointing.
    fn restore_words(&mut self, words: &[u64]) -> bool {
        let _ = words;
        false
    }
}

impl FairProtocol for Box<dyn FairProtocol> {
    fn name(&self) -> &'static str {
        self.as_ref().name()
    }
    fn transmission_probability(&self) -> f64 {
        self.as_ref().transmission_probability()
    }
    fn advance(&mut self, delivered: bool) {
        self.as_mut().advance(delivered)
    }
    fn steps_elapsed(&self) -> u64 {
        self.as_ref().steps_elapsed()
    }
    fn schedule_phase(&self) -> u64 {
        self.as_ref().schedule_phase()
    }
    fn probability_tracks(&self) -> (f64, f64) {
        self.as_ref().probability_tracks()
    }
    fn checkpoint_words(&self) -> Option<Vec<u64>> {
        self.as_ref().checkpoint_words()
    }
    fn restore_words(&mut self, words: &[u64]) -> bool {
        self.as_mut().restore_words(words)
    }
}

/// A window-based protocol, described by its (deterministic, possibly
/// infinite) sequence of window lengths.
///
/// A station executing a window protocol picks one slot uniformly at random
/// inside each successive window and transmits only in that slot; the only
/// feedback it reacts to is the delivery of its own message, upon which it
/// stops.
pub trait WindowSchedule: Debug + Send {
    /// A short human-readable protocol name.
    fn name(&self) -> &'static str;

    /// Returns the length (≥ 1) of the next window.
    fn next_window(&mut self) -> u64;

    /// Serialises the schedule's mutable state as raw words, or `None` if
    /// the schedule does not support checkpointing. Same exact-resumption
    /// contract as [`FairProtocol::checkpoint_words`]: restoring the words
    /// into a freshly constructed schedule with identical parameters must
    /// reproduce the remaining window sequence bit for bit.
    fn checkpoint_words(&self) -> Option<Vec<u64>> {
        None
    }

    /// Restores state captured by [`WindowSchedule::checkpoint_words`].
    /// Returns `false` on malformed words or an unsupported schedule.
    fn restore_words(&mut self, words: &[u64]) -> bool {
        let _ = words;
        false
    }
}

/// Adapter that runs a [`FairProtocol`] as a per-station [`Protocol`].
#[derive(Debug, Clone)]
pub struct FairNode<P> {
    state: P,
    delivered: bool,
}

impl<P: FairProtocol> FairNode<P> {
    /// Wraps the given fair-protocol state for one station.
    pub fn new(state: P) -> Self {
        Self {
            state,
            delivered: false,
        }
    }

    /// Read access to the wrapped state (used by tests).
    pub fn state(&self) -> &P {
        &self.state
    }
}

impl<P: FairProtocol> Protocol for FairNode<P> {
    fn name(&self) -> &'static str {
        self.state.name()
    }

    fn decide(&mut self, rng: &mut dyn RngCore) -> bool {
        if self.delivered {
            return false;
        }
        let p = self.state.transmission_probability();
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        rng.gen::<f64>() < p
    }

    fn observe(&mut self, observation: Observation) {
        if self.delivered {
            return;
        }
        match observation {
            Observation::DeliveredOwn => {
                self.delivered = true;
            }
            Observation::ReceivedMessage => self.state.advance(true),
            Observation::Noise | Observation::DetectedSilence | Observation::DetectedCollision => {
                self.state.advance(false)
            }
        }
    }

    fn has_delivered(&self) -> bool {
        self.delivered
    }

    fn slot_probability(&self) -> Option<f64> {
        // A fair node's next decision is exactly Bernoulli(p) on public
        // state: this is what makes a batch of identical fair nodes
        // resolvable with one Binomial(m, p) draw.
        Some(if self.delivered {
            0.0
        } else {
            self.state.transmission_probability()
        })
    }

    fn state_signature(&self) -> Option<Vec<u64>> {
        // Exact by the `probability_tracks` contract: phase + bit-equal
        // tracks pin the fair state's entire future, and the delivered flag
        // is the only per-station addition the adapter makes.
        let (track_a, track_b) = self.state.probability_tracks();
        Some(vec![
            u64::from(self.delivered),
            self.state.schedule_phase(),
            track_a.to_bits(),
            track_b.to_bits(),
        ])
    }
}

/// Adapter that runs a [`WindowSchedule`] as a per-station [`Protocol`].
#[derive(Debug, Clone)]
pub struct WindowNode<S> {
    schedule: S,
    window_len: u64,
    position: u64,
    chosen: u64,
    delivered: bool,
    started: bool,
}

impl<S: WindowSchedule> WindowNode<S> {
    /// Wraps the given window schedule for one station.
    pub fn new(schedule: S) -> Self {
        Self {
            schedule,
            window_len: 0,
            position: 0,
            chosen: 0,
            delivered: false,
            started: false,
        }
    }

    /// The length of the window the station is currently in (0 before the
    /// first call to [`Protocol::decide`]).
    pub fn current_window(&self) -> u64 {
        self.window_len
    }
}

impl<S: WindowSchedule> Protocol for WindowNode<S> {
    fn name(&self) -> &'static str {
        self.schedule.name()
    }

    fn decide(&mut self, rng: &mut dyn RngCore) -> bool {
        if self.delivered {
            return false;
        }
        if !self.started || self.position >= self.window_len {
            self.window_len = self.schedule.next_window();
            assert!(self.window_len >= 1, "window length must be at least 1");
            self.position = 0;
            self.chosen = rng.gen_range(0..self.window_len);
            self.started = true;
        }
        let transmit = self.position == self.chosen;
        self.position += 1;
        transmit
    }

    fn observe(&mut self, observation: Observation) {
        if observation == Observation::DeliveredOwn {
            self.delivered = true;
        }
    }

    fn has_delivered(&self) -> bool {
        self.delivered
    }
}

/// A serialisable description of a protocol and its parameters.
///
/// `ProtocolKind` is how the experiment runner, the benchmark harness and the
/// examples refer to protocols in configuration: it can be stored, printed
/// and turned into a runnable instance with [`ProtocolKind::build_node`] (or,
/// for the fast simulators, [`ProtocolKind::build_fair`] /
/// [`ProtocolKind::build_window`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProtocolKind {
    /// One-fail Adaptive with parameter `δ` (paper default 2.72).
    OneFailAdaptive {
        /// The δ constant, `e < δ ≤ Σ_{j=1..5}(5/6)^j`.
        delta: f64,
    },
    /// Exp Back-on/Back-off with parameter `δ` (paper default 0.366).
    ExpBackonBackoff {
        /// The δ constant, `0 < δ < 1/e`.
        delta: f64,
    },
    /// Log-fails Adaptive (reconstruction) with parameters `ξδ`, `ξβ`, `ξt`.
    /// The required `ε` is derived from the instance size as `1/(k+1)`.
    LogFailsAdaptive {
        /// Estimator decrement slack (paper simulation value 0.1).
        xi_delta: f64,
        /// Failure-window length factor (paper simulation value 0.1).
        xi_beta: f64,
        /// Fraction of slots that are BT-steps (paper uses 1/2 and 1/10).
        xi_t: f64,
    },
    /// Loglog-iterated Back-off with window growth factor `r` (paper uses 2).
    LoglogIteratedBackoff {
        /// Window growth factor, `r > 1`.
        r: f64,
    },
    /// Plain r-exponential back-off.
    RExponentialBackoff {
        /// Window growth factor, `r > 1`.
        r: f64,
    },
    /// The known-k oracle (fair-protocol optimum, requires exact `k`).
    KnownKOracle,
    /// Randomised-parity One-fail Adaptive: Algorithm 1's rules on a
    /// balanced Thue–Morse AT/BT schedule instead of strict alternation,
    /// which breaks the two-cohort parity deadlock of dynamic arrivals
    /// (see `crates/sim/DESIGN.md` §6) while keeping the Theorem 1
    /// envelope. Not part of the paper's line-up — an extension protocol.
    RandomizedParityOneFail {
        /// The δ constant, `e < δ ≤ Σ_{j=1..5}(5/6)^j` (as for Algorithm 1).
        delta: f64,
    },
}

/// The structural family a protocol belongs to, which determines which fast
/// simulator applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProtocolFamily {
    /// Every active station transmits with the same probability each slot.
    Fair,
    /// Stations pick one uniform slot per window of a deterministic schedule.
    Window,
}

impl ProtocolKind {
    /// The paper's five evaluated configurations (Figure 1 / Table 1), in the
    /// order of the paper's table rows: LFA(ξt=1/2), LFA(ξt=1/10), OFA, EBB,
    /// LLIB.
    pub fn paper_lineup() -> Vec<ProtocolKind> {
        vec![
            ProtocolKind::LogFailsAdaptive {
                xi_delta: 0.1,
                xi_beta: 0.1,
                xi_t: 0.5,
            },
            ProtocolKind::LogFailsAdaptive {
                xi_delta: 0.1,
                xi_beta: 0.1,
                xi_t: 0.1,
            },
            ProtocolKind::OneFailAdaptive { delta: 2.72 },
            ProtocolKind::ExpBackonBackoff { delta: 0.366 },
            ProtocolKind::LoglogIteratedBackoff { r: 2.0 },
        ]
    }

    /// The line-up used by the robustness (adversarial-channel) sweeps: one
    /// fair adaptive protocol, both back-off families, and the known-k
    /// oracle as the fair-protocol reference point. Log-fails Adaptive is
    /// deliberately excluded: its failure-counting estimator is calibrated
    /// for the ideal channel and a jammed run says nothing about the paper's
    /// claims.
    pub fn robust_lineup() -> Vec<ProtocolKind> {
        vec![
            ProtocolKind::OneFailAdaptive { delta: 2.72 },
            ProtocolKind::ExpBackonBackoff { delta: 0.366 },
            ProtocolKind::LoglogIteratedBackoff { r: 2.0 },
            ProtocolKind::KnownKOracle,
        ]
    }

    /// A short label including the distinguishing parameter, suitable for
    /// table headers and CSV columns.
    pub fn label(&self) -> String {
        match self {
            ProtocolKind::OneFailAdaptive { .. } => "One-fail Adaptive".to_string(),
            ProtocolKind::ExpBackonBackoff { .. } => "Exp Back-on/Back-off".to_string(),
            ProtocolKind::LogFailsAdaptive { xi_t, .. } => {
                format!("Log-fails Adaptive (xi_t=1/{:.0})", 1.0 / xi_t)
            }
            ProtocolKind::LoglogIteratedBackoff { .. } => "Loglog-iterated Back-off".to_string(),
            ProtocolKind::RExponentialBackoff { r } => {
                format!("{r}-exponential Back-off")
            }
            ProtocolKind::KnownKOracle => "Known-k oracle".to_string(),
            ProtocolKind::RandomizedParityOneFail { .. } => {
                "Randomised-parity One-fail".to_string()
            }
        }
    }

    /// The family (fair or window) of the protocol.
    pub fn family(&self) -> ProtocolFamily {
        match self {
            ProtocolKind::OneFailAdaptive { .. }
            | ProtocolKind::LogFailsAdaptive { .. }
            | ProtocolKind::KnownKOracle
            | ProtocolKind::RandomizedParityOneFail { .. } => ProtocolFamily::Fair,
            ProtocolKind::ExpBackonBackoff { .. }
            | ProtocolKind::LoglogIteratedBackoff { .. }
            | ProtocolKind::RExponentialBackoff { .. } => ProtocolFamily::Window,
        }
    }

    /// Builds the shared [`FairProtocol`] state for this kind, if it is a
    /// fair protocol. `k` is the instance size: it is used only by the
    /// protocols that require knowledge of the instance (the oracle, and the
    /// `ε ≈ 1/(k+1)` of Log-fails Adaptive), exactly as in the paper's
    /// simulations.
    ///
    /// # Errors
    /// Returns a [`ParameterError`] if the parameters are outside the range
    /// required by the protocol's analysis.
    pub fn build_fair(&self, k: u64) -> Result<Option<Box<dyn FairProtocol>>, ParameterError> {
        Ok(Some(match self {
            ProtocolKind::OneFailAdaptive { delta } => {
                Box::new(OneFailAdaptive::try_new(*delta)?) as Box<dyn FairProtocol>
            }
            ProtocolKind::LogFailsAdaptive {
                xi_delta,
                xi_beta,
                xi_t,
            } => {
                let config = LogFailsConfig::for_instance(*xi_delta, *xi_beta, *xi_t, k);
                Box::new(LogFailsAdaptive::try_new(config)?) as Box<dyn FairProtocol>
            }
            ProtocolKind::KnownKOracle => Box::new(KnownKOracle::new(k)) as Box<dyn FairProtocol>,
            ProtocolKind::RandomizedParityOneFail { delta } => {
                Box::new(RandomizedParityOneFail::try_new(*delta)?) as Box<dyn FairProtocol>
            }
            _ => return Ok(None),
        }))
    }

    /// Builds the [`WindowSchedule`] for this kind, if it is a window
    /// protocol.
    ///
    /// # Errors
    /// Returns a [`ParameterError`] if the parameters are outside the range
    /// required by the protocol's analysis.
    pub fn build_window(&self) -> Result<Option<Box<dyn WindowSchedule>>, ParameterError> {
        Ok(Some(match self {
            ProtocolKind::ExpBackonBackoff { delta } => {
                Box::new(ExpBackonBackoff::try_new(*delta)?) as Box<dyn WindowSchedule>
            }
            ProtocolKind::LoglogIteratedBackoff { r } => {
                Box::new(LoglogIteratedBackoff::try_new(*r)?) as Box<dyn WindowSchedule>
            }
            ProtocolKind::RExponentialBackoff { r } => {
                Box::new(RExponentialBackoff::try_new(*r)?) as Box<dyn WindowSchedule>
            }
            _ => return Ok(None),
        }))
    }

    /// Builds a per-station [`Protocol`] instance for this kind.
    ///
    /// # Errors
    /// Returns a [`ParameterError`] if the parameters are invalid.
    pub fn build_node(&self, k: u64) -> Result<Box<dyn Protocol>, ParameterError> {
        match self {
            ProtocolKind::OneFailAdaptive { delta } => {
                Ok(Box::new(FairNode::new(OneFailAdaptive::try_new(*delta)?)))
            }
            ProtocolKind::LogFailsAdaptive {
                xi_delta,
                xi_beta,
                xi_t,
            } => {
                let config = LogFailsConfig::for_instance(*xi_delta, *xi_beta, *xi_t, k);
                Ok(Box::new(FairNode::new(LogFailsAdaptive::try_new(config)?)))
            }
            ProtocolKind::KnownKOracle => Ok(Box::new(FairNode::new(KnownKOracle::new(k)))),
            ProtocolKind::RandomizedParityOneFail { delta } => Ok(Box::new(FairNode::new(
                RandomizedParityOneFail::try_new(*delta)?,
            ))),
            ProtocolKind::ExpBackonBackoff { delta } => Ok(Box::new(WindowNode::new(
                ExpBackonBackoff::try_new(*delta)?,
            ))),
            ProtocolKind::LoglogIteratedBackoff { r } => Ok(Box::new(WindowNode::new(
                LoglogIteratedBackoff::try_new(*r)?,
            ))),
            ProtocolKind::RExponentialBackoff { r } => {
                Ok(Box::new(WindowNode::new(RExponentialBackoff::try_new(*r)?)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mac_prob::rng::Xoshiro256pp;
    use rand::SeedableRng;

    /// A trivially predictable fair protocol for adapter tests: transmit with
    /// probability 1 until two deliveries have been heard, then probability 0.
    #[derive(Debug, Clone, Default)]
    struct TwoThenSilent {
        heard: u64,
        steps: u64,
    }

    impl FairProtocol for TwoThenSilent {
        fn name(&self) -> &'static str {
            "two-then-silent"
        }
        fn transmission_probability(&self) -> f64 {
            if self.heard < 2 {
                1.0
            } else {
                0.0
            }
        }
        fn advance(&mut self, delivered: bool) {
            self.steps += 1;
            if delivered {
                self.heard += 1;
            }
        }
        fn steps_elapsed(&self) -> u64 {
            self.steps
        }
    }

    /// A window schedule of constant windows of length 3.
    #[derive(Debug, Default)]
    struct ConstantThree;

    impl WindowSchedule for ConstantThree {
        fn name(&self) -> &'static str {
            "constant-3"
        }
        fn next_window(&mut self) -> u64 {
            3
        }
    }

    #[test]
    fn fair_node_transmits_and_reacts_to_feedback() {
        let mut rng = Xoshiro256pp::seed_from_u64(0);
        let mut node = FairNode::new(TwoThenSilent::default());
        assert_eq!(node.name(), "two-then-silent");
        assert!(node.decide(&mut rng), "p = 1 must transmit");
        node.observe(Observation::ReceivedMessage);
        assert!(node.decide(&mut rng));
        node.observe(Observation::ReceivedMessage);
        // Two deliveries heard: probability drops to zero.
        assert!(!node.decide(&mut rng));
        node.observe(Observation::Noise);
        assert_eq!(node.state().steps_elapsed(), 3);
        assert!(!node.has_delivered());
    }

    #[test]
    fn slot_probability_capability_matches_the_families() {
        // Fair nodes expose their Bernoulli probability; window nodes (one
        // transmission per window, not independent per slot) expose nothing.
        let mut fair = FairNode::new(TwoThenSilent::default());
        assert_eq!(fair.slot_probability(), Some(1.0));
        fair.observe(Observation::DeliveredOwn);
        assert_eq!(
            fair.slot_probability(),
            Some(0.0),
            "a delivered station never transmits"
        );
        let window = WindowNode::new(ConstantThree);
        assert_eq!(window.slot_probability(), None);
        for kind in ProtocolKind::paper_lineup() {
            let node = kind.build_node(64).unwrap();
            match kind.family() {
                ProtocolFamily::Fair => assert!(
                    node.slot_probability().is_some(),
                    "{} must report a homogeneous schedule",
                    kind.label()
                ),
                ProtocolFamily::Window => assert!(node.slot_probability().is_none()),
            }
        }
    }

    #[test]
    fn schedule_phase_tracks_the_protocols_step_structure() {
        use crate::{KnownKOracle, LogFailsConfig};
        // One-fail Adaptive: the AT/BT parity, alternating every slot.
        let mut ofa = OneFailAdaptive::with_default_delta();
        let first = ofa.schedule_phase();
        ofa.advance(false);
        assert_ne!(ofa.schedule_phase(), first);
        ofa.advance(false);
        assert_eq!(ofa.schedule_phase(), first);

        // The oracle has no step-dependent rule: a constant phase.
        let mut oracle = KnownKOracle::new(8);
        let p0 = oracle.schedule_phase();
        oracle.advance(true);
        oracle.advance(false);
        assert_eq!(oracle.schedule_phase(), p0);

        // Log-fails Adaptive: states differing only in their consecutive
        // failure count must not share a phase (they bump the estimator at
        // different future steps). Drive one copy with a delivery (resetting
        // the failure run) and one without, through a full BT cycle.
        // k = 10⁶ gives a fail window of 2, so one silent AT-step leaves a
        // *pending* failure run instead of bumping the estimator right away.
        let config = LogFailsConfig::paper(0.5, 1_000_000);
        let mut quiet = LogFailsAdaptive::try_new(config).unwrap();
        let mut heard = quiet.clone();
        let period = 2; // round(1/0.5)
        for step in 0..period {
            quiet.advance(false);
            heard.advance(step == 0);
        }
        assert_ne!(
            quiet.schedule_phase(),
            heard.schedule_phase(),
            "a pending failure run is part of the schedule position"
        );

        // The boxed adapter forwards the accessor.
        let boxed: Box<dyn FairProtocol> = Box::new(OneFailAdaptive::with_default_delta());
        assert_eq!(boxed.schedule_phase(), first);
    }

    #[test]
    fn boxed_protocol_forwards_the_full_interface() {
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let mut node: Box<dyn Protocol> = Box::new(FairNode::new(TwoThenSilent::default()));
        assert_eq!(Protocol::name(&node), "two-then-silent");
        assert_eq!(Protocol::slot_probability(&node), Some(1.0));
        assert!(Protocol::decide(&mut node, &mut rng));
        Protocol::observe(&mut node, Observation::DeliveredOwn);
        assert!(Protocol::has_delivered(&node));
    }

    #[test]
    fn fair_node_stops_after_own_delivery() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let mut node = FairNode::new(TwoThenSilent::default());
        assert!(node.decide(&mut rng));
        node.observe(Observation::DeliveredOwn);
        assert!(node.has_delivered());
        assert!(
            !node.decide(&mut rng),
            "a delivered station never transmits"
        );
        // Further observations are ignored without panicking.
        node.observe(Observation::ReceivedMessage);
        assert_eq!(node.state().steps_elapsed(), 0);
    }

    #[test]
    fn window_node_transmits_exactly_once_per_window() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let mut node = WindowNode::new(ConstantThree);
        assert_eq!(node.current_window(), 0);
        for _window in 0..50 {
            let mut transmissions = 0;
            for _ in 0..3 {
                if node.decide(&mut rng) {
                    transmissions += 1;
                }
                node.observe(Observation::Noise);
            }
            assert_eq!(node.current_window(), 3);
            assert_eq!(transmissions, 1, "exactly one transmission per window");
        }
    }

    #[test]
    fn window_node_stops_after_own_delivery() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let mut node = WindowNode::new(ConstantThree);
        let _ = node.decide(&mut rng);
        node.observe(Observation::DeliveredOwn);
        assert!(node.has_delivered());
        for _ in 0..10 {
            assert!(!node.decide(&mut rng));
        }
    }

    #[test]
    fn paper_lineup_has_five_entries_in_table_order() {
        let lineup = ProtocolKind::paper_lineup();
        assert_eq!(lineup.len(), 5);
        assert!(lineup[0].label().contains("1/2"));
        assert!(lineup[1].label().contains("1/10"));
        assert_eq!(lineup[2].label(), "One-fail Adaptive");
        assert_eq!(lineup[3].label(), "Exp Back-on/Back-off");
        assert_eq!(lineup[4].label(), "Loglog-iterated Back-off");
    }

    #[test]
    fn robust_lineup_builds_and_spans_both_families() {
        let lineup = ProtocolKind::robust_lineup();
        assert_eq!(lineup.len(), 4);
        assert!(lineup.iter().any(|k| k.family() == ProtocolFamily::Fair));
        assert!(lineup.iter().any(|k| k.family() == ProtocolFamily::Window));
        for kind in lineup {
            assert!(kind.build_node(16).is_ok(), "{}", kind.label());
        }
    }

    #[test]
    fn families_are_assigned_correctly() {
        assert_eq!(
            ProtocolKind::OneFailAdaptive { delta: 2.72 }.family(),
            ProtocolFamily::Fair
        );
        assert_eq!(
            ProtocolKind::ExpBackonBackoff { delta: 0.366 }.family(),
            ProtocolFamily::Window
        );
        assert_eq!(
            ProtocolKind::LoglogIteratedBackoff { r: 2.0 }.family(),
            ProtocolFamily::Window
        );
        assert_eq!(ProtocolKind::KnownKOracle.family(), ProtocolFamily::Fair);
    }

    #[test]
    fn builders_return_matching_family() {
        for kind in ProtocolKind::paper_lineup() {
            let fair = kind.build_fair(100).unwrap();
            let window = kind.build_window().unwrap();
            match kind.family() {
                ProtocolFamily::Fair => {
                    assert!(fair.is_some());
                    assert!(window.is_none());
                }
                ProtocolFamily::Window => {
                    assert!(fair.is_none());
                    assert!(window.is_some());
                }
            }
            let node = kind.build_node(100).unwrap();
            assert!(!node.has_delivered());
        }
    }

    #[test]
    fn invalid_parameters_are_rejected_by_builders() {
        assert!(ProtocolKind::OneFailAdaptive { delta: 1.0 }
            .build_fair(10)
            .is_err());
        assert!(ProtocolKind::ExpBackonBackoff { delta: 0.9 }
            .build_window()
            .is_err());
        assert!(ProtocolKind::LoglogIteratedBackoff { r: 0.5 }
            .build_node(10)
            .is_err());
    }

    #[test]
    fn labels_are_distinct_for_the_lineup() {
        let labels: Vec<String> = ProtocolKind::paper_lineup()
            .iter()
            .map(|k| k.label())
            .collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }
}
