//! A collision-detection baseline: multiplicative density estimation from
//! ternary channel feedback.
//!
//! The paper's related-work section (§2) recounts that *with* collision
//! detection, adaptive protocols can solve k-selection in `O(k + log n)`
//! expected time (Martel) because stations can tell apart the three channel
//! states — silence, success, collision — and steer a density estimate with
//! that information. The paper's own protocols deliberately avoid this
//! assumption; this module provides the classic ternary-feedback estimator as
//! an *extension baseline* so the collision-detection channel model of
//! `mac-channel` can be exercised and the value of the extra feedback can be
//! quantified (see the `ablation`/example programs and EXPERIMENTS.md).
//!
//! The protocol: every active station keeps a density estimate `κ̃ ≥ 1` and
//! transmits with probability `1/κ̃`. After each slot:
//!
//! * **collision** (too much contention) → `κ̃ ← κ̃·g`;
//! * **silence** (too little contention) → `κ̃ ← max(κ̃/g, 1)`;
//! * **delivery of another station's message** → `κ̃ ← max(κ̃ − 1, 1)`
//!   (one contender left the system);
//! * **delivery of its own message** → the station becomes idle.
//!
//! With growth factor `g = 2` the estimate reaches the true density from
//! either side in logarithmically many slots and then tracks it, giving a
//! slots-per-message ratio close to the fair-protocol optimum `e`.
//!
//! Because the update rule needs to *distinguish* silence from collision,
//! this protocol only makes sense on a channel with collision detection
//! ([`mac_channel::ChannelModel::with_collision_detection`]); on the paper's
//! channel model both map to [`Observation::Noise`], which the protocol
//! ignores (it then never adapts and degrades badly — exactly the point the
//! paper's protocols address).

use crate::error::ParameterError;
use crate::traits::Protocol;
use mac_channel::Observation;
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

/// Per-station state of the collision-detection adaptive baseline.
///
/// # Example
/// ```
/// use mac_protocols::cd_adaptive::CdAdaptive;
/// use mac_channel::Observation;
/// use mac_protocols::Protocol;
///
/// let mut node = CdAdaptive::with_default_growth();
/// // A collision doubles the density estimate…
/// node.observe(Observation::DetectedCollision);
/// assert_eq!(node.estimate(), 2.0);
/// // …and a detected silence halves it again.
/// node.observe(Observation::DetectedSilence);
/// assert_eq!(node.estimate(), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CdAdaptive {
    growth: f64,
    estimate: f64,
    delivered: bool,
    steps: u64,
}

impl CdAdaptive {
    /// The growth factor used by default (binary doubling/halving).
    pub const DEFAULT_GROWTH: f64 = 2.0;

    /// Creates the protocol with the given multiplicative growth factor.
    ///
    /// # Panics
    /// Panics if `growth ≤ 1` or is not finite; use [`CdAdaptive::try_new`]
    /// for fallible construction.
    pub fn new(growth: f64) -> Self {
        Self::try_new(growth).expect("invalid collision-detection adaptive parameter")
    }

    /// Creates the protocol with the given multiplicative growth factor.
    ///
    /// # Errors
    /// Returns an error unless `growth > 1` and finite.
    pub fn try_new(growth: f64) -> Result<Self, ParameterError> {
        if !growth.is_finite() || growth <= 1.0 {
            return Err(ParameterError::new(
                "growth",
                growth,
                "the collision-detection adaptive baseline requires a finite growth factor > 1",
            ));
        }
        Ok(Self {
            growth,
            estimate: 1.0,
            delivered: false,
            steps: 0,
        })
    }

    /// Creates the protocol with the default growth factor 2.
    pub fn with_default_growth() -> Self {
        Self::new(Self::DEFAULT_GROWTH)
    }

    /// The current density estimate `κ̃`.
    pub fn estimate(&self) -> f64 {
        self.estimate
    }

    /// The configured growth factor.
    pub fn growth(&self) -> f64 {
        self.growth
    }

    /// Number of observations processed so far.
    pub fn steps_observed(&self) -> u64 {
        self.steps
    }
}

impl Protocol for CdAdaptive {
    fn name(&self) -> &'static str {
        "cd-adaptive"
    }

    fn decide(&mut self, rng: &mut dyn RngCore) -> bool {
        if self.delivered {
            return false;
        }
        let p = (1.0 / self.estimate).min(1.0);
        rng.gen::<f64>() < p
    }

    fn observe(&mut self, observation: Observation) {
        if self.delivered {
            return;
        }
        self.steps += 1;
        match observation {
            Observation::DeliveredOwn => self.delivered = true,
            Observation::ReceivedMessage => {
                self.estimate = (self.estimate - 1.0).max(1.0);
            }
            Observation::DetectedCollision => {
                self.estimate *= self.growth;
            }
            Observation::DetectedSilence => {
                self.estimate = (self.estimate / self.growth).max(1.0);
            }
            // Without collision detection the protocol receives no usable
            // signal; it does not adapt (see the module documentation).
            Observation::Noise => {}
        }
    }

    fn has_delivered(&self) -> bool {
        self.delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mac_prob::rng::Xoshiro256pp;
    use rand::SeedableRng;

    #[test]
    fn rejects_invalid_growth() {
        assert!(CdAdaptive::try_new(1.0).is_err());
        assert!(CdAdaptive::try_new(0.5).is_err());
        assert!(CdAdaptive::try_new(f64::NAN).is_err());
        assert!(CdAdaptive::try_new(1.5).is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid collision-detection adaptive parameter")]
    fn new_panics_on_invalid_growth() {
        let _ = CdAdaptive::new(0.9);
    }

    #[test]
    fn estimate_reacts_to_ternary_feedback() {
        let mut node = CdAdaptive::with_default_growth();
        assert_eq!(node.estimate(), 1.0);
        node.observe(Observation::DetectedCollision);
        node.observe(Observation::DetectedCollision);
        node.observe(Observation::DetectedCollision);
        assert_eq!(node.estimate(), 8.0);
        node.observe(Observation::ReceivedMessage);
        assert_eq!(node.estimate(), 7.0);
        node.observe(Observation::DetectedSilence);
        assert_eq!(node.estimate(), 3.5);
        node.observe(Observation::DetectedSilence);
        node.observe(Observation::DetectedSilence);
        node.observe(Observation::DetectedSilence);
        assert_eq!(node.estimate(), 1.0, "estimate is floored at 1");
        assert_eq!(node.steps_observed(), 8);
    }

    #[test]
    fn noise_is_ignored_without_collision_detection() {
        let mut node = CdAdaptive::with_default_growth();
        for _ in 0..10 {
            node.observe(Observation::Noise);
        }
        assert_eq!(node.estimate(), 1.0);
    }

    #[test]
    fn stops_after_own_delivery() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let mut node = CdAdaptive::with_default_growth();
        assert!(node.decide(&mut rng), "estimate 1 means transmit always");
        node.observe(Observation::DeliveredOwn);
        assert!(node.has_delivered());
        assert!(!node.decide(&mut rng));
        node.observe(Observation::DetectedCollision);
        assert_eq!(
            node.estimate(),
            1.0,
            "observations after delivery are ignored"
        );
    }

    #[test]
    fn transmission_probability_is_inverse_estimate() {
        let mut node = CdAdaptive::with_default_growth();
        for _ in 0..6 {
            node.observe(Observation::DetectedCollision);
        }
        assert_eq!(node.estimate(), 64.0);
        // Empirically the transmission frequency must be ≈ 1/64.
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let n = 64_000;
        let mut sent = 0;
        for _ in 0..n {
            if node.decide(&mut rng) {
                sent += 1;
            }
        }
        let freq = sent as f64 / n as f64;
        assert!((freq - 1.0 / 64.0).abs() < 0.005, "frequency {freq}");
    }
}
