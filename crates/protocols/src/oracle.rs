//! The known-k oracle: the fair-protocol optimum reference.
//!
//! Section 5 of the paper puts the measured ratios in perspective by noting
//! that *"the smallest ratio expected by any algorithm in which nodes use the
//! same probability at any step is e"*. The protocol that attains that bound
//! needs to know the exact number of messages left: every active station
//! transmits with probability `1/m` where `m` is the number of undelivered
//! messages, so each slot delivers with probability `≈ 1/e` and the expected
//! makespan is `≈ e·k`.
//!
//! This oracle is not part of the paper's evaluated line-up (it requires
//! information the paper's model does not provide); it is included as the
//! natural lower-bound reference for the ablation benchmarks and examples.

use crate::traits::FairProtocol;
use serde::{Deserialize, Serialize};

/// Fair protocol that transmits with probability `1/(messages remaining)`,
/// requiring exact knowledge of the initial `k` (and of every delivery, which
/// the channel provides).
///
/// # Example
/// ```
/// use mac_protocols::{FairProtocol, KnownKOracle};
/// let mut oracle = KnownKOracle::new(4);
/// assert_eq!(oracle.transmission_probability(), 0.25);
/// oracle.advance(true); // one message delivered
/// assert!((oracle.transmission_probability() - 1.0 / 3.0).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KnownKOracle {
    remaining: u64,
    steps: u64,
}

impl KnownKOracle {
    /// Creates the oracle for an instance with `k` messages.
    pub fn new(k: u64) -> Self {
        Self {
            remaining: k,
            steps: 0,
        }
    }

    /// Number of messages the oracle believes are still undelivered.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }
}

impl FairProtocol for KnownKOracle {
    fn name(&self) -> &'static str {
        "known-k-oracle"
    }

    fn transmission_probability(&self) -> f64 {
        if self.remaining == 0 {
            0.0
        } else {
            1.0 / self.remaining as f64
        }
    }

    fn advance(&mut self, delivered: bool) {
        self.steps += 1;
        if delivered {
            self.remaining = self.remaining.saturating_sub(1);
        }
    }

    fn steps_elapsed(&self) -> u64 {
        self.steps
    }

    fn checkpoint_words(&self) -> Option<Vec<u64>> {
        Some(vec![self.remaining, self.steps])
    }

    fn restore_words(&mut self, words: &[u64]) -> bool {
        let [remaining, steps] = words else {
            return false;
        };
        self.remaining = *remaining;
        self.steps = *steps;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_tracks_remaining_messages() {
        let mut oracle = KnownKOracle::new(10);
        assert_eq!(oracle.transmission_probability(), 0.1);
        for delivered in [true, true, false, true] {
            oracle.advance(delivered);
        }
        assert_eq!(oracle.remaining(), 7);
        assert!((oracle.transmission_probability() - 1.0 / 7.0).abs() < 1e-15);
        assert_eq!(oracle.steps_elapsed(), 4);
    }

    #[test]
    fn zero_remaining_means_silent() {
        let mut oracle = KnownKOracle::new(1);
        oracle.advance(true);
        assert_eq!(oracle.remaining(), 0);
        assert_eq!(oracle.transmission_probability(), 0.0);
        // Saturates instead of underflowing.
        oracle.advance(true);
        assert_eq!(oracle.remaining(), 0);
    }

    #[test]
    fn single_station_transmits_immediately() {
        let oracle = KnownKOracle::new(1);
        assert_eq!(oracle.transmission_probability(), 1.0);
    }

    #[test]
    fn empty_instance_is_silent() {
        let oracle = KnownKOracle::new(0);
        assert_eq!(oracle.transmission_probability(), 0.0);
    }
}
