//! Randomised-parity One-fail Adaptive: the AT/BT deadlock breaker.
//!
//! Stock One-fail Adaptive ([`crate::one_fail`]) alternates its AT and BT
//! rules strictly by slot parity *relative to activation*. Two station
//! groups activated one slot apart therefore land on **opposite** parities:
//! whenever one group runs an AT-step, the other runs a BT-step — and a
//! fresh BT-step (σ = 0) transmits with probability 1, so a group of two or
//! more fresh stations jams every one of the other group's AT-steps, and
//! vice versa, forever. The `Bursts [(0, 40), (1, 40)]` schedule never
//! completes (the parity deadlock of `crates/sim/DESIGN.md` §6).
//!
//! This variant keeps Algorithm 1's two rules and update amounts unchanged
//! and randomises only *which* slots are AT-steps: the parity of step `s`
//! is the Thue–Morse bit `t_{(s−1) mod 64}` (AT where the bit is 0) instead
//! of `s mod 2`. The pattern is
//!
//! * **balanced** — exactly 32 of every 64 steps are AT-steps, the same
//!   1/2 density the Theorem 1 analysis budgets for, so the makespan
//!   envelope carries over empirically (pinned by the regression tests);
//! * **shift-decorrelated** — the Thue–Morse word contains adjacent
//!   same-parity pairs (`00` and `11`), so two groups offset by one slot
//!   share AT-steps on a constant fraction of slots. Shared AT-steps are
//!   where both density estimators decay and lone transmissions get
//!   through: the two-cohort deadlock cannot lock in;
//! * **public and deterministic** — every station derives it from its own
//!   step counter, so stations activated together remain in lockstep and
//!   the protocol stays a [`FairProtocol`] servable by the cohort engine.
//!
//! Because the pattern is periodic with period 64, the schedule position is
//! `(s − 1) mod 64`: together with the two probability tracks it pins the
//! entire state, so the cohort engine's exact-merge contract holds with a
//! 64-valued phase instead of One-fail Adaptive's 2-valued parity.

use crate::error::ParameterError;
use crate::one_fail::{DELTA_MAX, PAPER_DELTA};
use crate::traits::FairProtocol;
use serde::{Deserialize, Serialize};

/// The 64-step AT/BT parity word: bit `n` is the Thue–Morse bit
/// `t_n = popcount(n) mod 2`. Balanced (32 ones) and cube-free, with both
/// `00` and `11` adjacent pairs — the property that de-synchronises groups
/// activated one slot apart.
const fn thue_morse_word() -> u64 {
    let mut word = 0u64;
    let mut n = 0u64;
    while n < 64 {
        word |= ((n.count_ones() as u64) & 1) << n;
        n += 1;
    }
    word
}

/// See [`thue_morse_word`].
pub const PARITY_WORD: u64 = thue_morse_word();

/// Deliveries between exact re-anchorings of the cached `log₂(σ + 1)`
/// (same policy as stock One-fail Adaptive).
const LOG2_REBASE_PERIOD: u64 = 4096;

/// Shared state of the randomised-parity One-fail Adaptive variant.
///
/// # Example
/// ```
/// use mac_protocols::{FairProtocol, RandomizedParityOneFail};
/// let mut rp = RandomizedParityOneFail::with_default_delta();
/// // Step 1 is an AT-step (Thue–Morse starts 0): p = 1/κ̃ = 1/(δ+1).
/// assert!((rp.transmission_probability() - 1.0 / 3.72).abs() < 1e-12);
/// rp.advance(false);
/// rp.advance(false);
/// // Steps 2 and 3 are BT-steps (t₁ = t₂ = 1): σ = 0, so p = 1.
/// assert_eq!(rp.transmission_probability(), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomizedParityOneFail {
    // lint:allow(checkpoint-coverage): construction parameter — restore
    // rebuilds it from the ProtocolKind that recreates the instance, so
    // the checkpoint carries only the mutable estimator state.
    delta: f64,
    /// Density estimator κ̃ (same update rule as Algorithm 1).
    kappa_estimate: f64,
    /// Messages-received counter σ.
    received: u64,
    /// Next communication step, numbered from 1 as in the paper.
    step: u64,
    /// Cached `log₂(σ + 1)`, Taylor-maintained as in stock One-fail
    /// Adaptive.
    log2_sigma: f64,
    /// Cached `1/(1 + log2_sigma)` — the BT-step probability.
    bt_probability: f64,
}

impl RandomizedParityOneFail {
    /// Creates the protocol state with the given `δ`.
    ///
    /// # Errors
    /// Returns an error if `δ` is outside `(e, Σ_{j=1..5}(5/6)^j]` — the
    /// variant keeps Algorithm 1's admissible range.
    pub fn try_new(delta: f64) -> Result<Self, ParameterError> {
        if !delta.is_finite() || delta <= std::f64::consts::E || delta > DELTA_MAX {
            return Err(ParameterError::new(
                "delta",
                delta,
                "randomised-parity One-fail requires e < delta <= sum_{j=1..5}(5/6)^j ~= 2.9906",
            ));
        }
        Ok(Self {
            delta,
            kappa_estimate: delta + 1.0,
            received: 0,
            step: 1,
            log2_sigma: 0.0,
            bt_probability: 1.0,
        })
    }

    /// Creates the protocol with the paper's simulation value `δ = 2.72`.
    pub fn with_default_delta() -> Self {
        Self::try_new(PAPER_DELTA).expect("paper delta is admissible")
    }

    /// The configured `δ`.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Current value of the density estimator `κ̃`.
    pub fn kappa_estimate(&self) -> f64 {
        self.kappa_estimate
    }

    /// Number of messages received so far, the paper's `σ`.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// True if the *next* step is a BT-step: the Thue–Morse bit of the
    /// step's position in the 64-step parity word.
    pub fn next_step_is_bt(&self) -> bool {
        (PARITY_WORD >> ((self.step - 1) % 64)) & 1 == 1
    }

    fn floor(&self) -> f64 {
        self.delta + 1.0
    }
}

impl FairProtocol for RandomizedParityOneFail {
    fn name(&self) -> &'static str {
        "randomized-parity-one-fail"
    }

    fn transmission_probability(&self) -> f64 {
        if self.next_step_is_bt() {
            self.bt_probability
        } else {
            1.0 / self.kappa_estimate
        }
    }

    fn advance(&mut self, delivered: bool) {
        let is_bt = self.next_step_is_bt();
        if !is_bt {
            // Algorithm 1, line 11: the estimator grows at every AT-step.
            self.kappa_estimate += 1.0;
        }
        if delivered {
            self.received += 1;
            if self.received < LOG2_REBASE_PERIOD
                || self.received.is_multiple_of(LOG2_REBASE_PERIOD)
            {
                self.log2_sigma = ((self.received + 1) as f64).log2();
            } else {
                // Same cubic-Taylor increment as stock One-fail Adaptive:
                // exact to ~1e-17 relative for σ + 1 ≥ 4096.
                let x = 1.0 / self.received as f64;
                let ln1p = x * (1.0 - x * (0.5 - x * (1.0 / 3.0)));
                self.log2_sigma += ln1p * std::f64::consts::LOG2_E;
            }
            self.bt_probability = 1.0 / (1.0 + self.log2_sigma);
            let decrement = if is_bt { self.delta } else { self.delta + 1.0 };
            self.kappa_estimate = (self.kappa_estimate - decrement).max(self.floor());
        }
        self.step += 1;
    }

    fn steps_elapsed(&self) -> u64 {
        self.step - 1
    }

    fn schedule_phase(&self) -> u64 {
        // Position within the 64-step parity word: the word is periodic, so
        // this pins which of the two rules every future slot applies.
        // Together with the tracks (1/κ̃ and the BT probability — injective
        // in (κ̃, σ)) it pins the entire state, so phase- and track-equal
        // cohorts merge exactly.
        (self.step - 1) % 64
    }

    fn probability_tracks(&self) -> (f64, f64) {
        (1.0 / self.kappa_estimate, self.bt_probability)
    }

    fn checkpoint_words(&self) -> Option<Vec<u64>> {
        // Taylor-maintained caches captured verbatim, as in stock One-fail
        // Adaptive: recomputation at restore time would drift differently
        // from the unbroken run.
        Some(vec![
            self.kappa_estimate.to_bits(),
            self.received,
            self.step,
            self.log2_sigma.to_bits(),
            self.bt_probability.to_bits(),
        ])
    }

    fn restore_words(&mut self, words: &[u64]) -> bool {
        let [kappa, received, step, log2_sigma, bt] = words else {
            return false;
        };
        self.kappa_estimate = f64::from_bits(*kappa);
        self.received = *received;
        self.step = *step;
        self.log2_sigma = f64::from_bits(*log2_sigma);
        self.bt_probability = f64::from_bits(*bt);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_word_is_thue_morse_and_balanced() {
        for n in 0..64u64 {
            assert_eq!(
                (PARITY_WORD >> n) & 1,
                (n.count_ones() as u64) & 1,
                "bit {n} must be the Thue–Morse bit"
            );
        }
        assert_eq!(PARITY_WORD.count_ones(), 32, "32 AT- and 32 BT-steps");
    }

    #[test]
    fn parity_word_desynchronises_unit_offsets() {
        // The deadlock breaker: a constant fraction of slots must be
        // AT-steps for *both* of two groups offset by one slot (cyclically,
        // since the word repeats every 64 steps).
        let shared_at = (0..64u64)
            .filter(|&n| {
                let here = (PARITY_WORD >> n) & 1;
                let next = (PARITY_WORD >> ((n + 1) % 64)) & 1;
                here == 0 && next == 0
            })
            .count();
        assert!(shared_at >= 8, "only {shared_at} shared AT slots");
    }

    #[test]
    fn rejects_delta_outside_algorithm_one_range() {
        assert!(RandomizedParityOneFail::try_new(std::f64::consts::E).is_err());
        assert!(RandomizedParityOneFail::try_new(2.0).is_err());
        assert!(RandomizedParityOneFail::try_new(f64::NAN).is_err());
        assert!(RandomizedParityOneFail::try_new(DELTA_MAX).is_ok());
    }

    #[test]
    fn update_rules_match_stock_one_fail_per_step_kind() {
        let mut rp = RandomizedParityOneFail::with_default_delta();
        // Step 1 is AT (t₀ = 0): silent AT-step increments κ̃.
        assert!(!rp.next_step_is_bt());
        let k0 = rp.kappa_estimate();
        rp.advance(false);
        assert!((rp.kappa_estimate() - (k0 + 1.0)).abs() < 1e-12);
        // Steps 2 and 3 are BT (t₁ = t₂ = 1): κ̃ unchanged when silent.
        assert!(rp.next_step_is_bt());
        rp.advance(false);
        assert!(rp.next_step_is_bt());
        assert!((rp.kappa_estimate() - (k0 + 1.0)).abs() < 1e-12);
        // A BT-step delivery: σ grows, κ̃ decreases by δ (floored).
        rp.advance(true);
        assert_eq!(rp.received(), 1);
        assert!((rp.bt_probability - 0.5).abs() < 1e-12);
    }

    #[test]
    fn phase_pins_the_parity_word_position() {
        let mut rp = RandomizedParityOneFail::with_default_delta();
        for expected in 0..130u64 {
            assert_eq!(rp.schedule_phase(), expected % 64);
            rp.advance(false);
        }
    }

    #[test]
    fn probability_is_always_valid() {
        let mut rp = RandomizedParityOneFail::try_new(2.99).unwrap();
        for i in 0..10_000 {
            let p = rp.transmission_probability();
            assert!((0.0..=1.0).contains(&p), "step {i}: p = {p}");
            rp.advance(i % 7 == 0);
        }
    }

    #[test]
    fn checkpoint_round_trips_bit_exactly() {
        let mut rp = RandomizedParityOneFail::with_default_delta();
        for i in 0..10_000u64 {
            rp.advance(i % 3 == 0);
        }
        let words = rp.checkpoint_words().unwrap();
        let mut restored = RandomizedParityOneFail::with_default_delta();
        assert!(restored.restore_words(&words));
        for _ in 0..1_000 {
            assert_eq!(
                restored.transmission_probability().to_bits(),
                rp.transmission_probability().to_bits()
            );
            rp.advance(false);
            restored.advance(false);
        }
    }
}
