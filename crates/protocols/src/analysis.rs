//! Closed-form quantities from the paper's analysis.
//!
//! This module collects, in one place, every analytical expression the paper
//! states so that the evaluation harness can print the "Analysis" column of
//! Table 1 and the tests can check measured behaviour against the proven
//! bounds:
//!
//! * Theorem 1 (One-fail Adaptive): makespan `2(δ+1)k + O(log² k)` with
//!   probability ≥ `1 − 2/(1+k)`, for `e < δ ≤ Σ_{j=1..5}(5/6)^j`;
//! * Theorem 2 (Exp Back-on/Back-off): makespan `4(1+1/δ)k` with probability
//!   ≥ `1 − 1/k^c`, for `0 < δ < 1/e` and big enough `k`;
//! * Lemma 1 (balls in bins): if `m ≥ (2e/(1−eδ)²)(1 + (β+1/2)·ln k)` balls
//!   are thrown into `w ≥ m` bins, fewer than `δm` singletons occur with
//!   probability at most `1/k^β`;
//! * the appendix quantities `τ = 300δ·ln(1+k)` and `M` (Lemma 5/6);
//! * the linear-regime constants quoted in §5: 7.4 for One-fail Adaptive,
//!   14.9 for Exp Back-on/Back-off, `(e+1+ξ)` -style constants for Log-fails
//!   Adaptive, `Θ(loglog k / logloglog k)` for Loglog-iterated Back-off, and
//!   the fair-protocol optimum `e`.

use crate::error::ParameterError;
use crate::one_fail::DELTA_MAX;

/// The optimum slots-per-message ratio achievable by any *fair* protocol
/// (every station using the same transmission probability in a slot): `e`.
///
/// Quoted at the end of §5 of the paper as the reference point for the
/// measured ratios.
pub fn fair_protocol_optimal_ratio() -> f64 {
    std::f64::consts::E
}

// ---------------------------------------------------------------------------
// One-fail Adaptive (Theorem 1 and appendix lemmata)
// ---------------------------------------------------------------------------

/// The linear-regime slots-per-message factor of One-fail Adaptive:
/// `2(δ+1)`. For the paper's `δ = 2.72` this is the 7.44 ≈ 7.4 of Table 1.
///
/// # Errors
/// Returns an error if `δ` is outside Theorem 1's range.
pub fn ofa_linear_factor(delta: f64) -> Result<f64, ParameterError> {
    validate_ofa_delta(delta)?;
    Ok(2.0 * (delta + 1.0))
}

/// Theorem 1's success probability: `1 − 2/(1+k)`.
pub fn ofa_success_probability(k: u64) -> f64 {
    1.0 - 2.0 / (1.0 + k as f64)
}

/// The round threshold `τ = 300·δ·ln(1+k)` used throughout the appendix
/// analysis of One-fail Adaptive.
///
/// # Errors
/// Returns an error if `δ` is outside Theorem 1's range.
pub fn ofa_tau(delta: f64, k: u64) -> Result<f64, ParameterError> {
    validate_ofa_delta(delta)?;
    Ok(300.0 * delta * (1.0 + k as f64).ln())
}

/// The message threshold `M` of Lemmas 5 and 6:
/// `M = ((δ+1)·ln δ − 1)/(ln δ − 1) · S + ((γ+2τ+1)·ln δ − 1)/(ln δ − 1)`
/// with `S = 2·Σ_{j=0..4}(5/6)^j·τ` and `γ = (δ−1)(3−δ)/(δ−2)`.
///
/// Below `M` messages, the BT algorithm finishes the job in
/// `O(log k · ln(1+k))` slots (Lemma 6); above it, the AT algorithm delivers
/// with high probability (Lemma 5).
///
/// # Errors
/// Returns an error if `δ` is outside Theorem 1's range.
pub fn ofa_bt_threshold(delta: f64, k: u64) -> Result<f64, ParameterError> {
    validate_ofa_delta(delta)?;
    let tau = ofa_tau(delta, k)?;
    let gamma = (delta - 1.0) * (3.0 - delta) / (delta - 2.0);
    let s: f64 = 2.0 * (0..=4).map(|j| (5.0f64 / 6.0).powi(j)).sum::<f64>() * tau;
    let ln_d = delta.ln();
    Ok(((delta + 1.0) * ln_d - 1.0) / (ln_d - 1.0) * s
        + ((gamma + 2.0 * tau + 1.0) * ln_d - 1.0) / (ln_d - 1.0))
}

/// A usable upper bound on the makespan of One-fail Adaptive of the form of
/// Theorem 1: `2(δ+1)·k` plus the additive term contributed by the BT
/// endgame, estimated as `c_bt · log₂(k) · ln(1+k)` slots.
///
/// The constant in Theorem 1's `O(log² k)` is not made explicit in the paper;
/// `c_bt` defaults to 4 in [`ofa_makespan_bound`], which the integration
/// tests verify to dominate the measured makespan for all simulated sizes.
///
/// # Errors
/// Returns an error if `δ` is outside Theorem 1's range.
pub fn ofa_makespan_bound_with_constant(
    delta: f64,
    k: u64,
    c_bt: f64,
) -> Result<f64, ParameterError> {
    let linear = ofa_linear_factor(delta)? * k as f64;
    let kf = (k.max(2)) as f64;
    Ok(linear + c_bt * kf.log2() * (1.0 + kf).ln())
}

/// [`ofa_makespan_bound_with_constant`] with the default additive constant 4.
///
/// # Errors
/// Returns an error if `δ` is outside Theorem 1's range.
pub fn ofa_makespan_bound(delta: f64, k: u64) -> Result<f64, ParameterError> {
    ofa_makespan_bound_with_constant(delta, k, 4.0)
}

fn validate_ofa_delta(delta: f64) -> Result<(), ParameterError> {
    if !delta.is_finite() || delta <= std::f64::consts::E || delta > DELTA_MAX {
        return Err(ParameterError::new(
            "delta",
            delta,
            "One-fail Adaptive analysis requires e < delta <= 2.9906",
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Exp Back-on/Back-off (Theorem 2 and Lemma 1)
// ---------------------------------------------------------------------------

/// The makespan bound of Theorem 2 expressed as a slots-per-message factor:
/// `4(1 + 1/δ)`. For the paper's `δ = 0.366` this is the 14.93 ≈ 14.9 of
/// Table 1.
///
/// # Errors
/// Returns an error if `δ` is outside Theorem 2's range `(0, 1/e)`.
pub fn ebb_linear_factor(delta: f64) -> Result<f64, ParameterError> {
    validate_ebb_delta(delta)?;
    Ok(4.0 * (1.0 + 1.0 / delta))
}

/// Theorem 2's makespan bound `4(1 + 1/δ)·k`.
///
/// # Errors
/// Returns an error if `δ` is outside Theorem 2's range.
pub fn ebb_makespan_bound(delta: f64, k: u64) -> Result<f64, ParameterError> {
    Ok(ebb_linear_factor(delta)? * k as f64)
}

/// Lemma 1's minimum batch size: for the "`δ` fraction delivered per round"
/// guarantee to hold with probability `1 − 1/k^β`, the number of remaining
/// messages must be at least `(2e/(1−eδ)²)·(1 + (β+1/2)·ln k)`.
///
/// # Errors
/// Returns an error if `δ` is outside `(0, 1/e)` or `β ≤ 0`.
pub fn ebb_lemma1_min_messages(delta: f64, beta: f64, k: u64) -> Result<f64, ParameterError> {
    validate_ebb_delta(delta)?;
    if !beta.is_finite() || beta <= 0.0 {
        return Err(ParameterError::new(
            "beta",
            beta,
            "Lemma 1 requires beta > 0",
        ));
    }
    let e = std::f64::consts::E;
    Ok(2.0 * e / (1.0 - e * delta).powi(2) * (1.0 + (beta + 0.5) * (k as f64).ln()))
}

/// Lemma 1's failure probability bound `1/k^β` for one round.
pub fn ebb_lemma1_failure_probability(k: u64, beta: f64) -> f64 {
    (k as f64).powf(-beta)
}

fn validate_ebb_delta(delta: f64) -> Result<(), ParameterError> {
    if !delta.is_finite() || delta <= 0.0 || delta >= 1.0 / std::f64::consts::E {
        return Err(ParameterError::new(
            "delta",
            delta,
            "Exp Back-on/Back-off analysis requires 0 < delta < 1/e",
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Baselines: Log-fails Adaptive, Loglog-iterated Back-off, exponential back-off
// ---------------------------------------------------------------------------

/// The linear-regime slots-per-message constant of Log-fails Adaptive, as
/// used for the "Analysis" column of Table 1:
/// `(e + 1 + ξδ + ξβ)/(1 − ξt)`.
///
/// With the paper's `ξδ = ξβ = 0.1` this gives ≈ 7.8 for `ξt = 1/2` and
/// ≈ 4.4 for `ξt = 1/10`, matching the table.
pub fn lfa_analysis_factor(xi_delta: f64, xi_beta: f64, xi_t: f64) -> f64 {
    (std::f64::consts::E + 1.0 + xi_delta + xi_beta) / (1.0 - xi_t)
}

/// The asymptotic slots-per-message ratio of Loglog-iterated Back-off,
/// `Θ(log log k / log log log k)`, evaluated with unit constant (the paper
/// reports the Θ-expression itself in the Analysis column; this function is
/// used to check the *growth shape* of the measured ratios).
///
/// Returns `None` for `k` too small for the iterated logarithms to be
/// defined (k ≤ 16).
pub fn llib_ratio_shape(k: u64) -> Option<f64> {
    if k <= 16 {
        return None;
    }
    let kf = k as f64;
    let ll = kf.ln().ln();
    let lll = kf.ln().ln().ln();
    if lll <= 0.0 {
        return None;
    }
    Some(ll / lll)
}

/// The asymptotic slots-per-message ratio of r-exponential back-off,
/// `Θ(log_{log r} log k)`, evaluated with unit constant.
///
/// Returns `None` when the expression is undefined (`k ≤ 2` or `log r ≤ 1`,
/// i.e. `r ≤ e`... the paper's statement is for constant `r > 1`; here the
/// base of the outer logarithm is `max(log r, 1 + 1e-9)` to keep the shape
/// defined for the common `r = 2`).
pub fn exp_backoff_ratio_shape(r: f64, k: u64) -> Option<f64> {
    if k <= 2 || r <= 1.0 {
        return None;
    }
    let base = (r.ln()).max(1.0 + 1e-9);
    Some((k as f64).ln().ln() / base.ln().max(1e-9))
}

/// The five "Analysis" column entries of Table 1, in the paper's row order
/// (LFA ξt=1/2, LFA ξt=1/10, OFA, EBB, LLIB). The LLIB entry is the
/// Θ-expression evaluated at `k`, the others are constants.
pub fn table1_analysis_column(k: u64) -> Vec<(String, Option<f64>)> {
    vec![
        (
            "Log-fails Adaptive xi_t=1/2".to_string(),
            Some(lfa_analysis_factor(0.1, 0.1, 0.5)),
        ),
        (
            "Log-fails Adaptive xi_t=1/10".to_string(),
            Some(lfa_analysis_factor(0.1, 0.1, 0.1)),
        ),
        (
            "One-fail Adaptive".to_string(),
            Some(ofa_linear_factor(2.72).expect("paper delta is valid")),
        ),
        (
            "Exp Back-on/Back-off".to_string(),
            Some(ebb_linear_factor(0.366).expect("paper delta is valid")),
        ),
        ("Loglog-iterated Back-off".to_string(), llib_ratio_shape(k)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ofa_factor_matches_table1() {
        // 2(2.72 + 1) = 7.44, printed as 7.4 in the paper.
        let f = ofa_linear_factor(2.72).unwrap();
        assert!((f - 7.44).abs() < 1e-12);
        assert_eq!(format!("{:.1}", f), "7.4");
    }

    #[test]
    fn ebb_factor_matches_table1() {
        // 4(1 + 1/0.366) = 14.93, printed as 14.9 in the paper.
        let f = ebb_linear_factor(0.366).unwrap();
        assert!((f - (4.0 * (1.0 + 1.0 / 0.366))).abs() < 1e-12);
        assert_eq!(format!("{:.1}", f), "14.9");
    }

    #[test]
    fn lfa_factors_match_table1() {
        assert_eq!(format!("{:.1}", lfa_analysis_factor(0.1, 0.1, 0.5)), "7.8");
        assert_eq!(format!("{:.1}", lfa_analysis_factor(0.1, 0.1, 0.1)), "4.4");
    }

    #[test]
    fn fair_optimum_is_e() {
        assert_eq!(fair_protocol_optimal_ratio(), std::f64::consts::E);
        // Every protocol's linear factor must exceed the fair optimum.
        assert!(ofa_linear_factor(2.72).unwrap() > fair_protocol_optimal_ratio());
        assert!(ebb_linear_factor(0.366).unwrap() > fair_protocol_optimal_ratio());
    }

    #[test]
    fn ofa_success_probability_tends_to_one() {
        assert!(ofa_success_probability(1) < ofa_success_probability(100));
        assert!(ofa_success_probability(100) < ofa_success_probability(1_000_000));
        assert!(ofa_success_probability(1_000_000) < 1.0);
        assert!((ofa_success_probability(999) - (1.0 - 2.0 / 1000.0)).abs() < 1e-12);
    }

    #[test]
    fn ofa_tau_and_threshold_are_logarithmic() {
        let tau3 = ofa_tau(2.72, 1000).unwrap();
        let tau6 = ofa_tau(2.72, 1_000_000).unwrap();
        assert!(tau6 / tau3 < 2.1, "tau grows only logarithmically");
        let m3 = ofa_bt_threshold(2.72, 1000).unwrap();
        let m6 = ofa_bt_threshold(2.72, 1_000_000).unwrap();
        assert!(m3 > 0.0 && m6 > m3);
        assert!(m6 / m3 < 2.1, "M grows only logarithmically");
        // M is a (large-constant) multiple of tau.
        assert!(m3 > tau3);
    }

    #[test]
    fn ofa_makespan_bound_is_dominated_by_linear_term_for_large_k() {
        let k = 1_000_000u64;
        let bound = ofa_makespan_bound(2.72, k).unwrap();
        let linear = ofa_linear_factor(2.72).unwrap() * k as f64;
        assert!(bound > linear);
        assert!(bound < 1.01 * linear, "additive term is o(k)");
        // For small k the additive term matters: at k = 10 it contributes
        // more than 30% on top of the linear term.
        let small = ofa_makespan_bound(2.72, 10).unwrap();
        assert!(small > ofa_linear_factor(2.72).unwrap() * 10.0 * 1.3);
    }

    #[test]
    fn ebb_lemma1_threshold_grows_with_beta_and_delta() {
        let base = ebb_lemma1_min_messages(0.2, 1.0, 1000).unwrap();
        let higher_beta = ebb_lemma1_min_messages(0.2, 2.0, 1000).unwrap();
        let higher_delta = ebb_lemma1_min_messages(0.3, 1.0, 1000).unwrap();
        assert!(higher_beta > base);
        assert!(
            higher_delta > base,
            "delta closer to 1/e needs more messages"
        );
        assert!(ebb_lemma1_failure_probability(1000, 1.0) == 1e-3);
    }

    #[test]
    fn analysis_rejects_out_of_range_parameters() {
        assert!(ofa_linear_factor(2.0).is_err());
        assert!(ofa_linear_factor(3.2).is_err());
        assert!(ofa_tau(1.0, 10).is_err());
        assert!(ofa_bt_threshold(5.0, 10).is_err());
        assert!(ebb_linear_factor(0.5).is_err());
        assert!(ebb_linear_factor(0.0).is_err());
        assert!(ebb_makespan_bound(-1.0, 10).is_err());
        assert!(ebb_lemma1_min_messages(0.2, 0.0, 10).is_err());
    }

    #[test]
    fn llib_shape_is_slowly_growing() {
        // In the asymptotic regime (beyond the small-k dip of the iterated
        // logarithms) the shape grows, but extremely slowly.
        let r2 = llib_ratio_shape(1_000_000).unwrap();
        let r3 = llib_ratio_shape(10_000_000_000).unwrap();
        assert!(r2 < r3);
        assert!(r3 < 5.0, "loglog/logloglog grows extremely slowly");
        assert!(llib_ratio_shape(1_000).unwrap() > 0.0);
        assert!(llib_ratio_shape(10).is_none());
    }

    #[test]
    fn exp_backoff_shape_is_defined_for_r2() {
        let s = exp_backoff_ratio_shape(2.0, 1_000_000).unwrap();
        assert!(s > 0.0);
        assert!(exp_backoff_ratio_shape(2.0, 2).is_none());
        assert!(exp_backoff_ratio_shape(0.5, 100).is_none());
    }

    #[test]
    fn table1_analysis_column_matches_paper_values() {
        let col = table1_analysis_column(1_000_000);
        assert_eq!(col.len(), 5);
        assert_eq!(format!("{:.1}", col[0].1.unwrap()), "7.8");
        assert_eq!(format!("{:.1}", col[1].1.unwrap()), "4.4");
        assert_eq!(format!("{:.1}", col[2].1.unwrap()), "7.4");
        assert_eq!(format!("{:.1}", col[3].1.unwrap()), "14.9");
        assert!(col[4].1.is_some());
    }
}
