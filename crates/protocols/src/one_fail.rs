//! One-fail Adaptive (Algorithm 1 of the paper).
//!
//! One-fail Adaptive is the paper's main contribution: a randomized protocol
//! for static k-selection that needs **no information whatsoever** about the
//! number of contenders (not even an upper bound) and no collision detection,
//! yet solves the problem in `2(δ+1)k + O(log² k)` slots with probability at
//! least `1 − 2/(1+k)` (Theorem 1).
//!
//! The protocol interleaves two transmission rules, one per slot parity
//! (communication steps are numbered 1, 2, 3, … as in the paper):
//!
//! * **AT-steps** (odd steps): intended for the regime where many messages
//!   remain. The station transmits with probability `1/κ̃`, where `κ̃` is a
//!   running *density estimator* of the number of messages left. After every
//!   AT-step the estimator is incremented by one; every time a message of
//!   another station is heard, the estimator is decreased by `δ+1` (AT-step)
//!   or `δ` (BT-step), never dropping below `δ+1`.
//! * **BT-steps** (even steps): intended for the endgame where few messages
//!   remain. The station transmits with probability `1/(1 + log₂(σ+1))`,
//!   where `σ` counts the messages received so far.
//!
//! Both rules act on *public* information (slot parity and the deliveries
//! heard on the channel), so every active station holds exactly the same
//! state under batched arrivals: One-fail Adaptive is a fair protocol and is
//! exposed here as a [`FairProtocol`].
//!
//! The crucial difference with its predecessor Log-fails Adaptive
//! ([`crate::log_fails`]) is that the density estimator is updated *every*
//! step and the BT probability adapts to `σ`, which removes the need to know
//! `ε` (and hence `n`).

use crate::error::ParameterError;
use crate::traits::FairProtocol;
use serde::{Deserialize, Serialize};

/// Largest admissible `δ`: `Σ_{j=1..5} (5/6)^j = 23255/7776 ≈ 2.9906`.
pub const DELTA_MAX: f64 = 23255.0 / 7776.0;

/// The `δ` used in the paper's simulations (§5).
pub const PAPER_DELTA: f64 = 2.72;

/// Shared state of the One-fail Adaptive protocol (Algorithm 1).
///
/// # Example
/// ```
/// use mac_protocols::{FairProtocol, OneFailAdaptive};
/// let mut ofa = OneFailAdaptive::with_default_delta();
/// // Step 1 (AT): transmit with probability 1/κ̃ = 1/(δ+1).
/// assert!((ofa.transmission_probability() - 1.0 / 3.72).abs() < 1e-12);
/// ofa.advance(false);
/// // Step 2 (BT): σ = 0, so the probability is 1/(1 + log2(1)) = 1.
/// assert_eq!(ofa.transmission_probability(), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OneFailAdaptive {
    // lint:allow(checkpoint-coverage): construction parameter — restore
    // rebuilds it from the ProtocolKind that recreates the instance, so
    // the checkpoint carries only the mutable estimator state.
    delta: f64,
    /// Density estimator κ̃.
    kappa_estimate: f64,
    /// Messages-received counter σ.
    received: u64,
    /// Next communication step, numbered from 1 as in the paper.
    step: u64,
    /// Cached `log₂(σ + 1)`, maintained incrementally so that the BT-step
    /// probability costs no transcendental per query (the aggregate
    /// simulator queries it every other slot). Equal to the direct formula
    /// up to a few ulps; re-anchored exactly every
    /// [`LOG2_REBASE_PERIOD`] deliveries.
    log2_sigma: f64,
    /// Cached `1/(1 + log2_sigma)` — the BT-step probability, refreshed on
    /// every delivery so the per-slot query is a field read, not a division.
    bt_probability: f64,
}

/// Deliveries between exact re-anchorings of the cached `log₂(σ + 1)`.
const LOG2_REBASE_PERIOD: u64 = 4096;

impl OneFailAdaptive {
    /// Creates the protocol state with the given `δ`.
    ///
    /// # Panics
    /// Panics if `δ` is outside `(e, Σ_{j=1..5}(5/6)^j]`. Use
    /// [`OneFailAdaptive::try_new`] for fallible construction.
    pub fn new(delta: f64) -> Self {
        Self::try_new(delta).expect("invalid One-fail Adaptive parameter")
    }

    /// Creates the protocol state with the given `δ`.
    ///
    /// # Errors
    /// Returns an error if `δ` is outside `(e, Σ_{j=1..5}(5/6)^j]`
    /// (Theorem 1's admissible range).
    pub fn try_new(delta: f64) -> Result<Self, ParameterError> {
        if !delta.is_finite() || delta <= std::f64::consts::E || delta > DELTA_MAX {
            return Err(ParameterError::new(
                "delta",
                delta,
                "One-fail Adaptive requires e < delta <= sum_{j=1..5}(5/6)^j ~= 2.9906",
            ));
        }
        Ok(Self {
            delta,
            kappa_estimate: delta + 1.0,
            received: 0,
            step: 1,
            log2_sigma: 0.0,
            bt_probability: 1.0,
        })
    }

    /// Creates the protocol with the paper's simulation value `δ = 2.72`.
    pub fn with_default_delta() -> Self {
        Self::new(PAPER_DELTA)
    }

    /// The configured `δ`.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Current value of the density estimator `κ̃`.
    pub fn kappa_estimate(&self) -> f64 {
        self.kappa_estimate
    }

    /// Number of messages received (deliveries of other stations heard) so
    /// far, the paper's `σ`.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// True if the *next* step is a BT-step (paper: steps ≡ 0 mod 2).
    pub fn next_step_is_bt(&self) -> bool {
        self.step.is_multiple_of(2)
    }

    fn floor(&self) -> f64 {
        self.delta + 1.0
    }
}

impl FairProtocol for OneFailAdaptive {
    fn name(&self) -> &'static str {
        "one-fail-adaptive"
    }

    fn transmission_probability(&self) -> f64 {
        if self.next_step_is_bt() {
            // BT-step: 1/(1 + log2(σ + 1)), precomputed at the last delivery.
            self.bt_probability
        } else {
            // AT-step: 1/κ̃ (κ̃ ≥ δ+1 > 1, so this is a valid probability).
            1.0 / self.kappa_estimate
        }
    }

    fn advance(&mut self, delivered: bool) {
        let is_bt = self.next_step_is_bt();
        if !is_bt {
            // Task 1, line 11: the estimator grows by one at every AT-step.
            self.kappa_estimate += 1.0;
        }
        if delivered {
            // Task 2: a message of another station was received.
            self.received += 1;
            if self.received < LOG2_REBASE_PERIOD
                || self.received.is_multiple_of(LOG2_REBASE_PERIOD)
            {
                self.log2_sigma = ((self.received + 1) as f64).log2();
            } else {
                // log2(σ+2) = log2(σ+1) + log2(1 + 1/(σ+1)); for σ+1 ≥ 4096
                // a cubic Taylor polynomial of ln(1+x) is exact to ~1e-17
                // relative, so no transcendental is paid per delivery.
                let x = 1.0 / self.received as f64;
                let ln1p = x * (1.0 - x * (0.5 - x * (1.0 / 3.0)));
                self.log2_sigma += ln1p * std::f64::consts::LOG2_E;
            }
            self.bt_probability = 1.0 / (1.0 + self.log2_sigma);
            let decrement = if is_bt { self.delta } else { self.delta + 1.0 };
            self.kappa_estimate = (self.kappa_estimate - decrement).max(self.floor());
        }
        self.step += 1;
    }

    fn steps_elapsed(&self) -> u64 {
        self.step - 1
    }

    fn schedule_phase(&self) -> u64 {
        // The AT/BT parity: it fully determines which update rule the next
        // slot applies. Together with the two track probabilities (1/κ̃ and
        // the BT probability, i.e. κ̃ and σ) the parity pins the entire
        // state, so phase- and track-equal cohorts merge exactly.
        self.step % 2
    }

    fn probability_tracks(&self) -> (f64, f64) {
        // Both cached tracks, not just the one the current parity uses: at a
        // fixed parity, (1/κ̃, BT probability) is injective in (κ̃, σ), so
        // bit equality of phase + tracks is an exact state fingerprint.
        (1.0 / self.kappa_estimate, self.bt_probability)
    }

    fn checkpoint_words(&self) -> Option<Vec<u64>> {
        // The cached log₂(σ+1) and BT probability are Taylor-maintained with
        // periodic exact re-anchoring; they are captured verbatim because a
        // recomputation at restore time would re-anchor and then drift
        // differently from the unbroken run.
        Some(vec![
            self.kappa_estimate.to_bits(),
            self.received,
            self.step,
            self.log2_sigma.to_bits(),
            self.bt_probability.to_bits(),
        ])
    }

    fn restore_words(&mut self, words: &[u64]) -> bool {
        let [kappa, received, step, log2_sigma, bt] = words else {
            return false;
        };
        self.kappa_estimate = f64::from_bits(*kappa);
        self.received = *received;
        self.step = *step;
        self.log2_sigma = f64::from_bits(*log2_sigma);
        self.bt_probability = f64::from_bits(*bt);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_delta_is_admissible() {
        const { assert!(PAPER_DELTA > std::f64::consts::E) };
        const { assert!(PAPER_DELTA <= DELTA_MAX) };
        let ofa = OneFailAdaptive::with_default_delta();
        assert_eq!(ofa.delta(), PAPER_DELTA);
    }

    #[test]
    fn delta_max_matches_geometric_sum() {
        let sum: f64 = (1..=5).map(|j| (5.0f64 / 6.0).powi(j)).sum();
        assert!((DELTA_MAX - sum).abs() < 1e-12);
    }

    #[test]
    fn rejects_delta_outside_range() {
        assert!(OneFailAdaptive::try_new(std::f64::consts::E).is_err());
        assert!(OneFailAdaptive::try_new(2.0).is_err());
        assert!(OneFailAdaptive::try_new(3.0).is_err());
        assert!(OneFailAdaptive::try_new(f64::NAN).is_err());
        assert!(OneFailAdaptive::try_new(2.99).is_ok());
        assert!(OneFailAdaptive::try_new(DELTA_MAX).is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid One-fail Adaptive parameter")]
    fn new_panics_on_invalid_delta() {
        let _ = OneFailAdaptive::new(1.0);
    }

    #[test]
    fn initial_state_matches_algorithm_one() {
        let ofa = OneFailAdaptive::with_default_delta();
        assert_eq!(ofa.kappa_estimate(), PAPER_DELTA + 1.0);
        assert_eq!(ofa.received(), 0);
        assert_eq!(ofa.steps_elapsed(), 0);
        assert!(!ofa.next_step_is_bt(), "step 1 is an AT-step");
    }

    #[test]
    fn step_parity_alternates_starting_with_at() {
        let mut ofa = OneFailAdaptive::with_default_delta();
        for i in 0..10 {
            assert_eq!(ofa.next_step_is_bt(), i % 2 == 1, "step {}", i + 1);
            ofa.advance(false);
        }
        assert_eq!(ofa.steps_elapsed(), 10);
    }

    #[test]
    fn at_step_probability_is_inverse_estimator() {
        let mut ofa = OneFailAdaptive::with_default_delta();
        assert!((ofa.transmission_probability() - 1.0 / 3.72).abs() < 1e-12);
        // Two silent steps: the AT-step increments κ̃ to 4.72, the BT-step
        // leaves it unchanged, so the next AT-step uses 1/4.72.
        ofa.advance(false);
        ofa.advance(false);
        assert!((ofa.transmission_probability() - 1.0 / 4.72).abs() < 1e-12);
    }

    #[test]
    fn bt_step_probability_is_inverse_log_of_received() {
        let mut ofa = OneFailAdaptive::with_default_delta();
        ofa.advance(false); // step 1 (AT) done; step 2 is BT, σ = 0
        assert_eq!(ofa.transmission_probability(), 1.0);
        // Hear 3 deliveries across the next steps, then check a BT-step.
        ofa.advance(true); // step 2 (BT)
        ofa.advance(true); // step 3 (AT)
        ofa.advance(true); // step 4 (BT)
        assert_eq!(ofa.received(), 3);
        // Step 5 is AT; advance silently to reach BT step 6.
        ofa.advance(false);
        assert!(ofa.next_step_is_bt());
        let expected = 1.0 / (1.0 + 4.0f64.log2());
        assert!((ofa.transmission_probability() - expected).abs() < 1e-12);
    }

    #[test]
    fn estimator_grows_by_one_per_silent_at_step() {
        let mut ofa = OneFailAdaptive::with_default_delta();
        let k0 = ofa.kappa_estimate();
        for _ in 0..20 {
            ofa.advance(false);
        }
        // 10 of the 20 steps are AT-steps.
        assert!((ofa.kappa_estimate() - (k0 + 10.0)).abs() < 1e-12);
    }

    #[test]
    fn delivery_in_at_step_decreases_estimator_by_delta_net() {
        let mut ofa = OneFailAdaptive::with_default_delta();
        // Inflate the estimator first so that the floor does not clip.
        for _ in 0..40 {
            ofa.advance(false);
        }
        let before = ofa.kappa_estimate();
        assert!(!ofa.next_step_is_bt());
        ofa.advance(true); // AT-step with a delivery: +1 then −(δ+1) = −δ net
        assert!((ofa.kappa_estimate() - (before - PAPER_DELTA)).abs() < 1e-12);
    }

    #[test]
    fn delivery_in_bt_step_decreases_estimator_by_delta() {
        let mut ofa = OneFailAdaptive::with_default_delta();
        for _ in 0..41 {
            ofa.advance(false);
        }
        assert!(ofa.next_step_is_bt());
        let before = ofa.kappa_estimate();
        ofa.advance(true); // BT-step with a delivery: −δ, no increment
        assert!((ofa.kappa_estimate() - (before - PAPER_DELTA)).abs() < 1e-12);
    }

    #[test]
    fn estimator_never_drops_below_floor() {
        let mut ofa = OneFailAdaptive::with_default_delta();
        for _ in 0..100 {
            ofa.advance(true);
            assert!(ofa.kappa_estimate() >= PAPER_DELTA + 1.0 - 1e-12);
        }
        assert_eq!(ofa.received(), 100);
    }

    #[test]
    fn cached_bt_log_tracks_the_direct_formula_at_scale() {
        // The incrementally maintained log2(σ+1) must match a fresh
        // evaluation to ulp-level accuracy across the rebase boundary and
        // deep into the Taylor regime.
        let mut ofa = OneFailAdaptive::with_default_delta();
        for _ in 0..100_000u64 {
            ofa.advance(true);
        }
        // Park on a BT step to read the BT probability.
        if !ofa.next_step_is_bt() {
            ofa.advance(false);
        }
        let direct = 1.0 / (1.0 + ((ofa.received() + 1) as f64).log2());
        let cached = ofa.transmission_probability();
        assert!(
            (cached - direct).abs() / direct < 1e-12,
            "cached {cached} vs direct {direct}"
        );
    }

    #[test]
    fn probability_is_always_valid() {
        let mut ofa = OneFailAdaptive::new(2.99);
        for i in 0..10_000 {
            let p = ofa.transmission_probability();
            assert!((0.0..=1.0).contains(&p), "step {i}: p = {p}");
            // Mix of deliveries and silence.
            ofa.advance(i % 7 == 0);
        }
    }
}
