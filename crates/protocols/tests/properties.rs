//! Property-based tests for the protocol state machines.
//!
//! These check the invariants that the simulators rely on: probabilities stay
//! in `[0, 1]`, estimators respect their floors, window schedules produce
//! positive windows with the right monotonicity structure, and the adapters
//! ([`FairNode`], [`WindowNode`]) behave identically to the shared state they
//! wrap.

use mac_channel::Observation;
use mac_prob::rng::Xoshiro256pp;
use mac_protocols::analysis;
use mac_protocols::{
    ExpBackonBackoff, FairNode, FairProtocol, KnownKOracle, LogFailsAdaptive, LogFailsConfig,
    LoglogIteratedBackoff, OneFailAdaptive, Protocol, ProtocolKind, RExponentialBackoff,
    WindowSchedule,
};
use proptest::prelude::*;
use rand::SeedableRng;

/// Valid δ range for One-fail Adaptive (strictly inside the admissible
/// interval so that floating-point rounding cannot push it out).
fn ofa_delta() -> impl Strategy<Value = f64> {
    2.72f64..=2.99
}

/// Valid δ range for Exp Back-on/Back-off.
fn ebb_delta() -> impl Strategy<Value = f64> {
    0.01f64..=0.36
}

proptest! {
    #[test]
    fn ofa_probability_and_floor_invariants(
        delta in ofa_delta(),
        deliveries in prop::collection::vec(any::<bool>(), 1..400),
    ) {
        let mut ofa = OneFailAdaptive::try_new(delta).unwrap();
        for &delivered in &deliveries {
            let p = ofa.transmission_probability();
            prop_assert!((0.0..=1.0).contains(&p));
            ofa.advance(delivered);
            prop_assert!(ofa.kappa_estimate() >= delta + 1.0 - 1e-9);
        }
        prop_assert_eq!(ofa.steps_elapsed(), deliveries.len() as u64);
        let heard = deliveries.iter().filter(|&&d| d).count() as u64;
        prop_assert_eq!(ofa.received(), heard);
    }

    #[test]
    fn ofa_estimator_never_exceeds_initial_plus_at_steps(
        delta in ofa_delta(),
        deliveries in prop::collection::vec(any::<bool>(), 1..400),
    ) {
        // κ̃ grows by at most one per AT-step, so it can never exceed its
        // initial value plus the number of AT-steps elapsed — the property
        // used in the proof of Lemma 5 ("the density estimator never exceeds
        // the actual density" requires this growth bound).
        let mut ofa = OneFailAdaptive::try_new(delta).unwrap();
        let initial = ofa.kappa_estimate();
        let mut at_steps = 0u64;
        for (i, &delivered) in deliveries.iter().enumerate() {
            if i % 2 == 0 {
                at_steps += 1; // steps 1, 3, 5, … are AT-steps
            }
            ofa.advance(delivered);
            prop_assert!(ofa.kappa_estimate() <= initial + at_steps as f64 + 1e-9);
        }
    }

    #[test]
    fn lfa_probability_and_floor_invariants(
        xi_t in 0.05f64..=0.5,
        k in 1u64..=1_000_000,
        deliveries in prop::collection::vec(any::<bool>(), 1..400),
    ) {
        let config = LogFailsConfig::paper(xi_t, k);
        let mut lfa = LogFailsAdaptive::try_new(config).unwrap();
        let floor = lfa.kappa_estimate();
        for &delivered in &deliveries {
            let p = lfa.transmission_probability();
            prop_assert!((0.0..=1.0).contains(&p));
            lfa.advance(delivered);
            prop_assert!(lfa.kappa_estimate() >= floor - 1e-9);
        }
    }

    #[test]
    fn oracle_probability_is_exactly_inverse_remaining(
        k in 0u64..=10_000,
        deliveries in prop::collection::vec(any::<bool>(), 0..200),
    ) {
        let mut oracle = KnownKOracle::new(k);
        let mut remaining = k;
        for &d in &deliveries {
            if remaining == 0 {
                prop_assert_eq!(oracle.transmission_probability(), 0.0);
            } else {
                prop_assert!((oracle.transmission_probability() - 1.0 / remaining as f64).abs() < 1e-15);
            }
            oracle.advance(d);
            if d {
                remaining = remaining.saturating_sub(1);
            }
        }
        prop_assert_eq!(oracle.remaining(), remaining);
    }

    #[test]
    fn ebb_windows_are_positive_and_phase_starts_double(delta in ebb_delta()) {
        let mut ebb = ExpBackonBackoff::try_new(delta).unwrap();
        let mut last_phase = 0u32;
        let mut expected_start = 2u64;
        for _ in 0..300 {
            let w = ebb.next_window();
            prop_assert!(w >= 1);
            let phase = ebb.phase();
            if phase != last_phase {
                prop_assert_eq!(w, expected_start, "first window of phase {}", phase);
                expected_start = expected_start.saturating_mul(2);
                last_phase = phase;
            }
        }
    }

    #[test]
    fn window_schedules_emit_positive_windows(r in 1.1f64..=8.0) {
        let mut llib = LoglogIteratedBackoff::try_new(r).unwrap();
        let mut exp = RExponentialBackoff::try_new(r).unwrap();
        let mut prev_llib = 0u64;
        let mut prev_exp = 0u64;
        for _ in 0..200 {
            let w1 = llib.next_window();
            let w2 = exp.next_window();
            prop_assert!(w1 >= 1 && w2 >= 1);
            prop_assert!(w1 >= prev_llib, "loglog-iterated is monotone");
            prop_assert!(w2 >= prev_exp, "exponential is monotone");
            prev_llib = w1;
            prev_exp = w2;
        }
    }

    #[test]
    fn fair_node_agrees_with_wrapped_state_on_observations(
        delta in ofa_delta(),
        observations in prop::collection::vec(any::<bool>(), 1..200),
        seed in any::<u64>(),
    ) {
        // Driving a FairNode with "someone else delivered / nobody delivered"
        // observations must leave its inner state identical to driving the
        // bare FairProtocol directly.
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut node = FairNode::new(OneFailAdaptive::try_new(delta).unwrap());
        let mut bare = OneFailAdaptive::try_new(delta).unwrap();
        for &delivered in &observations {
            let _ = node.decide(&mut rng);
            node.observe(if delivered {
                Observation::ReceivedMessage
            } else {
                Observation::Noise
            });
            bare.advance(delivered);
        }
        prop_assert_eq!(node.state(), &bare);
        prop_assert!(!node.has_delivered());
    }

    #[test]
    fn protocol_kind_round_trips_through_serde(kind_index in 0usize..5, k in 1u64..=100_000) {
        let kind = ProtocolKind::paper_lineup()[kind_index].clone();
        let json = serde_json_like(&kind);
        // ProtocolKind must build consistently regardless of how it was
        // obtained; here we simply check that building twice gives protocols
        // with the same name.
        let a = kind.build_node(k).unwrap();
        let b = kind.build_node(k).unwrap();
        prop_assert_eq!(a.name(), b.name());
        prop_assert!(!json.is_empty());
    }

    #[test]
    fn analysis_factors_dominate_fair_optimum(
        ofa_d in ofa_delta(),
        ebb_d in ebb_delta(),
    ) {
        let e = analysis::fair_protocol_optimal_ratio();
        prop_assert!(analysis::ofa_linear_factor(ofa_d).unwrap() > e);
        prop_assert!(analysis::ebb_linear_factor(ebb_d).unwrap() > e);
    }

    #[test]
    fn makespan_bounds_are_monotone_in_k(
        ofa_d in ofa_delta(),
        ebb_d in ebb_delta(),
        k in 2u64..=1_000_000,
    ) {
        prop_assert!(
            analysis::ofa_makespan_bound(ofa_d, k + 1).unwrap()
                >= analysis::ofa_makespan_bound(ofa_d, k).unwrap()
        );
        prop_assert!(
            analysis::ebb_makespan_bound(ebb_d, k + 1).unwrap()
                >= analysis::ebb_makespan_bound(ebb_d, k).unwrap()
        );
    }
}

/// Minimal serde smoke helper (the full serde round-trip is exercised in the
/// integration tests of the root crate; here we only need *some* stable
/// serialised form).
fn serde_json_like(kind: &ProtocolKind) -> String {
    format!("{kind:?}")
}
