//! Property tests for adversary budget accounting.
//!
//! The strategy-search certificates lean on exact budget bookkeeping: a
//! certificate's jam count is compared against the budget `B` it was
//! searched under, so a jammer that over- or under-spends would invalidate
//! the whole certification story. These tests drive [`AdversaryState`]
//! through arbitrary interleavings of [`AdversaryState::jams_slot`] and
//! [`AdversaryState::jam_contended_bulk`] queries and assert, for every
//! [`JamTrigger`] variant:
//!
//! * `budget_left()` is monotone non-increasing;
//! * the total number of jams granted never exceeds the configured budget;
//! * spent budget and granted jams always reconcile exactly.

use mac_adversary::{AdversaryModel, AdversaryScenario, AdversaryState, JamTrigger, SlotClass};
use proptest::prelude::*;

/// One adversary query in a generated interleaving.
#[derive(Debug, Clone, Copy)]
enum Query {
    /// `jams_slot` with the given slot class.
    Slot(SlotClass),
    /// `jam_contended_bulk` with this many colliding slots.
    Bulk(u64),
}

fn query_strategy() -> impl Strategy<Value = Query> {
    // A single integer encodes (kind, bulk size): the vendored proptest
    // subset has no tuple strategies.
    (0u64..24).prop_map(|v| match v % 4 {
        0 => Query::Slot(SlotClass::Single),
        1 => Query::Slot(SlotClass::Contended),
        _ => Query::Bulk(v / 4),
    })
}

/// Drives the adversary through the interleaving (slots strictly
/// increasing, per the query contract) and returns the total number of
/// jams granted, asserting monotonicity at every step.
fn drive(state: &mut AdversaryState, queries: &[Query]) -> Result<u64, TestCaseError> {
    let mut slot = 0u64;
    let mut granted = 0u64;
    let mut previous_budget = state.budget_left();
    for &query in queries {
        match query {
            Query::Slot(class) => {
                if state.jams_slot(slot, class) {
                    granted += 1;
                }
                slot += 1;
            }
            Query::Bulk(colliding) => {
                let jammed = state.jam_contended_bulk(colliding);
                prop_assert!(
                    jammed <= colliding,
                    "jammed {jammed} of only {colliding} colliding slots"
                );
                granted += jammed;
                slot += colliding;
            }
        }
        let budget = state.budget_left();
        prop_assert!(
            budget <= previous_budget,
            "budget_left went up: {previous_budget} -> {budget}"
        );
        previous_budget = budget;
    }
    Ok(granted)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn reactive_budget_is_monotone_and_never_overspent(
        budget in 0u64..40,
        trigger_contended in any::<bool>(),
        seed in any::<u64>(),
        queries in prop::collection::vec(query_strategy(), 0..120),
    ) {
        let trigger = if trigger_contended {
            JamTrigger::Contended
        } else {
            JamTrigger::NearSuccess
        };
        let model = AdversaryModel::BudgetedReactiveJam { budget, trigger };
        let mut state = AdversaryScenario::jamming(model).state(seed);
        prop_assert_eq!(state.budget_left(), budget);

        let granted = drive(&mut state, &queries)?;
        prop_assert!(
            granted <= budget,
            "granted {granted} jams on a budget of {budget}"
        );
        // Spend and grants reconcile exactly: every granted jam cost one
        // unit, nothing else may touch the budget.
        prop_assert_eq!(state.budget_left(), budget - granted);

        // A reactive jammer with budget left jams *every* matching slot, so
        // leftover budget means the interleaving ran out of matching slots.
        if state.budget_left() > 0 {
            let matching = queries.iter().map(|&q| match (q, trigger) {
                (Query::Slot(SlotClass::Single), JamTrigger::NearSuccess) => 1,
                (Query::Slot(SlotClass::Contended), JamTrigger::Contended) => 1,
                (Query::Bulk(n), JamTrigger::Contended) => n,
                _ => 0,
            }).sum::<u64>();
            prop_assert_eq!(granted, matching);
        }
    }

    #[test]
    fn non_budgeted_models_report_zero_budget_and_free_bulk_jams(
        seed in any::<u64>(),
        queries in prop::collection::vec(query_strategy(), 0..60),
        period in 1u64..9,
        burst_frac in 0u64..9,
        noise in 0.0f64..=1.0,
    ) {
        let models = [
            AdversaryModel::None,
            AdversaryModel::StochasticNoise { p: noise },
            AdversaryModel::PeriodicJam {
                period,
                burst: burst_frac % (period + 1),
                phase: seed % period,
            },
            AdversaryModel::ScheduledJam { bursts: vec![(2, 3), (10, 1)] },
        ];
        for model in models {
            let mut state = AdversaryScenario::jamming(model.clone()).state(seed);
            prop_assert_eq!(state.budget_left(), 0, "{}", model.label());
            for (i, &query) in queries.iter().enumerate() {
                match query {
                    Query::Slot(class) => { let _ = state.jams_slot(i as u64 * 7, class); }
                    Query::Bulk(colliding) => {
                        // Only the Contended-trigger reactive jammer pays
                        // for bulk collision jams; every other model
                        // reports zero jammed.
                        prop_assert_eq!(state.jam_contended_bulk(colliding), 0);
                    }
                }
                prop_assert_eq!(state.budget_left(), 0);
            }
        }
    }
}

/// The near-success trigger must not leak budget through the bulk-collision
/// path: contended slots never match it, however many are offered.
#[test]
fn near_success_budget_survives_bulk_collisions() {
    let model = AdversaryModel::BudgetedReactiveJam {
        budget: 3,
        trigger: JamTrigger::NearSuccess,
    };
    let mut state = AdversaryScenario::jamming(model).state(11);
    assert_eq!(state.jam_contended_bulk(1_000_000), 0);
    assert_eq!(state.budget_left(), 3);
    assert!(state.jams_slot(0, SlotClass::Single));
    assert_eq!(state.budget_left(), 2);
}
