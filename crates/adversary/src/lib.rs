//! # mac-adversary — adversarial channel models for robustness experiments
//!
//! The paper analyses k-selection on an *ideal* slotted channel; its
//! introduction and conclusions motivate bursty, adversarial real-world
//! traffic, and the strongest follow-up work studies contention resolution
//! under noise and imperfect feedback (Bender–Kuszmaul et al., "Contention
//! Resolution Without Collision Detection", 2020) and under adversarial
//! jamming (Jiang–Zheng, "Robust and Optimal Contention Resolution without
//! Collision Detection", 2021). This crate makes those regimes expressible:
//!
//! * [`AdversaryModel`] — jamming: stochastic per-slot noise, oblivious
//!   periodic/scheduled jam patterns, and budgeted reactive jammers that
//!   target contended or near-success slots;
//! * [`FeedbackFault`] — degraded feedback: collision↔empty confusion
//!   (modelling receivers without dependable collision detection) and
//!   missed-delivery faults on the broadcast feedback path;
//! * [`AdversaryScenario`] — the unit of configuration the simulators
//!   accept, combining both;
//! * [`AdversaryState`] — the runtime decision procedure, with its **own
//!   RNG stream** so that a configured adversary never perturbs the
//!   protocol randomness of a seeded run (and `AdversaryModel::None` is
//!   bit-identical to having no adversary at all).
//!
//! ## Jamming semantics
//!
//! A jammed slot in which at least one station transmits becomes a
//! collision: a jammed would-be delivery is destroyed and the transmitting
//! station stays active (it receives no acknowledgement and hears noise,
//! exactly as in a genuine collision). Jamming an empty slot is
//! unobservable — the jam signal alone carries no message and, in the
//! paper's no-collision-detection model, is indistinguishable from
//! background noise — so the simulators never consult the adversary about
//! empty slots. See `crates/sim/DESIGN.md` §4 for how this convention keeps
//! the counts-only fast simulators exact in distribution.
//!
//! ```
//! use mac_adversary::{AdversaryModel, AdversaryScenario, SlotClass};
//!
//! let scenario = AdversaryScenario::jamming(AdversaryModel::PeriodicJam {
//!     period: 3,
//!     burst: 1,
//!     phase: 0,
//! });
//! let mut adversary = scenario.state(42);
//! assert!(adversary.jams_slot(0, SlotClass::Single));
//! assert!(!adversary.jams_slot(1, SlotClass::Single));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod model;
pub mod search;
pub mod state;

pub use model::{AdversaryModel, AdversaryScenario, FeedbackFault, JamTrigger};
pub use search::{
    budgeted_search, exhaustive_worst_case, AdversaryGame, Certificate, CertificateTier,
    ExhaustiveOutcome, ParamSchedule, ScoredCandidate, SearchOutcome, SearchStats,
};
pub use state::{AdversaryState, SlotClass, ADVERSARY_STREAM};
