//! Runtime adversary: the stateful decision procedure behind an
//! [`AdversaryScenario`].
//!
//! # Query contract
//!
//! The simulators drive an [`AdversaryState`] under a strict contract (see
//! `crates/sim/DESIGN.md` §4 for why this keeps the fast paths exact in
//! distribution):
//!
//! * [`AdversaryState::jams_slot`] is called **only for busy slots** (at
//!   least one transmitter) and **in strictly increasing slot order**.
//!   Jamming an empty slot is unobservable in this model, so empty slots
//!   are never offered to the adversary.
//! * [`AdversaryState::jam_contended_bulk`] is the counts-only alternative
//!   for a batch of collision slots whose individual indices the caller
//!   never materialises (the window simulator's colliding bins): it is
//!   equivalent in distribution to calling `jams_slot` on each of them, and
//!   exists because jamming an already-colliding slot changes nothing but
//!   the reactive jammer's remaining budget.
//! * [`AdversaryState::perceive`] / [`AdversaryState::misses_delivery`]
//!   apply the [`FeedbackFault`] *after* jamming has been resolved.
//!
//! All randomness is drawn from the state's own RNG stream (seeded on a
//! dedicated path by the simulators), so an adversary — even an inactive
//! one — never advances the protocol RNG of a run.

use crate::model::{AdversaryModel, AdversaryScenario, FeedbackFault, JamTrigger};
use mac_prob::outcome::SlotOutcome;
use mac_prob::rng::Xoshiro256pp;
use rand::{Rng, SeedableRng};

/// Seed-derivation path tag used by every simulator for the adversary
/// stream: `derive_seed(run_seed, &[ADVERSARY_STREAM])`.
pub const ADVERSARY_STREAM: u64 = 0xAD5A;

/// The occupancy class of a busy slot, as offered to the adversary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlotClass {
    /// Exactly one station transmits: a delivery unless jammed.
    Single,
    /// Two or more stations transmit: a collision either way.
    Contended,
}

/// The runtime decision procedure of an [`AdversaryScenario`].
#[derive(Debug, Clone)]
pub struct AdversaryState {
    jamming: AdversaryModel,
    feedback: FeedbackFault,
    rng: Xoshiro256pp,
    /// Remaining jams for [`AdversaryModel::BudgetedReactiveJam`].
    budget_left: u64,
    /// Cursor into the normalised interval list of
    /// [`AdversaryModel::ScheduledJam`] (queries arrive in slot order).
    schedule_cursor: usize,
}

impl AdversaryState {
    /// Builds the runtime state for a scenario with its own RNG stream.
    ///
    /// # Panics
    /// Panics if the scenario fails [`AdversaryScenario::validate`] — the
    /// simulators validate configurations before any run starts.
    pub fn new(scenario: AdversaryScenario, seed: u64) -> Self {
        if let Err(message) = scenario.validate() {
            panic!("invalid adversary scenario: {message}");
        }
        let budget_left = match scenario.jamming {
            AdversaryModel::BudgetedReactiveJam { budget, .. } => budget,
            _ => 0,
        };
        Self {
            jamming: scenario.jamming.normalised(),
            feedback: scenario.feedback,
            // lint:allow(rng-stream-discipline): every simulator hands this
            // constructor derive_seed(run_seed, &[ADVERSARY_STREAM]); deriving
            // again here would shift the stream and break the inert-adversary
            // bit-identity guarantee against committed certificates.
            rng: Xoshiro256pp::seed_from_u64(seed),
            budget_left,
            schedule_cursor: 0,
        }
    }

    /// The inactive adversary (ideal channel): never jams, never degrades
    /// feedback, never draws from its RNG.
    pub fn inactive() -> Self {
        Self::new(AdversaryScenario::clean(), 0)
    }

    /// True if the adversary can affect the run at all. Simulators keep
    /// their pristine pre-adversary code paths when this is `false`.
    pub fn is_active(&self) -> bool {
        !self.jamming.is_none() || !self.feedback.is_clean()
    }

    /// Remaining budget of a budgeted reactive jammer (0 for other models).
    pub fn budget_left(&self) -> u64 {
        self.budget_left
    }

    /// Captures the mutable run state — four RNG words, remaining budget,
    /// schedule cursor — for an exact checkpoint. The jamming model and
    /// feedback fault are configuration, not state: callers record the
    /// [`AdversaryScenario`] separately (e.g. via its config-string round
    /// trip) and rebuild the state with [`AdversaryState::new`] before
    /// calling [`AdversaryState::restore_state_words`].
    pub fn state_words(&self) -> [u64; 6] {
        let rng = self.rng.state_words();
        [
            rng[0],
            rng[1],
            rng[2],
            rng[3],
            self.budget_left,
            self.schedule_cursor as u64,
        ]
    }

    /// Restores the mutable run state captured by
    /// [`AdversaryState::state_words`]; resumption is then bit-identical to
    /// the uninterrupted run. Returns `false` if the cursor does not fit in
    /// `usize` on this platform.
    pub fn restore_state_words(&mut self, words: &[u64; 6]) -> bool {
        let Ok(cursor) = usize::try_from(words[5]) else {
            return false;
        };
        self.rng = Xoshiro256pp::from_state_words([words[0], words[1], words[2], words[3]]);
        self.budget_left = words[4];
        self.schedule_cursor = cursor;
        true
    }

    /// Decides whether the adversary jams the given **busy** slot.
    ///
    /// Must be called in strictly increasing slot order (the scheduled
    /// jammer advances a cursor, and the budgeted jammer spends its budget
    /// in slot order).
    pub fn jams_slot(&mut self, slot: u64, class: SlotClass) -> bool {
        match &self.jamming {
            AdversaryModel::None => false,
            AdversaryModel::StochasticNoise { p } => self.rng.gen::<f64>() < *p,
            AdversaryModel::PeriodicJam {
                period,
                burst,
                phase,
            } => (slot.wrapping_add(*phase)) % period < *burst,
            AdversaryModel::ScheduledJam { bursts } => {
                // Containment is computed as `slot - start < len` so an
                // interval reaching past u64::MAX cannot overflow.
                while let Some(&(start, len)) = bursts.get(self.schedule_cursor) {
                    if slot < start {
                        return false;
                    }
                    if slot - start < len {
                        return true;
                    }
                    self.schedule_cursor += 1;
                }
                false
            }
            AdversaryModel::BudgetedReactiveJam { trigger, .. } => {
                let fires = self.budget_left > 0
                    && match trigger {
                        JamTrigger::NearSuccess => class == SlotClass::Single,
                        JamTrigger::Contended => class == SlotClass::Contended,
                    };
                if fires {
                    self.budget_left -= 1;
                }
                fires
            }
        }
    }

    /// Batch form of [`AdversaryState::jams_slot`] for `colliding` collision
    /// slots whose positions the caller does not materialise. Returns the
    /// number of them that were jammed.
    ///
    /// Jamming an already-contended slot leaves its outcome a collision, so
    /// only the budgeted jammer's remaining budget is affected; the other
    /// models return without touching any state (for the stochastic model
    /// the skipped Bernoulli draws are independent of every other decision,
    /// so the distribution of the run is unchanged).
    pub fn jam_contended_bulk(&mut self, colliding: u64) -> u64 {
        match &self.jamming {
            AdversaryModel::BudgetedReactiveJam {
                trigger: JamTrigger::Contended,
                ..
            } => {
                let jammed = self.budget_left.min(colliding);
                self.budget_left -= jammed;
                jammed
            }
            _ => 0,
        }
    }

    /// Applies the feedback fault to the channel-level outcome of a slot,
    /// returning what the listening stations are told. Acknowledgements are
    /// reliable: the station whose message was delivered is *not* routed
    /// through this (its own view stays [`SlotOutcome::Delivery`]).
    pub fn perceive(&mut self, outcome: SlotOutcome) -> SlotOutcome {
        if self.feedback.is_clean() {
            return outcome;
        }
        match outcome {
            SlotOutcome::Delivery => {
                if self.rng.gen::<f64>() < self.feedback.miss_delivery {
                    // The message is received garbled: energy was on the
                    // channel, so listeners perceive a collision.
                    SlotOutcome::Collision
                } else {
                    SlotOutcome::Delivery
                }
            }
            SlotOutcome::Silence => {
                if self.rng.gen::<f64>() < self.feedback.confuse_collision_empty {
                    SlotOutcome::Collision
                } else {
                    SlotOutcome::Silence
                }
            }
            SlotOutcome::Collision => {
                if self.rng.gen::<f64>() < self.feedback.confuse_collision_empty {
                    SlotOutcome::Silence
                } else {
                    SlotOutcome::Collision
                }
            }
        }
    }

    /// Decides whether the feedback fault hides a delivery from the
    /// non-delivered stations. Shortcut used by the fair fast simulator,
    /// which only needs the delivered/not-delivered bit of the feedback.
    pub fn misses_delivery(&mut self) -> bool {
        self.feedback.miss_delivery > 0.0 && self.rng.gen::<f64>() < self.feedback.miss_delivery
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jam_only(model: AdversaryModel) -> AdversaryState {
        AdversaryState::new(AdversaryScenario::jamming(model), 7)
    }

    #[test]
    fn inactive_adversary_never_jams() {
        let mut state = AdversaryState::inactive();
        assert!(!state.is_active());
        for slot in 0..100 {
            assert!(!state.jams_slot(slot, SlotClass::Single));
        }
        assert_eq!(state.jam_contended_bulk(50), 0);
        assert_eq!(state.perceive(SlotOutcome::Delivery), SlotOutcome::Delivery);
        assert!(!state.misses_delivery());
    }

    #[test]
    fn zero_probability_noise_is_active_but_harmless() {
        let mut state = jam_only(AdversaryModel::StochasticNoise { p: 0.0 });
        assert!(state.is_active());
        for slot in 0..100 {
            assert!(!state.jams_slot(slot, SlotClass::Single));
        }
    }

    #[test]
    fn certain_noise_jams_everything() {
        let mut state = jam_only(AdversaryModel::StochasticNoise { p: 1.0 });
        for slot in 0..100 {
            assert!(state.jams_slot(slot, SlotClass::Contended));
        }
    }

    #[test]
    fn stochastic_noise_hits_at_its_rate() {
        let mut state = jam_only(AdversaryModel::StochasticNoise { p: 0.3 });
        let n = 100_000u64;
        let jams = (0..n)
            .filter(|&slot| state.jams_slot(slot, SlotClass::Single))
            .count() as f64;
        let rate = jams / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "observed rate {rate}");
    }

    #[test]
    fn periodic_jam_follows_its_pattern() {
        let mut state = jam_only(AdversaryModel::PeriodicJam {
            period: 4,
            burst: 2,
            phase: 1,
        });
        // (slot + 1) % 4 < 2  =>  jammed slots are 3,4, 7,8, 11,12, ...
        let jammed: Vec<u64> = (0..13)
            .filter(|&slot| state.jams_slot(slot, SlotClass::Single))
            .collect();
        assert_eq!(jammed, vec![0, 3, 4, 7, 8, 11, 12]);
    }

    #[test]
    fn scheduled_jam_honours_intervals_and_cursor() {
        let mut state = jam_only(AdversaryModel::ScheduledJam {
            bursts: vec![(10, 3), (2, 2)], // normalised to [(2,2), (10,3)]
        });
        let jammed: Vec<u64> = (0..20)
            .filter(|&slot| state.jams_slot(slot, SlotClass::Single))
            .collect();
        assert_eq!(jammed, vec![2, 3, 10, 11, 12]);
    }

    #[test]
    fn scheduled_jam_near_u64_max_does_not_overflow() {
        let mut state = jam_only(AdversaryModel::ScheduledJam {
            bursts: vec![(10, 2), (u64::MAX - 1, 5)],
        });
        assert!(state.jams_slot(10, SlotClass::Single));
        assert!(!state.jams_slot(12, SlotClass::Single));
        // The tail interval reaches past u64::MAX: it must jam every slot
        // from its start onwards instead of wrapping around.
        assert!(!state.jams_slot(u64::MAX - 2, SlotClass::Single));
        assert!(state.jams_slot(u64::MAX - 1, SlotClass::Single));
        assert!(state.jams_slot(u64::MAX, SlotClass::Single));
    }

    #[test]
    fn budgeted_near_success_only_jams_singles_until_exhausted() {
        let mut state = jam_only(AdversaryModel::BudgetedReactiveJam {
            budget: 2,
            trigger: JamTrigger::NearSuccess,
        });
        assert!(!state.jams_slot(0, SlotClass::Contended));
        assert!(state.jams_slot(1, SlotClass::Single));
        assert!(state.jams_slot(2, SlotClass::Single));
        assert!(!state.jams_slot(3, SlotClass::Single), "budget exhausted");
        assert_eq!(state.budget_left(), 0);
    }

    #[test]
    fn budgeted_contended_spends_on_collisions_only() {
        let mut state = jam_only(AdversaryModel::BudgetedReactiveJam {
            budget: 5,
            trigger: JamTrigger::Contended,
        });
        assert!(!state.jams_slot(0, SlotClass::Single));
        assert!(state.jams_slot(1, SlotClass::Contended));
        assert_eq!(state.jam_contended_bulk(3), 3);
        assert_eq!(state.jam_contended_bulk(3), 1, "only one jam left");
        assert_eq!(state.budget_left(), 0);
    }

    #[test]
    fn feedback_fault_flips_at_its_rates() {
        let fault = FeedbackFault {
            confuse_collision_empty: 1.0,
            miss_delivery: 1.0,
        };
        let mut state = AdversaryState::new(AdversaryScenario::faulty_feedback(fault), 3);
        assert!(state.is_active());
        assert_eq!(state.perceive(SlotOutcome::Silence), SlotOutcome::Collision);
        assert_eq!(state.perceive(SlotOutcome::Collision), SlotOutcome::Silence);
        assert_eq!(
            state.perceive(SlotOutcome::Delivery),
            SlotOutcome::Collision
        );
        assert!(state.misses_delivery());
    }

    #[test]
    fn clean_feedback_never_draws() {
        let mut a = jam_only(AdversaryModel::StochasticNoise { p: 0.5 });
        let mut b = jam_only(AdversaryModel::StochasticNoise { p: 0.5 });
        // Perceiving through a clean fault must not consume randomness:
        // interleaving perceive calls leaves the jam stream identical.
        let plain: Vec<bool> = (0..50).map(|s| a.jams_slot(s, SlotClass::Single)).collect();
        let interleaved: Vec<bool> = (0..50)
            .map(|s| {
                let _ = b.perceive(SlotOutcome::Collision);
                b.jams_slot(s, SlotClass::Single)
            })
            .collect();
        assert_eq!(plain, interleaved);
    }

    #[test]
    #[should_panic(expected = "invalid adversary scenario")]
    fn invalid_scenario_is_rejected_at_construction() {
        let _ = AdversaryState::new(
            AdversaryScenario::jamming(AdversaryModel::StochasticNoise { p: 2.0 }),
            0,
        );
    }
}
