//! Adversary strategy search: worst-case jamming found mechanically.
//!
//! PR 2's adversaries are hand-written scripts; the central object of the
//! adversarial-contention-resolution literature is the *optimal* adversary
//! under a jam budget. This module turns jamming from fault injection into
//! certification, in two tiers:
//!
//! * **Tier (a) — exhaustive** ([`exhaustive_worst_case`]): complete
//!   game-tree exploration over the *exact* simulator's true protocol state,
//!   driven through the [`AdversaryGame`] step/snapshot interface. Because
//!   jamming a contended slot changes nothing the stations can observe
//!   (the slot is a collision either way) while spending budget, the only
//!   non-dominated adversary decisions are at single-transmitter slots —
//!   the game tree branches *only* there, which makes small instances
//!   (k ≤ 8, B ≤ 8: at most `C(k+B, B)` ≈ 13k leaf paths) exhaustively
//!   searchable. The result is a **certificate**: a proof, not a sample,
//!   of the worst makespan any budget-B jammer can force on that seed.
//! * **Tier (b) — budgeted search** ([`budgeted_search`]): deterministic
//!   beam/local search over parameterised jam schedules
//!   ([`ParamSchedule`]: period, burst, phase — plus the reactive
//!   triggers), scoring candidates through a caller-supplied evaluator
//!   (the aggregate engines, thousands of candidate schedules per second
//!   at k = 10⁴…10⁶). The incumbent is *best-found*, not proven optimal,
//!   and is re-emitted as a replayable [`AdversaryModel::ScheduledJam`]
//!   certificate.
//!
//! The module is engine-agnostic on purpose: `mac-sim` depends on this
//! crate, so the search cannot call the simulators directly. Tier (a)
//! consumes any [`AdversaryGame`] implementation (mac-sim provides one over
//! its exact engine); tier (b) consumes a closure `FnMut(&AdversaryModel)
//! -> u64` mapping a candidate jam model to the makespan it forces.

use crate::model::{AdversaryModel, JamTrigger};
use serde::{Deserialize, Serialize};
// lint:allow(nondeterminism-bans): both tables below are insert/lookup
// only — never iterated — so hash order cannot reach any result.
#[allow(clippy::disallowed_types)]
use std::collections::HashMap;

/// A resumable adversary-vs-protocol game over one simulated run.
///
/// The game advances deterministically between *decision points* — the
/// single-transmitter slots where a jam would destroy a delivery — and the
/// search controls only the jam/don't-jam choice at each. Implementations
/// must be snapshot-able ([`AdversaryGame::clone_game`]) so the search can
/// branch, and every source of randomness must be part of the snapshot:
/// two clones receiving the same decisions must produce bit-identical runs.
pub trait AdversaryGame {
    /// Runs the simulation forward until the next single-transmitter slot
    /// (leaving it *pending*, unresolved) and returns its slot index, or
    /// `None` once the run has ended (all messages delivered, or the slot
    /// cap reached). Slots that are silent or already-collided are resolved
    /// internally — by the domination argument they are never worth a jam.
    fn advance_to_single(&mut self) -> Option<u64>;

    /// Resolves the pending single-transmitter slot: with `jam = true` the
    /// delivery is destroyed (the slot becomes a collision and the station
    /// stays active), with `jam = false` the message is delivered.
    ///
    /// Must only be called after [`AdversaryGame::advance_to_single`]
    /// returned `Some`.
    fn resolve_single(&mut self, jam: bool);

    /// The makespan of the finished run (the slot cap if it did not
    /// complete). Meaningful once [`AdversaryGame::advance_to_single`] has
    /// returned `None`.
    fn makespan(&self) -> u64;

    /// Whether every message was delivered. Meaningful once
    /// [`AdversaryGame::advance_to_single`] has returned `None`.
    fn completed(&self) -> bool;

    /// An *exact* fingerprint of the full game state at a decision point,
    /// or `None` if the implementation cannot produce one.
    ///
    /// Soundness contract: two games returning equal keys must behave
    /// bit-identically under identical future decisions. The exhaustive
    /// search memoises on this key — an inexact key (a lossy hash, a
    /// truncated state) could merge distinct states and silently prune the
    /// true worst case, which would make the "certificate" a lie. Return
    /// `None` to disable deduplication rather than risk that.
    fn state_key(&self) -> Option<Vec<u64>>;

    /// Snapshots the game so the search can explore both branches of a
    /// decision point.
    fn clone_game(&self) -> Box<dyn AdversaryGame>;
}

/// Counters describing an exhaustive search run (reported alongside the
/// certificate so its cost and the memoisation's contribution are visible).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SearchStats {
    /// Decision points at which both branches were explored.
    pub branch_points: u64,
    /// Completed (or capped) runs reached.
    pub leaves: u64,
    /// Decision points answered from the memo table instead of re-exploring.
    pub memo_hits: u64,
    /// Whether exact-state deduplication was available (it is disabled when
    /// [`AdversaryGame::state_key`] returns `None`).
    pub deduplicated: bool,
}

/// The adversary's best play from some game state: the makespan it forces,
/// whether the run still completes, and the jam slots that realise it.
type Play = (u64, bool, Vec<u64>);

/// True if play `a` is strictly preferable *for the adversary* over `b`:
/// longer makespan first; on equal makespan an incomplete run (the protocol
/// never finished) is worse for the protocol than a completed one; on a full
/// tie prefer fewer jams, which yields the cheapest certificate.
fn adversary_prefers(a: &Play, b: &Play) -> bool {
    if a.0 != b.0 {
        return a.0 > b.0;
    }
    if a.1 != b.1 {
        return !a.1;
    }
    a.2.len() < b.2.len()
}

/// The result of an exhaustive tier-(a) search: a *certified* worst case.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExhaustiveOutcome {
    /// The worst makespan any budget-bounded jammer can force on this run.
    pub makespan: u64,
    /// Whether the run still completes under that worst-case jamming.
    pub completed: bool,
    /// The jam slots (strictly increasing) realising the worst case.
    pub jam_slots: Vec<u64>,
    /// Search-cost counters.
    pub stats: SearchStats,
}

/// Exhaustively explores every non-dominated budget-`budget` jamming
/// strategy against the given game and returns the certified worst case.
///
/// Dominated strategies (jamming silent or already-contended slots) are
/// excluded by construction — see the module docs for the argument — so
/// the search is complete over *all* jamming strategies, not merely the
/// ones it visits. Exploration is depth-first with snapshots at each
/// decision point and, when the game provides exact state keys,
/// memoisation on (state, remaining budget).
pub fn exhaustive_worst_case(game: &dyn AdversaryGame, budget: u64) -> ExhaustiveOutcome {
    let mut stats = SearchStats::default();
    // lint:allow(nondeterminism-bans): memo is get/insert only, never
    // iterated; dedup hits depend on keys alone, not hash order.
    #[allow(clippy::disallowed_types)]
    let mut memo: HashMap<Vec<u64>, Play> = HashMap::new();
    let mut dedup_available = true;
    let (makespan, completed, jam_slots) = explore(
        game.clone_game(),
        budget,
        &mut memo,
        &mut dedup_available,
        &mut stats,
    );
    stats.deduplicated = dedup_available;
    ExhaustiveOutcome {
        makespan,
        completed,
        jam_slots,
        stats,
    }
}

#[allow(clippy::disallowed_types)]
fn explore(
    mut game: Box<dyn AdversaryGame>,
    budget: u64,
    // lint:allow(nondeterminism-bans): get/insert only, never iterated.
    memo: &mut HashMap<Vec<u64>, Play>,
    dedup_available: &mut bool,
    stats: &mut SearchStats,
) -> Play {
    loop {
        let Some(slot) = game.advance_to_single() else {
            stats.leaves += 1;
            return (game.makespan(), game.completed(), Vec::new());
        };
        if budget == 0 {
            // Out of budget: the rest of the run has no adversary decisions
            // left, so it plays out deterministically from here.
            game.resolve_single(false);
            continue;
        }
        let key = match game.state_key() {
            Some(mut key) => {
                key.push(budget);
                if let Some(hit) = memo.get(&key) {
                    stats.memo_hits += 1;
                    return hit.clone();
                }
                Some(key)
            }
            None => {
                *dedup_available = false;
                None
            }
        };
        stats.branch_points += 1;
        let mut jammed_branch = game.clone_game();
        jammed_branch.resolve_single(true);
        let mut jammed = explore(jammed_branch, budget - 1, memo, dedup_available, stats);
        jammed.2.insert(0, slot);
        game.resolve_single(false);
        let delivered = explore(game, budget, memo, dedup_available, stats);
        let best = if adversary_prefers(&jammed, &delivered) {
            jammed
        } else {
            delivered
        };
        if let Some(key) = key {
            memo.insert(key, best.clone());
        }
        return best;
    }
}

/// A parameterised periodic jam schedule: the tier-(b) search space.
///
/// Describes the oblivious pattern "jam slot `s` iff `(s + phase) % period <
/// burst`", truncated to a jam budget when materialised. The search mutates
/// these three integers; [`ParamSchedule::materialise`] turns a candidate
/// into the explicit [`AdversaryModel::ScheduledJam`] the simulators run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ParamSchedule {
    /// Length of the repeating pattern (≥ 1).
    pub period: u64,
    /// Jammed slots per period (1 ..= `period`).
    pub burst: u64,
    /// Offset of the pattern against the slot clock (< `period`).
    pub phase: u64,
}

impl ParamSchedule {
    /// Returns the candidate with its fields clamped into the valid region
    /// (`period ≥ 1`, `1 ≤ burst ≤ period`, `phase < period`) — the
    /// search's mutation operators go through this so every candidate is
    /// well-formed by construction.
    pub fn clamped(self) -> ParamSchedule {
        let period = self.period.max(1);
        ParamSchedule {
            period,
            burst: self.burst.clamp(1, period),
            phase: self.phase % period,
        }
    }

    /// Materialises the first `budget` jammed slots of the pattern within
    /// `[0, horizon)` as an explicit scheduled-jam model (already in
    /// canonical interval form).
    pub fn materialise(&self, budget: u64, horizon: u64) -> AdversaryModel {
        let ParamSchedule {
            period,
            burst,
            phase,
        } = self.clamped();
        let mut bursts: Vec<(u64, u64)> = Vec::new();
        let mut remaining = budget;
        // The jammed run inside the pattern window containing slot 0 may be
        // entered mid-run: slot s is jammed iff (s + phase) % period < burst,
        // so runs start at s ≡ -phase (mod period).
        let first_run_start = (period - phase % period) % period;
        let mut run_start = if first_run_start == 0 {
            0
        } else {
            // Partial head run: slots [0, burst - phase') when phase' < burst.
            let head_jammed = burst.saturating_sub(phase % period);
            if head_jammed > 0 {
                let take = head_jammed.min(remaining).min(horizon);
                if take > 0 {
                    bursts.push((0, take));
                    remaining -= take;
                }
            }
            first_run_start
        };
        while remaining > 0 && run_start < horizon {
            let len = burst.min(horizon - run_start).min(remaining);
            if len > 0 {
                bursts.push((run_start, len));
                remaining -= len;
            }
            run_start = match run_start.checked_add(period) {
                Some(next) => next,
                None => break,
            };
        }
        // Canonical form: period-1 patterns emit adjacent runs that the
        // normaliser merges into a single interval.
        AdversaryModel::ScheduledJam { bursts }.normalised()
    }
}

/// One scored candidate in a [`SearchOutcome`]: the jam model that was
/// evaluated and the makespan it forced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoredCandidate {
    /// The candidate jam model, exactly as evaluated.
    pub model: AdversaryModel,
    /// The periodic parameterisation it came from, if any (reactive
    /// candidates have none).
    pub params: Option<ParamSchedule>,
    /// The makespan the evaluator reported for it.
    pub makespan: u64,
}

/// The result of a tier-(b) budgeted search: the best candidate *found*
/// (no optimality claim) plus search-cost counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// The best-scoring candidate.
    pub best: ScoredCandidate,
    /// Number of evaluator invocations performed.
    pub evaluations: u64,
    /// Number of beam rounds actually run (the search stops early once a
    /// round improves nothing).
    pub rounds: usize,
}

/// Deterministic beam search over parameterised jam schedules.
///
/// Starts from a geometric grid of periods — deliberately *excluding* 2, so
/// that any period-2 resonance in the result was discovered by the mutation
/// operators (`period ± 1`, `× 2`, `÷ 2`; `burst ± 1`, `× 2`; `phase ± 1`),
/// not seeded — plus both reactive triggers at the same budget. Each round
/// mutates every beam member, evaluates unseen candidates via `evaluate`
/// (which must map a jam model to the makespan it forces; larger = better
/// for the adversary) and keeps the `beam_width` best. The search is fully
/// deterministic: no randomness, ties broken by the candidate's parameter
/// triple.
///
/// `horizon` bounds the materialised schedules (use the run's slot cap) and
/// `max_rounds` bounds the local search; the search also stops as soon as a
/// round fails to improve the incumbent.
pub fn budgeted_search<F>(
    budget: u64,
    horizon: u64,
    beam_width: usize,
    max_rounds: usize,
    mut evaluate: F,
) -> SearchOutcome
where
    F: FnMut(&AdversaryModel) -> u64,
{
    assert!(budget > 0, "a zero-budget adversary has nothing to search");
    assert!(beam_width > 0, "beam width must be at least 1");
    let mut evaluations = 0u64;
    let mut evaluate_counted = |model: &AdversaryModel| {
        evaluations += 1;
        evaluate(model)
    };

    // Reactive candidates: evaluated once, compete with the periodic family
    // for the final incumbent but are not mutated (their only parameter is
    // the trigger).
    let mut best_reactive: Option<ScoredCandidate> = None;
    for trigger in [JamTrigger::NearSuccess, JamTrigger::Contended] {
        let model = AdversaryModel::BudgetedReactiveJam { budget, trigger };
        let makespan = evaluate_counted(&model);
        let candidate = ScoredCandidate {
            model,
            params: None,
            makespan,
        };
        if best_reactive
            .as_ref()
            .is_none_or(|b| candidate.makespan > b.makespan)
        {
            best_reactive = Some(candidate);
        }
    }

    // Initial periodic grid. Period 2 is deliberately absent (see above);
    // mutations from 1, 3 and 4 all reach it in one step.
    // lint:allow(nondeterminism-bans): visited-set semantics — contains_key
    // and insert only, never iterated; beam order comes from the sorted
    // `beam` vector, not from this table.
    #[allow(clippy::disallowed_types)]
    let mut seen: HashMap<ParamSchedule, u64> = HashMap::new();
    let mut beam: Vec<(ParamSchedule, u64)> = Vec::new();
    let mut grid: Vec<ParamSchedule> = Vec::new();
    let mut period = 1u64;
    while period <= horizon.max(1) && grid.len() < 64 {
        if period != 2 {
            for burst in [1, period.div_ceil(4).max(1)] {
                for phase in [0, period / 2] {
                    grid.push(
                        ParamSchedule {
                            period,
                            burst,
                            phase,
                        }
                        .clamped(),
                    );
                }
            }
        }
        period = (period * 4).max(period + 1);
    }
    grid.sort_unstable();
    grid.dedup();
    for params in grid {
        let makespan = evaluate_counted(&params.materialise(budget, horizon));
        seen.insert(params, makespan);
        beam.push((params, makespan));
    }
    sort_beam(&mut beam);
    beam.truncate(beam_width);

    let mut rounds = 0usize;
    while rounds < max_rounds {
        rounds += 1;
        let incumbent = beam.first().map_or(0, |&(_, score)| score);
        let mut improved = false;
        let mutants: Vec<ParamSchedule> = beam
            .iter()
            .flat_map(|&(p, _)| mutations(p))
            .filter(|m| !seen.contains_key(m))
            .collect();
        for params in mutants {
            if seen.contains_key(&params) {
                continue;
            }
            let makespan = evaluate_counted(&params.materialise(budget, horizon));
            seen.insert(params, makespan);
            beam.push((params, makespan));
            if makespan > incumbent {
                improved = true;
            }
        }
        sort_beam(&mut beam);
        beam.truncate(beam_width);
        if !improved {
            break;
        }
    }

    let best_periodic = beam.first().map(|&(params, makespan)| ScoredCandidate {
        model: params.materialise(budget, horizon),
        params: Some(params),
        makespan,
    });
    let best = match (best_periodic, best_reactive) {
        // Strict inequality: on a tie the periodic candidate wins because it
        // is already an explicit, replayable schedule.
        (Some(p), Some(r)) => {
            if r.makespan > p.makespan {
                r
            } else {
                p
            }
        }
        (Some(p), None) => p,
        (None, Some(r)) => r,
        (None, None) => unreachable!("the initial grid is never empty"),
    };
    SearchOutcome {
        best,
        evaluations,
        rounds,
    }
}

/// Beam ordering: best score first, parameter triple as deterministic
/// tie-break (smaller period preferred — simpler certificates).
fn sort_beam(beam: &mut [(ParamSchedule, u64)]) {
    beam.sort_unstable_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
}

/// The local-search neighbourhood of a candidate.
fn mutations(p: ParamSchedule) -> Vec<ParamSchedule> {
    let mut out = Vec::with_capacity(9);
    let candidates = [
        ParamSchedule {
            period: p.period + 1,
            ..p
        },
        ParamSchedule {
            period: p.period.saturating_sub(1),
            ..p
        },
        ParamSchedule {
            period: p.period.saturating_mul(2),
            ..p
        },
        ParamSchedule {
            period: p.period / 2,
            ..p
        },
        ParamSchedule {
            burst: p.burst + 1,
            ..p
        },
        ParamSchedule {
            burst: p.burst.saturating_sub(1),
            ..p
        },
        ParamSchedule {
            burst: p.burst.saturating_mul(2),
            ..p
        },
        ParamSchedule {
            phase: p.phase + 1,
            ..p
        },
        ParamSchedule {
            phase: p.phase.saturating_sub(1),
            ..p
        },
    ];
    for c in candidates {
        let c = c.clamped();
        if c != p && !out.contains(&c) {
            out.push(c);
        }
    }
    out
}

/// Which search tier produced a certificate, i.e. what "certified" means
/// for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CertificateTier {
    /// Tier (a): the makespan is a *proof* — no budget-B jammer can force
    /// more on this (protocol, k, seed).
    Exhaustive,
    /// Tier (b): the makespan is the *best found* by the budgeted search —
    /// a lower bound on the true worst case, with no optimality claim.
    BestFound,
}

impl CertificateTier {
    /// A short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            CertificateTier::Exhaustive => "exhaustive",
            CertificateTier::BestFound => "best-found",
        }
    }
}

/// A replayable worst-case jamming certificate.
///
/// The certificate pins everything needed to reproduce the attack: the
/// protocol label, instance size, seed, budget, and the explicit jam slots.
/// Replaying [`Certificate::schedule`] through the simulators on the same
/// seed reproduces `makespan` bit-identically (the scheduled jammer draws
/// no randomness, so the protocol RNG stream is untouched) — that replay is
/// what the integration tests and the `certify --check` CI gate verify.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Certificate {
    /// Label of the protocol under attack.
    pub protocol: String,
    /// Instance size (number of messages).
    pub k: u64,
    /// The run seed the certificate is valid for.
    pub seed: u64,
    /// The jam budget the adversary was allowed.
    pub budget: u64,
    /// Which tier produced the certificate.
    pub tier: CertificateTier,
    /// The slots the winning adversary jams, strictly increasing. Every
    /// listed slot destroyed a would-be delivery in the searched run, so
    /// `jam_slots.len() ≤ budget`.
    pub jam_slots: Vec<u64>,
    /// The makespan the attack forces.
    pub makespan: u64,
    /// Whether the run still completes under the attack.
    pub completed: bool,
    /// The makespan of the same (protocol, k, seed) run on the clean
    /// channel, for the worst/clean ratio.
    pub clean_makespan: u64,
}

impl Certificate {
    /// The certificate's attack as a runnable jam model: one unit interval
    /// per jam slot, in canonical form.
    pub fn schedule(&self) -> AdversaryModel {
        AdversaryModel::ScheduledJam {
            bursts: self.jam_slots.iter().map(|&s| (s, 1)).collect(),
        }
        .normalised()
    }

    /// Worst/clean makespan ratio (the robustness figure of merit).
    /// `NaN` for a degenerate clean makespan of 0.
    pub fn ratio(&self) -> f64 {
        if self.clean_makespan == 0 {
            f64::NAN
        } else {
            self.makespan as f64 / self.clean_makespan as f64
        }
    }

    /// The common stride of the jam slots — the gcd of successive gaps —
    /// or `None` with fewer than two jams. A stride of 2 with all slots on
    /// the same parity is the signature of One-fail Adaptive's AT/BT
    /// resonance; the rediscovery test asserts exactly this on the tier-(a)
    /// OFA certificates.
    pub fn stride(&self) -> Option<u64> {
        if self.jam_slots.len() < 2 {
            return None;
        }
        let mut g = 0u64;
        for pair in self.jam_slots.windows(2) {
            g = gcd(g, pair[1] - pair[0]);
        }
        Some(g)
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic game for search unit tests: `remaining` messages, one
    /// single-transmitter slot per step, a jam delays completion by exactly
    /// one slot. The worst case is trivially "spend the whole budget":
    /// makespan `k + B`.
    #[derive(Debug, Clone)]
    struct ToyGame {
        slot: u64,
        remaining: u64,
        cap: u64,
        pending: bool,
    }

    impl ToyGame {
        fn new(k: u64, cap: u64) -> Self {
            Self {
                slot: 0,
                remaining: k,
                cap,
                pending: false,
            }
        }
    }

    impl AdversaryGame for ToyGame {
        fn advance_to_single(&mut self) -> Option<u64> {
            assert!(!self.pending, "previous single was never resolved");
            if self.remaining == 0 || self.slot >= self.cap {
                return None;
            }
            self.pending = true;
            Some(self.slot)
        }
        fn resolve_single(&mut self, jam: bool) {
            assert!(self.pending);
            self.pending = false;
            if !jam {
                self.remaining -= 1;
            }
            self.slot += 1;
        }
        fn makespan(&self) -> u64 {
            self.slot
        }
        fn completed(&self) -> bool {
            self.remaining == 0
        }
        fn state_key(&self) -> Option<Vec<u64>> {
            Some(vec![self.slot, self.remaining])
        }
        fn clone_game(&self) -> Box<dyn AdversaryGame> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn exhaustive_search_spends_the_whole_budget_on_the_toy_game() {
        let game = ToyGame::new(4, 1_000);
        let outcome = exhaustive_worst_case(&game, 3);
        assert_eq!(outcome.makespan, 7, "k + B slots");
        assert!(outcome.completed);
        assert_eq!(outcome.jam_slots.len(), 3);
        assert!(outcome.stats.deduplicated);
        // Different jam/deliver interleavings converge on the same
        // (slot, remaining) state, so the memo table must actually fire.
        assert!(outcome.stats.memo_hits > 0, "{:?}", outcome.stats);
        // Jam slots are strictly increasing.
        assert!(outcome.jam_slots.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn exhaustive_search_with_zero_budget_is_the_clean_run() {
        let game = ToyGame::new(5, 1_000);
        let outcome = exhaustive_worst_case(&game, 0);
        assert_eq!(outcome.makespan, 5);
        assert!(outcome.completed);
        assert!(outcome.jam_slots.is_empty());
        assert_eq!(outcome.stats.branch_points, 0);
        assert_eq!(outcome.stats.leaves, 1);
    }

    #[test]
    fn exhaustive_search_reports_capped_runs_as_incomplete() {
        // Cap 4, k = 3, budget 2: jamming twice leaves the run one delivery
        // short of completing within the cap — the certified worst case is
        // an *incomplete* run at the cap.
        let game = ToyGame::new(3, 4);
        let outcome = exhaustive_worst_case(&game, 2);
        assert_eq!(outcome.makespan, 4);
        assert!(!outcome.completed);
    }

    #[test]
    fn exhaustive_tie_break_prefers_fewer_jams() {
        // With a cap equal to k every jam is wasted (the run caps out
        // regardless of budget use? no — jamming reduces deliveries). Use a
        // game where the budget exceeds what the cap lets the adversary
        // use: cap 3, k = 3, budget 10. Any jam caps the run at 3 slots
        // incomplete; the incomplete outcomes tie on makespan, and among
        // them the search must report a minimal jam set.
        let game = ToyGame::new(3, 3);
        let outcome = exhaustive_worst_case(&game, 10);
        assert_eq!(outcome.makespan, 3);
        assert!(!outcome.completed);
        assert_eq!(
            outcome.jam_slots.len(),
            1,
            "one jam suffices to prevent completion at this cap"
        );
    }

    #[test]
    fn materialise_produces_the_pattern_slots() {
        let params = ParamSchedule {
            period: 4,
            burst: 1,
            phase: 0,
        };
        assert_eq!(
            params.materialise(3, 100),
            AdversaryModel::ScheduledJam {
                bursts: vec![(0, 1), (4, 1), (8, 1)],
            }
        );
        // Phase shifts the pattern: (s + 3) % 4 < 2 ⟺ s ≡ 1, 2 (mod 4).
        let shifted = ParamSchedule {
            period: 4,
            burst: 2,
            phase: 3,
        };
        assert_eq!(
            shifted.materialise(5, 100),
            AdversaryModel::ScheduledJam {
                bursts: vec![(1, 2), (5, 2), (9, 1)],
            }
        );
        // A phase overlapping the head run jams the partial run at 0:
        // (s + 1) % 4 < 2 ⟺ s ≡ 3, 0 (mod 4) → slots 0, 3, 4, 7, 8…
        let head = ParamSchedule {
            period: 4,
            burst: 2,
            phase: 1,
        };
        assert_eq!(
            head.materialise(4, 100),
            AdversaryModel::ScheduledJam {
                bursts: vec![(0, 1), (3, 2), (7, 1)],
            }
        );
    }

    #[test]
    fn materialise_respects_budget_and_horizon() {
        let params = ParamSchedule {
            period: 1,
            burst: 1,
            phase: 0,
        };
        // Period 1 jams every slot; budget 5 keeps only the first 5.
        assert_eq!(
            params.materialise(5, 100),
            AdversaryModel::ScheduledJam {
                bursts: vec![(0, 5)],
            }
        );
        // Horizon truncates before the budget runs out.
        assert_eq!(
            params.materialise(100, 3),
            AdversaryModel::ScheduledJam {
                bursts: vec![(0, 3)],
            }
        );
        // The materialised slots never exceed the budget.
        for period in 1..8 {
            for burst in 1..=period {
                for phase in 0..period {
                    let m = ParamSchedule {
                        period,
                        burst,
                        phase,
                    }
                    .materialise(7, 50);
                    let AdversaryModel::ScheduledJam { bursts } = &m else {
                        panic!("materialise must emit a scheduled jam");
                    };
                    let total: u64 = bursts.iter().map(|&(_, len)| len).sum();
                    assert!(total <= 7, "{period}/{burst}/{phase}: {total} slots");
                    // And the canonical form round-trips (no overlaps).
                    assert_eq!(m.normalised(), m);
                }
            }
        }
    }

    #[test]
    fn clamped_keeps_candidates_well_formed() {
        let p = ParamSchedule {
            period: 0,
            burst: 9,
            phase: 7,
        }
        .clamped();
        assert_eq!(p.period, 1);
        assert_eq!(p.burst, 1);
        assert_eq!(p.phase, 0);
    }

    /// Extracts the explicit jam slots of a scheduled model (test helper).
    fn scheduled_slots(model: &AdversaryModel) -> Vec<u64> {
        match model {
            AdversaryModel::ScheduledJam { bursts } => bursts
                .iter()
                .flat_map(|&(start, len)| start..start.saturating_add(len))
                .collect(),
            _ => Vec::new(),
        }
    }

    #[test]
    fn budgeted_search_discovers_period_two_without_seeding_it() {
        // Synthetic evaluator with a period-2 resonance: even slots score
        // 10 each, odd slots score nothing. The unique maximiser among
        // budget-8 schedules is the period-2 phase-0 comb, which is NOT in
        // the initial grid — the mutations must find it.
        let outcome = budgeted_search(8, 1_000, 6, 32, |model| {
            scheduled_slots(model)
                .iter()
                .map(|s| if s % 2 == 0 { 10 } else { 0 })
                .sum()
        });
        assert_eq!(outcome.best.makespan, 80);
        let params = outcome.best.params.expect("periodic family must win");
        assert_eq!(params.period, 2, "{params:?}");
        assert_eq!(params.burst, 1);
        assert_eq!(params.phase % 2, 0);
        let slots = scheduled_slots(&outcome.best.model);
        assert_eq!(slots.len(), 8);
        assert!(slots.iter().all(|s| s % 2 == 0));
    }

    #[test]
    fn budgeted_search_is_deterministic() {
        let run = || {
            budgeted_search(5, 500, 4, 16, |model| {
                scheduled_slots(model).iter().map(|s| s % 7).sum()
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn budgeted_search_can_prefer_a_reactive_candidate() {
        // An evaluator that scores reactive near-success jamming above any
        // schedule forces the reactive candidate to win.
        let outcome = budgeted_search(4, 100, 4, 8, |model| match model {
            AdversaryModel::BudgetedReactiveJam {
                trigger: JamTrigger::NearSuccess,
                ..
            } => 1_000_000,
            _ => 1,
        });
        assert_eq!(
            outcome.best.model,
            AdversaryModel::BudgetedReactiveJam {
                budget: 4,
                trigger: JamTrigger::NearSuccess,
            }
        );
        assert!(outcome.best.params.is_none());
    }

    #[test]
    fn certificate_schedule_and_stride() {
        let cert = Certificate {
            protocol: "test".into(),
            k: 8,
            seed: 1,
            budget: 4,
            tier: CertificateTier::Exhaustive,
            jam_slots: vec![2, 4, 8, 10],
            makespan: 40,
            completed: true,
            clean_makespan: 20,
        };
        assert_eq!(cert.stride(), Some(2));
        assert!((cert.ratio() - 2.0).abs() < 1e-12);
        assert_eq!(
            cert.schedule(),
            AdversaryModel::ScheduledJam {
                bursts: vec![(2, 1), (4, 1), (8, 1), (10, 1)],
            }
        );
        let single = Certificate {
            jam_slots: vec![3],
            ..cert
        };
        assert_eq!(single.stride(), None);
    }
}
