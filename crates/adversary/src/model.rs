//! Adversary configurations: jamming models and feedback faults.
//!
//! A configuration is pure data — serialisable, comparable, and parsable
//! from a compact config string (see [`AdversaryModel::parse`]) — and is
//! turned into a runtime [`crate::AdversaryState`] by
//! [`AdversaryScenario::state`] with a dedicated RNG stream, so that an
//! adversary never perturbs the protocol randomness of a seeded run.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// What a budgeted reactive jammer reacts to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JamTrigger {
    /// Jam slots in which exactly one station transmits (would-be
    /// deliveries). This is the strongest per-unit-budget attack: every jam
    /// destroys a delivery.
    NearSuccess,
    /// Jam slots in which two or more stations transmit. Such slots are
    /// already collisions, so this trigger wastes the budget — included to
    /// demonstrate experimentally that *what* a reactive jammer targets
    /// matters as much as how much energy it has.
    Contended,
}

impl JamTrigger {
    fn as_str(self) -> &'static str {
        match self {
            JamTrigger::NearSuccess => "near-success",
            JamTrigger::Contended => "contended",
        }
    }
}

/// A model of channel jamming.
///
/// Jamming operates on the *channel truth* of a slot: a jammed slot in which
/// at least one station transmits becomes a [`mac_prob::outcome::SlotOutcome::Collision`]
/// (the jam signal garbles the transmission), so a jammed would-be delivery
/// is destroyed and the transmitting station stays active. Jamming an empty
/// slot has no observable effect in this model — the jam signal alone
/// carries no message and is indistinguishable from background noise — so
/// adversaries are only ever consulted about busy slots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum AdversaryModel {
    /// No jamming: the ideal channel of the paper.
    #[default]
    None,
    /// Each slot is independently corrupted into a collision with
    /// probability `p` (stochastic noise, cf. the noisy-channel models of
    /// Bender et al., "Contention Resolution Without Collision Detection").
    StochasticNoise {
        /// Per-slot corruption probability, in `[0, 1]`.
        p: f64,
    },
    /// An oblivious periodic jammer: slot `t` is jammed iff
    /// `(t + phase) % period < burst`.
    PeriodicJam {
        /// Length of the repeating pattern (≥ 1).
        period: u64,
        /// Number of jammed slots at the start of each period (≤ `period`).
        burst: u64,
        /// Offset of the pattern against the slot clock.
        phase: u64,
    },
    /// An oblivious jammer following an explicit schedule of
    /// `(start_slot, length)` intervals. Intervals may be given unsorted and
    /// overlapping; they are normalised (sorted and merged) before use.
    ScheduledJam {
        /// The jam intervals as `(start_slot, length)` pairs.
        bursts: Vec<(u64, u64)>,
    },
    /// A reactive jammer with a finite energy budget: it jams every slot
    /// matching `trigger` until `budget` jams have been spent (cf. the
    /// resource-bounded adversaries of the jamming literature).
    BudgetedReactiveJam {
        /// Total number of slots the adversary can jam.
        budget: u64,
        /// Which slots the adversary reacts to.
        trigger: JamTrigger,
    },
}

impl AdversaryModel {
    /// True for the ideal (non-jamming) channel.
    pub fn is_none(&self) -> bool {
        matches!(self, AdversaryModel::None)
    }

    /// Validates the model parameters.
    ///
    /// # Errors
    /// Returns a human-readable description of the first invalid parameter.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            AdversaryModel::None => Ok(()),
            AdversaryModel::StochasticNoise { p } => {
                if p.is_finite() && (0.0..=1.0).contains(p) {
                    Ok(())
                } else {
                    Err(format!("noise probability must be in [0,1], got {p}"))
                }
            }
            AdversaryModel::PeriodicJam { period, burst, .. } => {
                if *period == 0 {
                    Err("jam period must be at least 1".to_string())
                } else if burst > period {
                    Err(format!("jam burst {burst} exceeds period {period}"))
                } else {
                    Ok(())
                }
            }
            AdversaryModel::ScheduledJam { .. } | AdversaryModel::BudgetedReactiveJam { .. } => {
                Ok(())
            }
        }
    }

    /// Returns the model in canonical form: scheduled jam intervals sorted
    /// by start slot, with empty intervals dropped and overlapping or
    /// adjacent intervals merged. All other models are already canonical.
    pub fn normalised(&self) -> AdversaryModel {
        match self {
            AdversaryModel::ScheduledJam { bursts } => AdversaryModel::ScheduledJam {
                bursts: normalise_intervals(bursts),
            },
            other => other.clone(),
        }
    }

    /// A short human-readable label for tables and reports.
    pub fn label(&self) -> String {
        match self {
            AdversaryModel::None => "clean channel".to_string(),
            AdversaryModel::StochasticNoise { p } => format!("noise p={p}"),
            AdversaryModel::PeriodicJam { period, burst, .. } => {
                format!("periodic {burst}/{period}")
            }
            AdversaryModel::ScheduledJam { bursts } => {
                format!("scheduled ({} bursts)", normalise_intervals(bursts).len())
            }
            AdversaryModel::BudgetedReactiveJam { budget, trigger } => {
                format!("reactive {} b={budget}", trigger.as_str())
            }
        }
    }

    /// Parses a model from its compact config-string form (the format
    /// produced by the [`fmt::Display`] impl):
    ///
    /// * `none`
    /// * `noise:P` — stochastic noise with probability `P`
    /// * `periodic:PERIOD:BURST:PHASE`
    /// * `scheduled:S+L,S+L,...` — intervals of `L` slots starting at `S`.
    ///   Intervals may be given out of order but must not cover any slot
    ///   twice: a duplicated slot is rejected with an error naming it,
    ///   since silently merging it would misstate the jam budget.
    /// * `reactive:BUDGET:near-success` / `reactive:BUDGET:contended`
    ///
    /// # Errors
    /// Returns a description of the malformed component.
    pub fn parse(text: &str) -> Result<AdversaryModel, String> {
        text.parse()
    }
}

/// Sorts intervals by start, drops empty ones and merges overlaps.
fn normalise_intervals(bursts: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut sorted: Vec<(u64, u64)> = bursts.iter().copied().filter(|&(_, len)| len > 0).collect();
    sorted.sort_unstable();
    let mut merged: Vec<(u64, u64)> = Vec::with_capacity(sorted.len());
    for (start, len) in sorted {
        match merged.last_mut() {
            Some((last_start, last_len)) if start <= last_start.saturating_add(*last_len) => {
                // Saturating ends: an interval reaching past u64::MAX jams
                // every slot from its start onwards.
                let end = start
                    .saturating_add(len)
                    .max(last_start.saturating_add(*last_len));
                *last_len = end - *last_start;
            }
            _ => merged.push((start, len)),
        }
    }
    merged
}

impl fmt::Display for AdversaryModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdversaryModel::None => write!(f, "none"),
            AdversaryModel::StochasticNoise { p } => write!(f, "noise:{p}"),
            AdversaryModel::PeriodicJam {
                period,
                burst,
                phase,
            } => write!(f, "periodic:{period}:{burst}:{phase}"),
            AdversaryModel::ScheduledJam { bursts } => {
                write!(f, "scheduled:")?;
                for (i, (start, len)) in normalise_intervals(bursts).iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{start}+{len}")?;
                }
                Ok(())
            }
            AdversaryModel::BudgetedReactiveJam { budget, trigger } => {
                write!(f, "reactive:{budget}:{}", trigger.as_str())
            }
        }
    }
}

impl FromStr for AdversaryModel {
    type Err = String;

    fn from_str(text: &str) -> Result<Self, Self::Err> {
        let (head, rest) = match text.split_once(':') {
            Some((head, rest)) => (head, rest),
            None => (text, ""),
        };
        let parse_u64 = |part: &str, what: &str| -> Result<u64, String> {
            part.parse::<u64>()
                .map_err(|_| format!("invalid {what} `{part}` in adversary config `{text}`"))
        };
        let model = match head {
            "none" => AdversaryModel::None,
            "noise" => AdversaryModel::StochasticNoise {
                p: rest
                    .parse::<f64>()
                    .map_err(|_| format!("invalid noise probability `{rest}`"))?,
            },
            "periodic" => {
                let mut parts = rest.split(':');
                let mut next = |what: &str| {
                    parts
                        .next()
                        .ok_or_else(|| format!("periodic jam is missing its {what}"))
                };
                let model = AdversaryModel::PeriodicJam {
                    period: parse_u64(next("period")?, "period")?,
                    burst: parse_u64(next("burst")?, "burst")?,
                    phase: parse_u64(next("phase")?, "phase")?,
                };
                if parts.next().is_some() {
                    return Err(format!("trailing components in `{text}`"));
                }
                model
            }
            "scheduled" => {
                let mut bursts = Vec::new();
                for pair in rest.split(',').filter(|p| !p.is_empty()) {
                    let (start, len) = pair
                        .split_once('+')
                        .ok_or_else(|| format!("interval `{pair}` is not of the form S+L"))?;
                    bursts.push((
                        parse_u64(start, "interval start")?,
                        parse_u64(len, "interval length")?,
                    ));
                }
                // A slot covered by two intervals would be jammed "twice":
                // normalisation merges the duplicates away, so a config
                // naming a slot twice silently claims less jamming than it
                // spells out. Reject it, naming the first double-counted
                // slot, instead of guessing what was meant.
                let mut occupied: Vec<(u64, u64)> =
                    bursts.iter().copied().filter(|&(_, len)| len > 0).collect();
                occupied.sort_unstable();
                for window in occupied.windows(2) {
                    let (prev_start, prev_len) = window[0];
                    let (next_start, _) = window[1];
                    if next_start < prev_start.saturating_add(prev_len) {
                        return Err(format!(
                            "scheduled jam covers slot {next_start} twice in `{text}`"
                        ));
                    }
                }
                AdversaryModel::ScheduledJam { bursts }
            }
            "reactive" => {
                let (budget, trigger) = rest
                    .split_once(':')
                    .ok_or_else(|| format!("reactive jam `{text}` needs BUDGET:TRIGGER"))?;
                let trigger = match trigger {
                    "near-success" => JamTrigger::NearSuccess,
                    "contended" => JamTrigger::Contended,
                    other => return Err(format!("unknown jam trigger `{other}`")),
                };
                AdversaryModel::BudgetedReactiveJam {
                    budget: parse_u64(budget, "budget")?,
                    trigger,
                }
            }
            other => return Err(format!("unknown adversary model `{other}`")),
        };
        model.validate()?;
        Ok(model)
    }
}

/// A model of degraded channel feedback: the slot is resolved correctly, but
/// what the *stations* are told about it is corrupted.
///
/// Both faults are channel-level (every listening station receives the same
/// degraded feedback in a slot, modelling a noisy broadcast feedback path),
/// which is what keeps the common-state invariant of fair protocols — and
/// with it the O(1)-per-slot fair simulator — intact. Acknowledgements are
/// reliable: the station whose message was delivered always learns it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct FeedbackFault {
    /// Probability that a silent slot is reported as a collision and vice
    /// versa. Models receivers without dependable collision detection: the
    /// paper's protocols ignore the distinction and are immune, while
    /// collision-detection baselines (e.g. `CdAdaptive`) are not.
    pub confuse_collision_empty: f64,
    /// Probability that a delivered message is received garbled by everyone
    /// except its (acknowledged) sender, i.e. the delivery is reported to
    /// the other stations as a collision.
    pub miss_delivery: f64,
}

impl FeedbackFault {
    /// Perfectly reliable feedback.
    pub fn clean() -> Self {
        Self::default()
    }

    /// True if the feedback path is perfectly reliable.
    pub fn is_clean(&self) -> bool {
        self.confuse_collision_empty == 0.0 && self.miss_delivery == 0.0
    }

    /// Validates the fault probabilities.
    ///
    /// # Errors
    /// Returns a human-readable description of the first invalid parameter.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("confuse_collision_empty", self.confuse_collision_empty),
            ("miss_delivery", self.miss_delivery),
        ] {
            if !(p.is_finite() && (0.0..=1.0).contains(&p)) {
                return Err(format!("{name} must be in [0,1], got {p}"));
            }
        }
        Ok(())
    }
}

/// A complete adversarial scenario: a jamming model plus a feedback fault.
///
/// This is the unit of configuration the simulators accept (via
/// `RunOptions` in `mac-sim`); the default scenario is the paper's ideal
/// channel, under which every simulator is bit-identical to a run with no
/// adversary support at all.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct AdversaryScenario {
    /// The jamming model.
    pub jamming: AdversaryModel,
    /// The feedback-degradation model.
    pub feedback: FeedbackFault,
}

impl AdversaryScenario {
    /// The ideal channel: no jamming, reliable feedback.
    pub fn clean() -> Self {
        Self::default()
    }

    /// A jamming-only scenario with reliable feedback.
    pub fn jamming(model: AdversaryModel) -> Self {
        Self {
            jamming: model,
            feedback: FeedbackFault::clean(),
        }
    }

    /// A feedback-fault-only scenario on an otherwise ideal channel.
    pub fn faulty_feedback(fault: FeedbackFault) -> Self {
        Self {
            jamming: AdversaryModel::None,
            feedback: fault,
        }
    }

    /// True if the scenario is exactly the ideal channel. Simulators use
    /// this to stay on their pristine (pre-adversary) fast paths.
    pub fn is_clean(&self) -> bool {
        self.jamming.is_none() && self.feedback.is_clean()
    }

    /// Validates both components.
    ///
    /// # Errors
    /// Returns a human-readable description of the first invalid parameter.
    pub fn validate(&self) -> Result<(), String> {
        self.jamming.validate()?;
        self.feedback.validate()
    }

    /// Instantiates the runtime adversary with its own RNG stream.
    ///
    /// `seed` must be derived from the run seed on a dedicated path (the
    /// simulators use `derive_seed(run_seed, &[ADVERSARY_STREAM])`) so the
    /// adversary's randomness never perturbs the protocol stream.
    ///
    /// # Panics
    /// Panics if the scenario fails [`AdversaryScenario::validate`].
    pub fn state(&self, seed: u64) -> crate::AdversaryState {
        crate::AdversaryState::new(self.clone(), seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_clean() {
        assert!(AdversaryScenario::default().is_clean());
        assert!(AdversaryModel::default().is_none());
        assert!(FeedbackFault::default().is_clean());
    }

    #[test]
    fn validation_catches_bad_parameters() {
        assert!(AdversaryModel::StochasticNoise { p: 1.5 }
            .validate()
            .is_err());
        assert!(AdversaryModel::StochasticNoise { p: f64::NAN }
            .validate()
            .is_err());
        assert!(AdversaryModel::PeriodicJam {
            period: 0,
            burst: 0,
            phase: 0
        }
        .validate()
        .is_err());
        assert!(AdversaryModel::PeriodicJam {
            period: 3,
            burst: 4,
            phase: 0
        }
        .validate()
        .is_err());
        assert!(FeedbackFault {
            confuse_collision_empty: -0.1,
            miss_delivery: 0.0
        }
        .validate()
        .is_err());
        assert!(AdversaryModel::StochasticNoise { p: 0.5 }
            .validate()
            .is_ok());
    }

    #[test]
    fn duplicate_scheduled_slots_are_rejected_with_the_offending_slot() {
        // Exact duplicate interval: slot 5 is covered twice.
        let err = AdversaryModel::parse("scheduled:5+2,5+2").unwrap_err();
        assert!(err.contains("slot 5"), "unhelpful error: {err}");
        // Partial overlap: [0,5) and [3,5) double-cover slot 3.
        let err = AdversaryModel::parse("scheduled:0+5,3+2").unwrap_err();
        assert!(err.contains("slot 3"), "unhelpful error: {err}");
        // Out-of-order but disjoint (and even adjacent) intervals are fine.
        assert!(AdversaryModel::parse("scheduled:5+5,0+5").is_ok());
        // Zero-length intervals cover nothing and cannot collide.
        assert!(AdversaryModel::parse("scheduled:3+0,3+0,3+1").is_ok());
    }

    #[test]
    fn normalisation_deduplicates_identical_intervals() {
        // The search layer emits unordered, possibly duplicated candidates;
        // the canonical form must collapse them so the budget they spell out
        // equals the number of slots actually jammed.
        let model = AdversaryModel::ScheduledJam {
            bursts: vec![(4, 1), (0, 1), (4, 1), (2, 1)],
        };
        assert_eq!(
            model.normalised(),
            AdversaryModel::ScheduledJam {
                bursts: vec![(0, 1), (2, 1), (4, 1)],
            }
        );
    }

    #[test]
    fn scheduled_intervals_are_normalised() {
        let model = AdversaryModel::ScheduledJam {
            bursts: vec![(10, 5), (0, 3), (12, 4), (3, 0), (20, 1)],
        };
        assert_eq!(
            model.normalised(),
            AdversaryModel::ScheduledJam {
                bursts: vec![(0, 3), (10, 6), (20, 1)],
            }
        );
    }

    #[test]
    fn normalisation_saturates_instead_of_overflowing() {
        let model = AdversaryModel::ScheduledJam {
            bursts: vec![(u64::MAX - 1, 5), (u64::MAX - 1, 2)],
        };
        assert_eq!(
            model.normalised(),
            AdversaryModel::ScheduledJam {
                bursts: vec![(u64::MAX - 1, 1)],
            }
        );
    }

    #[test]
    fn adjacent_intervals_merge() {
        let model = AdversaryModel::ScheduledJam {
            bursts: vec![(0, 5), (5, 5)],
        };
        assert_eq!(
            model.normalised(),
            AdversaryModel::ScheduledJam {
                bursts: vec![(0, 10)],
            }
        );
    }

    #[test]
    fn config_strings_round_trip() {
        let models = [
            AdversaryModel::None,
            AdversaryModel::StochasticNoise { p: 0.125 },
            AdversaryModel::PeriodicJam {
                period: 7,
                burst: 2,
                phase: 3,
            },
            AdversaryModel::ScheduledJam {
                bursts: vec![(0, 10), (100, 5)],
            },
            AdversaryModel::ScheduledJam { bursts: vec![] },
            AdversaryModel::BudgetedReactiveJam {
                budget: 42,
                trigger: JamTrigger::NearSuccess,
            },
            AdversaryModel::BudgetedReactiveJam {
                budget: 0,
                trigger: JamTrigger::Contended,
            },
        ];
        for model in models {
            let text = model.to_string();
            let parsed = AdversaryModel::parse(&text).unwrap();
            assert_eq!(parsed, model.normalised(), "config `{text}`");
        }
    }

    #[test]
    fn malformed_configs_are_rejected() {
        for bad in [
            "bogus",
            "noise:abc",
            "noise:1.5",
            "periodic:0:0:0",
            "periodic:3",
            "periodic:3:1:0:9",
            "scheduled:5",
            "scheduled:a+b",
            "reactive:10",
            "reactive:x:contended",
            "reactive:10:sometimes",
        ] {
            assert!(AdversaryModel::parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn labels_are_informative() {
        assert_eq!(AdversaryModel::None.label(), "clean channel");
        assert!(AdversaryModel::StochasticNoise { p: 0.1 }
            .label()
            .contains("0.1"));
        assert!(AdversaryModel::BudgetedReactiveJam {
            budget: 9,
            trigger: JamTrigger::Contended
        }
        .label()
        .contains("contended"));
    }
}
