//! `mac-lint` — workspace static analysis for the determinism and
//! checkpoint contracts everything else in this repository hand-keeps.
//!
//! Every guarantee this reproduction makes — bit-identical
//! checkpoint/resume, inert-adversary stream identity, certificate replay —
//! rests on invariants that no type system enforces: RNG streams must be
//! derived, checkpoints must cover every field, frame layouts must not
//! drift under a constant version. The dynamic tests catch violations
//! *after* they ship a wrong bit; this pass rejects them at lint time.
//!
//! Five rules, each with file:line diagnostics and a mandatory-reason
//! escape hatch (`// lint:allow(<rule>): <reason>` — an allow without a
//! reason is itself an error):
//!
//! | rule | contract |
//! |------|----------|
//! | `rng-stream-discipline`  | RNG construction flows through `derive_seed` + a `*_STREAM` constant |
//! | `checkpoint-coverage`    | every struct field appears in `checkpoint_words`/`restore_words` |
//! | `nondeterminism-bans`    | no hash-ordered iteration, wall clocks, env reads or thread identity in result-affecting crates |
//! | `panic-hygiene`          | no `unwrap`/`expect`/bare indexing on session/store/stepper/dynamic library paths |
//! | `wire-version-hygiene`   | frame-layout fingerprints match the committed ledger at the committed `CHECKPOINT_VERSION` |
//!
//! Run locally with `cargo run -p mac-lint`; CI runs the same binary in
//! the `lint-invariants` job. The scanner is a hand-rolled lexer
//! ([`lexer`]) — no syn, no proc-macro machinery, no dependencies — so it
//! builds offline and lints the whole workspace in milliseconds.

pub mod analysis;
pub mod lexer;
pub mod rules;

use analysis::analyze;
use rules::wire;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One finding, pointing at a workspace-relative file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub path: String,
    pub line: u32,
    pub rule: String,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Result of a workspace pass.
#[derive(Debug, Default)]
pub struct LintReport {
    pub diagnostics: Vec<Diagnostic>,
    pub files_scanned: usize,
}

/// Relative path of the committed frame-layout ledger.
pub const LEDGER_PATH: &str = "crates/lint/wire.ledger";

/// Directory names never descended into.
const SKIP_DIRS: [&str; 4] = ["target", "vendor", ".git", ".github"];

/// Collects every `.rs` file under the workspace root (sorted, relative,
/// forward slashes), skipping build output and the vendored stubs.
pub fn workspace_rs_files(root: &Path) -> io::Result<Vec<String>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .replace('\\', "/");
                files.push(rel);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Runs the whole pass over a workspace. With `update_ledger`, the
/// frame-layout ledger is rewritten from the current tree instead of
/// checked against it.
pub fn lint_workspace(root: &Path, update_ledger: bool) -> io::Result<LintReport> {
    let mut report = LintReport::default();
    let mut frames = Vec::new();
    let mut version = None;
    for rel in workspace_rs_files(root)? {
        let source = fs::read_to_string(root.join(&rel))?;
        let analysis = analyze(&rel, &source);
        report.files_scanned += 1;
        report.diagnostics.extend(rules::run_file_rules(&analysis));
        frames.extend(wire::frames_of(&analysis));
        if rel == wire::SESSION_FILE {
            version = wire::checkpoint_version(&analysis);
        }
    }
    let ledger_file: PathBuf = root.join(LEDGER_PATH);
    if update_ledger {
        let Some(version) = version else {
            return Err(io::Error::other("CHECKPOINT_VERSION not found"));
        };
        fs::write(&ledger_file, wire::render_ledger(&frames, version))?;
    } else {
        let ledger_text = fs::read_to_string(&ledger_file).ok();
        report.diagnostics.extend(wire::check_ledger(
            &frames,
            version,
            ledger_text.as_deref(),
            LEDGER_PATH,
        ));
    }
    report
        .diagnostics
        .sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
    // Allows are line-granular, so multiple hits of one rule on one line
    // (e.g. two indexing expressions) collapse to a single finding.
    report
        .diagnostics
        .dedup_by(|a, b| (&a.path, a.line, &a.rule) == (&b.path, b.line, &b.rule));
    Ok(report)
}

/// Locates the workspace root: walks up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
