//! Per-file structural analysis on top of the token stream: test-region
//! tracking, `lint:allow` annotations, struct field lists and
//! `impl`-block method bodies.

use crate::lexer::{lex, Comment, Token, TokenKind};
use crate::rules::RULE_NAMES;
use crate::Diagnostic;

/// A parsed `// lint:allow(<rule>): <reason>` annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    pub rule: String,
    pub reason: String,
    /// Line of the comment itself.
    pub line: u32,
    /// Line of the code the annotation governs (same line for trailing
    /// comments, otherwise the next code line, skipping attributes).
    pub target_line: u32,
}

/// A named-field struct definition.
#[derive(Debug, Clone)]
pub struct StructDef {
    pub name: String,
    pub line: u32,
    /// `(field_name, line)` in declaration order.
    pub fields: Vec<(String, u32)>,
}

/// A method found inside an `impl` block.
#[derive(Debug, Clone)]
pub struct ImplFn {
    /// Last path segment of the implemented type (`Box<dyn T>` → `Box`).
    pub type_name: String,
    pub fn_name: String,
    pub line: u32,
    /// Token range (indices into `tokens`) of the body, braces excluded.
    pub body: (usize, usize),
}

/// Everything the rules need to know about one source file.
pub struct FileAnalysis {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    pub tokens: Vec<Token>,
    pub allows: Vec<Allow>,
    /// Diagnostics produced by the analysis itself (malformed allows).
    pub meta_diagnostics: Vec<Diagnostic>,
    pub structs: Vec<StructDef>,
    pub impl_fns: Vec<ImplFn>,
    /// Sorted, disjoint (start, end) inclusive line ranges that are
    /// test-only code (`#[cfg(test)]` / `#[test]` items).
    test_ranges: Vec<(u32, u32)>,
}

impl FileAnalysis {
    /// True if `line` lies inside a `#[cfg(test)]` or `#[test]` item.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_ranges
            .iter()
            .any(|&(a, b)| (a..=b).contains(&line))
    }

    /// True if an allow for `rule` governs `line`.
    pub fn is_allowed(&self, rule: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| a.rule == rule && a.target_line == line && !a.reason.is_empty())
    }
}

/// Analyzes one file's source text.
pub fn analyze(path: &str, source: &str) -> FileAnalysis {
    let lexed = lex(source);
    let tokens = lexed.tokens;
    let test_ranges = find_test_ranges(&tokens);
    let (allows, meta_diagnostics) = collect_allows(path, &lexed.comments, &tokens);
    let structs = find_structs(&tokens);
    let impl_fns = find_impl_fns(&tokens);
    FileAnalysis {
        path: path.to_string(),
        tokens,
        allows,
        meta_diagnostics,
        structs,
        impl_fns,
        test_ranges,
    }
}

fn is_punct(t: &Token, s: &str) -> bool {
    t.kind == TokenKind::Punct && t.text == s
}

fn is_ident(t: &Token, s: &str) -> bool {
    t.kind == TokenKind::Ident && t.text == s
}

/// Index just past the `]` matching the `[` at `open` (which must be `[`).
fn skip_bracket_group(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < tokens.len() {
        if is_punct(&tokens[i], "[") {
            depth += 1;
        } else if is_punct(&tokens[i], "]") {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}

/// Index of the `}` matching the `{` at `open`.
fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < tokens.len() {
        if is_punct(&tokens[i], "{") {
            depth += 1;
        } else if is_punct(&tokens[i], "}") {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    tokens.len().saturating_sub(1)
}

/// Finds line ranges of items annotated `#[cfg(test)]` / `#[test]`.
fn find_test_ranges(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !is_punct(&tokens[i], "#") || i + 1 >= tokens.len() || !is_punct(&tokens[i + 1], "[") {
            i += 1;
            continue;
        }
        let close = skip_bracket_group(tokens, i + 1);
        let attr = &tokens[i + 2..close.saturating_sub(1)];
        let is_test_attr = match attr.first() {
            Some(t) if is_ident(t, "test") => true,
            Some(t) if is_ident(t, "cfg") => attr.iter().any(|t| is_ident(t, "test")),
            _ => false,
        };
        if !is_test_attr {
            i = close;
            continue;
        }
        let start_line = tokens[i].line;
        // Skip any further attributes, then span the item: to the matching
        // `}` if it opens a brace before a top-level `;`, else to the `;`.
        let mut j = close;
        while j + 1 < tokens.len() && is_punct(&tokens[j], "#") && is_punct(&tokens[j + 1], "[") {
            j = skip_bracket_group(tokens, j + 1);
        }
        while j < tokens.len() {
            if is_punct(&tokens[j], "{") {
                let end = matching_brace(tokens, j);
                ranges.push((start_line, tokens[end.min(tokens.len() - 1)].line));
                j = end + 1;
                break;
            }
            if is_punct(&tokens[j], ";") {
                ranges.push((start_line, tokens[j].line));
                j += 1;
                break;
            }
            j += 1;
        }
        i = j.max(close);
    }
    ranges
}

/// Parses `lint:allow(...)` comments; malformed ones become diagnostics.
fn collect_allows(
    path: &str,
    comments: &[Comment],
    tokens: &[Token],
) -> (Vec<Allow>, Vec<Diagnostic>) {
    let mut allows = Vec::new();
    let mut meta = Vec::new();
    for comment in comments {
        // Doc comments are prose; only plain `//` / `/* */` comments can
        // carry annotations (so documentation may *describe* the syntax).
        if comment.doc {
            continue;
        }
        let Some(pos) = comment.text.find("lint:allow") else {
            continue;
        };
        let rest = &comment.text[pos + "lint:allow".len()..];
        let mut diag = |message: String| {
            meta.push(Diagnostic {
                path: path.to_string(),
                line: comment.line,
                rule: "lint-allow".to_string(),
                message,
            });
        };
        let Some(rest) = rest.strip_prefix('(') else {
            diag("malformed lint:allow — expected `lint:allow(<rule>): <reason>`".to_string());
            continue;
        };
        let Some(close) = rest.find(')') else {
            diag("malformed lint:allow — missing `)` after the rule name".to_string());
            continue;
        };
        let rule = rest[..close].trim().to_string();
        if !RULE_NAMES.contains(&rule.as_str()) {
            diag(format!(
                "unknown rule `{rule}` in lint:allow (known rules: {})",
                RULE_NAMES.join(", ")
            ));
            continue;
        }
        let after = rest[close + 1..].trim_start();
        let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
        if reason.is_empty() {
            diag(format!(
                "lint:allow({rule}) carries no reason — every escape hatch must say why"
            ));
            continue;
        }
        let target_line = allow_target_line(comment, tokens);
        allows.push(Allow {
            rule,
            reason: reason.to_string(),
            line: comment.line,
            target_line,
        });
    }
    (allows, meta)
}

/// The code line an allow annotation governs: the comment's own line for
/// trailing comments, otherwise the next code line, skipping attributes.
fn allow_target_line(comment: &Comment, tokens: &[Token]) -> u32 {
    if comment.code_before {
        return comment.line;
    }
    let mut idx = match tokens.iter().position(|t| t.line > comment.line) {
        Some(i) => i,
        None => return comment.line,
    };
    // Attributes between the annotation and the code it shields are
    // transparent: an allow comment above `#[serde(default)]` above a
    // field still governs the field.
    while idx + 1 < tokens.len() && is_punct(&tokens[idx], "#") && is_punct(&tokens[idx + 1], "[") {
        idx = skip_bracket_group(tokens, idx + 1);
    }
    tokens.get(idx).map_or(comment.line, |t| t.line)
}

/// Extracts named-field struct definitions.
fn find_structs(tokens: &[Token]) -> Vec<StructDef> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !is_ident(&tokens[i], "struct") {
            i += 1;
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1) else {
            break;
        };
        if name_tok.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        let name = name_tok.text.clone();
        let line = name_tok.line;
        // Scan to the body `{`, tracking angle depth through generics and
        // where-clauses; `-` `>` pairs (return arrows in bounds) are not
        // closers. Unit (`;`) and tuple (`(`) structs are skipped.
        let mut j = i + 2;
        let mut angle = 0i32;
        let mut body_open = None;
        while j < tokens.len() {
            let t = &tokens[j];
            if is_punct(t, "<") {
                angle += 1;
            } else if is_punct(t, ">") && !is_punct(&tokens[j - 1], "-") {
                angle -= 1;
            } else if angle == 0 && is_punct(t, "{") {
                body_open = Some(j);
                break;
            } else if angle == 0 && (is_punct(t, ";") || is_punct(t, "(")) {
                break;
            }
            j += 1;
        }
        let Some(open) = body_open else {
            i = j;
            continue;
        };
        let close = matching_brace(tokens, open);
        out.push(StructDef {
            name,
            line,
            fields: parse_fields(&tokens[open + 1..close]),
        });
        i = close + 1;
    }
    out
}

/// Parses the fields of a struct body (tokens between the braces).
fn parse_fields(body: &[Token]) -> Vec<(String, u32)> {
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < body.len() {
        // Skip attributes and visibility.
        if is_punct(&body[i], "#") && i + 1 < body.len() && is_punct(&body[i + 1], "[") {
            i = skip_bracket_group(body, i + 1);
            continue;
        }
        if is_ident(&body[i], "pub") {
            i += 1;
            if i < body.len() && is_punct(&body[i], "(") {
                let mut depth = 0i32;
                while i < body.len() {
                    if is_punct(&body[i], "(") {
                        depth += 1;
                    } else if is_punct(&body[i], ")") {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    i += 1;
                }
            }
            continue;
        }
        // Field: `name :`.
        if body[i].kind == TokenKind::Ident && i + 1 < body.len() && is_punct(&body[i + 1], ":") {
            fields.push((body[i].text.clone(), body[i].line));
            // Skip the type to the separating comma at nesting level 0;
            // `>` after `-` is a return arrow, not an angle close.
            let mut depth = 0i32;
            let mut j = i + 2;
            while j < body.len() {
                let t = &body[j];
                if is_punct(t, "<") || is_punct(t, "(") || is_punct(t, "[") {
                    depth += 1;
                } else if is_punct(t, ")")
                    || is_punct(t, "]")
                    || (is_punct(t, ">") && !is_punct(&body[j - 1], "-"))
                {
                    depth -= 1;
                } else if depth <= 0 && is_punct(t, ",") {
                    j += 1;
                    break;
                }
                j += 1;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    fields
}

/// Extracts methods defined inside `impl` blocks, with their bodies.
fn find_impl_fns(tokens: &[Token]) -> Vec<ImplFn> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !is_ident(&tokens[i], "impl") {
            i += 1;
            continue;
        }
        // Header: optional generics, a path, optional `for <path>`, then
        // the block. The implemented type is the path after `for` when
        // present, else the first path; its name is the ident right before
        // the first `<` of that path (or its last ident).
        let mut j = i + 1;
        let mut angle = 0i32;
        let mut header: Vec<usize> = Vec::new();
        let mut for_at: Option<usize> = None;
        while j < tokens.len() {
            let t = &tokens[j];
            if is_punct(t, "<") {
                angle += 1;
            } else if is_punct(t, ">") && !is_punct(&tokens[j - 1], "-") {
                angle -= 1;
            } else if angle == 0 && is_punct(t, "{") {
                break;
            } else if angle == 0 && is_ident(t, "for") {
                for_at = Some(header.len());
            } else if angle == 0 && is_ident(t, "where") {
                break;
            }
            header.push(j);
            j += 1;
        }
        // Find the body opener (skip a where-clause if we stopped at one).
        while j < tokens.len() && !is_punct(&tokens[j], "{") {
            j += 1;
        }
        if j >= tokens.len() {
            break;
        }
        let type_span: Vec<usize> = match for_at {
            Some(pos) => header[pos..]
                .iter()
                .copied()
                .filter(|&k| !is_ident(&tokens[k], "for"))
                .collect(),
            None => header,
        };
        let type_name = type_name_of(tokens, &type_span);
        let open = j;
        let close = matching_brace(tokens, open);
        // Walk the impl body for `fn <name>` items.
        let mut k = open + 1;
        while k < close {
            if is_ident(&tokens[k], "fn")
                && tokens
                    .get(k + 1)
                    .is_some_and(|t| t.kind == TokenKind::Ident)
            {
                let fn_name = tokens[k + 1].text.clone();
                let line = tokens[k + 1].line;
                let mut b = k + 2;
                while b < close && !is_punct(&tokens[b], "{") && !is_punct(&tokens[b], ";") {
                    b += 1;
                }
                if b < close && is_punct(&tokens[b], "{") {
                    let body_close = matching_brace(tokens, b);
                    out.push(ImplFn {
                        type_name: type_name.clone(),
                        fn_name,
                        line,
                        body: (b + 1, body_close),
                    });
                    k = body_close + 1;
                    continue;
                }
                k = b + 1;
                continue;
            }
            k += 1;
        }
        i = close + 1;
    }
    out
}

/// The type name of an impl-header path span: the ident right before the
/// first `<`, else the last ident (`Box<dyn T>` → `Box`, `a::B` → `B`).
fn type_name_of(tokens: &[Token], span: &[usize]) -> String {
    let mut last_ident = String::new();
    for (pos, &k) in span.iter().enumerate() {
        if is_punct(&tokens[k], "<") {
            break;
        }
        if tokens[k].kind == TokenKind::Ident {
            let _ = pos;
            last_ident = tokens[k].text.clone();
        }
    }
    last_ident
}

/// Ordered `self.<ident>` references inside a token range.
pub fn self_field_refs(tokens: &[Token], range: (usize, usize)) -> Vec<(String, u32)> {
    let mut refs = Vec::new();
    let mut i = range.0;
    while i + 2 < range.1 {
        if is_ident(&tokens[i], "self")
            && is_punct(&tokens[i + 1], ".")
            && tokens[i + 2].kind == TokenKind::Ident
        {
            refs.push((tokens[i + 2].text.clone(), tokens[i + 2].line));
            i += 3;
            continue;
        }
        i += 1;
    }
    refs
}

/// Ordered idents appearing right after a `.` inside a token range —
/// the wire-layout fingerprint material of an `encode` body (field
/// references and `put_*` codec calls, in emission order).
pub fn dotted_idents(tokens: &[Token], range: (usize, usize)) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = range.0.max(1);
    while i + 1 < range.1 {
        if is_punct(&tokens[i], ".") && tokens[i + 1].kind == TokenKind::Ident {
            out.push(tokens[i + 1].text.clone());
            i += 2;
            continue;
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_ranges_cover_cfg_test_modules() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n";
        let a = analyze("x.rs", src);
        assert!(!a.is_test_line(1));
        assert!(a.is_test_line(2));
        assert!(a.is_test_line(4));
        assert!(a.is_test_line(5));
    }

    #[test]
    fn test_attr_on_fn_is_tracked() {
        let src = "#[test]\nfn check() {\n    body();\n}\nfn lib() {}\n";
        let a = analyze("x.rs", src);
        assert!(a.is_test_line(3));
        assert!(!a.is_test_line(5));
    }

    #[test]
    fn allow_targets_next_code_line_through_attributes() {
        let src = "// lint:allow(nondeterminism-bans): trusted\n#[serde(default)]\nuse std::collections::HashMap;\n";
        let a = analyze("x.rs", src);
        assert_eq!(a.allows.len(), 1);
        assert_eq!(a.allows[0].target_line, 3);
        assert!(a.is_allowed("nondeterminism-bans", 3));
    }

    #[test]
    fn trailing_allow_targets_its_own_line() {
        let src = "let m = HashMap::new(); // lint:allow(nondeterminism-bans): lookup only\n";
        let a = analyze("x.rs", src);
        assert_eq!(a.allows[0].target_line, 1);
    }

    #[test]
    fn allow_without_reason_is_a_diagnostic() {
        let src = "// lint:allow(panic-hygiene)\nfoo.unwrap();\n";
        let a = analyze("x.rs", src);
        assert!(a.allows.is_empty());
        assert_eq!(a.meta_diagnostics.len(), 1);
        assert!(a.meta_diagnostics[0].message.contains("no reason"));
    }

    #[test]
    fn allow_with_unknown_rule_is_a_diagnostic() {
        let src = "// lint:allow(made-up-rule): because\nfoo();\n";
        let a = analyze("x.rs", src);
        assert!(a.allows.is_empty());
        assert!(a.meta_diagnostics[0].message.contains("unknown rule"));
    }

    #[test]
    fn struct_fields_are_extracted_with_lines() {
        let src = "pub struct S<T: Clone> {\n    /// doc\n    pub a: u64,\n    b: Vec<(u32, T)>,\n    c: [u64; 4],\n}\n";
        let a = analyze("x.rs", src);
        assert_eq!(a.structs.len(), 1);
        let names: Vec<_> = a.structs[0]
            .fields
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert_eq!(names, ["a", "b", "c"]);
        assert_eq!(a.structs[0].fields[1].1, 4);
    }

    #[test]
    fn impl_fns_resolve_type_names_and_bodies() {
        let src = "impl Tr for Foo {\n    fn checkpoint_words(&self) -> u64 {\n        self.alpha + self.beta\n    }\n}\nimpl<P> Tr for Box<P> {\n    fn checkpoint_words(&self) -> u64 { self.x }\n}\n";
        let a = analyze("x.rs", src);
        assert_eq!(a.impl_fns.len(), 2);
        assert_eq!(a.impl_fns[0].type_name, "Foo");
        assert_eq!(a.impl_fns[1].type_name, "Box");
        let refs = self_field_refs(&a.tokens, a.impl_fns[0].body);
        let names: Vec<_> = refs.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["alpha", "beta"]);
    }

    #[test]
    fn trait_default_methods_are_not_impl_fns() {
        let src = "trait Tr {\n    fn checkpoint_words(&self) -> u64 { 0 }\n}\n";
        let a = analyze("x.rs", src);
        assert!(a.impl_fns.is_empty());
    }
}
