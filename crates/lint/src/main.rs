//! The `mac-lint` binary: run the workspace invariants pass.
//!
//! ```text
//! cargo run -p mac-lint                     # check; exit 1 on findings
//! cargo run -p mac-lint -- --update-ledger  # rewrite crates/lint/wire.ledger
//! cargo run -p mac-lint -- --root <dir>     # lint another workspace copy
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

// A CLI tool locating its own workspace is exactly what env reads are
// for; the clippy.toml ban guards simulation results, not tooling.
#[allow(clippy::disallowed_methods)]
fn main() -> ExitCode {
    let mut update_ledger = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--update-ledger" => update_ledger = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: mac-lint [--root <dir>] [--update-ledger]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}` (see --help)");
                return ExitCode::from(2);
            }
        }
    }
    let root = root
        .or_else(|| {
            // Under `cargo run` the manifest dir is crates/lint; the
            // workspace root is two levels up. Falls back to walking up
            // from the current directory for standalone invocations.
            std::env::var_os("CARGO_MANIFEST_DIR")
                .map(PathBuf::from)
                .and_then(|d| d.parent()?.parent().map(PathBuf::from))
        })
        .or_else(|| {
            std::env::current_dir()
                .ok()
                .and_then(|d| mac_lint::find_workspace_root(&d))
        });
    let Some(root) = root else {
        eprintln!("could not locate the workspace root; pass --root <dir>");
        return ExitCode::from(2);
    };

    match mac_lint::lint_workspace(&root, update_ledger) {
        Ok(report) => {
            if update_ledger {
                println!(
                    "wire.ledger regenerated ({} files scanned)",
                    report.files_scanned
                );
            }
            if report.diagnostics.is_empty() {
                println!(
                    "mac-lint: {} files scanned, no violations",
                    report.files_scanned
                );
                ExitCode::SUCCESS
            } else {
                for d in &report.diagnostics {
                    println!("{d}");
                }
                println!(
                    "mac-lint: {} violation(s) in {} files scanned",
                    report.diagnostics.len(),
                    report.files_scanned
                );
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("mac-lint: {err}");
            ExitCode::from(2)
        }
    }
}
