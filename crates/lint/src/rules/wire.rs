//! Rule `wire-version-hygiene`: the serialized layout of every checkpoint
//! frame — the ordered field list each `checkpoint_words` emits, and the
//! ordered emission sequence of each session `encode` body — is
//! fingerprinted into a committed ledger (`crates/lint/wire.ledger`).
//! Changing a layout without bumping `CHECKPOINT_VERSION` fails the lint:
//! an old checkpoint would otherwise decode into garbage *silently*,
//! because the integrity digest only protects against corruption, not
//! against a reader with a different field map. Regenerate the ledger
//! with `cargo run -p mac-lint -- --update-ledger` after a version bump.

use crate::analysis::{dotted_idents, self_field_refs, FileAnalysis};
use crate::Diagnostic;
use std::collections::BTreeMap;

pub const RULE: &str = "wire-version-hygiene";

/// The file that owns the frame format and its version constant.
pub const SESSION_FILE: &str = "crates/sim/src/session.rs";

/// One fingerprinted checkpoint frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Stable ledger key: `<path>::<Type>::<fn>`.
    pub key: String,
    pub fingerprint: u64,
    pub path: String,
    pub line: u32,
}

/// Extracts the fingerprintable frames of one file: `checkpoint_words`
/// bodies of types declared in the file (ordered `self.<field>` refs) and,
/// in the session file, every `encode` body (ordered `.ident` sequence —
/// field reads and `put_*` codec calls in emission order).
pub fn frames_of(analysis: &FileAnalysis) -> Vec<Frame> {
    let mut frames = Vec::new();
    for f in &analysis.impl_fns {
        let material: Vec<String> = match f.fn_name.as_str() {
            "checkpoint_words" => {
                if !analysis.structs.iter().any(|s| s.name == f.type_name) {
                    continue; // delegation wrappers (Box<dyn …>) have no layout
                }
                self_field_refs(&analysis.tokens, f.body)
                    .into_iter()
                    .map(|(n, _)| n)
                    .collect()
            }
            "encode" if analysis.path == SESSION_FILE => dotted_idents(&analysis.tokens, f.body),
            _ => continue,
        };
        frames.push(Frame {
            key: format!("{}::{}::{}", analysis.path, f.type_name, f.fn_name),
            fingerprint: fnv1a(&material),
            path: analysis.path.clone(),
            line: f.line,
        });
    }
    frames
}

/// Reads the `CHECKPOINT_VERSION` constant out of the session file.
pub fn checkpoint_version(analysis: &FileAnalysis) -> Option<u64> {
    let tokens = &analysis.tokens;
    for (i, t) in tokens.iter().enumerate() {
        if t.text == "CHECKPOINT_VERSION" {
            // const CHECKPOINT_VERSION : u64 = <n> ;
            for j in i + 1..(i + 6).min(tokens.len()) {
                if tokens[j].text == "=" {
                    return tokens.get(j + 1).and_then(|n| n.text.parse().ok());
                }
            }
        }
    }
    None
}

/// One committed ledger entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LedgerEntry {
    pub fingerprint: u64,
    pub version: u64,
}

/// Parses the committed ledger (`<key> <fingerprint-hex> v<version>`).
pub fn parse_ledger(text: &str) -> BTreeMap<String, LedgerEntry> {
    let mut map = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(key), Some(fp), Some(v)) = (parts.next(), parts.next(), parts.next()) else {
            continue;
        };
        let (Ok(fingerprint), Some(Ok(version))) = (
            u64::from_str_radix(fp, 16),
            v.strip_prefix('v').map(str::parse),
        ) else {
            continue;
        };
        map.insert(
            key.to_string(),
            LedgerEntry {
                fingerprint,
                version,
            },
        );
    }
    map
}

/// Renders the ledger for committing.
pub fn render_ledger(frames: &[Frame], version: u64) -> String {
    let mut out = String::from(
        "# Checkpoint-frame layout ledger — maintained by mac-lint.\n\
         # <frame key> <layout fingerprint> v<CHECKPOINT_VERSION at commit time>\n\
         # Regenerate after a deliberate layout change (and version bump) with:\n\
         #   cargo run -p mac-lint -- --update-ledger\n",
    );
    let mut sorted: Vec<&Frame> = frames.iter().collect();
    sorted.sort_by(|a, b| a.key.cmp(&b.key));
    for f in sorted {
        out.push_str(&format!("{} {:016x} v{}\n", f.key, f.fingerprint, version));
    }
    out
}

/// Compares discovered frames against the committed ledger.
pub fn check_ledger(
    frames: &[Frame],
    version: Option<u64>,
    ledger_text: Option<&str>,
    ledger_path: &str,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let Some(version) = version else {
        diags.push(Diagnostic {
            path: SESSION_FILE.to_string(),
            line: 1,
            rule: RULE.to_string(),
            message: "could not locate the CHECKPOINT_VERSION constant".to_string(),
        });
        return diags;
    };
    let Some(ledger_text) = ledger_text else {
        diags.push(Diagnostic {
            path: ledger_path.to_string(),
            line: 1,
            rule: RULE.to_string(),
            message: format!(
                "missing frame-layout ledger with {} frame(s) in the tree; \
                 run `cargo run -p mac-lint -- --update-ledger` and commit it",
                frames.len()
            ),
        });
        return diags;
    };
    let ledger = parse_ledger(ledger_text);
    for frame in frames {
        match ledger.get(&frame.key) {
            None => diags.push(Diagnostic {
                path: frame.path.clone(),
                line: frame.line,
                rule: RULE.to_string(),
                message: format!(
                    "checkpoint frame `{}` is not in the committed ledger; if the new \
                     frame is deliberate, run `cargo run -p mac-lint -- --update-ledger`",
                    frame.key
                ),
            }),
            Some(entry) if entry.fingerprint != frame.fingerprint => {
                let message = if version == entry.version {
                    format!(
                        "serialized layout of `{}` changed but CHECKPOINT_VERSION is \
                         still {version}; bump the version (old checkpoints must be \
                         rejected, not misdecoded), then regenerate the ledger",
                        frame.key
                    )
                } else {
                    format!(
                        "serialized layout of `{}` changed and CHECKPOINT_VERSION was \
                         bumped to {version}; run `cargo run -p mac-lint -- \
                         --update-ledger` to commit the new layout",
                        frame.key
                    )
                };
                diags.push(Diagnostic {
                    path: frame.path.clone(),
                    line: frame.line,
                    rule: RULE.to_string(),
                    message,
                });
            }
            Some(_) => {}
        }
    }
    for key in ledger.keys() {
        if !frames.iter().any(|f| &f.key == key) {
            diags.push(Diagnostic {
                path: ledger_path.to_string(),
                line: 1,
                rule: RULE.to_string(),
                message: format!(
                    "ledger entry `{key}` no longer matches any frame in the tree; \
                     run `cargo run -p mac-lint -- --update-ledger`"
                ),
            });
        }
    }
    diags
}

/// FNV-1a over the layout material, with a separator between elements so
/// `["ab","c"]` and `["a","bc"]` differ.
fn fnv1a(material: &[String]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for item in material {
        for &b in item.as_bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash ^= 0x1F;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}
