//! Rule `nondeterminism-bans`: sources of run-to-run nondeterminism are
//! banned from non-test library code in result-affecting crates —
//! hash-ordered containers (`HashMap`/`HashSet`; iteration order is
//! seeded per-process), wall clocks (`Instant`/`SystemTime`), environment
//! reads, and thread identity. Deterministic substitutes: `BTreeMap`/
//! `BTreeSet`, slot counters, explicit configuration, shard indices.

use crate::analysis::FileAnalysis;
use crate::lexer::{Token, TokenKind};
use crate::rules::in_result_affecting_crate;
use crate::Diagnostic;

pub const RULE: &str = "nondeterminism-bans";

pub fn check(analysis: &FileAnalysis) -> Vec<Diagnostic> {
    if !in_result_affecting_crate(&analysis.path) {
        return Vec::new();
    }
    let tokens = &analysis.tokens;
    let mut diags = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || analysis.is_test_line(t.line) {
            continue;
        }
        let message = match t.text.as_str() {
            "HashMap" | "HashSet" => Some(format!(
                "`{}` iterates in a per-process pseudo-random order; use BTreeMap/BTreeSet, \
                 or annotate a lookup-only use that never iterates",
                t.text
            )),
            "Instant" | "SystemTime" => Some(format!(
                "`{}` reads the wall clock — results must be a function of seeds and \
                 slot counters only",
                t.text
            )),
            "ThreadId" => Some(
                "thread identity is scheduler-dependent; key work by shard index instead"
                    .to_string(),
            ),
            "env" if is_path_sep(tokens.get(i + 1), tokens.get(i + 2)) => Some(
                "`std::env` reads leak host state into results; thread configuration \
                 through explicit options"
                    .to_string(),
            ),
            "current"
                if i >= 3
                    && is_ident(&tokens[i - 3], "thread")
                    && is_punct(&tokens[i - 2], ":")
                    && is_punct(&tokens[i - 1], ":") =>
            {
                Some(
                    "`thread::current()` is scheduler-dependent; key work by shard index"
                        .to_string(),
                )
            }
            _ => None,
        };
        if let Some(message) = message {
            diags.push(Diagnostic {
                path: analysis.path.clone(),
                line: t.line,
                rule: RULE.to_string(),
                message,
            });
        }
    }
    diags
}

fn is_ident(t: &Token, s: &str) -> bool {
    t.kind == TokenKind::Ident && t.text == s
}

fn is_punct(t: &Token, s: &str) -> bool {
    t.kind == TokenKind::Punct && t.text == s
}

fn is_path_sep(a: Option<&Token>, b: Option<&Token>) -> bool {
    a.is_some_and(|t| is_punct(t, ":")) && b.is_some_and(|t| is_punct(t, ":"))
}
