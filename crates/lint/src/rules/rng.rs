//! Rule `rng-stream-discipline`: raw RNG construction in non-test library
//! code must visibly flow through `derive_seed` with a named `*_STREAM`
//! constant, so every stream's derivation path is auditable at the call
//! site. Sites that root a run from a seed the *caller* already derived
//! (engine cores, replay paths) carry an allow annotation explaining it.

use crate::analysis::FileAnalysis;
use crate::lexer::{Token, TokenKind};
use crate::rules::in_result_affecting_crate;
use crate::Diagnostic;

pub const RULE: &str = "rng-stream-discipline";

/// The module that *implements* the discipline (`derive_seed`,
/// `SeedSequence`, the generators themselves) is exempt: it is the
/// mechanism, not a client.
const EXEMPT: &str = "crates/prob/src/rng.rs";

pub fn check(analysis: &FileAnalysis) -> Vec<Diagnostic> {
    if !in_result_affecting_crate(&analysis.path) || analysis.path == EXEMPT {
        return Vec::new();
    }
    let tokens = &analysis.tokens;
    let mut diags = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let construction = construction_at(tokens, i);
        let Some((call_open, label)) = construction else {
            i += 1;
            continue;
        };
        let line = tokens[i].line;
        if !analysis.is_test_line(line) && !args_are_disciplined(tokens, call_open) {
            diags.push(Diagnostic {
                path: analysis.path.clone(),
                line,
                rule: RULE.to_string(),
                message: format!(
                    "{label} does not flow through derive_seed with a named *_STREAM \
                     constant; derive the seed at the call site or annotate why this \
                     site must consume a caller-derived stream"
                ),
            });
        }
        i = call_open + 1;
    }
    diags
}

/// If `i` starts an RNG construction, returns the index of its opening
/// `(` and a label. Recognised: `<rng>::seed_from_u64(…)` /
/// `seed_from_u64(…)` call sites and `Xoshiro256pp::new(…)` /
/// `SplitMix64::new(…)`. Definitions (`fn seed_from_u64`) don't count.
fn construction_at(tokens: &[Token], i: usize) -> Option<(usize, &'static str)> {
    let t = &tokens[i];
    if t.kind != TokenKind::Ident {
        return None;
    }
    let prev_is_fn = i > 0 && tokens[i - 1].kind == TokenKind::Ident && tokens[i - 1].text == "fn";
    if prev_is_fn {
        return None;
    }
    if t.text == "seed_from_u64" && is_punct(tokens.get(i + 1), "(") {
        return Some((i + 1, "raw seed_from_u64"));
    }
    if (t.text == "Xoshiro256pp" || t.text == "SplitMix64")
        && is_punct(tokens.get(i + 1), ":")
        && is_punct(tokens.get(i + 2), ":")
        && tokens
            .get(i + 3)
            .is_some_and(|t| t.kind == TokenKind::Ident && t.text == "new")
        && is_punct(tokens.get(i + 4), "(")
    {
        let label = if t.text == "Xoshiro256pp" {
            "raw Xoshiro256pp::new"
        } else {
            "raw SplitMix64::new"
        };
        return Some((i + 4, label));
    }
    None
}

/// True if the call's argument list contains both a `derive_seed` call and
/// an identifier ending in `_STREAM`.
fn args_are_disciplined(tokens: &[Token], open: usize) -> bool {
    let mut depth = 0i32;
    let mut saw_derive = false;
    let mut saw_stream = false;
    let mut i = open;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
        } else if t.kind == TokenKind::Ident {
            if t.text == "derive_seed" {
                saw_derive = true;
            } else if t.text.ends_with("_STREAM") {
                saw_stream = true;
            }
        }
        i += 1;
    }
    saw_derive && saw_stream
}

fn is_punct(t: Option<&Token>, s: &str) -> bool {
    t.is_some_and(|t| t.kind == TokenKind::Punct && t.text == s)
}
