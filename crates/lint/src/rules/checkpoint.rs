//! Rule `checkpoint-coverage`: for every type that implements the
//! `checkpoint_words`/`restore_words` pair, every declared struct field
//! must be referenced in at least one of the two bodies — catching the
//! "added a field, forgot to serialize it" class *before* the
//! `session_identity` proptests get a chance to. Fields that are pure
//! functions of the construction parameters (the restore contract rebuilds
//! from `ProtocolKind` first) carry a per-field allow annotation.

use crate::analysis::{self_field_refs, FileAnalysis};
use crate::Diagnostic;
use std::collections::BTreeMap;

pub const RULE: &str = "checkpoint-coverage";

pub fn check(analysis: &FileAnalysis) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    // type name -> union of fields referenced by its checkpoint/restore.
    let mut referenced: BTreeMap<&str, Vec<String>> = BTreeMap::new();
    let mut has_pair: BTreeMap<&str, (bool, bool)> = BTreeMap::new();
    for f in &analysis.impl_fns {
        let which = match f.fn_name.as_str() {
            "checkpoint_words" => 0,
            "restore_words" => 1,
            _ => continue,
        };
        let entry = has_pair.entry(&f.type_name).or_default();
        if which == 0 {
            entry.0 = true;
        } else {
            entry.1 = true;
        }
        referenced.entry(&f.type_name).or_default().extend(
            self_field_refs(&analysis.tokens, f.body)
                .into_iter()
                .map(|(n, _)| n),
        );
    }
    for (type_name, (has_ckpt, _)) in &has_pair {
        if !has_ckpt {
            continue;
        }
        // The struct must be declared in the same file; blanket impls over
        // foreign wrappers (`Box<dyn …>`) have no field list to check.
        let Some(def) = analysis.structs.iter().find(|s| &s.name == type_name) else {
            continue;
        };
        let refs = &referenced[type_name];
        for (field, line) in &def.fields {
            if !refs.iter().any(|r| r == field) {
                diags.push(Diagnostic {
                    path: analysis.path.clone(),
                    line: *line,
                    rule: RULE.to_string(),
                    message: format!(
                        "field `{field}` of `{type_name}` is referenced by neither \
                         checkpoint_words nor restore_words — serialize it, or annotate \
                         why it is reconstructed from the construction parameters"
                    ),
                });
            }
        }
    }
    diags
}
