//! Rule `panic-hygiene`: the resumable-session spine (session, store,
//! stepper, dynamic) must not panic on library paths — a panic there
//! kills a shard mid-checkpoint, which is exactly the fault class the
//! supervision layer exists to contain, so it must come from *outside*
//! (chaos injection), never from our own `unwrap`. Banned: `.unwrap()`,
//! `.expect(…)` and bare slice/array indexing; use typed `SessionError`
//! variants, `.get(…)`, slice patterns, or annotate provable infallibility.

use crate::analysis::FileAnalysis;
use crate::lexer::{Token, TokenKind};
use crate::Diagnostic;

pub const RULE: &str = "panic-hygiene";

/// The no-panic library surfaces. The rest of the sim crate reports
/// through `RunResult`/errors already and panics only on internal
/// invariant breaks, which `debug_assert` covers.
const SCOPED_FILES: [&str; 4] = [
    "crates/sim/src/session.rs",
    "crates/sim/src/store.rs",
    "crates/sim/src/stepper.rs",
    "crates/sim/src/dynamic.rs",
];

pub fn check(analysis: &FileAnalysis) -> Vec<Diagnostic> {
    if !SCOPED_FILES.contains(&analysis.path.as_str()) {
        return Vec::new();
    }
    let tokens = &analysis.tokens;
    let mut diags = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if analysis.is_test_line(t.line) {
            continue;
        }
        if t.kind == TokenKind::Ident
            && (t.text == "unwrap" || t.text == "expect")
            && i > 0
            && is_punct(&tokens[i - 1], ".")
            && is_punct_opt(tokens.get(i + 1), "(")
        {
            diags.push(Diagnostic {
                path: analysis.path.clone(),
                line: t.line,
                rule: RULE.to_string(),
                message: format!(
                    ".{}() can panic on a library path; return a typed error, restructure \
                     so the invariant is in the types, or annotate the infallibility proof",
                    t.text
                ),
            });
            continue;
        }
        // Bare indexing: `expr[…]` — an identifier, `)` or `]` directly
        // followed by `[`. Array types/literals, attributes and slice
        // patterns don't match (their `[` follows `#`, `=`, `<`, …).
        if is_punct(t, "[")
            && i > 0
            && (tokens[i - 1].kind == TokenKind::Ident
                || is_punct(&tokens[i - 1], ")")
                || is_punct(&tokens[i - 1], "]"))
            && !is_keyword(&tokens[i - 1])
        {
            diags.push(Diagnostic {
                path: analysis.path.clone(),
                line: t.line,
                rule: RULE.to_string(),
                message: "bare indexing can panic on a library path; use .get(…), \
                          .get_mut(…), iterators or slice patterns, or annotate why the \
                          index is in range"
                    .to_string(),
            });
        }
    }
    diags
}

fn is_punct(t: &Token, s: &str) -> bool {
    t.kind == TokenKind::Punct && t.text == s
}

fn is_punct_opt(t: Option<&Token>, s: &str) -> bool {
    t.is_some_and(|t| is_punct(t, s))
}

/// Keywords that may legitimately precede `[` without forming an index
/// expression (`let [a, b] = …`, `if let [x] = …`, `in [1, 2]`, …).
fn is_keyword(t: &Token) -> bool {
    matches!(
        t.text.as_str(),
        "let" | "in" | "mut" | "ref" | "return" | "match" | "if" | "else" | "dyn" | "as"
    )
}
