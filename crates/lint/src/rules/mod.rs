//! The rule engine: each rule scans a [`FileAnalysis`] and yields
//! diagnostics; the engine then filters them through the file's
//! `lint:allow` annotations (an allow with an empty reason never
//! suppresses — it is itself a diagnostic).

use crate::analysis::FileAnalysis;
use crate::Diagnostic;

pub mod checkpoint;
pub mod nondet;
pub mod panic_hygiene;
pub mod rng;
pub mod wire;

/// Every rule an annotation may reference.
pub const RULE_NAMES: [&str; 5] = [
    "rng-stream-discipline",
    "checkpoint-coverage",
    "nondeterminism-bans",
    "panic-hygiene",
    "wire-version-hygiene",
];

/// The crates whose code determines simulation results. Tooling crates
/// (`mac-bench` drives wall-clock timing on purpose, `mac-lint` reads the
/// filesystem) are deliberately out of scope.
pub const RESULT_AFFECTING_PREFIXES: [&str; 5] = [
    "crates/prob/src/",
    "crates/adversary/src/",
    "crates/channel/src/",
    "crates/protocols/src/",
    "crates/sim/src/",
];

/// True for library sources in result-affecting crates.
pub fn in_result_affecting_crate(path: &str) -> bool {
    RESULT_AFFECTING_PREFIXES
        .iter()
        .any(|p| path.starts_with(p))
}

/// Runs every per-file rule on one analysis and applies allow filtering.
/// (The cross-file wire-version rule runs separately in the engine.)
pub fn run_file_rules(analysis: &FileAnalysis) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    diags.extend(rng::check(analysis));
    diags.extend(checkpoint::check(analysis));
    diags.extend(nondet::check(analysis));
    diags.extend(panic_hygiene::check(analysis));
    diags.retain(|d| !analysis.is_allowed(&d.rule, d.line));
    diags.extend(analysis.meta_diagnostics.iter().cloned());
    diags
}
