//! A hand-rolled Rust lexer, sufficient for rule scanning.
//!
//! This is not a full Rust lexer: it produces identifiers, numbers, string
//! and char literals, lifetimes and single-character punctuation, and it
//! *discards* comments into a side list (with their line numbers and
//! whether code preceded them on the same line — which is how the
//! `lint:allow` annotations are attached to targets). What it must get
//! exactly right, and is tested for, is everything that could desynchronise
//! a scanner: nested block comments, raw strings with arbitrary `#` fences,
//! byte strings, char literals containing delimiters (`'{'`, `'\''`) versus
//! lifetimes, and escapes inside ordinary strings.

/// A lexical token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    Ident,
    Number,
    Str,
    Char,
    Lifetime,
    /// Any single punctuation character (`::` is two `:` tokens).
    Punct,
}

/// A comment stripped from the token stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Line the comment starts on.
    pub line: u32,
    /// Comment body without the `//`/`/*` markers (block comments keep
    /// their interior verbatim, including newlines).
    pub text: String,
    /// True if a token started on the same line before this comment.
    pub code_before: bool,
    /// True for doc comments (`///`, `//!`, `/** */`, `/*! */`), which
    /// are documentation text, never lint annotations.
    pub doc: bool,
}

/// Lexer output: the token stream plus the stripped comments.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Tokenizes Rust source. Never panics on malformed input; an unterminated
/// literal simply consumes to end of file.
pub fn lex(source: &str) -> Lexed {
    let bytes = source.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    // Line on which the most recent token started (for `code_before`).
    let mut last_token_line: u32 = 0;

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\n' {
                    j += 1;
                }
                let text = &source[start..j];
                out.comments.push(Comment {
                    line,
                    text: text.to_string(),
                    code_before: last_token_line == line,
                    doc: text.starts_with('/') || text.starts_with('!'),
                });
                i = j;
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let comment_line = line;
                let start = i + 2;
                let mut depth = 1u32;
                let mut j = start;
                while j < bytes.len() && depth > 0 {
                    if bytes[j] == b'\n' {
                        line += 1;
                        j += 1;
                    } else if bytes[j] == b'/' && bytes.get(j + 1) == Some(&b'*') {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == b'*' && bytes.get(j + 1) == Some(&b'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let end = j.saturating_sub(2).max(start);
                let text = &source[start..end];
                out.comments.push(Comment {
                    line: comment_line,
                    text: text.to_string(),
                    code_before: last_token_line == comment_line,
                    doc: text.starts_with('*') || text.starts_with('!'),
                });
                i = j;
            }
            b'r' | b'b' if is_raw_string_start(bytes, i) => {
                let token_line = line;
                let (j, newlines) = consume_raw_string(bytes, i);
                line += newlines;
                push(&mut out.tokens, TokenKind::Str, "", token_line);
                last_token_line = token_line;
                i = j;
            }
            b'b' if bytes.get(i + 1) == Some(&b'\'') => {
                let token_line = line;
                i = consume_char_literal(bytes, i + 1);
                push(&mut out.tokens, TokenKind::Char, "", token_line);
                last_token_line = token_line;
            }
            b'b' if bytes.get(i + 1) == Some(&b'"') => {
                let token_line = line;
                let (j, newlines) = consume_string(bytes, i + 1);
                line += newlines;
                push(&mut out.tokens, TokenKind::Str, "", token_line);
                last_token_line = token_line;
                i = j;
            }
            b'"' => {
                let token_line = line;
                let (j, newlines) = consume_string(bytes, i);
                line += newlines;
                push(&mut out.tokens, TokenKind::Str, "", token_line);
                last_token_line = token_line;
                i = j;
            }
            b'\'' => {
                // Lifetime vs char literal: `'x` followed by another ident
                // char, or not closed by a quote right after one element,
                // is a lifetime (`'a`, `'static`); otherwise a char literal
                // (`'a'`, `'\n'`, `'{'`).
                if is_lifetime(bytes, i) {
                    let start = i + 1;
                    let mut j = start;
                    while j < bytes.len() && is_ident_continue(bytes[j]) {
                        j += 1;
                    }
                    push(
                        &mut out.tokens,
                        TokenKind::Lifetime,
                        &source[start..j],
                        line,
                    );
                    last_token_line = line;
                    i = j;
                } else {
                    let token_line = line;
                    i = consume_char_literal(bytes, i);
                    push(&mut out.tokens, TokenKind::Char, "", token_line);
                    last_token_line = token_line;
                }
            }
            _ if is_ident_start(b) => {
                let start = i;
                let mut j = i;
                while j < bytes.len() && is_ident_continue(bytes[j]) {
                    j += 1;
                }
                push(&mut out.tokens, TokenKind::Ident, &source[start..j], line);
                last_token_line = line;
                i = j;
            }
            b'0'..=b'9' => {
                let start = i;
                let mut j = i;
                while j < bytes.len() {
                    let c = bytes[j];
                    if is_ident_continue(c) {
                        j += 1;
                    } else if c == b'.'
                        && bytes.get(j + 1).is_some_and(u8::is_ascii_digit)
                        && !source[start..j].contains('.')
                    {
                        // One decimal point, only when followed by a digit —
                        // `1.0` lexes whole, `0..n` leaves the range tokens.
                        j += 1;
                    } else {
                        break;
                    }
                }
                push(&mut out.tokens, TokenKind::Number, &source[start..j], line);
                last_token_line = line;
                i = j;
            }
            _ => {
                // Multi-byte UTF-8 (e.g. κ in doc text that leaked into
                // code — none today) is consumed as punct bytes; harmless.
                push(
                    &mut out.tokens,
                    TokenKind::Punct,
                    &source[i..i + utf8_len(b)],
                    line,
                );
                last_token_line = line;
                i += utf8_len(b);
            }
        }
    }
    out
}

fn push(tokens: &mut Vec<Token>, kind: TokenKind, text: &str, line: u32) {
    tokens.push(Token {
        kind,
        text: text.to_string(),
        line,
    });
}

fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// True at `r"`, `r#`, `br"`, `br#` — the start of a raw (byte) string.
fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    let j = if bytes[i] == b'b' { i + 1 } else { i };
    if bytes.get(j) != Some(&b'r') {
        return false;
    }
    matches!(bytes.get(j + 1), Some(&b'"') | Some(&b'#'))
}

/// Consumes `r#"…"#`-style strings; returns (index after, newline count).
fn consume_raw_string(bytes: &[u8], mut i: usize) -> (usize, u32) {
    if bytes[i] == b'b' {
        i += 1;
    }
    i += 1; // the `r`
    let mut fence = 0usize;
    while bytes.get(i) == Some(&b'#') {
        fence += 1;
        i += 1;
    }
    debug_assert_eq!(bytes.get(i), Some(&b'"'));
    i += 1;
    let mut newlines = 0u32;
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            newlines += 1;
            i += 1;
        } else if bytes[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while seen < fence && bytes.get(j) == Some(&b'#') {
                seen += 1;
                j += 1;
            }
            if seen == fence {
                return (j, newlines);
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    (i, newlines)
}

/// Consumes a `"…"` string starting at the opening quote.
fn consume_string(bytes: &[u8], mut i: usize) -> (usize, u32) {
    debug_assert_eq!(bytes[i], b'"');
    i += 1;
    let mut newlines = 0u32;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'\n' => {
                newlines += 1;
                i += 1;
            }
            b'"' => return (i + 1, newlines),
            _ => i += 1,
        }
    }
    (i, newlines)
}

/// Consumes a `'…'` char literal starting at the opening quote.
fn consume_char_literal(bytes: &[u8], mut i: usize) -> usize {
    debug_assert_eq!(bytes[i], b'\'');
    i += 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'\'' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Disambiguates a lifetime from a char literal at a `'`.
fn is_lifetime(bytes: &[u8], i: usize) -> bool {
    let Some(&first) = bytes.get(i + 1) else {
        return false;
    };
    if !is_ident_start(first) {
        return false; // escape or punctuation: char literal
    }
    // `'a'` is a char literal; `'ab`, `'a,`, `'a>` are lifetimes.
    bytes.get(i + 2) != Some(&b'\'')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn basic_tokens_and_lines() {
        let lexed = lex("fn main() {\n    let x = 1.5;\n}\n");
        let kinds: Vec<_> = lexed.tokens.iter().map(|t| (t.kind, t.line)).collect();
        assert_eq!(kinds[0], (TokenKind::Ident, 1));
        let num = lexed
            .tokens
            .iter()
            .find(|t| t.kind == TokenKind::Number)
            .unwrap();
        assert_eq!(num.text, "1.5");
        assert_eq!(num.line, 2);
    }

    #[test]
    fn char_literals_with_delimiters_do_not_desync() {
        // A naive scanner would count the braces inside the literals.
        let lexed = lex("let a = '{'; let b = '}'; let c = '\\''; let d = b'x';");
        let braces: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.text == "{" || t.text == "}")
            .collect();
        assert!(braces.is_empty(), "chars leaked as braces: {braces:?}");
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Char)
                .count(),
            4
        );
    }

    #[test]
    fn lifetimes_are_distinguished_from_chars() {
        let lexed = lex("fn f<'a>(x: &'a str) -> &'static str { x }");
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, ["a", "a", "static"]);
    }

    #[test]
    fn raw_strings_swallow_comment_markers() {
        let lexed = lex("let s = r#\"// not a comment \"quote\" \"#; let t = 1;");
        assert!(lexed.comments.is_empty());
        assert!(idents("let s = r#\"seed_from_u64\"#;")
            .iter()
            .all(|i| i != "seed_from_u64"));
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Str)
                .count(),
            1
        );
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let lexed = lex("/* outer /* inner */ still outer */ fn f() {}");
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.tokens[0].text, "fn");
    }

    #[test]
    fn line_comments_record_code_before() {
        let lexed = lex("let x = 1; // trailing\n// leading\nlet y = 2;\n");
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].code_before);
        assert!(!lexed.comments[1].code_before);
        assert_eq!(lexed.comments[1].line, 2);
    }

    #[test]
    fn multiline_strings_keep_line_numbers_aligned() {
        let lexed = lex("let s = \"a\nb\nc\";\nlet done = 1;");
        let done = lexed.tokens.iter().find(|t| t.text == "done").unwrap();
        assert_eq!(done.line, 4);
    }

    #[test]
    fn numbers_do_not_eat_range_operators() {
        let lexed = lex("for i in 0..grid { }");
        let texts: Vec<_> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
        assert!(texts.contains(&"0"));
        assert!(texts.contains(&"grid"));
        assert_eq!(texts.iter().filter(|&&t| t == ".").count(), 2);
    }
}
