//! Fixture tests for the invariants pass: one known-bad snippet per rule
//! must produce its diagnostic (and the corrected form must not), a
//! seeded field-added-but-not-serialized mutation of *real* protocol
//! source must be caught, and the current tree must lint clean — so the
//! lint gate in CI is known to fail on the bug classes it claims to
//! reject, not just to pass on a healthy tree.

use mac_lint::analysis::analyze;
use mac_lint::rules::{run_file_rules, wire};
use mac_lint::{lint_workspace, workspace_rs_files, Diagnostic};
use std::fs;
use std::path::{Path, PathBuf};

fn diags(path: &str, source: &str) -> Vec<Diagnostic> {
    run_file_rules(&analyze(path, source))
}

fn rules_of(diags: &[Diagnostic]) -> Vec<&str> {
    diags.iter().map(|d| d.rule.as_str()).collect()
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf()
}

// --- rng-stream-discipline -------------------------------------------------

#[test]
fn rng_fixture_raw_seed_in_library_code_fails() {
    let bad =
        "pub fn start(seed: u64) -> Xoshiro256pp {\n    Xoshiro256pp::seed_from_u64(seed)\n}\n";
    let found = diags("crates/sim/src/fixture.rs", bad);
    assert_eq!(rules_of(&found), ["rng-stream-discipline"]);
    assert_eq!(found[0].line, 2);
    assert_eq!(found[0].path, "crates/sim/src/fixture.rs");
}

#[test]
fn rng_fixture_derived_seed_passes() {
    let good = "pub fn start(seed: u64) -> Xoshiro256pp {\n    Xoshiro256pp::seed_from_u64(derive_seed(seed, &[RUN_STREAM]))\n}\n";
    assert!(diags("crates/sim/src/fixture.rs", good).is_empty());
}

#[test]
fn rng_fixture_test_code_and_tooling_crates_are_out_of_scope() {
    let in_test = "#[cfg(test)]\nmod tests {\n    fn t() {\n        let rng = Xoshiro256pp::seed_from_u64(7);\n    }\n}\n";
    assert!(diags("crates/sim/src/fixture.rs", in_test).is_empty());
    let in_bench =
        "pub fn start(seed: u64) -> Xoshiro256pp {\n    Xoshiro256pp::seed_from_u64(seed)\n}\n";
    assert!(diags("crates/bench/src/fixture.rs", in_bench).is_empty());
}

// --- checkpoint-coverage ---------------------------------------------------

const CHECKPOINT_FIXTURE: &str = "\
pub struct Clock {
    ticks: u64,
    drift: u64,
}
impl Resumable for Clock {
    fn checkpoint_words(&self, out: &mut Vec<u64>) {
        out.push(self.ticks);
    }
    fn restore_words(&mut self, mut words: impl Iterator<Item = u64>) {
        self.ticks = words.next().unwrap_or(0);
    }
}
";

#[test]
fn checkpoint_fixture_unreferenced_field_fails() {
    let found = diags("crates/protocols/src/fixture.rs", CHECKPOINT_FIXTURE);
    assert_eq!(rules_of(&found), ["checkpoint-coverage"]);
    assert!(found[0].message.contains("`drift`"), "{}", found[0].message);
    assert_eq!(found[0].line, 3);
}

#[test]
fn checkpoint_fixture_restore_reference_counts_as_coverage() {
    let fixed = CHECKPOINT_FIXTURE.replace(
        "self.ticks = words.next().unwrap_or(0);",
        "self.ticks = words.next().unwrap_or(0);\n        self.drift = words.next().unwrap_or(0);",
    );
    assert!(diags("crates/protocols/src/fixture.rs", &fixed).is_empty());
}

/// The acceptance demonstration: seed a field-added-but-not-serialized
/// mutation into the *real* OneFailAdaptive source and watch the rule
/// catch it at the new field's declaration line.
#[test]
fn checkpoint_rule_catches_seeded_mutation_of_real_source() {
    let rel = "crates/protocols/src/one_fail.rs";
    let source = fs::read_to_string(workspace_root().join(rel)).expect("protocol source exists");
    assert!(
        diags(rel, &source).is_empty(),
        "the unmutated source must be clean"
    );
    let marker = "pub struct OneFailAdaptive {";
    let mutated = source.replace(
        marker,
        "pub struct OneFailAdaptive {\n    ghost_counter: u64,",
    );
    assert_ne!(source, mutated, "mutation marker not found in {rel}");
    let found = diags(rel, &mutated);
    assert_eq!(rules_of(&found), ["checkpoint-coverage"]);
    assert!(
        found[0].message.contains("`ghost_counter`"),
        "{}",
        found[0].message
    );
}

// --- nondeterminism-bans ---------------------------------------------------

#[test]
fn nondet_fixture_hash_containers_and_clocks_fail() {
    let bad = "use std::collections::HashMap;\npub fn t() -> std::time::Instant {\n    std::time::Instant::now()\n}\n";
    let found = diags("crates/channel/src/fixture.rs", bad);
    // HashMap on line 1, Instant in the return type and in the body.
    assert_eq!(
        rules_of(&found),
        [
            "nondeterminism-bans",
            "nondeterminism-bans",
            "nondeterminism-bans"
        ]
    );
    let fixed = "use std::collections::BTreeMap;\npub fn t(slot: u64) -> u64 {\n    slot\n}\n";
    assert!(diags("crates/channel/src/fixture.rs", fixed).is_empty());
}

#[test]
fn nondet_fixture_env_read_fails_and_allow_with_reason_suppresses() {
    let bad = "pub fn dir() -> std::path::PathBuf {\n    std::env::temp_dir()\n}\n";
    let found = diags("crates/sim/src/fixture.rs", bad);
    assert_eq!(rules_of(&found), ["nondeterminism-bans"]);
    let allowed = "pub fn dir() -> std::path::PathBuf {\n    // lint:allow(nondeterminism-bans): harness plumbing, not results\n    std::env::temp_dir()\n}\n";
    assert!(diags("crates/sim/src/fixture.rs", allowed).is_empty());
}

// --- panic-hygiene -----------------------------------------------------------

#[test]
fn panic_fixture_unwrap_expect_and_indexing_fail() {
    let bad = "pub fn f(v: &[u64]) -> u64 {\n    let x = v.first().unwrap();\n    let y = v.last().expect(\"non-empty\");\n    x + y + v[0]\n}\n";
    let found = diags("crates/sim/src/store.rs", bad);
    assert_eq!(
        rules_of(&found),
        ["panic-hygiene", "panic-hygiene", "panic-hygiene"]
    );
    assert_eq!(found.iter().map(|d| d.line).collect::<Vec<_>>(), [2, 3, 4]);
}

#[test]
fn panic_fixture_get_and_slice_patterns_pass() {
    let good = "pub fn f(v: &[u64]) -> u64 {\n    let [first, .., last] = v else { return 0 };\n    first + last + v.first().copied().unwrap_or(0)\n}\n";
    assert!(diags("crates/sim/src/store.rs", good).is_empty());
}

#[test]
fn panic_fixture_out_of_scope_files_are_ignored() {
    let bad = "pub fn f(v: &[u64]) -> u64 { v[0] }\n";
    assert!(diags("crates/sim/src/exact.rs", bad).is_empty());
}

// --- wire-version-hygiene ----------------------------------------------------

const SESSION_FIXTURE: &str = "\
const CHECKPOINT_VERSION: u64 = 2;
pub struct Watchdog {
    window: u64,
    threshold: u64,
}
impl Watchdog {
    fn encode(&self, out: &mut Encoder) {
        out.put_u64(self.window);
        out.put_u64(self.threshold);
    }
}
";

#[test]
fn wire_fixture_layout_change_without_version_bump_fails() {
    let analysis = analyze(wire::SESSION_FILE, SESSION_FIXTURE);
    let frames = wire::frames_of(&analysis);
    assert_eq!(frames.len(), 1);
    let version = wire::checkpoint_version(&analysis);
    assert_eq!(version, Some(2));
    let ledger = wire::render_ledger(&frames, 2);

    // Unchanged layout against its own ledger: clean.
    assert!(wire::check_ledger(&frames, version, Some(&ledger), "L").is_empty());

    // Reorder the emission without touching the version: must fail, and
    // the message must demand a version bump.
    let reordered = SESSION_FIXTURE.replace(
        "out.put_u64(self.window);\n        out.put_u64(self.threshold);",
        "out.put_u64(self.threshold);\n        out.put_u64(self.window);",
    );
    assert_ne!(reordered, SESSION_FIXTURE);
    let changed = analyze(wire::SESSION_FILE, &reordered);
    let changed_frames = wire::frames_of(&changed);
    let found = wire::check_ledger(&changed_frames, version, Some(&ledger), "L");
    assert_eq!(found.len(), 1);
    assert!(
        found[0].message.contains("bump the version"),
        "{}",
        found[0].message
    );

    // Same change *with* a version bump: the message flips to asking for
    // a ledger regeneration instead.
    let bumped = reordered.replace("CHECKPOINT_VERSION: u64 = 2", "CHECKPOINT_VERSION: u64 = 3");
    let bumped_analysis = analyze(wire::SESSION_FILE, &bumped);
    let bumped_frames = wire::frames_of(&bumped_analysis);
    let bumped_version = wire::checkpoint_version(&bumped_analysis);
    assert_eq!(bumped_version, Some(3));
    let found = wire::check_ledger(&bumped_frames, bumped_version, Some(&ledger), "L");
    assert_eq!(found.len(), 1);
    assert!(
        found[0].message.contains("--update-ledger"),
        "{}",
        found[0].message
    );
}

#[test]
fn wire_fixture_missing_ledger_fails() {
    let analysis = analyze(wire::SESSION_FILE, SESSION_FIXTURE);
    let frames = wire::frames_of(&analysis);
    let found = wire::check_ledger(&frames, Some(2), None, "crates/lint/wire.ledger");
    assert_eq!(found.len(), 1);
    assert!(found[0].message.contains("missing frame-layout ledger"));
}

// --- allow-annotation contract ----------------------------------------------

#[test]
fn allow_without_reason_never_suppresses_and_is_itself_flagged() {
    let bad = "pub fn dir() -> std::path::PathBuf {\n    // lint:allow(nondeterminism-bans)\n    std::env::temp_dir()\n}\n";
    let found = diags("crates/sim/src/fixture.rs", bad);
    let mut rules = rules_of(&found);
    rules.sort_unstable();
    assert_eq!(rules, ["lint-allow", "nondeterminism-bans"]);
}

/// Meta-test over the real tree: every `lint:allow` annotation in the
/// workspace parses, names a known rule, and carries a non-empty reason.
#[test]
fn every_allow_in_the_workspace_carries_a_reason() {
    let root = workspace_root();
    let mut total_allows = 0usize;
    for rel in workspace_rs_files(&root).expect("workspace scan") {
        let source = fs::read_to_string(root.join(&rel)).expect("readable source");
        let analysis = analyze(&rel, &source);
        assert!(
            analysis.meta_diagnostics.is_empty(),
            "malformed allow annotations in {rel}: {:?}",
            analysis.meta_diagnostics
        );
        for allow in &analysis.allows {
            assert!(
                !allow.reason.trim().is_empty(),
                "{rel}:{}: allow without a reason",
                allow.line
            );
            total_allows += 1;
        }
    }
    // The triaged tree carries annotations; losing them all would mean
    // the parser regressed into not seeing any.
    assert!(total_allows >= 10, "only {total_allows} allows found");
}

// --- the tree itself ----------------------------------------------------------

/// The gate CI enforces: the current tree, including the committed
/// wire.ledger, must be violation-free.
#[test]
fn current_tree_lints_clean() {
    let report = lint_workspace(&workspace_root(), false).expect("lint pass runs");
    assert!(
        report.diagnostics.is_empty(),
        "workspace has lint violations:\n{}",
        report
            .diagnostics
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.files_scanned > 50, "suspiciously few files scanned");
}
