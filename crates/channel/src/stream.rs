//! Incremental arrival streams for streaming simulation sessions.
//!
//! [`ArrivalModel::sample`] materialises the whole run's arrivals up front —
//! fine for the paper's static experiments, but a 10⁹-slot dynamic session
//! cannot afford `O(messages)` memory just to know who arrives when. An
//! [`ArrivalStream`] produces the same arrivals **incrementally**, one
//! `(slot, count)` burst at a time, with `O(1)` state.
//!
//! ## Stream identity
//!
//! For every model, the burst sequence emitted by an [`ArrivalStream`] is
//! exactly the per-slot grouping of the [`ArrivalSchedule`] that
//! [`ArrivalModel::sample`] produces from the same RNG seed:
//!
//! * [`ArrivalModel::Batched`] — a single burst `(0, k)`;
//! * [`ArrivalModel::Bursts`] — the schedule's bursts, sorted by slot with
//!   duplicate slots merged (which is what sorting the expanded per-message
//!   slots does);
//! * [`ArrivalModel::Poisson`] — one [`sample_poisson`] draw per slot in
//!   `0..horizon`, in slot order, from the stream's own generator. Seeding
//!   the stream with the same derived seed the dynamic driver feeds to
//!   `sample` reproduces the schedule draw for draw.
//!
//! The stream is checkpointable: [`ArrivalStream::encode`] captures the model
//! *and* the dynamic cursor/RNG state, and [`ArrivalStream::decode`] resumes
//! the burst sequence bit-identically (property-tested in `mac-sim`'s session
//! suite).
//!
//! [`ShardedArrivalStream`] splits one master stream across `n` independent
//! channels by hashing each message's global index, so a sharded session's
//! shards jointly see exactly the master arrival sequence.

use crate::arrivals::ArrivalModel;
use mac_prob::rng::{SplitMix64, Xoshiro256pp};
use mac_prob::sampling::sample_poisson;
use mac_prob::wire::{Decoder, Encoder, WireError};
use rand::SeedableRng;

/// Exact totals gathered by a counting pre-pass over a stream
/// (see [`ArrivalStream::summarise`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamSummary {
    /// Total number of messages the stream will emit.
    pub messages: u64,
    /// Slot of the last arrival (`None` if the stream is empty).
    pub last_arrival: Option<u64>,
}

/// Incremental, checkpointable producer of `(slot, count)` arrival bursts,
/// stream-identical to expanding [`ArrivalModel::sample`] (see the module
/// documentation for the identity statement).
#[derive(Debug, Clone)]
pub struct ArrivalStream {
    model: ArrivalModel,
    /// Poisson generator; deterministic models never draw from it.
    rng: Xoshiro256pp,
    /// Next Poisson slot to sample, or next burst index for `Bursts`.
    cursor: u64,
    /// Lookahead burst already produced but not yet consumed.
    pending: Option<(u64, u64)>,
    /// Messages handed out so far (drives sharding and summaries).
    emitted: u64,
}

impl ArrivalStream {
    /// Creates a stream over `model`, seeding the Poisson generator with
    /// `seed` (deterministic models ignore it). Feed the same derived seed
    /// the dynamic driver gives to [`ArrivalModel::sample`] to reproduce its
    /// schedule.
    pub fn new(model: &ArrivalModel, seed: u64) -> Self {
        Self {
            model: normalise(model),
            // lint:allow(rng-stream-discipline): the dynamic driver passes
            // derive_seed(run_seed, &[ARRIVAL_STREAM]) so the stream replays
            // ArrivalModel::sample bit-for-bit; a second derivation here
            // would desynchronise the two.
            rng: Xoshiro256pp::seed_from_u64(seed),
            cursor: 0,
            pending: None,
            emitted: 0,
        }
    }

    /// The (normalised) model this stream expands.
    pub fn model(&self) -> &ArrivalModel {
        &self.model
    }

    /// Messages emitted by [`ArrivalStream::next_burst`] so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// The next burst without consuming it.
    pub fn peek(&mut self) -> Option<(u64, u64)> {
        if self.pending.is_none() {
            self.pending = self.produce();
        }
        self.pending
    }

    /// The next `(slot, count)` burst with `count > 0`, in strictly
    /// increasing slot order; `None` once the stream is exhausted.
    pub fn next_burst(&mut self) -> Option<(u64, u64)> {
        let burst = self.peek();
        if let Some((_, count)) = burst {
            self.pending = None;
            self.emitted += count;
        }
        burst
    }

    fn produce(&mut self) -> Option<(u64, u64)> {
        match &self.model {
            ArrivalModel::Batched { k } => {
                if self.cursor == 0 && *k > 0 {
                    self.cursor = 1;
                    Some((0, *k))
                } else {
                    self.cursor = 1;
                    None
                }
            }
            ArrivalModel::Poisson { rate, horizon } => {
                while self.cursor < *horizon {
                    let slot = self.cursor;
                    let count = sample_poisson(*rate, &mut self.rng);
                    self.cursor += 1;
                    if count > 0 {
                        return Some((slot, count));
                    }
                }
                None
            }
            ArrivalModel::Bursts { bursts } => {
                let burst = bursts.get(self.cursor as usize).copied();
                if burst.is_some() {
                    self.cursor += 1;
                }
                burst
            }
        }
    }

    /// Runs a fresh stream over `model` to exhaustion in `O(1)` memory and
    /// returns its exact totals. The dynamic engines need the message count
    /// before the first slot (protocol parameters such as Log-fails
    /// Adaptive's ε depend on it), which a lazy stream cannot know — this is
    /// the counting pre-pass that replaces materialising the schedule.
    pub fn summarise(model: &ArrivalModel, seed: u64) -> StreamSummary {
        let mut stream = Self::new(model, seed);
        let mut messages = 0u64;
        let mut last_arrival = None;
        while let Some((slot, count)) = stream.next_burst() {
            messages += count;
            last_arrival = Some(slot);
        }
        StreamSummary {
            messages,
            last_arrival,
        }
    }

    /// Serialises the model and the dynamic state (cursor, pending burst,
    /// RNG words) so that [`ArrivalStream::decode`] resumes the burst
    /// sequence bit-identically.
    pub fn encode(&self, out: &mut Encoder) {
        encode_model(&self.model, out);
        let s = self.rng.state_words();
        for w in s {
            out.put_u64(w);
        }
        out.put_u64(self.cursor);
        match self.pending {
            Some((slot, count)) => {
                out.put_bool(true);
                out.put_u64(slot);
                out.put_u64(count);
            }
            None => out.put_bool(false),
        }
        out.put_u64(self.emitted);
    }

    /// Inverse of [`ArrivalStream::encode`].
    ///
    /// # Errors
    /// Returns an error if the words are truncated or structurally invalid.
    pub fn decode(input: &mut Decoder<'_>) -> Result<Self, WireError> {
        let model = decode_model(input)?;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = input.take_u64()?;
        }
        let cursor = input.take_u64()?;
        let pending = if input.take_bool()? {
            Some((input.take_u64()?, input.take_u64()?))
        } else {
            None
        };
        let emitted = input.take_u64()?;
        Ok(Self {
            model,
            rng: Xoshiro256pp::from_state_words(s),
            cursor,
            pending,
            emitted,
        })
    }
}

/// Sorts and merges a `Bursts` model so that streaming emits slots in
/// increasing order with one burst per slot — the per-slot grouping of the
/// sorted [`crate::ArrivalSchedule`]. Other models are returned unchanged.
fn normalise(model: &ArrivalModel) -> ArrivalModel {
    match model {
        ArrivalModel::Bursts { bursts } => {
            let mut sorted: Vec<(u64, u64)> =
                bursts.iter().copied().filter(|&(_, c)| c > 0).collect();
            sorted.sort_unstable_by_key(|&(slot, _)| slot);
            let mut merged: Vec<(u64, u64)> = Vec::with_capacity(sorted.len());
            for (slot, count) in sorted {
                match merged.last_mut() {
                    Some((last_slot, last_count)) if *last_slot == slot => *last_count += count,
                    _ => merged.push((slot, count)),
                }
            }
            ArrivalModel::Bursts { bursts: merged }
        }
        other => other.clone(),
    }
}

/// Wire codec for an [`ArrivalModel`] (the vendored `serde` derives are
/// no-ops, so checkpoints carry models through this hand-rolled format).
pub fn encode_model(model: &ArrivalModel, out: &mut Encoder) {
    match model {
        ArrivalModel::Batched { k } => {
            out.put_u32(0);
            out.put_u64(*k);
        }
        ArrivalModel::Poisson { rate, horizon } => {
            out.put_u32(1);
            out.put_f64(*rate);
            out.put_u64(*horizon);
        }
        ArrivalModel::Bursts { bursts } => {
            out.put_u32(2);
            out.put_usize(bursts.len());
            for &(slot, count) in bursts {
                out.put_u64(slot);
                out.put_u64(count);
            }
        }
    }
}

/// Inverse of [`encode_model`].
///
/// # Errors
/// Returns an error on an unknown discriminant or truncated input.
pub fn decode_model(input: &mut Decoder<'_>) -> Result<ArrivalModel, WireError> {
    match input.take_u32()? {
        0 => Ok(ArrivalModel::Batched {
            k: input.take_u64()?,
        }),
        1 => Ok(ArrivalModel::Poisson {
            rate: input.take_f64()?,
            horizon: input.take_u64()?,
        }),
        2 => {
            let n = input.take_usize()?;
            let mut bursts = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                bursts.push((input.take_u64()?, input.take_u64()?));
            }
            Ok(ArrivalModel::Bursts { bursts })
        }
        _ => Err(WireError::Malformed("unknown arrival-model discriminant")),
    }
}

/// Message→shard assignment policy of a [`ShardedArrivalStream`]. Whatever
/// the policy, the assignment is a pure function of `(salt, global index,
/// shard count)`, so the `n` per-shard views always partition the master
/// sequence exactly — the policy only shapes the *load* distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardStrategy {
    /// Uniform salted hash: every shard receives ≈ `1/n` of the messages
    /// (the default).
    Uniform,
    /// Skewed assignment modelling a hot channel: shard 0 receives
    /// `hot_permille / 1000` of the messages and the remainder spreads
    /// uniformly over the other shards. With a single shard everything is
    /// shard 0 regardless.
    HotShard {
        /// Per-mille of the master stream routed to shard 0 (0..=1000).
        hot_permille: u16,
    },
}

impl ShardStrategy {
    /// The shard a message with the given global index belongs to.
    pub fn shard_of(self, salt: u64, index: u64, shards: u32) -> u32 {
        // lint:allow(rng-stream-discipline): stateless hash mixer, not a
        // random stream — one SplitMix64 step scrambles (salt, index) into a
        // shard id and the generator is discarded; there is no stream to
        // derive.
        let mixed = SplitMix64::new(salt ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15)).next();
        match self {
            ShardStrategy::Uniform => (mixed % u64::from(shards)) as u32,
            ShardStrategy::HotShard { hot_permille } => {
                if shards == 1 || mixed % 1000 < u64::from(hot_permille) {
                    0
                } else {
                    // The high mixer bits pick among the cold shards, so the
                    // hot/cold coin and the cold choice stay independent.
                    1 + ((mixed / 1000) % u64::from(shards - 1)) as u32
                }
            }
        }
    }

    /// True iff the strategy's parameters are in range.
    pub fn is_valid(self) -> bool {
        match self {
            ShardStrategy::Uniform => true,
            ShardStrategy::HotShard { hot_permille } => hot_permille <= 1000,
        }
    }

    /// Serialises the strategy.
    pub fn encode(self, out: &mut Encoder) {
        match self {
            ShardStrategy::Uniform => out.put_u32(0),
            ShardStrategy::HotShard { hot_permille } => {
                out.put_u32(1);
                out.put_u32(u32::from(hot_permille));
            }
        }
    }

    /// Inverse of [`ShardStrategy::encode`].
    ///
    /// # Errors
    /// Returns an error on an unknown tag or out-of-range parameters.
    pub fn decode(input: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(match input.take_u32()? {
            0 => ShardStrategy::Uniform,
            1 => {
                let hot_permille = u16::try_from(input.take_u32()?)
                    .map_err(|_| WireError::Malformed("hot-shard permille out of range"))?;
                let strategy = ShardStrategy::HotShard { hot_permille };
                if !strategy.is_valid() {
                    return Err(WireError::Malformed("hot-shard permille out of range"));
                }
                strategy
            }
            _ => return Err(WireError::Malformed("unknown shard strategy tag")),
        })
    }
}

/// One shard's view of a master [`ArrivalStream`]: keeps only the messages
/// whose global index hashes to this shard, so the `n` shards of a sharded
/// session partition the master sequence exactly.
///
/// Every shard walks the full master stream (each with its own copy), which
/// keeps shards independent — no cross-thread coordination — at the cost of
/// re-drawing the shared Poisson samples per shard. Sharding is by message,
/// not by burst: a burst of `c` messages at slot `s` contributes its own
/// subset of indices to each shard. The message→shard map is pluggable
/// ([`ShardStrategy`]); skewed strategies model hot channels while keeping
/// the exact-partition property.
#[derive(Debug, Clone)]
pub struct ShardedArrivalStream {
    master: ArrivalStream,
    /// Hash salt — derived from the session seed so the message→shard map is
    /// a fixed function of the run, not of the shard count alone.
    salt: u64,
    shard: u32,
    shards: u32,
    strategy: ShardStrategy,
    /// Global index of the next master message to classify.
    next_index: u64,
}

impl ShardedArrivalStream {
    /// Creates the view of shard `shard` (of `shards`) over a master
    /// stream, under the uniform assignment strategy.
    ///
    /// # Panics
    /// Panics unless `shard < shards` and `shards > 0`.
    pub fn new(master: ArrivalStream, salt: u64, shard: u32, shards: u32) -> Self {
        Self::with_strategy(master, salt, shard, shards, ShardStrategy::Uniform)
    }

    /// Creates the view of shard `shard` (of `shards`) under an explicit
    /// [`ShardStrategy`]. Every shard of a run must use the same strategy,
    /// or the views stop partitioning the master sequence.
    ///
    /// # Panics
    /// Panics unless `shard < shards`, `shards > 0` and the strategy's
    /// parameters are in range.
    pub fn with_strategy(
        master: ArrivalStream,
        salt: u64,
        shard: u32,
        shards: u32,
        strategy: ShardStrategy,
    ) -> Self {
        assert!(shards > 0, "need at least one shard");
        assert!(shard < shards, "shard index out of range");
        assert!(
            strategy.is_valid(),
            "shard strategy parameters out of range"
        );
        Self {
            master,
            salt,
            shard,
            shards,
            strategy,
            next_index: 0,
        }
    }

    /// The shard a message with the given global index belongs to under the
    /// uniform strategy (kept as the historical entry point; strategies go
    /// through [`ShardStrategy::shard_of`]).
    pub fn shard_of(salt: u64, index: u64, shards: u32) -> u32 {
        ShardStrategy::Uniform.shard_of(salt, index, shards)
    }

    /// The assignment strategy this view classifies with.
    pub fn strategy(&self) -> ShardStrategy {
        self.strategy
    }

    /// Next `(slot, count)` burst containing only this shard's messages
    /// (bursts whose messages all hash elsewhere are skipped).
    pub fn next_burst(&mut self) -> Option<(u64, u64)> {
        loop {
            let (slot, count) = self.master.next_burst()?;
            let first = self.next_index;
            self.next_index += count;
            let mine = (first..self.next_index)
                .filter(|&i| self.strategy.shard_of(self.salt, i, self.shards) == self.shard)
                .count() as u64;
            if mine > 0 {
                return Some((slot, mine));
            }
        }
    }

    /// Serialises the master stream plus the sharding cursor.
    pub fn encode(&self, out: &mut Encoder) {
        self.master.encode(out);
        out.put_u64(self.salt);
        out.put_u32(self.shard);
        out.put_u32(self.shards);
        self.strategy.encode(out);
        out.put_u64(self.next_index);
    }

    /// Inverse of [`ShardedArrivalStream::encode`].
    ///
    /// # Errors
    /// Returns an error if the words are truncated or structurally invalid.
    pub fn decode(input: &mut Decoder<'_>) -> Result<Self, WireError> {
        let master = ArrivalStream::decode(input)?;
        let salt = input.take_u64()?;
        let shard = input.take_u32()?;
        let shards = input.take_u32()?;
        let strategy = ShardStrategy::decode(input)?;
        let next_index = input.take_u64()?;
        if shards == 0 || shard >= shards {
            return Err(WireError::Malformed("invalid shard configuration"));
        }
        Ok(Self {
            master,
            salt,
            shard,
            shards,
            strategy,
            next_index,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::ArrivalSchedule;
    use rand::SeedableRng;

    fn drain(stream: &mut ArrivalStream) -> Vec<(u64, u64)> {
        let mut bursts = Vec::new();
        while let Some(b) = stream.next_burst() {
            bursts.push(b);
        }
        bursts
    }

    fn schedule_bursts(schedule: &ArrivalSchedule) -> Vec<(u64, u64)> {
        let mut bursts: Vec<(u64, u64)> = Vec::new();
        for &slot in schedule.arrival_slots() {
            match bursts.last_mut() {
                Some((last, count)) if *last == slot => *count += 1,
                _ => bursts.push((slot, 1)),
            }
        }
        bursts
    }

    #[test]
    fn batched_stream_is_single_burst() {
        let mut stream = ArrivalStream::new(&ArrivalModel::batched(7), 0);
        assert_eq!(stream.peek(), Some((0, 7)));
        assert_eq!(drain(&mut stream), vec![(0, 7)]);
        assert_eq!(stream.emitted(), 7);

        let mut empty = ArrivalStream::new(&ArrivalModel::batched(0), 0);
        assert_eq!(drain(&mut empty), vec![]);
    }

    #[test]
    fn bursts_stream_sorts_and_merges() {
        let model = ArrivalModel::Bursts {
            bursts: vec![(10, 3), (2, 1), (10, 2), (5, 0)],
        };
        let mut stream = ArrivalStream::new(&model, 0);
        assert_eq!(drain(&mut stream), vec![(2, 1), (10, 5)]);
    }

    #[test]
    fn poisson_stream_matches_sampled_schedule() {
        let model = ArrivalModel::Poisson {
            rate: 0.3,
            horizon: 5_000,
        };
        for seed in [1u64, 42, 0xDEAD] {
            let mut rng = Xoshiro256pp::seed_from_u64(seed);
            let schedule = model.sample(&mut rng);
            let mut stream = ArrivalStream::new(&model, seed);
            assert_eq!(drain(&mut stream), schedule_bursts(&schedule));
            assert_eq!(stream.emitted(), schedule.len() as u64);
        }
    }

    #[test]
    fn summary_matches_schedule_totals() {
        let model = ArrivalModel::Poisson {
            rate: 0.8,
            horizon: 2_000,
        };
        let seed = 9;
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let schedule = model.sample(&mut rng);
        let summary = ArrivalStream::summarise(&model, seed);
        assert_eq!(summary.messages, schedule.len() as u64);
        assert_eq!(summary.last_arrival, schedule.last_arrival());
    }

    #[test]
    fn checkpoint_resume_is_bit_identical() {
        let model = ArrivalModel::Poisson {
            rate: 0.5,
            horizon: 3_000,
        };
        let seed = 77;
        let mut unbroken = ArrivalStream::new(&model, seed);
        let full = drain(&mut unbroken);

        let mut first = ArrivalStream::new(&model, seed);
        let mut prefix = Vec::new();
        for _ in 0..full.len() / 2 {
            prefix.push(first.next_burst().unwrap());
        }
        // Peek before the checkpoint so the lookahead state is exercised.
        let _ = first.peek();
        let mut enc = Encoder::new();
        first.encode(&mut enc);
        let words = enc.finish();
        let mut dec = Decoder::new(&words);
        let mut resumed = ArrivalStream::decode(&mut dec).unwrap();
        dec.finish().unwrap();
        prefix.extend(drain(&mut resumed));
        assert_eq!(prefix, full);
        assert_eq!(resumed.emitted(), unbroken.emitted());
    }

    #[test]
    fn model_codec_round_trips() {
        let models = [
            ArrivalModel::batched(12),
            ArrivalModel::Poisson {
                rate: 1.5,
                horizon: 100,
            },
            ArrivalModel::Bursts {
                bursts: vec![(0, 2), (9, 4)],
            },
        ];
        for model in &models {
            let mut enc = Encoder::new();
            encode_model(model, &mut enc);
            let words = enc.finish();
            let mut dec = Decoder::new(&words);
            assert_eq!(&decode_model(&mut dec).unwrap(), model);
            dec.finish().unwrap();
        }
    }

    #[test]
    fn shards_partition_the_master_stream() {
        let model = ArrivalModel::Poisson {
            rate: 0.7,
            horizon: 1_000,
        };
        let seed = 5;
        let salt = 0xABCD;
        let shards = 4u32;
        let mut master = ArrivalStream::new(&model, seed);
        let master_bursts = drain(&mut master);

        let mut shard_totals = std::collections::BTreeMap::new();
        for shard in 0..shards {
            let view = ArrivalStream::new(&model, seed);
            let mut sharded = ShardedArrivalStream::new(view, salt, shard, shards);
            while let Some((slot, count)) = sharded.next_burst() {
                *shard_totals.entry(slot).or_insert(0u64) += count;
            }
        }
        let merged: Vec<(u64, u64)> = shard_totals.into_iter().collect();
        assert_eq!(merged, master_bursts);
    }

    #[test]
    fn sharded_checkpoint_round_trips() {
        let model = ArrivalModel::Poisson {
            rate: 0.4,
            horizon: 2_000,
        };
        let view = ArrivalStream::new(&model, 3);
        let mut sharded = ShardedArrivalStream::new(view, 0x5417, 1, 3);
        let mut unbroken = sharded.clone();
        let mut full = Vec::new();
        while let Some(b) = unbroken.next_burst() {
            full.push(b);
        }

        let mut prefix = Vec::new();
        for _ in 0..full.len() / 3 {
            prefix.push(sharded.next_burst().unwrap());
        }
        let mut enc = Encoder::new();
        sharded.encode(&mut enc);
        let words = enc.finish();
        let mut dec = Decoder::new(&words);
        let mut resumed = ShardedArrivalStream::decode(&mut dec).unwrap();
        dec.finish().unwrap();
        while let Some(b) = resumed.next_burst() {
            prefix.push(b);
        }
        assert_eq!(prefix, full);
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for index in 0..1_000u64 {
            let shard = ShardedArrivalStream::shard_of(99, index, 8);
            assert!(shard < 8);
            assert_eq!(shard, ShardedArrivalStream::shard_of(99, index, 8));
        }
    }

    #[test]
    fn skewed_shards_still_partition_the_master_stream() {
        // The exact-partition property must be strategy-independent: the
        // union over all shard views equals the single-channel arrival
        // sequence burst for burst, even under a heavily skewed map.
        let model = ArrivalModel::Poisson {
            rate: 0.7,
            horizon: 1_000,
        };
        let seed = 5;
        let salt = 0xABCD;
        let shards = 4u32;
        let strategy = ShardStrategy::HotShard { hot_permille: 700 };
        let mut master = ArrivalStream::new(&model, seed);
        let master_bursts = drain(&mut master);
        let total: u64 = master_bursts.iter().map(|&(_, c)| c).sum();

        let mut shard_totals = std::collections::BTreeMap::new();
        let mut per_shard = vec![0u64; shards as usize];
        for shard in 0..shards {
            let view = ArrivalStream::new(&model, seed);
            let mut sharded =
                ShardedArrivalStream::with_strategy(view, salt, shard, shards, strategy);
            while let Some((slot, count)) = sharded.next_burst() {
                *shard_totals.entry(slot).or_insert(0u64) += count;
                per_shard[shard as usize] += count;
            }
        }
        let merged: Vec<(u64, u64)> = shard_totals.into_iter().collect();
        assert_eq!(merged, master_bursts);
        // The skew must actually bite: shard 0 carries ≈ 70% of the load.
        assert!(
            per_shard[0] * 2 > total,
            "hot shard holds {} of {total} messages — not hot",
            per_shard[0]
        );
    }

    #[test]
    fn hot_shard_assignment_is_stable_and_in_range() {
        let strategy = ShardStrategy::HotShard { hot_permille: 250 };
        let mut hot = 0u64;
        for index in 0..4_000u64 {
            let shard = strategy.shard_of(7, index, 8);
            assert!(shard < 8);
            assert_eq!(shard, strategy.shard_of(7, index, 8));
            if shard == 0 {
                hot += 1;
            }
        }
        // ≈ 1000 of 4000 expected on shard 0; 6σ ≈ 165.
        assert!((800..=1200).contains(&hot), "hot count {hot}");
        // Single-shard degenerate case: everything is shard 0.
        assert_eq!(strategy.shard_of(7, 1234, 1), 0);
    }

    #[test]
    fn shard_strategy_codec_round_trips_and_rejects_bad_permille() {
        for strategy in [
            ShardStrategy::Uniform,
            ShardStrategy::HotShard { hot_permille: 0 },
            ShardStrategy::HotShard { hot_permille: 1000 },
        ] {
            let mut enc = Encoder::new();
            strategy.encode(&mut enc);
            let words = enc.finish();
            let mut dec = Decoder::new(&words);
            assert_eq!(ShardStrategy::decode(&mut dec).unwrap(), strategy);
            dec.finish().unwrap();
        }
        let mut enc = Encoder::new();
        enc.put_u32(1);
        enc.put_u32(1001);
        let words = enc.finish();
        let mut dec = Decoder::new(&words);
        assert!(ShardStrategy::decode(&mut dec).is_err());
    }
}
