//! The shared channel: slot resolution, counters and bookkeeping.
//!
//! [`Channel`] is the single authoritative arbiter of what happens in each
//! slot: the simulators collect the set of transmitters, hand it to
//! [`Channel::resolve_slot`], and distribute the resulting observations to
//! the stations. The channel also keeps aggregate statistics
//! ([`ChannelStats`]) and, optionally, a bounded per-slot trace
//! ([`crate::trace::Trace`]).
//!
//! A channel may carry an adversary ([`Channel::with_adversary`]): a jammer
//! that can convert busy slots into collisions and a feedback fault that
//! degrades what the stations are told about each slot (see
//! `mac-adversary`). The default channel is the paper's ideal one, and its
//! behaviour — including its consumption of any caller-provided RNG — is
//! bit-identical to a channel with no adversary support at all.

use crate::feedback::ChannelModel;
use crate::node::NodeId;
use crate::trace::{Trace, TraceEntry};
use mac_adversary::{AdversaryState, SlotClass};
use mac_prob::outcome::SlotOutcome;
use serde::{Deserialize, Serialize};

/// Aggregate counters of channel activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ChannelStats {
    /// Total number of slots resolved.
    pub slots: u64,
    /// Slots in which nobody transmitted.
    pub silent_slots: u64,
    /// Slots in which exactly one station transmitted.
    pub deliveries: u64,
    /// Slots in which two or more stations transmitted.
    pub collisions: u64,
    /// Total number of individual transmissions attempted (sum over slots of
    /// the number of transmitters).
    pub transmissions: u64,
    /// Slots in which exactly one station transmitted but an adversary
    /// jammed the slot, destroying the delivery (such slots are counted
    /// under [`ChannelStats::collisions`], not
    /// [`ChannelStats::deliveries`]).
    #[serde(default)]
    pub jammed_deliveries: u64,
}

impl ChannelStats {
    /// Fraction of slots that delivered a message (`0` if no slot yet).
    pub fn utilisation(&self) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            self.deliveries as f64 / self.slots as f64
        }
    }

    /// Fraction of transmissions that resulted in a delivery (`0` if none).
    pub fn transmission_efficiency(&self) -> f64 {
        if self.transmissions == 0 {
            0.0
        } else {
            self.deliveries as f64 / self.transmissions as f64
        }
    }
}

/// The result of resolving one slot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotResolution {
    /// The slot index that was resolved.
    pub slot: u64,
    /// Channel-level outcome.
    pub outcome: SlotOutcome,
    /// The station whose message was delivered, if the outcome is
    /// [`SlotOutcome::Delivery`].
    pub delivered: Option<NodeId>,
    /// Number of stations that transmitted in the slot.
    pub transmitters: u64,
    /// True if an adversary jammed the slot (only possible for busy slots;
    /// implies `outcome == SlotOutcome::Collision`).
    pub jammed: bool,
    /// The outcome as reported to the listening stations after any feedback
    /// fault. Equal to `outcome` on a channel with reliable feedback. The
    /// acknowledged transmitter of a delivery always sees the true outcome.
    pub perceived: SlotOutcome,
}

/// The shared slotted channel.
///
/// # Example
/// ```
/// use mac_channel::{Channel, ChannelModel, NodeId, SlotOutcome};
/// let mut ch = Channel::new(ChannelModel::without_collision_detection());
/// assert_eq!(ch.resolve_slot(&[]).outcome, SlotOutcome::Silence);
/// assert_eq!(ch.resolve_slot(&[NodeId(4)]).delivered, Some(NodeId(4)));
/// assert_eq!(ch.current_slot(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Channel {
    model: ChannelModel,
    stats: ChannelStats,
    next_slot: u64,
    trace: Option<Trace>,
    adversary: AdversaryState,
}

impl Channel {
    /// Creates a channel with the given capability model, no tracing and no
    /// adversary (the paper's ideal channel).
    pub fn new(model: ChannelModel) -> Self {
        Self {
            model,
            stats: ChannelStats::default(),
            next_slot: 0,
            trace: None,
            adversary: AdversaryState::inactive(),
        }
    }

    /// Enables tracing of up to `capacity` slots (older entries are dropped
    /// once the capacity is reached — the trace is a ring of the most recent
    /// slots).
    pub fn with_trace(mut self, capacity: usize) -> Self {
        self.trace = Some(Trace::with_capacity(capacity));
        self
    }

    /// Installs an adversary (jamming and/or feedback faults) on the
    /// channel. The adversary carries its own RNG stream, so installing an
    /// inactive one leaves the channel's behaviour bit-identical.
    pub fn with_adversary(mut self, adversary: AdversaryState) -> Self {
        self.adversary = adversary;
        self
    }

    /// The channel capability model.
    pub fn model(&self) -> ChannelModel {
        self.model
    }

    /// The index of the next slot to be resolved (i.e. how many slots have
    /// elapsed so far).
    pub fn current_slot(&self) -> u64 {
        self.next_slot
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }

    /// Returns the recorded trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Resolves the next slot given the set of transmitting stations.
    ///
    /// The slice may be in any order; duplicates are a simulator bug and are
    /// rejected with a panic in debug builds.
    pub fn resolve_slot(&mut self, transmitters: &[NodeId]) -> SlotResolution {
        #[cfg(debug_assertions)]
        {
            let mut seen = transmitters.to_vec();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(
                seen.len(),
                transmitters.len(),
                "a station transmitted twice in the same slot"
            );
        }
        let count = transmitters.len() as u64;
        let single = if count == 1 {
            Some(transmitters[0])
        } else {
            None
        };
        self.resolve_counted(count, single)
    }

    /// Resolves a slot for which only the *number* of transmitters is known
    /// (used by the fast simulators, which never materialise station
    /// identities). When the count is exactly 1, the caller supplies the
    /// identity of the transmitter via `single`.
    pub fn resolve_slot_by_count(
        &mut self,
        transmitters: u64,
        single: Option<NodeId>,
    ) -> SlotResolution {
        self.resolve_counted(transmitters, single)
    }

    /// Shared slot-resolution core: applies the adversary, updates counters
    /// and the trace, and advances the slot clock.
    fn resolve_counted(&mut self, count: u64, single: Option<NodeId>) -> SlotResolution {
        let slot = self.next_slot;
        self.next_slot += 1;
        let (mut outcome, mut delivered) = match count {
            0 => (SlotOutcome::Silence, None),
            1 => (SlotOutcome::Delivery, single),
            _ => (SlotOutcome::Collision, None),
        };
        // Jamming is only observable on busy slots: a jam signal on an
        // empty slot carries no message and reads as background noise.
        let mut jammed = false;
        if count >= 1 {
            let class = if count == 1 {
                SlotClass::Single
            } else {
                SlotClass::Contended
            };
            if self.adversary.jams_slot(slot, class) {
                jammed = true;
                if outcome == SlotOutcome::Delivery {
                    self.stats.jammed_deliveries += 1;
                }
                outcome = SlotOutcome::Collision;
                delivered = None;
            }
        }
        let perceived = self.adversary.perceive(outcome);
        self.stats.slots += 1;
        self.stats.transmissions += count;
        match outcome {
            SlotOutcome::Silence => self.stats.silent_slots += 1,
            SlotOutcome::Delivery => self.stats.deliveries += 1,
            SlotOutcome::Collision => self.stats.collisions += 1,
        }
        if let Some(trace) = &mut self.trace {
            trace.record(TraceEntry {
                slot,
                outcome,
                transmitters: count,
                delivered,
                jammed,
            });
        }
        SlotResolution {
            slot,
            outcome,
            delivered,
            transmitters: count,
            jammed,
            perceived,
        }
    }

    /// Advances the slot counter by `n` silent slots at once.
    ///
    /// The window-based fast simulator uses this to skip the empty remainder
    /// of a window in O(1) while keeping the counters consistent.
    pub fn skip_silent_slots(&mut self, n: u64) {
        self.next_slot += n;
        self.stats.slots += n;
        self.stats.silent_slots += n;
        // Silent slots are not traced individually: a trace consumer can
        // reconstruct them from the gaps in slot indices.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_slot_is_silence() {
        let mut ch = Channel::new(ChannelModel::default());
        let r = ch.resolve_slot(&[]);
        assert_eq!(r.outcome, SlotOutcome::Silence);
        assert_eq!(r.delivered, None);
        assert_eq!(r.slot, 0);
        assert_eq!(ch.stats().silent_slots, 1);
    }

    #[test]
    fn single_transmitter_delivers() {
        let mut ch = Channel::new(ChannelModel::default());
        let r = ch.resolve_slot(&[NodeId(9)]);
        assert_eq!(r.outcome, SlotOutcome::Delivery);
        assert_eq!(r.delivered, Some(NodeId(9)));
        assert_eq!(ch.stats().deliveries, 1);
        assert_eq!(ch.stats().transmissions, 1);
    }

    #[test]
    fn two_transmitters_collide() {
        let mut ch = Channel::new(ChannelModel::default());
        let r = ch.resolve_slot(&[NodeId(1), NodeId(2)]);
        assert_eq!(r.outcome, SlotOutcome::Collision);
        assert_eq!(r.delivered, None);
        assert_eq!(ch.stats().collisions, 1);
        assert_eq!(ch.stats().transmissions, 2);
    }

    #[test]
    fn slot_counter_advances() {
        let mut ch = Channel::new(ChannelModel::default());
        for i in 0..5 {
            let r = ch.resolve_slot(&[]);
            assert_eq!(r.slot, i);
        }
        assert_eq!(ch.current_slot(), 5);
        assert_eq!(ch.stats().slots, 5);
    }

    #[test]
    fn resolve_by_count_matches_resolve_by_set() {
        let mut a = Channel::new(ChannelModel::default());
        let mut b = Channel::new(ChannelModel::default());
        let ra = a.resolve_slot(&[NodeId(3)]);
        let rb = b.resolve_slot_by_count(1, Some(NodeId(3)));
        assert_eq!(ra, rb);
        let ra = a.resolve_slot(&[NodeId(3), NodeId(4), NodeId(5)]);
        let rb = b.resolve_slot_by_count(3, None);
        assert_eq!(ra.outcome, rb.outcome);
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn skip_silent_slots_updates_counters() {
        let mut ch = Channel::new(ChannelModel::default());
        ch.skip_silent_slots(10);
        assert_eq!(ch.current_slot(), 10);
        assert_eq!(ch.stats().silent_slots, 10);
        let r = ch.resolve_slot(&[NodeId(0)]);
        assert_eq!(r.slot, 10);
    }

    #[test]
    fn utilisation_and_efficiency() {
        let mut ch = Channel::new(ChannelModel::default());
        ch.resolve_slot(&[NodeId(0)]);
        ch.resolve_slot(&[NodeId(1), NodeId(2)]);
        ch.resolve_slot(&[]);
        ch.resolve_slot(&[NodeId(3)]);
        let s = ch.stats();
        assert_eq!(s.slots, 4);
        assert!((s.utilisation() - 0.5).abs() < 1e-12);
        assert!((s.transmission_efficiency() - 0.5).abs() < 1e-12);
        assert_eq!(ChannelStats::default().utilisation(), 0.0);
        assert_eq!(ChannelStats::default().transmission_efficiency(), 0.0);
    }

    #[test]
    fn trace_records_entries() {
        let mut ch = Channel::new(ChannelModel::default()).with_trace(16);
        ch.resolve_slot(&[NodeId(1)]);
        ch.resolve_slot(&[NodeId(1), NodeId(2)]);
        let trace = ch.trace().unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.entries()[0].delivered, Some(NodeId(1)));
        assert_eq!(trace.entries()[1].outcome, SlotOutcome::Collision);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "transmitted twice")]
    fn duplicate_transmitter_is_rejected_in_debug() {
        let mut ch = Channel::new(ChannelModel::default());
        ch.resolve_slot(&[NodeId(1), NodeId(1)]);
    }

    #[test]
    fn jammed_delivery_becomes_a_collision() {
        use mac_adversary::{AdversaryModel, AdversaryScenario};
        // Jam every slot: a lone transmitter never gets through.
        let adversary = AdversaryScenario::jamming(AdversaryModel::PeriodicJam {
            period: 1,
            burst: 1,
            phase: 0,
        })
        .state(0);
        let mut ch = Channel::new(ChannelModel::default()).with_adversary(adversary);
        let r = ch.resolve_slot(&[NodeId(5)]);
        assert_eq!(r.outcome, SlotOutcome::Collision);
        assert_eq!(r.delivered, None);
        assert!(r.jammed);
        assert_eq!(r.perceived, SlotOutcome::Collision);
        assert_eq!(ch.stats().jammed_deliveries, 1);
        assert_eq!(ch.stats().collisions, 1);
        assert_eq!(ch.stats().deliveries, 0);
        // Empty slots are never offered to the adversary: still silence.
        let r = ch.resolve_slot(&[]);
        assert_eq!(r.outcome, SlotOutcome::Silence);
        assert!(!r.jammed);
        assert_eq!(ch.stats().silent_slots, 1);
    }

    #[test]
    fn feedback_fault_degrades_perceived_outcome_only() {
        use mac_adversary::{AdversaryScenario, FeedbackFault};
        let adversary = AdversaryScenario::faulty_feedback(FeedbackFault {
            confuse_collision_empty: 1.0,
            miss_delivery: 1.0,
        })
        .state(0);
        let mut ch = Channel::new(ChannelModel::default()).with_adversary(adversary);
        let r = ch.resolve_slot(&[NodeId(1)]);
        // The slot truly delivered (stats and `delivered` are unaffected)…
        assert_eq!(r.outcome, SlotOutcome::Delivery);
        assert_eq!(r.delivered, Some(NodeId(1)));
        assert_eq!(ch.stats().deliveries, 1);
        // …but the listeners are told it was a collision.
        assert_eq!(r.perceived, SlotOutcome::Collision);
        let r = ch.resolve_slot(&[]);
        assert_eq!(r.outcome, SlotOutcome::Silence);
        assert_eq!(r.perceived, SlotOutcome::Collision);
        let r = ch.resolve_slot(&[NodeId(1), NodeId(2)]);
        assert_eq!(r.outcome, SlotOutcome::Collision);
        assert_eq!(r.perceived, SlotOutcome::Silence);
    }

    #[test]
    fn inactive_adversary_matches_plain_channel() {
        use mac_adversary::AdversaryState;
        let mut plain = Channel::new(ChannelModel::default());
        let mut armed =
            Channel::new(ChannelModel::default()).with_adversary(AdversaryState::inactive());
        for transmitters in [vec![], vec![NodeId(1)], vec![NodeId(1), NodeId(2)]] {
            let a = plain.resolve_slot(&transmitters);
            let b = armed.resolve_slot(&transmitters);
            assert_eq!(a, b);
        }
        assert_eq!(plain.stats(), armed.stats());
    }
}
