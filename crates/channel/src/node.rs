//! Station (node) identities, messages and lifecycle state.
//!
//! The paper's model (§2): each station may hold at most one message at a
//! time; a station holding a message is *active*, a station without one is
//! *idle*; a station becomes idle again once its message has been delivered
//! (acknowledged). Stations have no identifiers and no knowledge of `n` or
//! `k` as far as the *protocols* are concerned — the [`NodeId`] defined here
//! exists only so the simulator and traces can refer to stations; protocol
//! implementations never read it.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a station, used only by the simulation harness (the
/// protocols themselves are anonymous, as required by the model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u64);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node#{}", self.0)
    }
}

impl From<u64> for NodeId {
    fn from(value: u64) -> Self {
        NodeId(value)
    }
}

/// A message held by a station.
///
/// The payload is opaque to the channel and the protocols; it is carried so
/// that example applications can transport real data end-to-end.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message {
    /// Station the message belongs to.
    pub source: NodeId,
    /// Slot at which the message arrived at the station (0 for batched
    /// arrivals).
    pub arrival_slot: u64,
    /// Application payload.
    pub payload: Vec<u8>,
}

impl Message {
    /// Creates a message with an empty payload (sufficient for makespan
    /// experiments, which never inspect payloads).
    pub fn empty(source: NodeId, arrival_slot: u64) -> Self {
        Self {
            source,
            arrival_slot,
            payload: Vec::new(),
        }
    }

    /// Creates a message carrying `payload`.
    pub fn with_payload(source: NodeId, arrival_slot: u64, payload: Vec<u8>) -> Self {
        Self {
            source,
            arrival_slot,
            payload,
        }
    }
}

/// Lifecycle state of a station.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum NodeState {
    /// The station holds no message (initial state, and the state after its
    /// message has been delivered).
    #[default]
    Idle,
    /// The station holds a message it still has to deliver.
    Active,
    /// The station has delivered its message (terminal state in the static
    /// problem; in the dynamic problem a new arrival moves it back to
    /// `Active`).
    Delivered,
}

impl NodeState {
    /// Returns `true` if the station currently contends for the channel.
    pub fn is_active(self) -> bool {
        matches!(self, NodeState::Active)
    }

    /// Applies a message arrival. Panics if the station is already active
    /// (the model allows at most one held message).
    pub fn on_arrival(&mut self) {
        assert!(
            !self.is_active(),
            "a station cannot receive a second message while still holding one"
        );
        *self = NodeState::Active;
    }

    /// Applies the delivery (acknowledgement) of the station's own message.
    /// Panics if the station was not active.
    pub fn on_delivered(&mut self) {
        assert!(
            self.is_active(),
            "only an active station can have its message delivered"
        );
        *self = NodeState::Delivered;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_display_and_conversion() {
        let id: NodeId = 7u64.into();
        assert_eq!(id, NodeId(7));
        assert_eq!(format!("{id}"), "node#7");
    }

    #[test]
    fn message_constructors() {
        let m = Message::empty(NodeId(1), 5);
        assert!(m.payload.is_empty());
        assert_eq!(m.arrival_slot, 5);
        let m = Message::with_payload(NodeId(2), 0, vec![1, 2, 3]);
        assert_eq!(m.payload, vec![1, 2, 3]);
    }

    #[test]
    fn node_state_lifecycle() {
        let mut s = NodeState::default();
        assert_eq!(s, NodeState::Idle);
        assert!(!s.is_active());
        s.on_arrival();
        assert!(s.is_active());
        s.on_delivered();
        assert_eq!(s, NodeState::Delivered);
        assert!(!s.is_active());
        // A delivered station can receive a new message (dynamic problem).
        s.on_arrival();
        assert!(s.is_active());
    }

    #[test]
    #[should_panic(expected = "second message")]
    fn double_arrival_panics() {
        let mut s = NodeState::Active;
        s.on_arrival();
    }

    #[test]
    #[should_panic(expected = "only an active station")]
    fn delivery_of_idle_station_panics() {
        let mut s = NodeState::Idle;
        s.on_delivered();
    }
}
