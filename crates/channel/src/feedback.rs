//! Channel feedback: what a station can observe about a slot.
//!
//! The channel-level truth about a slot is a [`SlotOutcome`] (silence /
//! delivery / collision). How much of that truth a station sees depends on
//! the channel model:
//!
//! * **without collision detection** (the paper's model): silence and
//!   collision are indistinguishable — both are just *noise*; a delivered
//!   message is received by everyone;
//! * **with collision detection**: stations can additionally tell collision
//!   from silence (used by the related-work baselines and by comparison
//!   experiments).
//!
//! Orthogonally, the acknowledgement mode decides whether the transmitter of
//! a delivered message learns about its own success in the same slot
//! ([`AckMode::Immediate`], the paper's assumption, cf. IEEE 802.11 ACKs) or
//! never ([`AckMode::None`], for sensor-network settings where a leader or
//! infrastructure would have to provide acknowledgements).

use mac_prob::outcome::SlotOutcome;
use serde::{Deserialize, Serialize};

/// What one station observes about one slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Observation {
    /// The station heard only noise. Without collision detection this covers
    /// both an empty slot and a collision.
    Noise,
    /// The station received a message transmitted by **another** station.
    ReceivedMessage,
    /// The station transmitted and its own message was delivered
    /// (acknowledged).
    DeliveredOwn,
    /// The station can tell that the slot was silent (only possible with
    /// collision detection).
    DetectedSilence,
    /// The station can tell that the slot had a collision (only possible with
    /// collision detection).
    DetectedCollision,
}

impl Observation {
    /// True if the observation corresponds to some successful delivery
    /// (either the station's own or someone else's).
    pub fn is_delivery(self) -> bool {
        matches!(
            self,
            Observation::ReceivedMessage | Observation::DeliveredOwn
        )
    }
}

/// Acknowledgement model: how a transmitter learns of its own success.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum AckMode {
    /// The transmitter of a delivered message learns it immediately
    /// (the paper's assumption; e.g. MAC-level acknowledgements).
    #[default]
    Immediate,
    /// No acknowledgement: the transmitter observes the slot like everyone
    /// else (it cannot hear its own transmission, so it observes noise).
    None,
}

/// The capability model of the channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ChannelModel {
    /// Whether stations can distinguish collision from silence.
    pub collision_detection: bool,
    /// How transmitters learn about their own deliveries.
    pub ack_mode: AckMode,
}

impl Default for ChannelModel {
    fn default() -> Self {
        Self::without_collision_detection()
    }
}

impl ChannelModel {
    /// The paper's model: no collision detection, immediate acknowledgement.
    pub fn without_collision_detection() -> Self {
        Self {
            collision_detection: false,
            ack_mode: AckMode::Immediate,
        }
    }

    /// A channel with collision detection, immediate acknowledgement.
    pub fn with_collision_detection() -> Self {
        Self {
            collision_detection: true,
            ack_mode: AckMode::Immediate,
        }
    }

    /// Returns the same model with a different acknowledgement mode.
    pub fn ack_mode(mut self, ack: AckMode) -> Self {
        self.ack_mode = ack;
        self
    }

    /// Translates the channel-level outcome of a slot into the observation of
    /// one particular station.
    ///
    /// * `transmitted` — whether this station transmitted in the slot;
    /// * `delivered_own` — whether this station's transmission was the one
    ///   delivered (implies `transmitted`).
    ///
    /// # Panics
    /// Panics if `delivered_own` is `true` while `transmitted` is `false`, or
    /// if `delivered_own` is `true` for a non-delivery outcome (those
    /// combinations are physically impossible and indicate a simulator bug).
    pub fn observe(
        &self,
        outcome: SlotOutcome,
        transmitted: bool,
        delivered_own: bool,
    ) -> Observation {
        assert!(
            !delivered_own || transmitted,
            "a station cannot have delivered without transmitting"
        );
        assert!(
            !delivered_own || outcome == SlotOutcome::Delivery,
            "own delivery reported for a non-delivery slot"
        );
        match outcome {
            SlotOutcome::Delivery => {
                if delivered_own {
                    match self.ack_mode {
                        AckMode::Immediate => Observation::DeliveredOwn,
                        // Without acknowledgements the transmitter cannot hear
                        // its own message; it observes noise.
                        AckMode::None => Observation::Noise,
                    }
                } else {
                    Observation::ReceivedMessage
                }
            }
            SlotOutcome::Silence => {
                if self.collision_detection {
                    Observation::DetectedSilence
                } else {
                    Observation::Noise
                }
            }
            SlotOutcome::Collision => {
                if self.collision_detection {
                    Observation::DetectedCollision
                } else {
                    Observation::Noise
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_cd_merges_silence_and_collision() {
        let model = ChannelModel::without_collision_detection();
        assert_eq!(
            model.observe(SlotOutcome::Silence, false, false),
            Observation::Noise
        );
        assert_eq!(
            model.observe(SlotOutcome::Collision, false, false),
            Observation::Noise
        );
        assert_eq!(
            model.observe(SlotOutcome::Collision, true, false),
            Observation::Noise
        );
    }

    #[test]
    fn cd_distinguishes_silence_and_collision() {
        let model = ChannelModel::with_collision_detection();
        assert_eq!(
            model.observe(SlotOutcome::Silence, false, false),
            Observation::DetectedSilence
        );
        assert_eq!(
            model.observe(SlotOutcome::Collision, true, false),
            Observation::DetectedCollision
        );
    }

    #[test]
    fn delivery_observations() {
        let model = ChannelModel::without_collision_detection();
        assert_eq!(
            model.observe(SlotOutcome::Delivery, false, false),
            Observation::ReceivedMessage
        );
        assert_eq!(
            model.observe(SlotOutcome::Delivery, true, true),
            Observation::DeliveredOwn
        );
        // A station that transmitted but was not the delivered one is
        // impossible in a Delivery slot with a single transmitter, but the
        // channel cannot know that here; it reports a received message.
        assert_eq!(
            model.observe(SlotOutcome::Delivery, true, false),
            Observation::ReceivedMessage
        );
    }

    #[test]
    fn ack_none_hides_own_delivery() {
        let model = ChannelModel::without_collision_detection().ack_mode(AckMode::None);
        assert_eq!(
            model.observe(SlotOutcome::Delivery, true, true),
            Observation::Noise
        );
        assert_eq!(
            model.observe(SlotOutcome::Delivery, false, false),
            Observation::ReceivedMessage
        );
    }

    #[test]
    fn is_delivery_helper() {
        assert!(Observation::ReceivedMessage.is_delivery());
        assert!(Observation::DeliveredOwn.is_delivery());
        assert!(!Observation::Noise.is_delivery());
        assert!(!Observation::DetectedCollision.is_delivery());
    }

    #[test]
    #[should_panic(expected = "cannot have delivered without transmitting")]
    fn impossible_combination_panics() {
        let model = ChannelModel::default();
        model.observe(SlotOutcome::Delivery, false, true);
    }

    #[test]
    #[should_panic(expected = "non-delivery slot")]
    fn own_delivery_in_collision_slot_panics() {
        let model = ChannelModel::default();
        model.observe(SlotOutcome::Collision, true, true);
    }

    #[test]
    fn default_is_paper_model() {
        let model = ChannelModel::default();
        assert!(!model.collision_detection);
        assert_eq!(model.ack_mode, AckMode::Immediate);
    }
}
