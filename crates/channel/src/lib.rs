//! # mac-channel — the slotted multiple-access channel (Radio Network) model
//!
//! This crate implements the communication substrate of the paper
//! *Unbounded Contention Resolution in Multiple-Access Channels*
//! (Fernández Anta, Mosteiro, Muñoz — PODC 2011): a **single-hop Radio
//! Network**, i.e. a synchronous slotted channel shared by `n` stations in
//! which
//!
//! * if **exactly one** station transmits in a slot, its message is delivered
//!   to every station;
//! * if **two or more** stations transmit, a collision garbles every message;
//! * if **nobody** transmits, the slot carries only background noise;
//! * **without collision detection**, stations cannot distinguish background
//!   noise from collision noise (the paper's model); an optional
//!   collision-detection variant is provided for comparison experiments;
//! * a station learns that *its own* message was delivered (acknowledgement,
//!   e.g. 802.11-style), at which point it becomes *idle* — exactly the
//!   assumption of the paper (§2).
//!
//! The crate is deliberately independent of any particular protocol: given
//! the set of transmitters in a slot it resolves the slot outcome
//! ([`Channel`]), translates it into what each station can observe
//! ([`Observation`], [`ChannelModel`]), keeps global counters
//! ([`ChannelStats`]) and optionally a bounded trace ([`trace::Trace`]).
//! Which stations are *active* in the first place is governed by an arrival
//! model ([`arrivals`]): the paper's static (batched) arrivals, plus Poisson
//! and adversarial bursty arrivals for the dynamic extension discussed in the
//! paper's conclusions. The channel can additionally carry an adversary
//! ([`Channel::with_adversary`], re-exported from `mac-adversary`): jamming
//! models that destroy deliveries and feedback faults that degrade what the
//! stations are told about each slot.
//!
//! ```
//! use mac_channel::{Channel, ChannelModel, NodeId, SlotOutcome};
//!
//! let mut channel = Channel::new(ChannelModel::without_collision_detection());
//! // Slot 0: stations 1 and 3 transmit -> collision.
//! let r = channel.resolve_slot(&[NodeId(1), NodeId(3)]);
//! assert_eq!(r.outcome, SlotOutcome::Collision);
//! // Slot 1: only station 2 transmits -> delivery.
//! let r = channel.resolve_slot(&[NodeId(2)]);
//! assert_eq!(r.delivered, Some(NodeId(2)));
//! assert_eq!(channel.stats().deliveries, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arrivals;
pub mod channel;
pub mod feedback;
pub mod node;
pub mod stream;
pub mod trace;

pub use arrivals::{ArrivalModel, ArrivalSchedule};
pub use channel::{Channel, ChannelStats, SlotResolution};
pub use feedback::{AckMode, ChannelModel, Observation};
pub use node::{Message, NodeId, NodeState};
pub use stream::{ArrivalStream, ShardStrategy, ShardedArrivalStream, StreamSummary};

/// Re-export of the adversarial channel models (`mac-adversary`) so that a
/// channel and its adversary can be configured from one import path.
pub use mac_adversary as adversary;
pub use mac_adversary::{AdversaryModel, AdversaryScenario, AdversaryState, FeedbackFault};

/// Re-export of the channel-level slot outcome defined in `mac-prob` so that
/// downstream crates need only one import path.
pub use mac_prob::outcome::SlotOutcome;

/// A communication slot index (slots are numbered from 0).
///
/// The paper numbers communication steps from 1; the simulators in this
/// workspace number slots from 0 and translate when a protocol's definition
/// depends on parity (e.g. One-fail Adaptive's AT/BT alternation).
pub type Slot = u64;
