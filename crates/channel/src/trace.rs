//! Bounded per-slot traces of channel activity.
//!
//! Traces exist for debugging, for the examples (which print small traces to
//! illustrate protocol behaviour) and for tests that need to assert on the
//! exact sequence of slot outcomes. They are intentionally bounded: a
//! `k = 10^7` run would otherwise allocate tens of gigabytes of trace.

use crate::node::NodeId;
use mac_prob::outcome::SlotOutcome;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One traced slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Slot index.
    pub slot: u64,
    /// Channel-level outcome of the slot.
    pub outcome: SlotOutcome,
    /// Number of stations that transmitted.
    pub transmitters: u64,
    /// Station whose message was delivered, if any.
    pub delivered: Option<NodeId>,
    /// True if an adversary jammed the slot (see `mac-adversary`); a jammed
    /// busy slot always has [`SlotOutcome::Collision`] as its outcome.
    #[serde(default)]
    pub jammed: bool,
}

/// A bounded ring of the most recent [`TraceEntry`] values.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    capacity: usize,
    entries: VecDeque<TraceEntry>,
    dropped: u64,
}

impl Trace {
    /// Creates a trace that keeps at most `capacity` entries.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        Self {
            capacity,
            entries: VecDeque::with_capacity(capacity.min(4096)),
            dropped: 0,
        }
    }

    /// Appends an entry, evicting the oldest if the trace is full.
    pub fn record(&mut self, entry: TraceEntry) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(entry);
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entry has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of entries that have been evicted because of the capacity
    /// bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> Vec<TraceEntry> {
        self.entries.iter().copied().collect()
    }

    /// Iterates over the retained entries, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// The slots (among the retained entries) in which a delivery happened.
    pub fn delivery_slots(&self) -> Vec<u64> {
        self.entries
            .iter()
            .filter(|e| e.outcome == SlotOutcome::Delivery)
            .map(|e| e.slot)
            .collect()
    }

    /// Renders the retained entries as a compact one-character-per-slot
    /// string: `.` silence, `*` delivery, `x` collision, `!` jammed slot.
    /// Useful in examples and debugging output.
    pub fn ascii_timeline(&self) -> String {
        self.entries
            .iter()
            .map(|e| match (e.jammed, e.outcome) {
                (true, _) => '!',
                (false, SlotOutcome::Silence) => '.',
                (false, SlotOutcome::Delivery) => '*',
                (false, SlotOutcome::Collision) => 'x',
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(slot: u64, outcome: SlotOutcome) -> TraceEntry {
        TraceEntry {
            slot,
            outcome,
            transmitters: match outcome {
                SlotOutcome::Silence => 0,
                SlotOutcome::Delivery => 1,
                SlotOutcome::Collision => 2,
            },
            delivered: if outcome == SlotOutcome::Delivery {
                Some(NodeId(slot))
            } else {
                None
            },
            jammed: false,
        }
    }

    #[test]
    fn records_in_order() {
        let mut t = Trace::with_capacity(10);
        assert!(t.is_empty());
        t.record(entry(0, SlotOutcome::Silence));
        t.record(entry(1, SlotOutcome::Delivery));
        assert_eq!(t.len(), 2);
        assert_eq!(t.entries()[0].slot, 0);
        assert_eq!(t.entries()[1].slot, 1);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn evicts_oldest_beyond_capacity() {
        let mut t = Trace::with_capacity(3);
        for i in 0..5 {
            t.record(entry(i, SlotOutcome::Collision));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        assert_eq!(t.entries()[0].slot, 2);
        assert_eq!(t.entries()[2].slot, 4);
    }

    #[test]
    fn delivery_slots_filters_deliveries() {
        let mut t = Trace::with_capacity(10);
        t.record(entry(0, SlotOutcome::Silence));
        t.record(entry(1, SlotOutcome::Delivery));
        t.record(entry(2, SlotOutcome::Collision));
        t.record(entry(3, SlotOutcome::Delivery));
        assert_eq!(t.delivery_slots(), vec![1, 3]);
    }

    #[test]
    fn ascii_timeline_renders_outcomes() {
        let mut t = Trace::with_capacity(10);
        t.record(entry(0, SlotOutcome::Silence));
        t.record(entry(1, SlotOutcome::Delivery));
        t.record(entry(2, SlotOutcome::Collision));
        assert_eq!(t.ascii_timeline(), ".*x");
    }

    #[test]
    fn ascii_timeline_marks_jammed_slots() {
        let mut t = Trace::with_capacity(10);
        t.record(entry(0, SlotOutcome::Delivery));
        t.record(TraceEntry {
            jammed: true,
            ..entry(1, SlotOutcome::Collision)
        });
        assert_eq!(t.ascii_timeline(), "*!");
    }

    #[test]
    fn iter_matches_entries() {
        let mut t = Trace::with_capacity(4);
        t.record(entry(7, SlotOutcome::Delivery));
        let via_iter: Vec<u64> = t.iter().map(|e| e.slot).collect();
        assert_eq!(via_iter, vec![7]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = Trace::with_capacity(0);
    }
}
