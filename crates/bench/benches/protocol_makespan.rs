//! Criterion benchmark: wall-clock cost of one complete simulated run of
//! static k-selection, per protocol and instance size.
//!
//! This is the unit of work behind every data point of Figure 1 / Table 1, so
//! its cost bounds how far the paper sweep can be pushed (the paper's largest
//! point is k = 10⁷ with 10 replications per protocol).
//!
//! Run with `cargo bench -p mac-bench --bench protocol_makespan`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mac_protocols::ProtocolKind;
use mac_sim::{simulate, ExactSimulator, RunOptions};
use std::hint::black_box;

fn bench_fast_simulators(c: &mut Criterion) {
    let mut group = c.benchmark_group("fast_simulated_run");
    // Keep the total benchmark wall time modest: each point is a full
    // simulated run, so a handful of samples already gives tight intervals.
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for kind in ProtocolKind::paper_lineup() {
        for &k in &[1_000u64, 10_000, 100_000] {
            group.throughput(Throughput::Elements(k));
            group.bench_with_input(BenchmarkId::new(kind.label(), k), &k, |bencher, &k| {
                let mut seed = 0u64;
                bencher.iter(|| {
                    seed = seed.wrapping_add(1);
                    let result = simulate(black_box(&kind), black_box(k), seed)
                        .expect("paper parameters are valid");
                    assert!(result.completed);
                    black_box(result.makespan)
                });
            });
        }
    }
    group.finish();
}

fn bench_exact_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_simulated_run");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for kind in [
        ProtocolKind::OneFailAdaptive { delta: 2.72 },
        ProtocolKind::ExpBackonBackoff { delta: 0.366 },
    ] {
        for &k in &[100u64, 1_000] {
            group.throughput(Throughput::Elements(k));
            group.bench_with_input(BenchmarkId::new(kind.label(), k), &k, |bencher, &k| {
                let sim = ExactSimulator::new(kind.clone(), RunOptions::default());
                let mut seed = 0u64;
                bencher.iter(|| {
                    seed = seed.wrapping_add(1);
                    let result = sim.run(black_box(k), seed).expect("valid parameters");
                    assert!(result.completed);
                    black_box(result.makespan)
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fast_simulators, bench_exact_simulator);
criterion_main!(benches);
