//! Criterion benchmark: throughput of the simulation primitives themselves —
//! slot-outcome sampling, balls-in-bins windows, and per-slot cost of the
//! exact simulator — independent of any particular protocol.
//!
//! Run with `cargo bench -p mac-bench --bench sim_throughput`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mac_prob::balls::{occupancy_counts, throw_balls, OccupancyScratch};
use mac_prob::outcome::sample_slot_outcome;
use mac_prob::rng::Xoshiro256pp;
use mac_prob::sampling::sample_binomial;
use mac_protocols::ProtocolKind;
use mac_sim::{RunOptions, WindowSimulator};
use rand::SeedableRng;
use std::hint::black_box;

fn bench_slot_outcome(c: &mut Criterion) {
    let mut group = c.benchmark_group("slot_outcome_sampling");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &m in &[10u64, 10_000, 10_000_000] {
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("stations", m), &m, |bencher, &m| {
            let mut rng = Xoshiro256pp::seed_from_u64(1);
            let p = 1.0 / m as f64;
            bencher.iter(|| black_box(sample_slot_outcome(black_box(m), black_box(p), &mut rng)));
        });
    }
    group.finish();
}

fn bench_balls_in_bins(c: &mut Criterion) {
    let mut group = c.benchmark_group("balls_in_bins_window");
    group.sample_size(30);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &m in &[100u64, 10_000, 1_000_000] {
        group.throughput(Throughput::Elements(m));
        group.bench_with_input(BenchmarkId::new("balls", m), &m, |bencher, &m| {
            let mut rng = Xoshiro256pp::seed_from_u64(2);
            bencher
                .iter(|| black_box(throw_balls(black_box(m), black_box(m), &mut rng).singletons()));
        });
    }
    group.finish();
}

/// The occupancy experiment at the heart of every window-simulator step,
/// through both engines: the naive path materialising a full
/// [`mac_prob::balls::BinsOccupancy`] (assignments + singleton list) per
/// window, and the counts-only path reusing an [`OccupancyScratch`]. The
/// counts-only path is the baseline the window simulator runs on; this
/// comparison is the perf-regression tripwire for it (expected ≥ 2× at
/// m = 10⁶).
fn bench_occupancy_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("occupancy_paths");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &m in &[10_000u64, 1_000_000] {
        group.throughput(Throughput::Elements(m));
        group.bench_with_input(
            BenchmarkId::new("full_bins_occupancy", m),
            &m,
            |bencher, &m| {
                let mut rng = Xoshiro256pp::seed_from_u64(4);
                bencher.iter(|| {
                    black_box(throw_balls(black_box(m), black_box(m), &mut rng).singletons())
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("counts_only", m), &m, |bencher, &m| {
            let mut rng = Xoshiro256pp::seed_from_u64(4);
            let mut scratch = OccupancyScratch::new();
            bencher.iter(|| {
                black_box(
                    occupancy_counts(black_box(m), black_box(m), &mut rng, &mut scratch).singletons,
                )
            });
        });
    }
    group.finish();
}

/// One complete window-simulator run (Exp Back-on/Back-off) per iteration:
/// the unit of work behind every Figure 1 data point of the window family.
fn bench_window_simulator_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("window_simulator_run");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for &k in &[100_000u64, 1_000_000] {
        group.throughput(Throughput::Elements(k));
        group.bench_with_input(BenchmarkId::new("ebb", k), &k, |bencher, &k| {
            let sim = WindowSimulator::new(
                ProtocolKind::ExpBackonBackoff { delta: 0.366 },
                RunOptions::default(),
            );
            let mut seed = 0u64;
            bencher.iter(|| {
                seed = seed.wrapping_add(1);
                let result = sim.run(black_box(k), seed).expect("valid parameters");
                assert!(result.completed);
                black_box(result.makespan)
            });
        });
    }
    group.finish();
}

fn bench_binomial_sampler(c: &mut Criterion) {
    let mut group = c.benchmark_group("binomial_sampler");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &(n, p) in &[(1_000u64, 0.001f64), (1_000_000, 0.000_001)] {
        group.bench_with_input(BenchmarkId::new("n", n), &(n, p), |bencher, &(n, p)| {
            let mut rng = Xoshiro256pp::seed_from_u64(3);
            bencher.iter(|| black_box(sample_binomial(black_box(n), black_box(p), &mut rng)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_slot_outcome,
    bench_balls_in_bins,
    bench_occupancy_paths,
    bench_window_simulator_run,
    bench_binomial_sampler
);
criterion_main!(benches);
