//! Saturation / phase-map harness: long-run dynamic sessions under
//! sustained Poisson arrivals, one point per (protocol, λ), charting
//! achieved throughput, sketched latency percentiles, and the measured
//! stability boundary — the largest sustained arrival rate at which a
//! protocol still completes its workload without tripping the livelock
//! watchdog.
//!
//! Every point drives [`mac_sim::Session::dynamic`] with **bounded-class
//! cohort mode** on (`RunOptions::max_live_cohorts`): sustained overload
//! creates one cohort class per arrival burst, and without the cap a
//! λ = 2 run to 10⁶ cumulative arrivals carries hundreds of thousands of
//! live classes. With the cap, the class count stays ≤ `C_max` and the
//! per-slot cost stays flat, which is what makes the saturated corner of
//! the map computable at all. The stall watchdog (`StallConfig`, Report
//! policy) is always armed: a saturated protocol that deadlocks — e.g.
//! One-fail Adaptive's AT/BT parity trap under heavily overlapping
//! cohorts, DESIGN.md §6 — is detected within two windows and the run is
//! parked instead of burning its full slot cap. Each run also performs one
//! checkpoint/resume round-trip at its first pause, so every committed row
//! additionally witnesses the resume path (resume is bit-identical, so the
//! row is unchanged by it).
//!
//! The committed artefact (`BENCH_06.json`, schema
//! `mac-bench/saturation-map/v1`) carries the full-horizon map **plus** a
//! reduced smoke grid; runs are deterministic per seed, so the
//! `saturation_map --check` CI gate re-runs the reduced grid and compares
//! *exactly* (message counts, makespans, stall flags — no timing
//! tolerances). `PHASE.md` is the rendered per-protocol phase table.

use mac_channel::ArrivalModel;
use mac_protocols::ProtocolKind;
use mac_sim::{RunOptions, Session, SessionStatus, StallConfig, StallPolicy};
use std::fmt::Write as _;

/// Grid configuration for one saturation sweep.
#[derive(Debug, Clone)]
pub struct SaturationConfig {
    /// Arrival horizon in slots: arrivals stop after this slot, so the
    /// expected cumulative arrivals of a point are `λ · horizon`.
    pub horizon: u64,
    /// Sustained Poisson rates (messages per slot) to chart.
    pub lambdas: Vec<f64>,
    /// Master seed (per-point seeds derive from it deterministically).
    pub seed: u64,
    /// Bounded-class cap (`RunOptions::max_live_cohorts`).
    pub cap: u64,
    /// Livelock-watchdog window in slots (Report policy).
    pub window: u64,
}

/// The full-horizon map behind the committed phase diagrams: λ up to 2
/// (two arrivals per slot — 10⁶ cumulative arrivals over the 500k-slot
/// horizon), far above every protocol's capacity.
pub fn full_grid() -> SaturationConfig {
    SaturationConfig {
        horizon: 500_000,
        lambdas: vec![0.02, 0.05, 0.10, 0.15, 0.20, 0.30, 0.50, 1.00, 2.00],
        seed: 2011,
        cap: 64,
        window: 2_000,
    }
}

/// The reduced smoke grid for the CI gate: one clearly-stable and one
/// clearly-saturated rate over a short horizon. Must stay cheap — it runs
/// on every pull request.
pub fn reduced_grid() -> SaturationConfig {
    SaturationConfig {
        horizon: 20_000,
        lambdas: vec![0.05, 2.00],
        seed: 2011,
        cap: 64,
        window: 2_000,
    }
}

/// The protocol line-up of the map: the paper's two adaptive protocols,
/// the randomised-parity One-fail variant (which breaks the two-cohort
/// parity deadlock and measurably raises the boundary over stock
/// One-fail), and the known-k oracle, whose achieved throughput under
/// full backlog is the closest measured point to the 1/e capacity
/// ceiling. Note the oracle transmits with probability 1/k for the
/// *global* k, so once its backlog drains below ~k the remaining tail is
/// intrinsically slow — large-k oracle rows park in that tail with
/// >99.9% delivered.
pub fn lineup() -> Vec<ProtocolKind> {
    vec![
        ProtocolKind::OneFailAdaptive { delta: 2.72 },
        ProtocolKind::LogFailsAdaptive {
            xi_delta: 0.1,
            xi_beta: 0.1,
            xi_t: 0.5,
        },
        ProtocolKind::RandomizedParityOneFail { delta: 2.72 },
        ProtocolKind::KnownKOracle,
    ]
}

/// One measured point of the phase map.
#[derive(Debug, Clone, PartialEq)]
pub struct SaturationPoint {
    /// Protocol configuration label.
    pub protocol: String,
    /// Sustained Poisson arrival rate (messages per slot).
    pub lambda: f64,
    /// Arrival horizon of the run (slots).
    pub horizon: u64,
    /// Messages the sampled schedule actually contains.
    pub messages: u64,
    /// Messages delivered before the run finished or was parked.
    pub delivered: u64,
    /// Whether every message was delivered.
    pub completed: bool,
    /// Slot clock when the run finished or was parked.
    pub makespan: u64,
    /// Achieved throughput: delivered messages per simulated slot.
    pub throughput: f64,
    /// Sketched latency percentiles (delivery − arrival, slots).
    pub p50: u64,
    /// 95th-percentile latency.
    pub p95: u64,
    /// 99th-percentile latency.
    pub p99: u64,
    /// Whether the livelock watchdog flagged a zero-delivery stall.
    pub stalled: bool,
    /// Slot of stall detection (0 when not stalled).
    pub detected_at: u64,
    /// Last progress slot before the stall (0 when not stalled).
    pub last_progress: u64,
    /// Peak simultaneously-live cohort classes (must stay ≤ the cap).
    pub peak_classes: u64,
    /// Cohort merges performed (scan merges + forced cap merges).
    pub merges: u64,
}

/// Runs one (protocol, λ) point: a dynamic session in 2¹⁶-slot bursts with
/// the watchdog armed, parked at the first detected stall, with one
/// checkpoint/resume round-trip at the first pause.
pub fn run_point(kind: &ProtocolKind, lambda: f64, config: &SaturationConfig) -> SaturationPoint {
    let model = ArrivalModel::Poisson {
        rate: lambda,
        horizon: config.horizon,
    };
    let options = RunOptions {
        max_live_cohorts: config.cap,
        ..RunOptions::default()
    };
    let mut session =
        Session::dynamic(kind, &model, config.seed, &options).expect("valid saturation point");
    session.set_watchdog(Some(StallConfig::new(config.window, StallPolicy::Report)));

    let burst = 1u64 << 16;
    let mut first_pause = true;
    loop {
        let status = session.advance(burst).expect("advance");
        if first_pause {
            // Checkpoint/resume round-trip: resume is bit-identical, so
            // the measured point is unchanged — but every committed row
            // now witnesses the resume path at saturation scale.
            let checkpoint = session.checkpoint().expect("checkpoint");
            checkpoint.verify().expect("checkpoint integrity");
            session = Session::resume(&checkpoint).expect("resume");
            session.set_watchdog(Some(StallConfig::new(config.window, StallPolicy::Report)));
            first_pause = false;
        }
        if status == SessionStatus::Finished || session.stall().is_some() {
            break;
        }
    }

    let stall = session.stall().cloned();
    let messages = session.delivered() + session.remaining();
    let (p50, p95, p99) = match session.live_stats() {
        Some(stats) if stats.count() > 0 => (
            stats.quantile(0.50),
            stats.quantile(0.95),
            stats.quantile(0.99),
        ),
        _ => (0, 0, 0),
    };
    let run = session
        .cohort_run()
        .expect("dynamic sessions are cohort runs");
    let result = run.result;
    SaturationPoint {
        protocol: session.label().to_string(),
        lambda,
        horizon: config.horizon,
        messages,
        delivered: result.delivered,
        completed: result.completed,
        makespan: result.makespan,
        throughput: result.delivered as f64 / result.makespan.max(1) as f64,
        p50,
        p95,
        p99,
        stalled: stall.is_some(),
        detected_at: stall.as_ref().map_or(0, |s| s.detected_at_slot),
        last_progress: stall.as_ref().map_or(0, |s| s.last_progress_slot),
        peak_classes: run.peak_cohorts as u64,
        merges: run.merges,
    }
}

/// Runs the whole grid: every line-up protocol at every λ.
pub fn run_grid(config: &SaturationConfig) -> Vec<SaturationPoint> {
    let mut points = Vec::new();
    for kind in lineup() {
        for &lambda in &config.lambdas {
            points.push(run_point(&kind, lambda, config));
        }
    }
    points
}

/// A point is *stable* if the run completed **and** the protocol actually
/// kept up with the offered load: achieved throughput at least 80% of λ.
/// Completion alone is not stability — a saturated run can still
/// "complete" by draining its backlog long after arrivals stop (the
/// known-k oracle delivers at ~1/e per slot over 7× the horizon at
/// λ = 2). Conversely a completed run *has* recovered from any transient
/// watchdog report (the oracle's 1/k transmission probability makes
/// multi-thousand-slot gaps the law, not livelock, once its backlog
/// drains), so the stall flag on its own does not disqualify; parked
/// runs never complete and are never stable.
pub fn is_stable(p: &SaturationPoint) -> bool {
    p.completed && p.throughput >= 0.8 * p.lambda
}

/// The measured stability boundary of one protocol: the largest charted λ
/// whose point is stable under [`is_stable`] (`None` if every rate
/// saturated it).
pub fn stability_boundary(points: &[SaturationPoint], protocol: &str) -> Option<f64> {
    points
        .iter()
        .filter(|p| p.protocol == protocol && is_stable(p))
        .map(|p| p.lambda)
        .fold(None, |best, l| Some(best.map_or(l, |b: f64| b.max(l))))
}

/// One stable JSON row (hand-rolled: the vendored serde stub has no
/// serialisation backend; the format is diff-friendly on purpose).
fn render_row(p: &SaturationPoint) -> String {
    format!(
        "    {{\"protocol\": \"{}\", \"lambda\": {}, \"horizon\": {}, \"messages\": {}, \
         \"delivered\": {}, \"completed\": {}, \"makespan\": {}, \"throughput\": {:.6}, \
         \"p50\": {}, \"p95\": {}, \"p99\": {}, \"stalled\": {}, \"detected_at\": {}, \
         \"last_progress\": {}, \"peak_classes\": {}, \"merges\": {}}}",
        p.protocol,
        p.lambda,
        p.horizon,
        p.messages,
        p.delivered,
        p.completed,
        p.makespan,
        p.throughput,
        p.p50,
        p.p95,
        p.p99,
        p.stalled,
        p.detected_at,
        p.last_progress,
        p.peak_classes,
        p.merges
    )
}

/// Renders the committed snapshot: schema header plus every point of the
/// full and reduced grids (rows carry their horizon, so the `--check`
/// gate can select the reduced rows).
pub fn render_json(points: &[SaturationPoint], config: &SaturationConfig) -> String {
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema\": \"mac-bench/saturation-map/v1\",");
    let _ = writeln!(json, "  \"seed\": {},", config.seed);
    let _ = writeln!(json, "  \"cap\": {},", config.cap);
    let _ = writeln!(json, "  \"window\": {},", config.window);
    let _ = writeln!(json, "  \"unit\": \"messages_per_slot\",");
    let _ = writeln!(json, "  \"results\": [");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 == points.len() { "" } else { "," };
        let _ = writeln!(json, "{}{comma}", render_row(p));
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");
    json
}

/// Extracts one numeric field (integer, float, or bool) from a row line.
fn field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim().to_string())
}

/// Extracts one string field from a row line.
fn field_str(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\": \"");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    Some(rest[..rest.find('"')?].to_string())
}

/// A committed row, parsed back for the `--check` gate.
#[derive(Debug, Clone, PartialEq)]
pub struct CommittedRow {
    /// Protocol label of the row.
    pub protocol: String,
    /// Arrival rate of the row.
    pub lambda: f64,
    /// Arrival horizon of the row.
    pub horizon: u64,
    /// Committed message count.
    pub messages: u64,
    /// Committed delivery count.
    pub delivered: u64,
    /// Committed makespan.
    pub makespan: u64,
    /// Committed stall flag.
    pub stalled: bool,
    /// Committed peak live-class count.
    pub peak_classes: u64,
}

/// Parses the `results` rows of a committed saturation snapshot.
pub fn parse_committed(json: &str) -> Vec<CommittedRow> {
    json.lines()
        .filter_map(|line| {
            Some(CommittedRow {
                protocol: field_str(line, "protocol")?,
                lambda: field(line, "lambda")?.parse().ok()?,
                horizon: field(line, "horizon")?.parse().ok()?,
                messages: field(line, "messages")?.parse().ok()?,
                delivered: field(line, "delivered")?.parse().ok()?,
                makespan: field(line, "makespan")?.parse().ok()?,
                stalled: field(line, "stalled")?.parse().ok()?,
                peak_classes: field(line, "peak_classes")?.parse().ok()?,
            })
        })
        .collect()
}

/// Compares freshly-measured points against committed rows. Runs are
/// deterministic per seed, so the comparison is exact; returns the
/// mismatch descriptions (empty = gate passes).
pub fn check_against(points: &[SaturationPoint], committed: &[CommittedRow]) -> Vec<String> {
    let mut mismatches = Vec::new();
    let mut compared = 0usize;
    for p in points {
        let Some(row) = committed.iter().find(|r| {
            r.protocol == p.protocol
                && r.horizon == p.horizon
                && (r.lambda - p.lambda).abs() < 1e-12
        }) else {
            mismatches.push(format!(
                "{} λ={} horizon={}: no committed row",
                p.protocol, p.lambda, p.horizon
            ));
            continue;
        };
        compared += 1;
        for (name, got, want) in [
            ("messages", p.messages, row.messages),
            ("delivered", p.delivered, row.delivered),
            ("makespan", p.makespan, row.makespan),
            ("peak_classes", p.peak_classes, row.peak_classes),
            ("stalled", p.stalled as u64, row.stalled as u64),
        ] {
            if got != want {
                mismatches.push(format!(
                    "{} λ={} horizon={}: {name} measured {got} vs committed {want}",
                    p.protocol, p.lambda, p.horizon
                ));
            }
        }
    }
    if compared == 0 {
        mismatches.push("no comparable rows in the committed snapshot".to_string());
    }
    mismatches
}

/// Renders the per-protocol phase tables plus the measured stability
/// boundaries (the `PHASE.md` artefact). Only full-horizon rows enter the
/// tables; the reduced smoke rows exist for the CI gate.
pub fn render_phase_md(points: &[SaturationPoint], config: &SaturationConfig) -> String {
    let mut md = String::new();
    let _ = writeln!(md, "# Saturation / phase map\n");
    let _ = writeln!(
        md,
        "Sustained Poisson arrivals over a {}-slot horizon (λ = 2 ⇒ ~10⁶ cumulative \
         arrivals), dynamic sessions in bounded-class cohort mode (`max_live_cohorts = {}`), \
         livelock watchdog armed (window {}, Report policy), one checkpoint/resume \
         round-trip per run. Throughput is delivered messages per simulated slot; latency \
         percentiles come from the streaming quantile sketch; a *stalled* run was parked at \
         watchdog detection unless it completed within the same 2¹⁶-slot burst. Known-k \
         oracle rows with large k park in their 1/k transmission tail after delivering \
         >99.9% — that is the oracle's law, not livelock. Generated by `cargo run -p \
         mac-bench --release --bin saturation_map`; regenerating appends the next \
         `BENCH_NN.json`.\n",
        config.horizon, config.cap, config.window
    );
    // Only full-horizon rows enter the tables *and* the boundary: the
    // reduced smoke rows are too short for deadlocks to bite (One-fail
    // Adaptive completes λ = 0.05 over 20k slots but parks over 500k).
    let full: Vec<SaturationPoint> = points
        .iter()
        .filter(|p| p.horizon == config.horizon)
        .cloned()
        .collect();
    let mut protocols: Vec<&str> = Vec::new();
    for p in &full {
        if !protocols.contains(&p.protocol.as_str()) {
            protocols.push(&p.protocol);
        }
    }
    for protocol in protocols {
        let _ = writeln!(md, "## {protocol}\n");
        let _ = writeln!(
            md,
            "| λ | messages | delivered | throughput | p50 | p95 | p99 | peak classes | stalled |"
        );
        let _ = writeln!(md, "|---|---|---|---|---|---|---|---|---|");
        for p in full.iter().filter(|p| p.protocol == *protocol) {
            let stalled = if p.stalled {
                format!("yes (slot {})", p.detected_at)
            } else {
                "no".to_string()
            };
            let _ = writeln!(
                md,
                "| {} | {} | {} | {:.4} | {} | {} | {} | {} | {} |",
                p.lambda,
                p.messages,
                p.delivered,
                p.throughput,
                p.p50,
                p.p95,
                p.p99,
                p.peak_classes,
                stalled
            );
        }
        match stability_boundary(&full, protocol) {
            Some(boundary) => {
                let _ = writeln!(
                    md,
                    "\nMeasured stability boundary: **λ\\* = {boundary}** — the largest charted \
                     rate that completed at ≥ 80% of the offered load.\n"
                );
            }
            None => {
                let _ = writeln!(
                    md,
                    "\nMeasured stability boundary: **below λ = {}** — every charted rate \
                     saturated this protocol.\n",
                    config.lambdas.iter().copied().fold(f64::INFINITY, f64::min)
                );
            }
        }
    }
    md
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_grid() -> SaturationConfig {
        SaturationConfig {
            horizon: 400,
            lambdas: vec![0.05, 2.0],
            seed: 2011,
            cap: 8,
            window: 200,
        }
    }

    #[test]
    fn oracle_point_completes_below_and_survives_above() {
        let config = tiny_grid();
        let stable = run_point(&ProtocolKind::KnownKOracle, 0.05, &config);
        assert!(stable.completed && !stable.stalled);
        assert_eq!(stable.delivered, stable.messages);
        assert!(stable.peak_classes <= config.cap);
        let saturated = run_point(&ProtocolKind::KnownKOracle, 2.0, &config);
        assert!(saturated.delivered > 0);
        assert!(saturated.peak_classes <= config.cap);
        assert!(saturated.merges > 0, "the cap never forced a merge");
    }

    #[test]
    fn snapshot_rows_round_trip_and_check_cleanly() {
        let config = tiny_grid();
        let points = vec![
            run_point(&ProtocolKind::KnownKOracle, 0.05, &config),
            run_point(&ProtocolKind::OneFailAdaptive { delta: 2.72 }, 2.0, &config),
        ];
        let json = render_json(&points, &config);
        let committed = parse_committed(&json);
        assert_eq!(committed.len(), points.len());
        assert!(check_against(&points, &committed).is_empty());
        // A drifted makespan must be flagged.
        let mut drifted = committed;
        drifted[0].makespan += 1;
        assert!(!check_against(&points, &drifted).is_empty());
    }

    #[test]
    fn phase_table_reports_a_boundary_per_protocol() {
        let config = tiny_grid();
        let points = run_grid(&config);
        let md = render_phase_md(&points, &config);
        assert!(md.contains("Known-k oracle"));
        assert!(md.contains("stability boundary"));
        assert_eq!(
            stability_boundary(&points, "Known-k oracle"),
            Some(0.05),
            "tiny-grid oracle should be stable only at the low rate"
        );
    }
}
