//! Ablation A3 (extension beyond the paper): growth-factor sweep for the
//! monotone back-off baselines, contrasted with the paper's non-monotone Exp
//! Back-on/Back-off and the known-k oracle.
//!
//! The paper argues (following Bender et al.) that *monotone* strategies pay
//! a super-constant factor for batched arrivals; this harness quantifies that
//! gap for several growth factors `r`.
//!
//! ```bash
//! cargo run -p mac-bench --release --bin ablation_backoff
//! ```

use mac_bench::HarnessOptions;
use mac_protocols::ProtocolKind;
use mac_sim::report::to_csv;
use mac_sim::{EngineChoice, Experiment, RunOptions};

fn main() {
    let options = HarnessOptions::parse(std::env::args().skip(1));
    let ks = vec![1_000, 10_000, 100_000];
    let rs = [1.5, 2.0, 3.0, 4.0];

    let mut protocols = Vec::new();
    for &r in &rs {
        protocols.push(ProtocolKind::LoglogIteratedBackoff { r });
        protocols.push(ProtocolKind::RExponentialBackoff { r });
    }
    protocols.push(ProtocolKind::ExpBackonBackoff { delta: 0.366 });
    protocols.push(ProtocolKind::KnownKOracle);

    let experiment = Experiment {
        protocols: protocols.clone(),
        ks: ks.clone(),
        replications: options.reps.min(5),
        master_seed: options.seed,
        options: RunOptions::default(),
        engine: EngineChoice::Fast,
        threads: 0,
    };
    let results = experiment.run().expect("all sweep parameters are valid");

    println!("Ablation: monotone back-off growth factor r vs the paper's protocols");
    println!(
        "(ratio slots/k, mean over {} replications)\n",
        results.replications
    );
    println!(
        "{:<34} {:>10} {:>10} {:>10}",
        "protocol", "k=1e3", "k=1e4", "k=1e5"
    );
    for kind in &protocols {
        let label = match kind {
            ProtocolKind::LoglogIteratedBackoff { r } => {
                format!("Loglog-iterated Back-off (r={r})")
            }
            _ => kind.label(),
        };
        let row: Vec<f64> = ks
            .iter()
            .map(|&k| results.cell_for(kind, k).expect("cell exists").ratio.mean)
            .collect();
        println!(
            "{label:<34} {:>10.2} {:>10.2} {:>10.2}",
            row[0], row[1], row[2]
        );
    }

    println!("\n--- raw per-cell statistics (CSV) ---");
    print!("{}", to_csv(&results));
}
