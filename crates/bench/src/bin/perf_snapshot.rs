//! Perf snapshot: slots/second of each simulation engine, written to the
//! next free `BENCH_NN.json` in the current directory (`BENCH_01.json` if
//! none exists — committed snapshots are never overwritten). See the
//! crate-level documentation of `mac-bench` for how `BENCH_*.json` files
//! accumulate.
//!
//! ```bash
//! # The committed snapshots were generated from the repository root with:
//! cargo run -p mac-bench --release --bin perf_snapshot -- --max-exp 6
//! # Options (via the shared HarnessOptions parser):
//! #   --seed S     master seed (default 2011)
//! #   --max-exp N  largest fast-simulator instance is 10^N (default 5)
//! #   --reps R     timed repetitions per point, best-of (default 10, min 3)
//! # Regression gate (used by CI against the committed baseline):
//! #   --check BENCH_NN.json   compare instead of writing a new snapshot;
//! #                           exit non-zero if any row regresses more than
//! #   --check-tolerance X     a factor of X (default 3) below the baseline
//! ```
//!
//! Engines measured on **batched** (static k-selection) instances:
//!
//! * **fair** — [`mac_sim::FairSimulator`] running One-fail Adaptive, at
//!   `k = 10⁴ … 10^max_exp`;
//! * **window** — [`mac_sim::WindowSimulator`] running Exp Back-on/Back-off,
//!   at the same sizes **plus paper scale** (`k = 10⁶, 10⁷`, measured
//!   regardless of `--max-exp`);
//! * **window-llbb** — the window simulator running Loglog-iterated
//!   Back-off at paper scale (`k = 10⁶, 10⁷`);
//! * **exact** — [`mac_sim::ExactSimulator`] (per-station reference) running
//!   One-fail Adaptive at `k = 10³, 10⁴`: it is O(active stations) per slot,
//!   so paper-scale sizes are not meaningful for it.
//!
//! **Dynamic-arrival** rows (the §6-style experiments) pair the cohort
//! aggregate engine with the exact per-station path on the *same* sampled
//! schedule, at `k = 10⁴ … 10^max_exp`:
//!
//! * **cohort-poisson / exact-poisson** — the known-k oracle under heavy
//!   Poisson traffic (rate 20 msgs/slot over a `k/20`-slot horizon; the
//!   oracle is the fair protocol that keeps delivering under heavily
//!   overlapping arrivals — One-fail Adaptive's BT track deadlocks there,
//!   see `crates/sim/DESIGN.md` §6);
//! * **cohort-bursts / exact-bursts** — One-fail Adaptive over ten
//!   adversarial bursts of `k/10` messages spaced `0.8·k` slots apart
//!   (even offsets, mostly-draining spacing);
//! * **cohort-poisson-capped** — the same heavy-Poisson oracle workload
//!   with **bounded-class mode** engaged (`max_live_cohorts = 64`): the
//!   live-class cap forces measured-divergence merges instead of letting
//!   one class per arrival burst accumulate. Its ratio to the paired
//!   **exact-poisson** row is the speed-up the saturation map relies on.
//!
//! A **session-saturated** row additionally drives `Session::dynamic` at
//! the saturation map's hottest corner (λ = 2 Poisson over a `k/2`-slot
//! horizon, bounded-class mode, livelock watchdog armed, live sketch read
//! at every pause) — the configuration of every `BENCH_06.json` phase-map
//! point, pinned here against throughput regressions.
//!
//! **Streaming-session** rows (the §9 session layer) drive the same engines
//! through `mac_sim::Session` in 2¹⁶-slot bursts, reading the live quantile
//! sketch at every pause, at `k = 10⁴ … 10^max_exp`:
//!
//! * **session-fair** — `Session::batched` running One-fail Adaptive; its
//!   ratio to the matching **fair** row is the streaming overhead (burst
//!   loop + live statistics instead of a latency vector);
//! * **session-cohort** — `Session::dynamic` running One-fail Adaptive on
//!   the ten-burst schedule shape of **cohort-bursts**;
//! * **sharded-2 / sharded-8** — `ShardedSession` on the same burst
//!   schedule hashed across 2 and 8 channels, scoped threads, merged
//!   sketches; throughput is per-channel slots (merged makespan) per second.
//!
//! The throughput figure is `makespan / wall_time` of a complete run — slots
//! simulated per second, best over the repetitions (the least-noise
//! estimator for a quantity bounded above by the hardware). The cohort
//! engine's speed-up over the exact path is the ratio of the paired rows.

use mac_bench::HarnessOptions;
use mac_channel::ArrivalModel;
use mac_prob::rng::Xoshiro256pp;
use mac_protocols::ProtocolKind;
use mac_sim::{
    CohortSimulator, ExactSimulator, FairSimulator, RunOptions, Session, SessionStatus,
    ShardedSession, StallConfig, StallPolicy, WindowSimulator,
};
use rand::SeedableRng;
use std::fmt::Write as _;
use std::time::Instant;

/// One measured point.
struct Point {
    simulator: &'static str,
    protocol: String,
    k: u64,
    slots: u64,
    best_seconds: f64,
    slots_per_sec: f64,
}

/// Runs `run` `reps` times (different seeds, so different makespans) and
/// returns the `(slots, seconds)` pair of the highest-throughput repetition —
/// a coherent measurement of one actual run, not a mix of the fastest wall
/// time with the last makespan. The minimum-repetitions policy lives in
/// `main` (which also reports it); this function trusts its input.
fn measure<F: FnMut(u64) -> u64>(reps: u64, mut run: F) -> (u64, f64) {
    let mut best: Option<(u64, f64)> = None;
    for rep in 0..reps {
        // Bench harness wall-clock timing: reported, never fed back into results.
        #[allow(clippy::disallowed_methods)]
        let started = Instant::now();
        let slots = run(rep);
        let seconds = started.elapsed().as_secs_f64().max(1e-12);
        let throughput = slots as f64 / seconds;
        if best.is_none_or(|(s, t)| throughput > s as f64 / t) {
            best = Some((slots, seconds));
        }
    }
    best.expect("measure requires reps >= 1")
}

/// Extracts one `"key": value` number from a snapshot result line.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts one `"key": "value"` string from a snapshot result line.
fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\": \"");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    Some(&rest[..rest.find('"')?])
}

/// Compares measured points against a committed baseline snapshot; returns
/// the number of rows that regressed by more than `tolerance`.
fn check_against_baseline(points: &[Point], baseline_path: &str, tolerance: f64) -> usize {
    let baseline = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
    let mut regressions = 0usize;
    let mut compared = 0usize;
    for line in baseline.lines() {
        let (Some(simulator), Some(k)) = (field_str(line, "simulator"), field_u64(line, "k"))
        else {
            continue;
        };
        let Some(rate) = field_u64(line, "slots_per_sec") else {
            continue;
        };
        let Some(point) = points.iter().find(|p| p.simulator == simulator && p.k == k) else {
            continue;
        };
        compared += 1;
        let floor = rate as f64 / tolerance;
        let status = if point.slots_per_sec < floor {
            regressions += 1;
            "REGRESSED"
        } else {
            "ok"
        };
        eprintln!(
            "{simulator:>6} k={k:<8} baseline {rate:>12} now {:>12.0}  [{status}]",
            point.slots_per_sec
        );
    }
    assert!(
        compared > 0,
        "no comparable rows between this run and {baseline_path}"
    );
    regressions
}

fn main() {
    // Split the regression-gate flags off before the shared parser sees the
    // rest (it rejects unknown flags by design).
    let mut check_path: Option<String> = None;
    let mut tolerance = 3.0f64;
    let mut passthrough: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => {
                check_path = Some(args.next().expect("--check requires a baseline path"));
            }
            "--check-tolerance" => {
                tolerance = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--check-tolerance requires a number");
            }
            _ => passthrough.push(arg),
        }
    }
    let options = HarnessOptions::parse(passthrough);
    let reps = options.reps.max(3);
    let fast_ks: Vec<u64> = (4..=options.max_exp.max(4)).map(|e| 10u64.pow(e)).collect();
    let exact_ks = [1_000u64, 10_000];

    eprintln!(
        "perf snapshot: fast engines at k = {fast_ks:?}, exact at k = {exact_ks:?}, \
         best of {reps} runs (seed {})",
        options.seed
    );

    let mut points: Vec<Point> = Vec::new();

    let fair_kind = ProtocolKind::OneFailAdaptive { delta: 2.72 };
    for &k in &fast_ks {
        let sim = FairSimulator::new(fair_kind.clone(), RunOptions::default());
        let (slots, secs) = measure(reps, |rep| {
            let result = sim.run(k, options.seed.wrapping_add(rep)).expect("valid");
            assert!(result.completed);
            result.makespan
        });
        points.push(Point {
            simulator: "fair",
            protocol: fair_kind.label(),
            k,
            slots,
            best_seconds: secs,
            slots_per_sec: slots as f64 / secs,
        });
    }

    let window_kind = ProtocolKind::ExpBackonBackoff { delta: 0.366 };
    for &k in &fast_ks {
        let sim = WindowSimulator::new(window_kind.clone(), RunOptions::default());
        let (slots, secs) = measure(reps, |rep| {
            let result = sim.run(k, options.seed.wrapping_add(rep)).expect("valid");
            assert!(result.completed);
            result.makespan
        });
        points.push(Point {
            simulator: "window",
            protocol: window_kind.label(),
            k,
            slots,
            best_seconds: secs,
            slots_per_sec: slots as f64 / secs,
        });
    }

    // Paper-scale window rows, measured regardless of --max-exp: the
    // k = 10⁷ batched instances are the paper's headline scale and the
    // window walk's dispatch crossovers were derived there, so the
    // regression gate pins them permanently (both window protocols; the
    // "window" series already carries Exp Back-on/Back-off at the fast
    // sizes, so only missing sizes are added to it).
    let paper_ks = [1_000_000u64, 10_000_000];
    let llbb_kind = ProtocolKind::LoglogIteratedBackoff { r: 2.0 };
    for &k in &paper_ks {
        if !fast_ks.contains(&k) {
            let sim = WindowSimulator::new(window_kind.clone(), RunOptions::default());
            let (slots, secs) = measure(reps, |rep| {
                let result = sim.run(k, options.seed.wrapping_add(rep)).expect("valid");
                assert!(result.completed);
                result.makespan
            });
            points.push(Point {
                simulator: "window",
                protocol: window_kind.label(),
                k,
                slots,
                best_seconds: secs,
                slots_per_sec: slots as f64 / secs,
            });
        }
        let sim = WindowSimulator::new(llbb_kind.clone(), RunOptions::default());
        let (slots, secs) = measure(reps, |rep| {
            let result = sim.run(k, options.seed.wrapping_add(rep)).expect("valid");
            assert!(result.completed);
            result.makespan
        });
        points.push(Point {
            simulator: "window-llbb",
            protocol: llbb_kind.label(),
            k,
            slots,
            best_seconds: secs,
            slots_per_sec: slots as f64 / secs,
        });
    }

    for &k in &exact_ks {
        let sim = ExactSimulator::new(fair_kind.clone(), RunOptions::default());
        let (slots, secs) = measure(reps, |rep| {
            let result = sim.run(k, options.seed.wrapping_add(rep)).expect("valid");
            assert!(result.completed);
            result.makespan
        });
        points.push(Point {
            simulator: "exact",
            protocol: fair_kind.label(),
            k,
            slots,
            best_seconds: secs,
            slots_per_sec: slots as f64 / secs,
        });
    }

    // Dynamic-arrival rows: cohort aggregate engine vs the exact path on
    // the same sampled schedule (paired rows; their slots/sec ratio is the
    // cohort engine's speed-up on the workload).
    let dynamic_workloads: Vec<(&'static str, &'static str, ProtocolKind, ArrivalModel)> = fast_ks
        .iter()
        .flat_map(|&k| {
            let burst = k / 10;
            vec![
                (
                    "cohort-poisson",
                    "exact-poisson",
                    ProtocolKind::KnownKOracle,
                    ArrivalModel::Poisson {
                        rate: 20.0,
                        horizon: k / 20,
                    },
                ),
                (
                    "cohort-bursts",
                    "exact-bursts",
                    ProtocolKind::OneFailAdaptive { delta: 2.72 },
                    ArrivalModel::Bursts {
                        bursts: (0..10).map(|i| (i * 8 * burst, burst)).collect(),
                    },
                ),
            ]
        })
        .collect();
    for (cohort_name, exact_name, kind, model) in dynamic_workloads {
        let k = (model.expected_messages() + 0.5) as u64;
        let schedule = model.sample(&mut Xoshiro256pp::seed_from_u64(options.seed));
        let sim = CohortSimulator::new(kind.clone(), RunOptions::default());
        let (slots, secs) = measure(reps, |rep| {
            let run = sim
                .run_schedule(&schedule, options.seed.wrapping_add(rep))
                .expect("valid");
            assert!(run.result.completed);
            run.result.makespan
        });
        points.push(Point {
            simulator: cohort_name,
            protocol: kind.label(),
            k,
            slots,
            best_seconds: secs,
            slots_per_sec: slots as f64 / secs,
        });
        let sim = ExactSimulator::new(kind.clone(), RunOptions::default());
        let (slots, secs) = measure(reps, |rep| {
            let run = sim
                .run_schedule(&schedule, options.seed.wrapping_add(rep))
                .expect("valid");
            assert!(run.result.completed);
            run.result.makespan
        });
        points.push(Point {
            simulator: exact_name,
            protocol: kind.label(),
            k,
            slots,
            best_seconds: secs,
            slots_per_sec: slots as f64 / secs,
        });
    }

    // Streaming-session rows: the same engines driven through the session
    // layer in bounded bursts with the live sketch read at every pause. The
    // session-fair / fair ratio (and session-cohort / cohort-bursts) is the
    // streaming overhead; the sharded rows measure the scoped-thread
    // multi-channel driver end to end, merged statistics included.
    let session_burst = 1u64 << 16;
    let ten_bursts = |k: u64| {
        let burst = k / 10;
        ArrivalModel::Bursts {
            bursts: (0..10).map(|i| (i * 8 * burst, burst)).collect(),
        }
    };
    for &k in &fast_ks {
        let (slots, secs) = measure(reps, |rep| {
            let mut session = Session::batched(
                &fair_kind,
                k,
                options.seed.wrapping_add(rep),
                &RunOptions::default(),
            )
            .expect("valid");
            while session.advance(session_burst).expect("advance") == SessionStatus::Paused {
                std::hint::black_box(session.live_stats().map(|s| s.quantile(0.95)));
            }
            let result = session.result();
            assert!(result.completed);
            result.makespan
        });
        points.push(Point {
            simulator: "session-fair",
            protocol: fair_kind.label(),
            k,
            slots,
            best_seconds: secs,
            slots_per_sec: slots as f64 / secs,
        });

        let model = ten_bursts(k);
        let (slots, secs) = measure(reps, |rep| {
            let mut session = Session::dynamic(
                &fair_kind,
                &model,
                options.seed.wrapping_add(rep),
                &RunOptions::default(),
            )
            .expect("valid");
            while session.advance(session_burst).expect("advance") == SessionStatus::Paused {
                std::hint::black_box(session.live_stats().map(|s| s.quantile(0.95)));
            }
            let result = session.result();
            assert!(result.completed);
            result.makespan
        });
        points.push(Point {
            simulator: "session-cohort",
            protocol: fair_kind.label(),
            k,
            slots,
            best_seconds: secs,
            slots_per_sec: slots as f64 / secs,
        });
    }
    for shards in [2u32, 8] {
        for &k in &fast_ks {
            let model = ten_bursts(k);
            let (slots, secs) = measure(reps, |rep| {
                let mut driver = ShardedSession::new(
                    &fair_kind,
                    &model,
                    options.seed.wrapping_add(rep),
                    &RunOptions::default(),
                    shards,
                )
                .expect("valid");
                driver.run_to_completion().expect("run");
                let result = driver.merged_result();
                assert!(result.completed);
                result.makespan
            });
            points.push(Point {
                simulator: if shards == 2 {
                    "sharded-2"
                } else {
                    "sharded-8"
                },
                protocol: fair_kind.label(),
                k,
                slots,
                best_seconds: secs,
                slots_per_sec: slots as f64 / secs,
            });
        }
    }

    // Bounded-class row: the heavy-Poisson oracle workload re-run with the
    // live-class cap engaged. Same sampled schedule as cohort-poisson, so
    // its ratio to exact-poisson is the bounded-mode speed-up.
    let oracle_kind = ProtocolKind::KnownKOracle;
    let capped_options = RunOptions {
        max_live_cohorts: 64,
        ..RunOptions::default()
    };
    for &k in &fast_ks {
        let model = ArrivalModel::Poisson {
            rate: 20.0,
            horizon: k / 20,
        };
        let schedule = model.sample(&mut Xoshiro256pp::seed_from_u64(options.seed));
        let sim = CohortSimulator::new(oracle_kind.clone(), capped_options.clone());
        let (slots, secs) = measure(reps, |rep| {
            let run = sim
                .run_schedule(&schedule, options.seed.wrapping_add(rep))
                .expect("valid");
            assert!(run.result.completed);
            assert!(run.peak_cohorts as u64 <= 64, "live-class cap violated");
            run.result.makespan
        });
        points.push(Point {
            simulator: "cohort-poisson-capped",
            protocol: oracle_kind.label(),
            k,
            slots,
            best_seconds: secs,
            slots_per_sec: slots as f64 / secs,
        });
    }

    // Saturated-session row: the exact configuration of a saturation-map
    // point (λ = 2 sustained, bounded-class mode, watchdog armed, sketch
    // read at every pause), measured end to end through the session layer.
    for &k in &fast_ks {
        let model = ArrivalModel::Poisson {
            rate: 2.0,
            horizon: k / 2,
        };
        let (slots, secs) = measure(reps, |rep| {
            let mut session = Session::dynamic(
                &oracle_kind,
                &model,
                options.seed.wrapping_add(rep),
                &capped_options,
            )
            .expect("valid");
            session.set_watchdog(Some(StallConfig::new(2_000, StallPolicy::Report)));
            while session.advance(session_burst).expect("advance") == SessionStatus::Paused {
                if session.stall().is_some() {
                    break;
                }
                std::hint::black_box(session.live_stats().map(|s| s.quantile(0.95)));
            }
            session.result().makespan
        });
        points.push(Point {
            simulator: "session-saturated",
            protocol: oracle_kind.label(),
            k,
            slots,
            best_seconds: secs,
            slots_per_sec: slots as f64 / secs,
        });
    }

    if let Some(baseline) = check_path {
        let regressions = check_against_baseline(&points, &baseline, tolerance);
        if regressions > 0 {
            eprintln!("{regressions} row(s) regressed more than {tolerance}x vs {baseline}");
            std::process::exit(1);
        }
        eprintln!("all rows within {tolerance}x of {baseline}");
        return;
    }

    // Hand-rolled JSON: the vendored serde stub has no serialisation backend,
    // and the format below is stable and diff-friendly on purpose.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema\": \"mac-bench/perf-snapshot/v1\",");
    let _ = writeln!(json, "  \"seed\": {},", options.seed);
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "  \"unit\": \"slots_per_sec\",");
    let _ = writeln!(json, "  \"results\": [");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 == points.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"simulator\": \"{}\", \"protocol\": \"{}\", \"k\": {}, \"slots\": {}, \
             \"best_seconds\": {:.6}, \"slots_per_sec\": {:.0}}}{comma}",
            p.simulator, p.protocol, p.k, p.slots, p.best_seconds, p.slots_per_sec
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");

    // Never clobber an existing snapshot: pick the next free number so the
    // committed history accumulates instead of being overwritten in place.
    let path = (1..=99)
        .map(|n| format!("BENCH_{n:02}.json"))
        .find(|p| !std::path::Path::new(p).exists())
        .expect("fewer than 99 snapshots");
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("{json}");
    eprintln!("wrote {path}");
}
