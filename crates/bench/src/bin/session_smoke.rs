//! Session smoke gate: checkpoint/resume bit-identity and bounded memory at
//! reduced paper scale, run by the CI `session-smoke` job.
//!
//! ```bash
//! cargo run -p mac-bench --release --bin session_smoke
//! # Options:
//! #   --slots N   target slot horizon (default 10_000_000)
//! #   --seed S    master seed (default 2011)
//! #   --rss-mb M  VmHWM ceiling in MiB (default 512)
//! ```
//!
//! Three assertions, all hard failures:
//!
//! 1. **Bit identity.** A 10⁷-slot dynamic session (One-fail Adaptive under
//!    sustained periodic-burst traffic) is paused mid-run, checkpointed
//!    through the byte codec, resumed in a fresh `Session`, and run to
//!    completion; its `RunResult` must equal the unbroken twin's
//!    field-for-field, and the streaming statistics must match to the bit
//!    (count, max, quantiles, rank-error ledger).
//! 2. **Bounded memory.** The latencies of ~5 × 10⁵ deliveries are held
//!    in the quantile sketch, not a vector; the process high-water mark
//!    (`VmHWM` from `/proc/self/status`) must stay under the ceiling.
//! 3. **Live statistics.** At every pause the sketch's proven rank-error
//!    ledger must stay under 2% of the observed count.

use mac_channel::ArrivalModel;
use mac_protocols::ProtocolKind;
use mac_sim::{Checkpoint, RunOptions, Session, SessionStatus};
use std::time::Instant;

fn parse_flag(args: &[String], flag: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

/// Peak resident set size in KiB from `/proc/self/status`, if available
/// (Linux only; the gate is skipped elsewhere).
fn vm_hwm_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let slots = parse_flag(&args, "--slots").unwrap_or(10_000_000);
    let seed = parse_flag(&args, "--seed").unwrap_or(2011);
    let rss_mb = parse_flag(&args, "--rss-mb").unwrap_or(512);

    // Sustained traffic sized to the horizon: a burst of 100 messages every
    // 2000 slots. One-fail Adaptive clears each batch in ≈ 2(δ+1)·100 ≈ 750
    // slots (Theorem 1), comfortably before the next burst lands, so the
    // cohort engine stays O(1) active cohorts for the whole horizon while
    // the run accumulates ~slots/20 delivery latencies — far more than a
    // latency *vector* path could hold under the RSS ceiling once horizons
    // reach 10⁹. (Sustained Poisson traffic is deliberately avoided here:
    // over long horizons One-fail Adaptive eventually draws an arrival
    // overlap it cannot clear — the parity trap of DESIGN.md §6 — and the
    // run stalls against the slot cap.)
    let kind = ProtocolKind::OneFailAdaptive { delta: 2.72 };
    let burst_every = 2_000u64;
    let model = ArrivalModel::Bursts {
        bursts: (0..slots / burst_every)
            .map(|i| (i * burst_every, 100))
            .collect(),
    };
    let options = RunOptions::default();

    // Bench harness wall-clock timing: reported, never fed back into results.
    #[allow(clippy::disallowed_methods)]
    let started = Instant::now();
    let mut unbroken = Session::dynamic(&kind, &model, seed, &options).unwrap();
    unbroken.run_to_completion().unwrap();
    let reference = unbroken.result();
    println!(
        "unbroken run: k = {}, delivered = {}, makespan = {}, {:.1}s",
        reference.k,
        reference.delivered,
        reference.makespan,
        started.elapsed().as_secs_f64()
    );
    assert!(
        reference.makespan >= slots - slots / 10,
        "the run must actually span the requested horizon"
    );

    // Interrupted twin: pause every ~1/5 of the horizon, round-trip the
    // checkpoint through bytes, resume in a fresh session.
    let mut session = Session::dynamic(&kind, &model, seed, &options).unwrap();
    let mut pauses = 0u32;
    while session.advance(slots / 5).unwrap() == SessionStatus::Paused {
        let bytes = session.checkpoint().unwrap().to_bytes();
        session = Session::resume(&Checkpoint::from_bytes(&bytes).unwrap()).unwrap();
        pauses += 1;
        let stats = session.live_stats().unwrap();
        if stats.count() > 0 {
            // Live-statistics certificate: the proven worst-case rank
            // error stays a small fraction of the stream.
            assert!(
                stats.rank_error_bound() * 50 <= stats.count(),
                "rank-error ledger {} exceeds 2% of count {}",
                stats.rank_error_bound(),
                stats.count()
            );
            println!(
                "pause {pauses}: slot {} (checkpoint {} bytes, p50 {}, p95 {}, ±{})",
                session.slot(),
                bytes.len(),
                stats.quantile(0.50),
                stats.quantile(0.95),
                stats.rank_error_bound()
            );
        }
    }
    assert!(
        pauses >= 4,
        "the horizon must be split across several pauses"
    );

    // Bit-for-bit diff of the resumed run against the unbroken twin.
    let resumed = session.result();
    assert_eq!(
        resumed, reference,
        "resumed RunResult differs from the unbroken run"
    );
    let a = unbroken.live_stats().unwrap();
    let b = session.live_stats().unwrap();
    assert_eq!(a.count(), b.count(), "streaming count diverged");
    assert_eq!(a.max(), b.max(), "streaming max diverged");
    assert_eq!(a.quantile(0.5), b.quantile(0.5), "p50 diverged");
    assert_eq!(a.quantile(0.95), b.quantile(0.95), "p95 diverged");
    assert_eq!(
        a.rank_error_bound(),
        b.rank_error_bound(),
        "rank-error ledger diverged"
    );
    println!(
        "resumed run is bit-identical across {pauses} checkpoint/resume round trips \
         ({} deliveries, mean latency {:.2}, p95 {})",
        b.count(),
        b.mean(),
        b.quantile(0.95)
    );

    // Memory gate: all latencies went through the sketch, so the high-water
    // mark must stay far below what a per-delivery vector would need.
    match vm_hwm_kib() {
        Some(kib) => {
            println!(
                "VmHWM: {:.1} MiB (ceiling {} MiB)",
                kib as f64 / 1024.0,
                rss_mb
            );
            assert!(
                kib <= rss_mb * 1024,
                "peak RSS {kib} KiB exceeds the {rss_mb} MiB ceiling"
            );
        }
        None => println!("VmHWM unavailable on this platform; memory gate skipped"),
    }
    println!(
        "session smoke OK in {:.1}s",
        started.elapsed().as_secs_f64()
    );
}
