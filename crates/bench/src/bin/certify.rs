//! Worst-case jamming certificates: the committed robustness table.
//!
//! ```bash
//! cargo run -p mac-bench --release --bin certify
//! # Options:
//! #   --seed S       master seed (default 2011)
//! #   --out PATH     write the table to PATH instead of stdout
//! #   --check PATH   regenerate and diff against a committed table;
//! #                  exit 1 on any mismatch (the CI certify-smoke gate)
//! ```
//!
//! Runs both tiers of the adversary strategy search
//! (`mac_sim::worst_case_exhaustive` / `mac_sim::worst_case_search`) over
//! the robustness line-up (One-fail Adaptive, Exp Back-on/Back-off,
//! Loglog-iterated Back-off, known-k oracle) at two jam budgets each, and
//! renders one deterministic markdown table per tier:
//!
//! * **tier (a)** — exhaustive game-tree certificates at small k: the worst
//!   makespan is a *proof* over all budget-B jamming strategies, and the jam
//!   slots are printed in full. On One-fail Adaptive the certified attacks
//!   land on a stride-2, single-parity comb — the AT/BT resonance,
//!   rediscovered by search rather than scripted (asserted by
//!   `tests/certificate_replay.rs`);
//! * **tier (b)** — budgeted beam-search certificates at k = 1000 on the
//!   fast engines: best-found attacks (no optimality claim), summarised by
//!   jam count, span and stride.
//!
//! Everything is derived from the master seed, so `--check` against the
//! committed `CERTIFICATES.md` is an exact string comparison. The cell
//! generators live in [`mac_bench::certify`] so the integration tests can
//! replay the committed certificates.

use mac_bench::certify::{
    render, tier_a_certificates, tier_b_certificates, DEFAULT_SEED, TIER_A_BUDGETS, TIER_A_K,
    TIER_B_BUDGETS, TIER_B_K,
};

fn main() {
    let mut seed = DEFAULT_SEED;
    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed requires an integer");
            }
            "--out" => out_path = Some(args.next().expect("--out requires a path")),
            "--check" => check_path = Some(args.next().expect("--check requires a path")),
            other => panic!("unknown option {other} (expected --seed/--out/--check)"),
        }
    }

    eprintln!(
        "certify: tier (a) exhaustive at k = {TIER_A_K}, tier (b) search at k = {TIER_B_K}, budgets {TIER_A_BUDGETS:?}/{TIER_B_BUDGETS:?}, seed {seed}"
    );
    let tier_a = tier_a_certificates(seed);
    for (certificate, stats) in &tier_a {
        eprintln!(
            "  [a] {} B={}: worst {} / clean {} ({} leaves, {} memo hits)",
            certificate.protocol,
            certificate.budget,
            certificate.makespan,
            certificate.clean_makespan,
            stats.leaves,
            stats.memo_hits
        );
    }
    let tier_b = tier_b_certificates(seed);
    for (certificate, cost) in &tier_b {
        eprintln!(
            "  [b] {} B={}: worst {} / clean {} ({} evaluations, {} rounds)",
            certificate.protocol,
            certificate.budget,
            certificate.makespan,
            certificate.clean_makespan,
            cost.evaluations,
            cost.rounds
        );
    }
    let rendered = render(seed, &tier_a, &tier_b);

    if let Some(path) = check_path {
        let committed =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
        if committed == rendered {
            eprintln!("certify: {path} is up to date");
        } else {
            eprintln!("certify: {path} DIFFERS from the regenerated table;");
            eprintln!(
                "regenerate with: cargo run -p mac-bench --release --bin certify -- --out {path}"
            );
            print!("{rendered}");
            std::process::exit(1);
        }
    } else if let Some(path) = out_path {
        std::fs::write(&path, &rendered).unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!("certify: wrote {path}");
    } else {
        print!("{rendered}");
    }
}
