//! Regenerates **Table 1** of the paper: the ratio `steps / k` as a function
//! of the number of stations `k`, for the five evaluated protocol
//! configurations, together with the analytical constants of the "Analysis"
//! column.
//!
//! ```bash
//! cargo run -p mac-bench --release --bin table1            # k up to 10^5
//! cargo run -p mac-bench --release --bin table1 -- --full  # k up to 10^7, as in the paper
//! ```

use mac_bench::HarnessOptions;
use mac_sim::report::{table1_markdown, to_csv};

fn main() {
    let options = HarnessOptions::parse(std::env::args().skip(1));
    let experiment = options.experiment();
    eprintln!(
        "table 1: {} protocols x {} sizes x {} replications (master seed {})",
        experiment.protocols.len(),
        experiment.ks.len(),
        experiment.replications,
        experiment.master_seed
    );

    // Bench harness wall-clock timing: reported, never fed back into results.
    #[allow(clippy::disallowed_methods)]
    let started = std::time::Instant::now();
    let results = experiment.run().expect("paper parameters are valid");
    eprintln!("sweep finished in {:.1?}", started.elapsed());

    println!("Table 1 — ratio steps/nodes as a function of the number of nodes k");
    println!(
        "(measured: mean over {} replications; Analysis: constants from the paper's theorems)",
        results.replications
    );
    println!();
    println!("{}", table1_markdown(&results));
    println!();
    println!("--- raw per-cell statistics (CSV) ---");
    print!("{}", to_csv(&results));
}
