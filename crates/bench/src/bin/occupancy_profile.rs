//! Component-cost profile of the occupancy engine at paper scale: times each
//! phase (RNG draw, histogram increment, clear strategy, partitioned
//! counting) in isolation so that regressions can be attributed to a phase.
//! Development tool; not part of the perf-tracking artefacts.

use mac_prob::rng::Xoshiro256pp;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

fn time<F: FnMut()>(label: &str, reps: u32, mut f: F) {
    // Warm-up.
    f();
    // Bench harness wall-clock timing: reported, never fed back into results.
    #[allow(clippy::disallowed_methods)]
    let started = Instant::now();
    for _ in 0..reps {
        f();
    }
    println!(
        "{label}: {:.2} ms",
        started.elapsed().as_secs_f64() * 1e3 / f64::from(reps)
    );
}

fn main() {
    const M: usize = 1_000_000;
    let w = M as u64;
    let mut rng = Xoshiro256pp::seed_from_u64(1);
    let mut assignments = vec![0u64; M];
    let mut counts = vec![0u32; M];
    let mut partitioned = vec![0u64; M];

    time("draw only", 10, || {
        let mut acc = 0u64;
        for _ in 0..M {
            acc ^= rng.gen_range(0..w);
        }
        black_box(acc);
    });

    time("draw + store", 10, || {
        for slot in assignments.iter_mut() {
            *slot = rng.gen_range(0..w);
        }
        black_box(&assignments);
    });

    time("direct histogram (random access)", 10, || {
        for &a in &assignments {
            counts[a as usize] += 1;
        }
        black_box(&counts);
        for &a in &assignments {
            counts[a as usize] = 0;
        }
    });

    time("clear via memset", 10, || {
        counts.fill(0);
        black_box(&counts);
    });

    const BUCKET_BITS: u32 = 15;
    let buckets = (M >> BUCKET_BITS) + 1;
    let mut bucket_counts = vec![0usize; buckets + 1];
    // Hoisted out of the timed region: the phase comparison must not charge
    // the partitioned strategy for an allocation the direct one doesn't make.
    let mut cursors = vec![0usize; buckets];
    time("partitioned histogram", 10, || {
        bucket_counts[..=buckets].fill(0);
        for &a in &assignments {
            bucket_counts[(a >> BUCKET_BITS) as usize + 1] += 1;
        }
        for b in 0..buckets {
            bucket_counts[b + 1] += bucket_counts[b];
        }
        cursors.copy_from_slice(&bucket_counts[..buckets]);
        for &a in &assignments {
            let b = (a >> BUCKET_BITS) as usize;
            partitioned[cursors[b]] = a;
            cursors[b] += 1;
        }
        let mut singles = 0u64;
        for b in 0..buckets {
            let (lo, hi) = (bucket_counts[b], bucket_counts[b + 1]);
            for &a in &partitioned[lo..hi] {
                counts[a as usize] += 1;
            }
            for &a in &partitioned[lo..hi] {
                if counts[a as usize] == 1 {
                    singles += 1;
                }
            }
            let base = b << BUCKET_BITS;
            let end = (base + (1 << BUCKET_BITS)).min(M);
            counts[base..end].fill(0);
        }
        black_box(singles);
    });
}
