//! Saturation map: throughput/latency phase diagrams of the dynamic
//! protocols under sustained Poisson arrivals, plus the measured stability
//! boundary per protocol. See `mac_bench::saturation` for the harness.
//!
//! ```bash
//! # Regenerate the committed artefacts from the repository root (writes
//! # the next free BENCH_NN.json plus PHASE.md; ~10⁶ cumulative arrivals
//! # at the saturated corner):
//! cargo run -p mac-bench --release --bin saturation_map
//! # CI gate: re-run the reduced smoke grid and compare *exactly* against
//! # the committed snapshot (runs are deterministic per seed):
//! cargo run -p mac-bench --release --bin saturation_map -- --check BENCH_06.json
//! ```

use mac_bench::saturation::{
    check_against, full_grid, parse_committed, reduced_grid, render_json, render_phase_md,
    run_grid, stability_boundary,
};

fn main() {
    let mut check_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => {
                check_path = Some(args.next().expect("--check requires a snapshot path"));
            }
            other => panic!("unknown flag {other} (supported: --check <BENCH_NN.json>)"),
        }
    }

    if let Some(path) = check_path {
        let committed = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read committed snapshot {path}: {e}"));
        let rows = parse_committed(&committed);
        let config = reduced_grid();
        eprintln!(
            "saturation smoke: λ = {:?} over a {}-slot horizon vs {path}",
            config.lambdas, config.horizon
        );
        let points = run_grid(&config);
        let mismatches = check_against(&points, &rows);
        if mismatches.is_empty() {
            eprintln!("all {} smoke points match the committed rows", points.len());
            return;
        }
        for m in &mismatches {
            eprintln!("MISMATCH: {m}");
        }
        std::process::exit(1);
    }

    let config = full_grid();
    eprintln!(
        "saturation map: λ = {:?} over a {}-slot horizon (cap {}, window {})",
        config.lambdas, config.horizon, config.cap, config.window
    );
    let mut points = run_grid(&config);
    for kind in mac_bench::saturation::lineup() {
        let label = kind.label();
        match stability_boundary(&points, &label) {
            Some(boundary) => eprintln!("{label}: stability boundary λ* = {boundary}"),
            None => eprintln!("{label}: saturated at every charted rate"),
        }
    }
    // The reduced smoke rows ride along in the same snapshot so the CI
    // gate has exact expectations to compare against.
    points.extend(run_grid(&reduced_grid()));

    let json = render_json(&points, &config);
    let path = (1..=99)
        .map(|n| format!("BENCH_{n:02}.json"))
        .find(|p| !std::path::Path::new(p).exists())
        .expect("fewer than 99 snapshots");
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    eprintln!("wrote {path}");

    let phase = render_phase_md(&points, &config);
    std::fs::write("PHASE.md", &phase).unwrap_or_else(|e| panic!("write PHASE.md: {e}"));
    eprintln!("wrote PHASE.md");
}
