//! Regenerates **Figure 1** of the paper: the average number of slots needed
//! to solve static k-selection, as a function of the number of stations `k`,
//! for the five evaluated protocol configurations (10 replications per point,
//! as in the paper).
//!
//! ```bash
//! # default: k up to 10^5 (finishes in seconds)
//! cargo run -p mac-bench --release --bin figure1
//! # the paper-scale sweep up to 10^7 (takes minutes)
//! cargo run -p mac-bench --release --bin figure1 -- --full
//! ```
//!
//! Output: a gnuplot-ready block per protocol (`k  mean_steps`) followed by
//! the full CSV (per-cell statistics). Plot with, e.g.:
//! `gnuplot> set logscale xy; plot for [i=0:4] 'figure1.dat' index i with linespoints`.

use mac_bench::HarnessOptions;
use mac_sim::report::{figure1_series, to_csv};

fn main() {
    let options = HarnessOptions::parse(std::env::args().skip(1));
    let experiment = options.experiment();
    eprintln!(
        "figure 1: {} protocols x {} sizes x {} replications (master seed {})",
        experiment.protocols.len(),
        experiment.ks.len(),
        experiment.replications,
        experiment.master_seed
    );

    // Bench harness wall-clock timing: reported, never fed back into results.
    #[allow(clippy::disallowed_methods)]
    let started = std::time::Instant::now();
    let results = experiment.run().expect("paper parameters are valid");
    eprintln!("sweep finished in {:.1?}", started.elapsed());

    println!("# Figure 1 — average steps to solve static k-selection, per number of stations k");
    println!(
        "# (paper: Fernandez Anta, Mosteiro, Munoz; PODC 2011. 10-run averages, log-log axes.)"
    );
    println!();
    println!("{}", figure1_series(&results));
    println!("# --- raw per-cell statistics (CSV) ---");
    print!("{}", to_csv(&results));
}
