//! Ablation A1/A2 (extension beyond the paper): sensitivity of the two new
//! protocols to their δ parameter.
//!
//! One-fail Adaptive admits `e < δ ≤ 2.9906` (Theorem 1) and the paper
//! simulates δ = 2.72; Exp Back-on/Back-off admits `0 < δ < 1/e` (Theorem 2)
//! and the paper simulates δ = 0.366. This harness sweeps both ranges and
//! prints measured ratio vs. the analytical factor, at three instance sizes.
//!
//! ```bash
//! cargo run -p mac-bench --release --bin ablation_delta
//! ```

use mac_bench::HarnessOptions;
use mac_protocols::{analysis, ProtocolKind};
use mac_sim::report::to_csv;
use mac_sim::{EngineChoice, Experiment, RunOptions};

fn main() {
    let options = HarnessOptions::parse(std::env::args().skip(1));
    let ks = vec![1_000, 10_000, 100_000];

    let ofa_deltas = [2.72, 2.75, 2.80, 2.85, 2.90, 2.95, 2.99];
    let ebb_deltas = [0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.366];

    let mut protocols = Vec::new();
    for &delta in &ofa_deltas {
        protocols.push(ProtocolKind::OneFailAdaptive { delta });
    }
    for &delta in &ebb_deltas {
        protocols.push(ProtocolKind::ExpBackonBackoff { delta });
    }

    let experiment = Experiment {
        protocols,
        ks: ks.clone(),
        replications: options.reps.min(5),
        master_seed: options.seed,
        options: RunOptions::default(),
        engine: EngineChoice::Fast,
        threads: 0,
    };
    let results = experiment.run().expect("all sweep parameters are valid");

    println!("Ablation: One-fail Adaptive delta sweep (analysis factor 2(delta+1))\n");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12}",
        "delta", "k=1e3", "k=1e4", "k=1e5", "analysis"
    );
    for &delta in &ofa_deltas {
        let kind = ProtocolKind::OneFailAdaptive { delta };
        let row: Vec<f64> = ks
            .iter()
            .map(|&k| results.cell_for(&kind, k).expect("cell exists").ratio.mean)
            .collect();
        println!(
            "{delta:>8.2} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
            row[0],
            row[1],
            row[2],
            analysis::ofa_linear_factor(delta).expect("in range")
        );
    }

    println!("\nAblation: Exp Back-on/Back-off delta sweep (analysis factor 4(1+1/delta))\n");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12}",
        "delta", "k=1e3", "k=1e4", "k=1e5", "analysis"
    );
    for &delta in &ebb_deltas {
        let kind = ProtocolKind::ExpBackonBackoff { delta };
        let row: Vec<f64> = ks
            .iter()
            .map(|&k| results.cell_for(&kind, k).expect("cell exists").ratio.mean)
            .collect();
        println!(
            "{delta:>8.3} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
            row[0],
            row[1],
            row[2],
            analysis::ebb_linear_factor(delta).expect("in range")
        );
    }

    println!("\n--- raw per-cell statistics (CSV) ---");
    print!("{}", to_csv(&results));
}
