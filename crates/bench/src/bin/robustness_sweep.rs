//! Robustness sweep: protocol behaviour under adversarial channels.
//!
//! ```bash
//! cargo run -p mac-bench --release --bin robustness_sweep
//! # Options (shared HarnessOptions parser):
//! #   --seed S     master seed (default 2011)
//! #   --max-exp N  instance size is k = 10^N (default 5)
//! #   --reps R     replications per cell (default 10)
//! ```
//!
//! The sweep runs the robustness line-up (One-fail Adaptive, Exp
//! Back-on/Back-off, Loglog-iterated Back-off, and the known-k oracle)
//! against a grid of adversary models — stochastic noise, periodic and
//! scheduled oblivious jamming, and budgeted reactive jammers — and renders
//! one markdown table of mean makespan ratios (slots per message) and one
//! of delivery outcomes. All seeds are derived from the master seed, so the
//! output is fully deterministic.
//!
//! Three qualitative findings the table makes visible:
//!
//! * jamming never *decreases* a protocol's makespan (asserted by the
//!   integration test `tests/adversary_robustness.rs`), and under
//!   non-resonant jamming the protocols degrade gracefully rather than
//!   collapsing;
//! * a reactive jammer's *target* matters more than its budget: the same
//!   budget spent on near-success slots visibly stretches the run, while a
//!   jammer that triggers on contended slots wastes its energy on slots
//!   that were already collisions;
//! * oblivious jamming that *resonates* with a protocol's deterministic
//!   structure is qualitatively worse than its jam rate suggests: the
//!   period-4 jammer aligns with One-fail Adaptive's AT/BT step parity and
//!   can push it to the slot cap (a period-2, phase-0 jammer blocks it
//!   outright), while the window protocols — whose slot choice inside each
//!   window is uniformly random — only lose the jammed fraction of their
//!   throughput.
//!
//! After the fixed-script grid, a final table asks the sharper question the
//! scripts can't: *how bad can it get* under a jam budget? For each protocol
//! it reports the worst makespan the adversary strategy search
//! ([`mac_sim::worst_case_search`]) finds under two budgets, against the
//! clean baseline of the same seed. These are best-found bounds (tier (b)
//! of the search); the exhaustively *certified* small-k table lives in
//! `CERTIFICATES.md` (the `certify` binary).

use mac_bench::HarnessOptions;
use mac_prob::rng::derive_seed;
use mac_prob::stats::StreamingStats;
use mac_protocols::ProtocolKind;
use mac_sim::{
    simulate_with_options, worst_case_search, AdversaryModel, AdversaryScenario, JamTrigger,
    RunOptions,
};
use std::fmt::Write as _;

/// The adversary grid of the sweep, scaled to the instance size `k`. The
/// budgeted jammers get a budget of `k/4` destroyed-or-wasted jams; the
/// scheduled jammer blacks out two mid-run windows, `[k/2, k)` and
/// `[2k, 2.5k)`, where every protocol in the line-up is actually delivering
/// (a blackout of the *first* slots is free for the adaptive protocols —
/// early slots are all collisions anyway).
fn adversary_grid(k: u64) -> Vec<AdversaryModel> {
    vec![
        AdversaryModel::None,
        AdversaryModel::StochasticNoise { p: 0.1 },
        AdversaryModel::PeriodicJam {
            period: 4,
            burst: 1,
            phase: 0,
        },
        AdversaryModel::ScheduledJam {
            bursts: vec![(k / 2, k / 2), (2 * k, k / 2)],
        },
        AdversaryModel::BudgetedReactiveJam {
            budget: k / 4,
            trigger: JamTrigger::NearSuccess,
        },
        AdversaryModel::BudgetedReactiveJam {
            budget: k / 4,
            trigger: JamTrigger::Contended,
        },
    ]
}

/// One aggregated (adversary, protocol) cell.
struct Cell {
    mean_ratio: f64,
    delivery_fraction: f64,
    mean_jammed: f64,
}

/// Runs the whole grid; cells are indexed `[adversary][protocol]`.
fn run_grid(
    adversaries: &[AdversaryModel],
    protocols: &[ProtocolKind],
    k: u64,
    reps: u64,
    master_seed: u64,
) -> Vec<Vec<Cell>> {
    adversaries
        .iter()
        .map(|adversary| {
            protocols
                .iter()
                .enumerate()
                .map(|(pi, kind)| {
                    let options =
                        RunOptions::adversarial(AdversaryScenario::jamming(adversary.clone()));
                    let mut ratios = StreamingStats::new();
                    let mut delivered = StreamingStats::new();
                    let mut jammed = StreamingStats::new();
                    for rep in 0..reps {
                        // Seeds are shared across adversary rows (they
                        // depend only on protocol and replication), so every
                        // row faces the same clean-channel trajectories: the
                        // comparison against row 0 is paired, not
                        // noise-vs-noise.
                        let seed = derive_seed(master_seed, &[pi as u64, rep]);
                        let result = simulate_with_options(kind, k, seed, &options)
                            .expect("sweep configurations are valid");
                        ratios.push(result.ratio());
                        delivered.push(result.delivered as f64 / k as f64);
                        jammed.push(result.jammed_deliveries as f64);
                    }
                    Cell {
                        mean_ratio: ratios.mean(),
                        delivery_fraction: delivered.mean(),
                        mean_jammed: jammed.mean(),
                    }
                })
                .collect()
        })
        .collect()
}

/// Renders the two markdown tables for an executed grid.
fn render_markdown(
    adversaries: &[AdversaryModel],
    protocols: &[ProtocolKind],
    cells: &[Vec<Cell>],
) -> String {
    let mut out = String::new();
    let header = |out: &mut String, caption: &str| {
        writeln!(out, "### {caption}\n").expect("writing to a String cannot fail");
        let mut line = String::from("| adversary |");
        for kind in protocols {
            write!(line, " {} |", kind.label()).expect("writing to a String cannot fail");
        }
        writeln!(out, "{line}").expect("writing to a String cannot fail");
        let mut rule = String::from("|---|");
        for _ in protocols {
            rule.push_str("---|");
        }
        writeln!(out, "{rule}").expect("writing to a String cannot fail");
    };

    header(&mut out, "Mean slots per message (makespan / k)");
    for (ai, adversary) in adversaries.iter().enumerate() {
        write!(out, "| {} |", adversary.label()).expect("writing to a String cannot fail");
        for cell in &cells[ai] {
            write!(out, " {:.2} |", cell.mean_ratio).expect("writing to a String cannot fail");
        }
        out.push('\n');
    }
    out.push('\n');

    header(&mut out, "Delivery ratio and jammed deliveries per run");
    for (ai, adversary) in adversaries.iter().enumerate() {
        write!(out, "| {} |", adversary.label()).expect("writing to a String cannot fail");
        for cell in &cells[ai] {
            write!(
                out,
                " {:.1}% ({:.0} jammed) |",
                100.0 * cell.delivery_fraction,
                cell.mean_jammed
            )
            .expect("writing to a String cannot fail");
        }
        out.push('\n');
    }
    out
}

/// The jam budgets of the worst-found table, scaled to the instance size.
fn search_budgets(k: u64) -> [u64; 2] {
    [(k / 10).max(1), (k / 4).max(2)]
}

/// Runs the budgeted strategy search for every protocol and renders the
/// "worst found under budget B vs clean baseline" table.
fn render_worst_found(protocols: &[ProtocolKind], k: u64, master_seed: u64) -> String {
    let options = RunOptions::default();
    let mut out = String::new();
    writeln!(
        out,
        "### Worst found under a jam budget (beam search, best-found bounds)\n"
    )
    .expect("writing to a String cannot fail");
    writeln!(
        out,
        "| protocol | budget | worst | clean | worst/clean | jams used |"
    )
    .expect("writing to a String cannot fail");
    writeln!(out, "|---|---|---|---|---|---|").expect("writing to a String cannot fail");
    for (pi, kind) in protocols.iter().enumerate() {
        for budget in search_budgets(k) {
            let seed = derive_seed(master_seed, &[u64::MAX, pi as u64, budget]);
            let (certificate, _) = worst_case_search(kind, k, budget, seed, &options, 4, 6)
                .expect("sweep configurations are valid");
            writeln!(
                out,
                "| {} | {} | {} | {} | {:.3} | {} |",
                certificate.protocol,
                certificate.budget,
                certificate.makespan,
                certificate.clean_makespan,
                certificate.ratio(),
                certificate.jam_slots.len(),
            )
            .expect("writing to a String cannot fail");
        }
    }
    out
}

fn main() {
    let options = HarnessOptions::parse(std::env::args().skip(1));
    let k = 10u64.pow(options.max_exp);
    let reps = options.reps.max(1);
    let protocols = ProtocolKind::robust_lineup();
    let adversaries = adversary_grid(k);

    eprintln!(
        "robustness sweep: k = {k}, {} protocols x {} adversaries, {reps} reps (seed {})",
        protocols.len(),
        adversaries.len(),
        options.seed
    );

    let cells = run_grid(&adversaries, &protocols, k, reps, options.seed);
    print!("{}", render_markdown(&adversaries, &protocols, &cells));
    println!();
    print!("{}", render_worst_found(&protocols, k, options.seed));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_deterministic_and_jamming_is_never_free() {
        let protocols = ProtocolKind::robust_lineup();
        let adversaries = adversary_grid(400);
        let a = run_grid(&adversaries, &protocols, 400, 3, 7);
        let b = run_grid(&adversaries, &protocols, 400, 3, 7);
        let render = render_markdown(&adversaries, &protocols, &a);
        assert_eq!(render, render_markdown(&adversaries, &protocols, &b));
        // Row 0 is the clean channel: every jamming row must be at least as
        // slow for every protocol.
        for (ai, row) in a.iter().enumerate().skip(1) {
            for (pi, cell) in row.iter().enumerate() {
                assert!(
                    cell.mean_ratio >= a[0][pi].mean_ratio,
                    "{} under {} beat the clean channel",
                    protocols[pi].label(),
                    adversaries[ai].label()
                );
            }
        }
        // The table covers the acceptance grid: >= 3 adversary models and
        // >= 3 protocols.
        assert!(adversaries.len() >= 4 && protocols.len() >= 3);
        assert!(render.contains("| clean channel |"));
    }

    #[test]
    fn worst_found_table_covers_every_protocol_at_two_budgets() {
        let protocols = ProtocolKind::robust_lineup();
        let table = render_worst_found(&protocols, 200, 7);
        assert_eq!(table, render_worst_found(&protocols, 200, 7));
        for kind in &protocols {
            assert!(table.contains(&format!("| {} |", kind.label())), "{table}");
        }
        // One row per (protocol, budget) plus caption, header and rule.
        assert_eq!(table.lines().count(), 4 + protocols.len() * 2);
    }
}
