//! Chaos smoke gate: fixed-seed fault injection against the session
//! layer, run by the CI `chaos-smoke` job.
//!
//! ```bash
//! cargo run -p mac-bench --release --bin chaos_smoke
//! # Options:
//! #   --seed S   master seed (default 2011)
//! #   --k N      batched message count (default 20_000)
//! ```
//!
//! Four assertions, all hard failures:
//!
//! 1. **Crash + corruption recovery is bit-identical.** A batched run is
//!    driven through a durable [`CheckpointStore`] and hit with a
//!    mid-run crash, a crash with the newest stored generation
//!    bit-flipped, and a crash with the newest generation truncated. The
//!    recovered `RunResult` and latency sketch must equal the unbroken
//!    twin's field-for-field and bit-for-bit; the corrupted generations
//!    must have been detected and skipped (last-good fallback), never
//!    decoded.
//! 2. **A shard kill is survived bit-identically.** A supervised sharded
//!    run has one shard's thread killed mid-flight; the retry from the
//!    shard's last good checkpoint must converge to the unbroken fleet's
//!    merged result and sketch.
//! 3. **Quarantine degrades gracefully.** With zero retries the killed
//!    shard is quarantined; the surviving shards must finish, and the
//!    partial result must name the quarantined shard.
//! 4. **The OFA parity livelock is detected, not timed out.** The
//!    DESIGN.md §6 two-cohort deadlock must be flagged by the watchdog
//!    within two windows instead of burning the slot cap.

use mac_channel::ArrivalModel;
use mac_protocols::ProtocolKind;
use mac_sim::faults::{run_batched_chaos, scratch_dir, CorruptionKind, CrashPoint, FaultPlan};
use mac_sim::{
    simulate, RunOptions, Session, SessionError, ShardSupervision, ShardedSession, StallConfig,
    StallPolicy,
};
use std::time::Instant;

fn parse_flag(args: &[String], flag: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed = parse_flag(&args, "--seed").unwrap_or(2011);
    let k = parse_flag(&args, "--k").unwrap_or(20_000);
    let kind = ProtocolKind::OneFailAdaptive { delta: 2.72 };
    let options = RunOptions::default();
    // Bench harness wall-clock timing: reported, never fed back into results.
    #[allow(clippy::disallowed_methods)]
    let started = Instant::now();

    // 1. Crash + corruption recovery against the durable store.
    let twin = simulate(&kind, k, seed).expect("twin run");
    let mut twin_session = Session::batched(&kind, k, seed, &options).expect("twin session");
    twin_session.run_to_completion().expect("twin completes");
    let twin_p50 = twin_session.live_stats().map(|s| s.quantile(0.5));
    let mid = twin.makespan / 2;
    let plan = FaultPlan {
        seed,
        crashes: vec![
            CrashPoint {
                at_slot: twin.makespan / 4,
                corrupt: None,
            },
            CrashPoint {
                at_slot: mid,
                corrupt: Some(CorruptionKind::FlipByte),
            },
            CrashPoint {
                at_slot: mid + twin.makespan / 4,
                corrupt: Some(CorruptionKind::Truncate),
            },
        ],
        shard_kills: vec![],
    };
    let dir = scratch_dir("chaos-smoke");
    let report = run_batched_chaos(
        &kind,
        k,
        seed,
        &options,
        &plan,
        &dir,
        (twin.makespan / 16).max(1),
        None,
    )
    .expect("chaos run recovers");
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(report.crashes_fired, 3, "all three crashes must fire");
    assert!(
        report.corrupt_generations_skipped >= 2,
        "both corrupted generations must be detected and skipped, got {}",
        report.corrupt_generations_skipped
    );
    assert_eq!(
        report.result, twin,
        "recovered result must be bit-identical"
    );
    assert_eq!(report.p50_latency, twin_p50, "recovered sketch too");
    println!(
        "chaos-smoke[1] OK: 3 crashes, {} corrupt generations skipped, {} slots replayed, result bit-identical",
        report.corrupt_generations_skipped, report.slots_replayed
    );

    // 2. Supervised shard kill converges to the unbroken fleet.
    let model = ArrivalModel::Bursts {
        bursts: vec![(0, 200), (1_000, 200), (8_000, 100)],
    };
    let mut fleet_twin = ShardedSession::new(&kind, &model, seed, &options, 4).expect("fleet twin");
    fleet_twin
        .run_to_completion()
        .expect("fleet twin completes");
    let fleet_result = fleet_twin.merged_result();
    let fleet_stats = fleet_twin.merged_stats();

    let mut fleet = ShardedSession::new(&kind, &model, seed, &options, 4).expect("fleet");
    fleet.set_supervision(Some(ShardSupervision::default()));
    fleet.arm_shard_kill(2, Some(600));
    fleet
        .run_to_completion()
        .expect("supervised fleet completes");
    assert_eq!(fleet.health()[2].failures, 1, "the kill fired once");
    assert!(fleet.quarantined_shards().is_empty());
    assert_eq!(
        fleet.merged_result(),
        fleet_result,
        "supervised recovery must be bit-identical"
    );
    let merged = fleet.merged_stats();
    assert_eq!(merged.count(), fleet_stats.count());
    assert_eq!(merged.quantile(0.5), fleet_stats.quantile(0.5));
    println!("chaos-smoke[2] OK: shard 2 killed, retried from checkpoint, fleet bit-identical");

    // 3. Quarantine names the shard and degrades to a partial result.
    let mut fleet = ShardedSession::new(&kind, &model, seed, &options, 4).expect("fleet");
    fleet.set_supervision(Some(ShardSupervision::new(0)));
    fleet.arm_shard_kill(1, Some(600));
    fleet
        .run_to_completion()
        .expect("quarantine still finishes");
    assert_eq!(fleet.quarantined_shards(), vec![1]);
    let partial = fleet.merged_result();
    assert!(!partial.completed, "quarantine means a partial result");
    assert!(partial.delivered > 0, "survivors still deliver");
    println!(
        "chaos-smoke[3] OK: shard 1 quarantined, {} of {} messages still delivered",
        partial.delivered, partial.k
    );

    // 4. The OFA parity livelock is detected within a bounded window.
    let deadlock = ArrivalModel::Bursts {
        bursts: vec![(0, 40), (1, 40)],
    };
    let stall_options = RunOptions {
        slot_cap_per_message: 100,
        min_slot_cap: 50_000,
        ..RunOptions::default()
    };
    let window = 2_000u64;
    let mut session =
        Session::dynamic(&kind, &deadlock, seed, &stall_options).expect("deadlock session");
    session.set_watchdog(Some(StallConfig::new(window, StallPolicy::Abort)));
    match session.run_to_completion() {
        Err(SessionError::Stalled(stall)) => {
            assert!(
                stall.detected_at_slot <= stall.last_progress_slot + 2 * window,
                "detection must land within two windows: {stall}"
            );
            println!("chaos-smoke[4] OK: parity deadlock detected — {stall}");
        }
        other => panic!("the parity deadlock must be detected as a stall, got {other:?}"),
    }

    println!(
        "chaos-smoke PASS (seed {seed}, k {k}) in {:.2}s",
        started.elapsed().as_secs_f64()
    );
}
