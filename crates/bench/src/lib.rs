//! # mac-bench — evaluation harness for the paper's figures and tables
//!
//! This crate hosts the binaries that regenerate the evaluation artefacts of
//! the paper (run them with `--release`; the full paper-scale sweep to
//! `k = 10⁷` is opt-in because it takes minutes):
//!
//! * `cargo run -p mac-bench --release --bin figure1` — Figure 1: average
//!   number of slots to solve static k-selection vs. `k`, one series per
//!   protocol (gnuplot-ready blocks + CSV);
//! * `cargo run -p mac-bench --release --bin table1` — Table 1: the ratio
//!   slots/k per protocol and `k`, with the paper's "Analysis" column;
//! * `cargo run -p mac-bench --release --bin ablation_delta` — sensitivity of
//!   both new protocols to their δ parameter (extension experiment);
//! * `cargo run -p mac-bench --release --bin ablation_backoff` — growth-factor
//!   sweep for the monotone back-off baselines (extension experiment).
//!
//! Criterion micro-benchmarks (`cargo bench -p mac-bench`) measure the wall
//! time of the simulators themselves (`sim_throughput`, including the
//! naive-vs-counts-only occupancy comparison) and of a full simulated run per
//! protocol (`protocol_makespan`), which is what bounds how far the paper
//! sweep can be pushed.
//!
//! # Perf tracking: the `BENCH_*.json` workflow
//!
//! The repository tracks simulator throughput across PRs with committed
//! snapshot files at the repository root, one per snapshot generation:
//! `BENCH_01.json` (this PR's baseline), `BENCH_02.json` for the next
//! perf-relevant change, and so on. Each file records slots-simulated per
//! second for the three engines (fair, window, exact) in a stable,
//! diff-friendly JSON format (`mac-bench/perf-snapshot/v1`).
//!
//! To add a new snapshot after a perf-relevant change, run from the
//! repository root and commit the new file:
//!
//! ```bash
//! cargo run -p mac-bench --release --bin perf_snapshot -- --max-exp 6
//! ```
//!
//! (The binary writes the next free `BENCH_NN.json` in the current
//! directory — existing snapshots are never overwritten.) A change is a
//! regression if a new snapshot's `slots_per_sec` falls well below the
//! previous snapshot's on the same machine class; the numbers are
//! best-of-`--reps` wall-clock measurements, so small jitter is expected but
//! halvings are real. The `perf_snapshot` binary accepts the shared
//! [`HarnessOptions`] flags (`--seed`, `--max-exp`, `--reps`), and the
//! `occupancy_profile` binary breaks the occupancy engine's cost into phases
//! when a regression needs attributing.
//!
//! The library part of the crate contains the small amount of shared plumbing
//! (command-line parsing, default grids) used by the binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod certify;
pub mod saturation;

use mac_protocols::ProtocolKind;
use mac_sim::{EngineChoice, Experiment, RunOptions};

/// The instance sizes of the paper's evaluation: powers of ten from 10 up to
/// `10^max_exponent` (the paper uses `max_exponent = 7`).
pub fn paper_ks(max_exponent: u32) -> Vec<u64> {
    (1..=max_exponent).map(|e| 10u64.pow(e)).collect()
}

/// The paper's five-protocol line-up plus the known-k oracle reference.
pub fn lineup_with_oracle() -> Vec<ProtocolKind> {
    let mut protocols = ProtocolKind::paper_lineup();
    protocols.push(ProtocolKind::KnownKOracle);
    protocols
}

/// Builds the paper sweep (Figure 1 / Table 1) for the given maximum
/// instance-size exponent, replication count and master seed.
pub fn paper_experiment(max_exponent: u32, replications: u64, master_seed: u64) -> Experiment {
    Experiment {
        protocols: ProtocolKind::paper_lineup(),
        ks: paper_ks(max_exponent),
        replications,
        master_seed,
        options: RunOptions::default(),
        engine: EngineChoice::Fast,
        threads: 0,
    }
}

/// Minimal command-line options shared by the harness binaries.
///
/// Recognised flags (all optional):
/// `--max-exp <u32>` (default 5; the paper uses 7),
/// `--reps <u64>` (default 10, as in the paper),
/// `--seed <u64>` (default 2011),
/// `--full` (shorthand for `--max-exp 7`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HarnessOptions {
    /// Largest instance size is `10^max_exp`.
    pub max_exp: u32,
    /// Replications per (protocol, k) cell.
    pub reps: u64,
    /// Master seed.
    pub seed: u64,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        Self {
            max_exp: 5,
            reps: 10,
            seed: 2011,
        }
    }
}

impl HarnessOptions {
    /// Parses the options from an iterator of command-line arguments
    /// (excluding the program name). Unknown flags cause a panic with a usage
    /// message, which is the desired behaviour for a harness binary.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut options = Self::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--max-exp" => {
                    options.max_exp = iter
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--max-exp requires an integer argument");
                }
                "--reps" => {
                    options.reps = iter
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--reps requires an integer argument");
                }
                "--seed" => {
                    options.seed = iter
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--seed requires an integer argument");
                }
                "--full" => options.max_exp = 7,
                "--help" | "-h" => {
                    println!(
                        "usage: [--max-exp N] [--reps R] [--seed S] [--full]\n\
                         --max-exp N  largest instance size is 10^N (default 5, paper uses 7)\n\
                         --reps R     replications per cell (default 10, as in the paper)\n\
                         --seed S     master seed (default 2011)\n\
                         --full       shorthand for --max-exp 7 (the paper-scale sweep)"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown argument `{other}` (try --help)"),
            }
        }
        assert!(
            (1..=7).contains(&options.max_exp),
            "--max-exp must be between 1 and 7"
        );
        options
    }

    /// The experiment this option set describes.
    pub fn experiment(&self) -> Experiment {
        paper_experiment(self.max_exp, self.reps, self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ks_are_powers_of_ten() {
        assert_eq!(paper_ks(3), vec![10, 100, 1000]);
        assert_eq!(paper_ks(7).len(), 7);
        assert_eq!(*paper_ks(7).last().unwrap(), 10_000_000);
    }

    #[test]
    fn lineup_with_oracle_has_six_protocols() {
        assert_eq!(lineup_with_oracle().len(), 6);
    }

    #[test]
    fn default_options_match_paper_replications() {
        let opts = HarnessOptions::default();
        assert_eq!(opts.reps, 10);
        let experiment = opts.experiment();
        assert_eq!(experiment.protocols.len(), 5);
        assert_eq!(experiment.replications, 10);
    }

    #[test]
    fn parse_recognises_all_flags() {
        let opts = HarnessOptions::parse(
            ["--max-exp", "3", "--reps", "2", "--seed", "9"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(
            opts,
            HarnessOptions {
                max_exp: 3,
                reps: 2,
                seed: 9
            }
        );
        let full = HarnessOptions::parse(["--full".to_string()]);
        assert_eq!(full.max_exp, 7);
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn parse_rejects_unknown_flags() {
        HarnessOptions::parse(["--bogus".to_string()]);
    }
}
