//! Property-based tests for the simulation engine.

use mac_channel::ArrivalModel;
use mac_prob::rng::Xoshiro256pp;
use mac_protocols::ProtocolKind;
use mac_sim::{
    simulate_with_options, AdversaryModel, AdversaryScenario, ExactSimulator, JamTrigger,
    RunOptions,
};
use proptest::prelude::*;
use rand::SeedableRng;
use std::collections::BTreeMap;

fn any_paper_protocol() -> impl Strategy<Value = ProtocolKind> {
    (0usize..5).prop_map(|i| ProtocolKind::paper_lineup()[i].clone())
}

/// Adversaries that are *configured* (so the simulators take their
/// adversarial code paths) but can never fire a jam. Runs under them must
/// be bit-identical to clean runs — results and RNG streams alike.
fn inert_adversaries() -> Vec<AdversaryModel> {
    vec![
        AdversaryModel::StochasticNoise { p: 0.0 },
        AdversaryModel::PeriodicJam {
            period: 5,
            burst: 0,
            phase: 2,
        },
        AdversaryModel::ScheduledJam { bursts: vec![] },
        AdversaryModel::BudgetedReactiveJam {
            budget: 0,
            trigger: JamTrigger::NearSuccess,
        },
    ]
}

/// Decodes a proptest-generated integer into an arbitrary adversary model.
fn decode_adversary_model(variant: usize, a: u64, b: u64, p: f64, raw: &[u64]) -> AdversaryModel {
    match variant {
        0 => AdversaryModel::None,
        1 => AdversaryModel::StochasticNoise { p },
        2 => AdversaryModel::PeriodicJam {
            period: 1 + a % 60,
            burst: b % (1 + a % 60 + 1),
            phase: b,
        },
        3 => AdversaryModel::ScheduledJam {
            bursts: raw.iter().map(|&e| (e % 500, e / 500 % 8)).collect(),
        },
        _ => AdversaryModel::BudgetedReactiveJam {
            budget: a,
            trigger: if b.is_multiple_of(2) {
                JamTrigger::NearSuccess
            } else {
                JamTrigger::Contended
            },
        },
    }
}

#[test]
fn invalid_adversary_configs_error_instead_of_panicking() {
    // A malformed scenario must surface as the same `ParameterError` path
    // every other invalid parameter takes, in every simulator and in the
    // sweep runner.
    let bad = RunOptions::adversarial(AdversaryScenario::jamming(
        AdversaryModel::StochasticNoise { p: 1.5 },
    ));
    let fair = ProtocolKind::OneFailAdaptive { delta: 2.72 };
    let window = ProtocolKind::ExpBackonBackoff { delta: 0.366 };
    assert!(simulate_with_options(&fair, 10, 0, &bad).is_err());
    assert!(simulate_with_options(&window, 10, 0, &bad).is_err());
    assert!(ExactSimulator::new(fair.clone(), bad.clone())
        .run(10, 0)
        .is_err());
    let mut experiment = mac_sim::Experiment::paper(vec![10], 1);
    experiment.options = bad;
    assert!(experiment.run().is_err());
}

proptest! {
    // Simulation is comparatively expensive; keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fast_simulators_always_solve_small_instances(
        kind in any_paper_protocol(),
        k in 0u64..=300,
        seed in any::<u64>(),
    ) {
        let result = simulate_with_options(&kind, k, seed, &RunOptions::default()).unwrap();
        prop_assert!(result.completed);
        prop_assert_eq!(result.delivered, k);
        prop_assert_eq!(result.k, k);
        if k > 0 {
            prop_assert!(result.makespan >= k, "at least one slot per message");
        } else {
            prop_assert_eq!(result.makespan, 0);
        }
    }

    #[test]
    fn recorded_delivery_slots_are_consistent_with_makespan(
        kind in any_paper_protocol(),
        k in 1u64..=200,
        seed in any::<u64>(),
    ) {
        let result = simulate_with_options(&kind, k, seed, &RunOptions::recording_deliveries()).unwrap();
        let slots = result.delivery_slots.clone().unwrap();
        prop_assert_eq!(slots.len() as u64, k);
        prop_assert!(slots.windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(slots.last().copied().unwrap() + 1, result.makespan);
    }

    #[test]
    fn simulation_is_a_pure_function_of_the_seed(
        kind in any_paper_protocol(),
        k in 1u64..=150,
        seed in any::<u64>(),
    ) {
        let a = simulate_with_options(&kind, k, seed, &RunOptions::default()).unwrap();
        let b = simulate_with_options(&kind, k, seed, &RunOptions::default()).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn exact_simulator_solves_everything_it_is_given(
        kind in any_paper_protocol(),
        k in 0u64..=40,
        seed in any::<u64>(),
    ) {
        let result = ExactSimulator::new(kind, RunOptions::default()).run(k, seed).unwrap();
        prop_assert!(result.completed);
        prop_assert_eq!(result.delivered, k);
        // The makespan decomposes into deliveries + collisions + silent slots.
        prop_assert_eq!(result.makespan, result.delivered + result.collisions + result.silent_slots);
    }

    // ------------------------------------------------------------------
    // Adversary subsystem
    // ------------------------------------------------------------------

    #[test]
    fn inert_adversaries_leave_fast_runs_bit_identical(
        kind in any_paper_protocol(),
        k in 0u64..=200,
        seed in any::<u64>(),
        record in any::<bool>(),
    ) {
        // A configured-but-harmless adversary routes the fast simulators
        // through their adversarial code paths (e.g. the window simulator's
        // detailed occupancy path); with `AdversaryModel::None` semantics the
        // result — and therefore the protocol RNG stream — must be exactly
        // the clean run's, delivery slots included.
        let clean = RunOptions {
            record_deliveries: record,
            ..RunOptions::default()
        };
        let baseline = simulate_with_options(&kind, k, seed, &clean).unwrap();
        for model in inert_adversaries() {
            let mut options = RunOptions::adversarial(AdversaryScenario::jamming(model.clone()));
            options.record_deliveries = record;
            let run = simulate_with_options(&kind, k, seed, &options).unwrap();
            prop_assert_eq!(&run, &baseline, "model {:?}", model);
        }
    }

    #[test]
    fn inert_adversaries_leave_exact_runs_bit_identical(
        kind in any_paper_protocol(),
        k in 0u64..=40,
        seed in any::<u64>(),
    ) {
        let baseline = ExactSimulator::new(kind.clone(), RunOptions::default())
            .run(k, seed)
            .unwrap();
        for model in inert_adversaries() {
            let options = RunOptions::adversarial(AdversaryScenario::jamming(model.clone()));
            let run = ExactSimulator::new(kind.clone(), options).run(k, seed).unwrap();
            prop_assert_eq!(&run, &baseline, "model {:?}", model);
        }
    }

    #[test]
    fn jammed_runs_keep_slot_accounting_balanced(
        kind_index in 0usize..4,
        k in 1u64..=120,
        seed in any::<u64>(),
        period in 2u64..8,
    ) {
        // Under jamming every resolved slot is still exactly one of
        // delivery / collision / silence, and destroyed deliveries are
        // counted as collisions. (The robust line-up spans both fast
        // simulators; Log-fails Adaptive's estimator is calibrated for the
        // ideal channel only.)
        let kind = ProtocolKind::robust_lineup()[kind_index].clone();
        let options = RunOptions::adversarial(AdversaryScenario::jamming(
            AdversaryModel::PeriodicJam { period, burst: 1, phase: 0 },
        ));
        let jammed = simulate_with_options(&kind, k, seed, &options).unwrap();
        prop_assert!(jammed.collisions >= jammed.jammed_deliveries);
        if jammed.completed {
            prop_assert_eq!(jammed.delivered, k);
            // Every slot of a completed run is exactly one of delivery /
            // collision / silence — in the fair simulator slot by slot, in
            // the window simulator because each window decomposes into
            // delivered, colliding and empty bins (jammed singletons
            // counting as collisions), with only the used prefix of the
            // final window billed.
            prop_assert_eq!(
                jammed.makespan,
                jammed.delivered + jammed.collisions + jammed.silent_slots
            );
        } else {
            // Jamming that resonates with a protocol's structure can stall
            // it outright — a period-2 jammer aligned with One-fail
            // Adaptive's AT/BT parity destroys every BT-step delivery — in
            // which case the run must be reported truthfully at the cap.
            prop_assert_eq!(jammed.makespan, options.max_slots(k));
            prop_assert!(jammed.delivered < k);
        }
    }

    #[test]
    fn adversary_configs_round_trip_through_their_config_strings(
        variant in 0usize..5,
        a in 0u64..500,
        b in 0u64..500,
        p in 0.0f64..=1.0,
        raw in prop::collection::vec(0u64..4_000, 0..7),
    ) {
        // The vendored serde is a no-op stub, so the honest round-trip goes
        // through the config-string format (`Display`/`parse`); the serde
        // derives are exercised by compilation against the markers.
        let model = decode_adversary_model(variant, a, b, p, &raw);
        let text = model.to_string();
        let parsed = AdversaryModel::parse(&text)
            .map_err(TestCaseError::fail)?;
        prop_assert_eq!(parsed, model.normalised(), "config `{}`", text);
    }

    // ------------------------------------------------------------------
    // Burst arrival schedules
    // ------------------------------------------------------------------

    #[test]
    fn burst_schedules_are_order_and_duplication_insensitive(
        raw in prop::collection::vec(0u64..4_000, 1..12),
        rotation in 0usize..12,
    ) {
        // Decode into (slot, count) pairs, then present the same bursts in
        // three shapes: as generated, rotated+reversed, and with duplicate
        // slots merged. All three must sample to the same ArrivalSchedule.
        let bursts: Vec<(u64, u64)> = raw.iter().map(|&e| (e % 400, e / 400 % 10)).collect();
        let mut shuffled = bursts.clone();
        let pivot = rotation % shuffled.len();
        shuffled.rotate_left(pivot);
        shuffled.reverse();
        let mut merged_map: BTreeMap<u64, u64> = BTreeMap::new();
        for &(slot, count) in &bursts {
            *merged_map.entry(slot).or_insert(0) += count;
        }
        let merged: Vec<(u64, u64)> = merged_map.into_iter().collect();

        let mut rng = Xoshiro256pp::seed_from_u64(0);
        let reference = ArrivalModel::Bursts { bursts }.sample(&mut rng);
        let from_shuffled = ArrivalModel::Bursts { bursts: shuffled }.sample(&mut rng);
        let from_merged = ArrivalModel::Bursts { bursts: merged }.sample(&mut rng);
        prop_assert_eq!(&from_shuffled, &reference);
        prop_assert_eq!(&from_merged, &reference);
        // Sampling bursts is deterministic: the RNG is never touched.
        let mut untouched = Xoshiro256pp::seed_from_u64(0);
        use rand::RngCore;
        prop_assert_eq!(rng.next_u64(), untouched.next_u64());
    }
}
