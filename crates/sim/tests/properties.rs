//! Property-based tests for the simulation engine.

use mac_protocols::ProtocolKind;
use mac_sim::{simulate_with_options, ExactSimulator, RunOptions};
use proptest::prelude::*;

fn any_paper_protocol() -> impl Strategy<Value = ProtocolKind> {
    (0usize..5).prop_map(|i| ProtocolKind::paper_lineup()[i].clone())
}

proptest! {
    // Simulation is comparatively expensive; keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fast_simulators_always_solve_small_instances(
        kind in any_paper_protocol(),
        k in 0u64..=300,
        seed in any::<u64>(),
    ) {
        let result = simulate_with_options(&kind, k, seed, &RunOptions::default()).unwrap();
        prop_assert!(result.completed);
        prop_assert_eq!(result.delivered, k);
        prop_assert_eq!(result.k, k);
        if k > 0 {
            prop_assert!(result.makespan >= k, "at least one slot per message");
        } else {
            prop_assert_eq!(result.makespan, 0);
        }
    }

    #[test]
    fn recorded_delivery_slots_are_consistent_with_makespan(
        kind in any_paper_protocol(),
        k in 1u64..=200,
        seed in any::<u64>(),
    ) {
        let result = simulate_with_options(&kind, k, seed, &RunOptions::recording_deliveries()).unwrap();
        let slots = result.delivery_slots.clone().unwrap();
        prop_assert_eq!(slots.len() as u64, k);
        prop_assert!(slots.windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(slots.last().copied().unwrap() + 1, result.makespan);
    }

    #[test]
    fn simulation_is_a_pure_function_of_the_seed(
        kind in any_paper_protocol(),
        k in 1u64..=150,
        seed in any::<u64>(),
    ) {
        let a = simulate_with_options(&kind, k, seed, &RunOptions::default()).unwrap();
        let b = simulate_with_options(&kind, k, seed, &RunOptions::default()).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn exact_simulator_solves_everything_it_is_given(
        kind in any_paper_protocol(),
        k in 0u64..=40,
        seed in any::<u64>(),
    ) {
        let result = ExactSimulator::new(kind, RunOptions::default()).run(k, seed).unwrap();
        prop_assert!(result.completed);
        prop_assert_eq!(result.delivered, k);
        // The makespan decomposes into deliveries + collisions + silent slots.
        prop_assert_eq!(result.makespan, result.delivered + result.collisions + result.silent_slots);
    }
}
