//! Chaos suite: deterministic fault injection against the session layer.
//!
//! Extends the PR 7 identity contract from "resume works" to "resume
//! works under fire" (DESIGN.md §10). Three fault families are exercised:
//!
//! * **Storage faults** — every single-byte corruption and every
//!   truncation of a valid checkpoint (session and sharded framings)
//!   must fail `resume` with a *typed* error before any state is
//!   reconstructed; a corrupted generation in a durable store must fall
//!   back to the previous good one.
//! * **Process faults** — mid-run crashes (live state dropped, recovery
//!   through the store) and shard-thread kills (panic capture, retry,
//!   quarantine) must either recover **bit-identically** to the unbroken
//!   twin run or degrade to a partial result naming the quarantined
//!   shards. No panics, no silent divergence.
//! * **Livelock** — the OFA two-cohort parity deadlock (DESIGN.md §6)
//!   must surface as a detected stall within a bounded window instead of
//!   burning the slot cap.

use mac_channel::ArrivalModel;
use mac_protocols::ProtocolKind;
use mac_sim::faults::{run_batched_chaos, scratch_dir, CorruptionKind, CrashPoint, FaultPlan};
use mac_sim::{
    simulate, Checkpoint, CheckpointStore, IntegrityError, RunOptions, Session, SessionError,
    SessionStatus, ShardSupervision, ShardedSession, StallConfig, StallPolicy,
};

fn ofa() -> ProtocolKind {
    ProtocolKind::OneFailAdaptive { delta: 2.72 }
}

fn session_checkpoint() -> Checkpoint {
    let mut session = Session::batched(&ofa(), 60, 9, &RunOptions::default()).unwrap();
    session.advance(40).unwrap();
    session.checkpoint().unwrap()
}

fn sharded_checkpoint() -> Checkpoint {
    let model = ArrivalModel::Bursts {
        bursts: vec![(0, 20), (100, 20)],
    };
    let mut driver = ShardedSession::new(&ofa(), &model, 5, &RunOptions::default(), 2).unwrap();
    driver.advance(50).unwrap();
    driver.checkpoint().unwrap()
}

/// Resuming `bytes` under the right driver must fail with a typed error —
/// never a panic, never an `Ok`.
fn assert_typed_rejection(bytes: &[u8], sharded: bool, what: &str) {
    match Checkpoint::from_bytes(bytes) {
        Err(SessionError::Wire(_)) => {} // byte length not a word multiple: typed
        Err(other) => panic!("{what}: unexpected from_bytes error {other}"),
        Ok(checkpoint) => {
            let result = if sharded {
                ShardedSession::resume(&checkpoint).map(|_| ())
            } else {
                Session::resume(&checkpoint).map(|_| ())
            };
            match result {
                Err(SessionError::Integrity(_)) | Err(SessionError::Wire(_)) => {}
                Err(other) => panic!("{what}: unexpected resume error {other}"),
                Ok(()) => panic!("{what}: corrupted checkpoint resumed successfully"),
            }
        }
    }
}

#[test]
fn every_single_byte_corruption_is_rejected_with_a_typed_error() {
    for (checkpoint, sharded) in [(session_checkpoint(), false), (sharded_checkpoint(), true)] {
        let bytes = checkpoint.to_bytes();
        for offset in 0..bytes.len() {
            // One bit per byte keeps the sweep exhaustive over bytes yet
            // fast; the digest's per-word bijective mixing guarantees any
            // single-word change flips it (proved in mac_prob::wire), so
            // the bit choice is immaterial — vary it anyway.
            let bit = (offset % 8) as u8;
            let mut corrupted = bytes.clone();
            corrupted[offset] ^= 1 << bit;
            assert_typed_rejection(&corrupted, sharded, &format!("byte {offset} flipped"));
        }
    }
}

#[test]
fn every_truncation_is_rejected_with_a_typed_error() {
    for (checkpoint, sharded) in [(session_checkpoint(), false), (sharded_checkpoint(), true)] {
        let bytes = checkpoint.to_bytes();
        for len in 0..bytes.len() {
            assert_typed_rejection(&bytes[..len], sharded, &format!("truncated to {len} bytes"));
        }
    }
}

#[test]
fn integrity_errors_carry_actionable_diagnostics() {
    let checkpoint = session_checkpoint();
    let words = checkpoint.words();

    // Version word (index 1) bumped: a {found, expected} version error,
    // reported before the digest gets a chance to call it "corrupt".
    let mut bumped = words.to_vec();
    bumped[1] += 1;
    let bumped = Checkpoint::from_bytes(&mac_prob::wire::words_to_bytes(&bumped)).unwrap();
    match Session::resume(&bumped).unwrap_err() {
        SessionError::Integrity(IntegrityError::VersionMismatch {
            found, expected, ..
        }) => {
            assert_eq!(found, expected + 1);
        }
        other => panic!("unexpected error: {other}"),
    }

    // A session frame fed to the sharded resume (and vice versa): a kind
    // mismatch naming both sides, not garbage decoding.
    match ShardedSession::resume(&checkpoint).unwrap_err() {
        SessionError::Integrity(IntegrityError::KindMismatch { .. }) => {}
        other => panic!("unexpected error: {other}"),
    }
    match Session::resume(&sharded_checkpoint()).unwrap_err() {
        SessionError::Integrity(IntegrityError::KindMismatch { .. }) => {}
        other => panic!("unexpected error: {other}"),
    }

    // Payload corruption: a digest mismatch carrying both digests.
    let mut corrupt = words.to_vec();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 1;
    let corrupt = Checkpoint::from_bytes(&mac_prob::wire::words_to_bytes(&corrupt)).unwrap();
    match Session::resume(&corrupt).unwrap_err() {
        SessionError::Integrity(IntegrityError::Corrupt {
            stored_digest,
            computed_digest,
        }) => assert_ne!(stored_digest, computed_digest),
        other => panic!("unexpected error: {other}"),
    }
}

#[test]
fn chaos_recovery_is_bit_identical_to_the_unbroken_twin() {
    let kind = ofa();
    let (k, seed) = (400, 23);
    let options = RunOptions::default();
    let twin = simulate(&kind, k, seed).unwrap();
    let mut twin_session = Session::batched(&kind, k, seed, &options).unwrap();
    twin_session.run_to_completion().unwrap();
    let twin_p50 = twin_session.live_stats().map(|s| s.quantile(0.5));

    // Clean crash, crash + bit rot, crash + torn write, and a pile-up of
    // all three: every plan must recover to the identical result + sketch.
    let plans = [
        FaultPlan {
            seed: 1,
            crashes: vec![CrashPoint {
                at_slot: 300,
                corrupt: None,
            }],
            shard_kills: vec![],
        },
        FaultPlan {
            seed: 2,
            crashes: vec![CrashPoint {
                at_slot: 250,
                corrupt: Some(CorruptionKind::FlipByte),
            }],
            shard_kills: vec![],
        },
        FaultPlan {
            seed: 3,
            crashes: vec![CrashPoint {
                at_slot: 500,
                corrupt: Some(CorruptionKind::Truncate),
            }],
            shard_kills: vec![],
        },
        FaultPlan {
            seed: 4,
            crashes: vec![
                CrashPoint {
                    at_slot: 150,
                    corrupt: None,
                },
                CrashPoint {
                    at_slot: 400,
                    corrupt: Some(CorruptionKind::FlipByte),
                },
                CrashPoint {
                    at_slot: 700,
                    corrupt: Some(CorruptionKind::Truncate),
                },
            ],
            shard_kills: vec![],
        },
    ];
    for plan in plans {
        let dir = scratch_dir("chaos-twin");
        let report = run_batched_chaos(&kind, k, seed, &options, &plan, &dir, 120, None).unwrap();
        assert_eq!(report.crashes_fired, plan.crashes.len() as u64);
        if plan.crashes.iter().any(|c| c.corrupt.is_some()) {
            assert!(
                report.corrupt_generations_skipped > 0,
                "plan {}: corruption must actually force a fallback",
                plan.seed
            );
        }
        assert_eq!(
            report.result, twin,
            "plan {}: recovery must be bit-identical",
            plan.seed
        );
        assert_eq!(
            report.p50_latency, twin_p50,
            "plan {}: sketch too",
            plan.seed
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn unsupervised_shard_panic_returns_a_typed_error() {
    let model = ArrivalModel::Bursts {
        bursts: vec![(0, 30), (50, 30)],
    };
    let mut driver = ShardedSession::new(&ofa(), &model, 7, &RunOptions::default(), 2).unwrap();
    driver.arm_shard_kill(1, Some(20));
    match driver.run_to_completion().unwrap_err() {
        SessionError::ShardFailed { shard, panic } => {
            assert_eq!(shard, 1);
            assert!(panic.contains("injected fault"), "payload: {panic}");
        }
        other => panic!("unexpected error: {other}"),
    }
}

#[test]
fn supervised_shard_kill_recovers_bit_identically() {
    let kind = ofa();
    let model = ArrivalModel::Bursts {
        bursts: vec![(0, 30), (50, 30), (500, 20)],
    };
    let options = RunOptions::default();
    let mut twin = ShardedSession::new(&kind, &model, 7, &options, 2).unwrap();
    twin.run_to_completion().unwrap();
    let twin_result = twin.merged_result();
    let twin_stats = twin.merged_stats();

    let mut driver = ShardedSession::new(&kind, &model, 7, &options, 2).unwrap();
    driver.set_supervision(Some(ShardSupervision::new(3)));
    driver.arm_shard_kill(1, Some(40));
    let status = driver.run_to_completion().unwrap();
    assert_eq!(status, SessionStatus::Finished);
    assert_eq!(driver.health()[1].failures, 1, "the kill fired once");
    assert!(driver.health()[1].last_panic.is_some());
    assert!(driver.quarantined_shards().is_empty());
    assert_eq!(
        driver.merged_result(),
        twin_result,
        "retry from the last good checkpoint must be bit-identical"
    );
    let merged = driver.merged_stats();
    assert_eq!(merged.count(), twin_stats.count());
    assert_eq!(merged.quantile(0.5), twin_stats.quantile(0.5));
    assert_eq!(merged.quantile(0.95), twin_stats.quantile(0.95));
}

#[test]
fn exhausted_retries_quarantine_the_shard_and_degrade_gracefully() {
    let kind = ofa();
    let model = ArrivalModel::Bursts {
        bursts: vec![(0, 30), (50, 30)],
    };
    let options = RunOptions::default();
    let mut driver = ShardedSession::new(&kind, &model, 7, &options, 2).unwrap();
    // Zero retries: the first failure quarantines the shard. (The armed
    // kill dies with the replaced session object, so any retry would
    // succeed — max_retries = 0 forces the quarantine path.)
    driver.set_supervision(Some(ShardSupervision::new(0)));
    driver.arm_shard_kill(0, Some(25));
    let status = driver.run_to_completion().unwrap();
    assert_eq!(status, SessionStatus::Finished, "survivors must finish");
    assert_eq!(driver.quarantined_shards(), vec![0]);
    assert!(driver.health()[0].quarantined);
    let result = driver.merged_result();
    assert!(
        !result.completed,
        "a quarantined shard must surface as a partial result"
    );
    assert!(
        result.delivered > 0,
        "the surviving shard's deliveries are still reported"
    );
    // The quarantined shard is frozen at its last good checkpoint, before
    // the kill slot.
    assert!(driver.shards()[0].slot() <= 25);
    assert!(driver.shards()[1].is_finished());
}

#[test]
fn sharded_checkpoint_preserves_supervision_and_health() {
    let model = ArrivalModel::Bursts {
        bursts: vec![(0, 30), (50, 30)],
    };
    let mut driver = ShardedSession::new(&ofa(), &model, 7, &RunOptions::default(), 2).unwrap();
    driver.set_supervision(Some(ShardSupervision::new(0)));
    driver.arm_shard_kill(0, Some(25));
    driver.run_to_completion().unwrap();
    assert_eq!(driver.quarantined_shards(), vec![0]);

    let resumed = ShardedSession::resume(&driver.checkpoint().unwrap()).unwrap();
    assert_eq!(resumed.supervision(), Some(ShardSupervision::new(0)));
    assert_eq!(resumed.health(), driver.health());
    assert_eq!(resumed.quarantined_shards(), vec![0]);
    assert!(resumed.is_finished(), "quarantine survives the round trip");
}

#[test]
fn watchdog_detects_the_ofa_parity_deadlock_within_a_bounded_window() {
    // DESIGN.md §6: two σ = 0 cohorts straddling both parities lock
    // One-fail Adaptive's BT phase at p = 1 — every slot collides, zero
    // deliveries, forever. Without a watchdog this burns the full slot
    // cap; the regression turns the documented anecdote into a check
    // that the stall is *detected* within a bounded window.
    let kind = ofa();
    let model = ArrivalModel::Bursts {
        bursts: vec![(0, 40), (1, 40)],
    };
    let options = RunOptions {
        slot_cap_per_message: 100,
        min_slot_cap: 50_000,
        ..RunOptions::default()
    };
    let window = 2_000u64;

    // Abort policy: the run stops with diagnostics instead of spinning.
    let mut session = Session::dynamic(&kind, &model, 3, &options).unwrap();
    session.set_watchdog(Some(StallConfig::new(window, StallPolicy::Abort)));
    match session.run_to_completion().unwrap_err() {
        SessionError::Stalled(report) => {
            assert!(
                report.detected_at_slot <= report.last_progress_slot + 2 * window,
                "detection within two windows of the last progress: {report}"
            );
            assert!(
                report.detected_at_slot < options.max_slots(80),
                "the watchdog must beat the slot-cap timeout"
            );
            assert!(report.backlog > 0, "a stall needs a backlog: {report}");
        }
        other => panic!("unexpected error: {other}"),
    }

    // Report policy: the run proceeds to its cap, the stall is recorded
    // and surfaced in the dynamic report.
    let mut session = Session::dynamic(&kind, &model, 3, &options).unwrap();
    session.set_watchdog(Some(StallConfig::new(window, StallPolicy::Report)));
    session.run_to_completion().unwrap();
    let stall = session
        .stall()
        .expect("the deadlock must be flagged")
        .clone();
    assert!(stall.detected_at_slot <= stall.last_progress_slot + 2 * window);
    let report = session.live_report();
    assert_eq!(report.stall_detected_at, Some(stall.detected_at_slot));

    // Pause policy: advance hands control back with a checkpointable
    // session; resuming carries the watchdog state.
    let mut session = Session::dynamic(&kind, &model, 3, &options).unwrap();
    session.set_watchdog(Some(StallConfig::new(window, StallPolicy::Pause)));
    let status = session.advance(u64::MAX).unwrap();
    assert_eq!(status, SessionStatus::Stalled);
    let resumed = Session::resume(&session.checkpoint().unwrap()).unwrap();
    assert!(
        resumed.stall().is_some(),
        "stall diagnostics survive resume"
    );
    assert_eq!(
        resumed.watchdog(),
        Some(StallConfig::new(window, StallPolicy::Pause))
    );
}

#[test]
fn watchdog_never_perturbs_a_healthy_run() {
    // Bit-identity: an armed watchdog (chunked advances) must not change
    // the run — results and sketches match the unarmed twin exactly.
    let kind = ofa();
    let (k, seed) = (500, 31);
    let options = RunOptions::default();
    let mut plain = Session::batched(&kind, k, seed, &options).unwrap();
    plain.run_to_completion().unwrap();

    let mut watched = Session::batched(&kind, k, seed, &options).unwrap();
    watched.set_watchdog(Some(StallConfig::new(1_000, StallPolicy::Abort)));
    let result = watched.run_to_completion().unwrap();
    assert_eq!(result, plain.result());
    assert_eq!(
        watched.live_stats().map(|s| s.quantile(0.5)),
        plain.live_stats().map(|s| s.quantile(0.5))
    );
    assert!(watched.stall().is_none(), "healthy runs never stall");

    // Dynamic runs idle between bursts; an idle channel must not count
    // as a stall (the backlog, not `remaining`, gates the window).
    let model = ArrivalModel::Bursts {
        bursts: vec![(0, 20), (10_000, 20)],
    };
    let mut dynamic = Session::dynamic(&kind, &model, 5, &options).unwrap();
    dynamic.set_watchdog(Some(StallConfig::new(100, StallPolicy::Abort)));
    dynamic
        .run_to_completion()
        .expect("a 10k-slot arrival gap is idleness, not livelock");
    assert!(dynamic.stall().is_none());
}

#[test]
fn store_fallback_survives_a_corrupted_generation() {
    let dir = scratch_dir("chaos-store");
    let mut store = CheckpointStore::open(&dir, 3).unwrap();
    let mut session = Session::batched(&ofa(), 200, 13, &RunOptions::default()).unwrap();
    session.advance(100).unwrap();
    store.save(&session.checkpoint().unwrap()).unwrap();
    session.advance(100).unwrap();
    let bad = store.save(&session.checkpoint().unwrap()).unwrap();

    // Torn write: the newest generation loses its tail.
    let path = store.path_for(bad);
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

    let outcome = store.load_latest().unwrap();
    let (generation, checkpoint) = outcome.loaded.expect("previous generation is good");
    assert_eq!(generation, bad - 1);
    assert_eq!(outcome.skipped.len(), 1);
    let mut recovered = Session::resume(&checkpoint).unwrap();
    recovered.run_to_completion().unwrap();
    assert_eq!(recovered.result(), simulate(&ofa(), 200, 13).unwrap());
    let _ = std::fs::remove_dir_all(&dir);
}
